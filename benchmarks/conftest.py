"""Shared fixtures for the benchmark suite.

Spec training is expensive; train each (device, version) pair once per
session and share across benches.  Scale knobs come from the environment:

* ``REPRO_FP_HOURS``   — Table II horizons (default "10,20,30")
* ``REPRO_FP_CPH``     — cases per simulated hour (default 8)
* ``REPRO_FUZZ_ITERS`` — fuzzing budget for effective coverage (default 300)
"""

import os

import pytest

from repro.workloads import train_device_spec

ALL_DEVICES = ("fdc", "ehci", "pcnet", "sdhci", "scsi")

FP_HOURS = tuple(int(h) for h in
                 os.environ.get("REPRO_FP_HOURS", "10,20,30").split(","))
FP_CASES_PER_HOUR = int(os.environ.get("REPRO_FP_CPH", "8"))
FUZZ_ITERATIONS = int(os.environ.get("REPRO_FUZZ_ITERS", "300"))

#: One training run per (device, version) for the whole session — keyed
#: exactly like ``eval.security._spec_for`` so the security/baseline
#: benches share it instead of retraining vulnerable-build specs.
_SPEC_CACHE = {}


def spec_for(device: str, version: str = "99.0.0"):
    key = (device, version)
    if key not in _SPEC_CACHE:
        _SPEC_CACHE[key] = train_device_spec(
            device, qemu_version=version).spec
    return _SPEC_CACHE[key]


@pytest.fixture(scope="session")
def patched_specs():
    return {name: spec_for(name) for name in ALL_DEVICES}


@pytest.fixture(scope="session")
def spec_cache():
    """The session spec cache, keyed like eval.security expects."""
    return _SPEC_CACHE
