"""Table III — the main result: per-CVE detection matrix by check
strategy, plus effective coverage per device.

(The FPR column is produced by bench_table2_fp.py; this bench asserts
the detection ✓-matrix matches the paper exactly, including the
CVE-2016-1568 miss.)
"""

from conftest import ALL_DEVICES, FUZZ_ITERATIONS

import pytest

from repro.checker import Strategy
from repro.eval import render_table, strategy_matrix
from repro.exploits import EXPLOITS
from repro.workloads import measure_effective_coverage


def bench_strategy_matrix(benchmark, spec_cache):
    results = benchmark.pedantic(strategy_matrix,
                                 kwargs=dict(cache=spec_cache),
                                 rounds=1, iterations=1)
    print("\n" + render_table(
        ("Device", "CVE", "QEMU", "Param", "IndJmp", "CondJmp", "Note"),
        [(r.device, r.cve, r.qemu_version,
          "Y" if Strategy.PARAMETER in r.detected_by else "",
          "Y" if Strategy.INDIRECT_JUMP in r.detected_by else "",
          "Y" if Strategy.CONDITIONAL_JUMP in r.detected_by else "",
          "(expected miss)" if r.expected_miss else "")
         for r in results]))
    for result in results:
        assert result.matches_paper, result.cve


@pytest.mark.parametrize("device_name", ALL_DEVICES)
def bench_effective_coverage(benchmark, device_name):
    report = benchmark.pedantic(
        measure_effective_coverage,
        args=(device_name,),
        kwargs=dict(iterations=FUZZ_ITERATIONS),
        rounds=1, iterations=1)
    print(f"\n{device_name}: effective coverage {report}")
    # The paper reports 93.5-97.3%; the shape claim is "high coverage
    # converging after modest fuzzing".
    assert report.ratio > 0.80, device_name
