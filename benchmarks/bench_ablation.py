"""Ablation benches for DESIGN.md's called-out design choices:
control-flow reduction, per-strategy checker cost, training volume.
"""

import pytest

from repro.eval import (
    reduction_ablation, render_reduction, strategy_cost_ablation,
    training_volume_ablation,
)


@pytest.mark.parametrize("device_name", ("fdc", "sdhci", "pcnet"))
def bench_reduction(benchmark, device_name):
    row = benchmark.pedantic(reduction_ablation, args=(device_name,),
                             kwargs=dict(ops=20), rounds=1, iterations=1)
    print("\n" + render_reduction([row]))
    assert row.blocks_reduced <= row.blocks_unreduced
    assert row.checker_cycles_reduced <= row.checker_cycles_unreduced


def bench_strategy_costs(benchmark):
    rows = benchmark.pedantic(strategy_cost_ablation, args=("sdhci",),
                              kwargs=dict(ops=20), rounds=1, iterations=1)
    by_label = {r.strategy: r.checker_cycles for r in rows}
    print("\nchecker cycles by strategy config:", by_label)
    # The walk itself dominates; toggling strategies shifts cost little.
    assert by_label["all"] > 0
    assert by_label["none"] > 0


def bench_training_volume(benchmark):
    rows = benchmark.pedantic(
        training_volume_ablation, args=("sdhci",),
        kwargs=dict(repeat_choices=(1, 4), hours=2, rare_case_rate=0.5),
        rounds=1, iterations=1)
    print("\nrepeats -> (blocks, FPs):",
          [(r.repeats, r.spec_blocks, r.false_positives) for r in rows])
    # The paper's remedy claim: richer corpora reduce false positives.
    assert rows[-1].false_positives <= rows[0].false_positives
