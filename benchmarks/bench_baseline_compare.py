"""Section VII-B.2 comparison — SEDSpec vs Nioh vs VMDec on the five
CVEs of Nioh's own evaluation.

Paper narrative reproduced: SEDSpec detects four of five and misses the
CVE-2016-1568 UAF; Nioh's manual state machines detect all five (at the
cost of per-device manual effort); VMDec's I/O statistics catch only the
exploits whose port traffic looks unusual.
"""

from repro.eval import compare_baselines


def bench_baseline_comparison(benchmark, spec_cache):
    comparison = benchmark.pedantic(
        compare_baselines, kwargs=dict(spec_cache=spec_cache),
        rounds=1, iterations=1)
    print("\n" + comparison.render())
    assert comparison.matches_paper()
    by_cve = {r.cve: r for r in comparison.rows}
    assert not by_cve["CVE-2016-1568"].sedspec
    assert by_cve["CVE-2016-1568"].nioh
    # VMDec misses the statistically-ordinary data-port flood.
    assert not by_cve["CVE-2015-3456"].vmdec
