"""Table II — false positives over 10/20/30 simulated hours per device,
plus the FPR column of Table III.

The paper's observation must hold: false positives exist but stay rare
(sub-percent FPR), and every one traces back to a legitimate-but-rare
command the training corpus never exercised.
"""

from conftest import ALL_DEVICES, FP_CASES_PER_HOUR, FP_HOURS, spec_for

from repro.eval import render_table
from repro.workloads import false_positive_experiment


def bench_table2_false_positives(benchmark):
    specs = {name: spec_for(name) for name in ALL_DEVICES}
    table = benchmark.pedantic(
        false_positive_experiment,
        kwargs=dict(specs=specs, hours_list=FP_HOURS,
                    cases_per_hour=FP_CASES_PER_HOUR),
        rounds=1, iterations=1)
    print("\n" + render_table(
        ("Device", *(f"{h} hours" for h in FP_HOURS), "FPR", "cases"),
        [(device, *(table.per_device[device][h] for h in FP_HOURS),
          f"{100 * table.fpr[device]:.2f}%", table.total_cases[device])
         for device in sorted(table.per_device)]))
    for device in ALL_DEVICES:
        counts = table.per_device[device]
        # Cumulative counts are monotone in the horizon.
        ordered = [counts[h] for h in sorted(counts)]
        assert ordered == sorted(ordered), device
        # FPR stays in the paper's sub-percent regime.
        assert table.fpr[device] < 0.01, device
