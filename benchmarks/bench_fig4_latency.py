"""Figure 4 — normalized storage latency per record size.

Paper claim reproduced: SEDSpec increases storage latency by less than 5%.
"""

from conftest import spec_for

from repro.eval import generate_storage_figures
from repro.eval.figures import STORAGE_DEVICES


def bench_fig4_storage_latency(benchmark):
    specs = {name: spec_for(name) for name in STORAGE_DEVICES}
    _, fig4 = benchmark.pedantic(
        generate_storage_figures,
        kwargs=dict(specs=specs, record_sizes=(512, 1024, 2048, 4096),
                    records_per_size=2),
        rounds=1, iterations=1)
    print("\n" + fig4.render())
    print(f"max latency increase: {fig4.max_overhead_percent():.2f}%")
    assert fig4.max_overhead_percent() < 5.0
    for device, sizes in fig4.series.items():
        for size, (write_n, read_n) in sizes.items():
            assert 0.9999 <= write_n < 1.10, (device, size)
            assert 0.9999 <= read_n < 1.10, (device, size)
