"""Micro-benchmarks of the pipeline's core components: compilation,
tracing+decoding, spec construction, and per-round checking cost.

These quantify where the offline and online time goes — useful context
for every macro number in the table/figure benches.
"""

from conftest import spec_for

import random

from repro.analysis import ObservationLogger, select_parameters
from repro.checker import ESChecker
from repro.compiler import compile_device
from repro.core import deploy
from repro.devices.fdc import FDC, FDCLogic
from repro.interp import Machine
from repro.ipt import Decoder, IPTTracer
from repro.spec import build_spec, spec_from_json, spec_to_json
from repro.workloads.profiles import PROFILES


def bench_compile_fdc(benchmark):
    program = benchmark(compile_device, FDCLogic)
    assert program.frozen
    assert program.block_count() > 40


def bench_trace_and_decode(benchmark):
    prof = PROFILES["fdc"]

    def traced_session():
        vm, device = prof.make_vm()
        tracer = device.machine.add_sink(IPTTracer())
        driver = prof.make_driver(vm)
        prof.prepare(vm, driver)
        driver.write_lba(3, bytes(512))
        driver.read_lba(3)
        return Decoder(device.program).decode_stream(tracer.packets)

    rounds = benchmark(traced_session)
    assert len(rounds) > 20


def bench_spec_construction(benchmark):
    prof = PROFILES["fdc"]
    vm, device = prof.make_vm()
    selection = select_parameters(device.program)
    logger = device.machine.add_sink(ObservationLogger(
        "fdc", selection.scalar_params | selection.funcptrs,
        selection.buffers))
    prof.training(vm, device, random.Random(7))
    spec = benchmark(build_spec, device.program, logger.log, selection)
    assert spec.block_count() > 0


def bench_spec_serialization_roundtrip(benchmark):
    spec = spec_for("fdc")
    restored = benchmark(lambda: spec_from_json(spec_to_json(spec)))
    assert restored.block_count() == spec.block_count()


def bench_checker_per_round(benchmark):
    """The online cost that every guest I/O pays: one check_io round."""
    spec = spec_for("fdc")
    device = FDC()
    checker = ESChecker(spec)
    checker.boot_sync(device.state)

    def one_round():
        return checker.check_io("pmio:read:4", ())

    report = benchmark(one_round)
    assert report.ok


def bench_device_round_uncached(benchmark):
    """Raw device-side cost of the same round, for comparison."""
    device = FDC()

    def one_round():
        return device.handle_io("pmio:read:4", ())

    benchmark(one_round)
