"""Micro-benchmarks of the pipeline's core components: compilation,
tracing+decoding, spec construction, and per-round checking cost.

These quantify where the offline and online time goes — useful context
for every macro number in the table/figure benches.
"""

from conftest import spec_for

import random

import pytest

from repro.analysis import ObservationLogger, select_parameters
from repro.checker import ESChecker
from repro.checker.sync import FieldSyncOracle
from repro.compiler import compile_device
from repro.core import deploy
from repro.devices.fdc import FDC, FDCLogic
from repro.interp import Machine
from repro.ipt import Decoder, IPTTracer
from repro.spec import build_spec, spec_from_json, spec_to_json
from repro.workloads.profiles import PROFILES


def bench_compile_fdc(benchmark):
    program = benchmark(compile_device, FDCLogic)
    assert program.frozen
    assert program.block_count() > 40


@pytest.mark.parametrize("backend", ["compiled", "reference", "bytecode"])
def bench_trace_and_decode(benchmark, backend):
    prof = PROFILES["fdc"]

    def traced_session():
        vm, device = prof.make_vm(backend=backend)
        tracer = device.machine.add_sink(IPTTracer())
        driver = prof.make_driver(vm)
        prof.prepare(vm, driver)
        driver.write_lba(3, bytes(512))
        driver.read_lba(3)
        return Decoder(device.program).decode_stream(tracer.packets)

    rounds = benchmark(traced_session)
    assert len(rounds) > 20


def bench_spec_construction(benchmark):
    prof = PROFILES["fdc"]
    vm, device = prof.make_vm()
    selection = select_parameters(device.program)
    logger = device.machine.add_sink(ObservationLogger(
        "fdc", selection.scalar_params | selection.funcptrs,
        selection.buffers))
    prof.training(vm, device, random.Random(7))
    spec = benchmark(build_spec, device.program, logger.log, selection)
    assert spec.block_count() > 0


def bench_spec_serialization_roundtrip(benchmark):
    spec = spec_for("fdc")
    restored = benchmark(lambda: spec_from_json(spec_to_json(spec)))
    assert restored.block_count() == spec.block_count()


_FDC_SEQUENCES = None


def _fdc_sequences():
    """The I/O rounds of FDC bring-up plus one full read_lba command —
    the representative workload both hot benches replay.  A command
    cycle ends back in the idle state, so replaying it is repeatable."""
    global _FDC_SEQUENCES
    if _FDC_SEQUENCES is None:
        prof = PROFILES["fdc"]
        vm, device = prof.make_vm()
        driver = prof.make_driver(vm)
        seq = []
        orig = vm._io

        def spy(dev, key, args):
            seq.append((key, args))
            return orig(dev, key, args)

        vm._io = spy
        prof.prepare(vm, driver)
        prepare_seq = tuple(seq)
        seq.clear()
        driver.read_lba(3)
        vm._io = orig
        _FDC_SEQUENCES = (prepare_seq, tuple(seq), device.snapshot())
    return _FDC_SEQUENCES


@pytest.mark.parametrize("backend",
                         ["compiled", "reference", "bytecode"])
def bench_checker_per_round(benchmark, backend):
    """The online cost guest I/O pays: the check_io rounds of one full
    read_lba command (22 rounds, ~1100 ES blocks walked)."""
    spec = spec_for("fdc")
    _, command_seq, prepared_state = _fdc_sequences()
    checker = ESChecker(spec, backend=backend)
    checker.boot_sync(prepared_state)
    oracle = FieldSyncOracle(prepared_state)

    def one_command():
        checker.history.clear()
        ok = True
        for key, args in command_seq:
            ok &= checker.check_io(key, args, oracle=oracle).ok
        return ok

    assert benchmark(one_command)


@pytest.mark.parametrize("batch", [4, 8, 22])
def bench_checker_batched(benchmark, batch):
    """The same command vetted through the batched entry (bytecode
    backend): one check_batch call per *batch* queued rounds amortizes
    frame setup and dispatch binding across the batch."""
    spec = spec_for("fdc")
    _, command_seq, prepared_state = _fdc_sequences()
    checker = ESChecker(spec, backend="bytecode")
    checker.boot_sync(prepared_state)
    oracle = FieldSyncOracle(prepared_state)

    def one_command():
        checker.history.clear()
        ok = True
        for i in range(0, len(command_seq), batch):
            for report in checker.check_batch(command_seq[i:i + batch],
                                              oracle=oracle):
                ok &= report.ok
        return ok

    assert benchmark(one_command)


@pytest.mark.parametrize("backend",
                         ["compiled", "reference", "bytecode"])
def bench_device_round_uncached(benchmark, backend):
    """Raw device-side cost of the same command, for comparison."""
    prepare_seq, command_seq, _ = _fdc_sequences()
    device = FDC(backend=backend)
    for key, args in prepare_seq:
        device.handle_io(key, args)

    def one_command():
        for key, args in command_seq:
            device.handle_io(key, args)

    benchmark(one_command)
