#!/usr/bin/env python
"""Run the micro-benchmark suite and record per-benchmark medians.

Writes ``BENCH_micro.json`` (repo root by default): the median/mean/
stddev of every benchmark in ``benchmarks/bench_micro.py`` — each row
tagged with its execution backend — plus the compiled-over-reference
and bytecode-over-compiled speedups for each backend-parametrized
group.  This file is the perf trajectory — regenerate it whenever the
hot paths change and commit the result alongside the change.

Full (non ``--quick``) runs force warm-up on, floor the round count at
``MIN_ROUNDS``, and disable GC during the timed rounds: the
serialization-roundtrip bench in particular is collector-noise
dominated otherwise (stddev several times its median), and the
combination is what makes its stddev trustworthy run-to-run.

Also drives ``python -m repro bench-fleet`` to produce
``BENCH_fleet.json`` — the fleet service's worker-scaling and
security-isolation numbers — unless ``--no-fleet`` is given, and
``python -m repro bench-telemetry`` to produce ``BENCH_telemetry.json``
— the telemetry-off vs telemetry-on overhead of the enforcement
pipeline on the compiled backend — unless ``--no-telemetry`` is given.

Usage::

    python benchmarks/run_bench.py [--out BENCH_micro.json]
                                   [--fleet-out BENCH_fleet.json]
                                   [--telemetry-out BENCH_telemetry.json]
                                   [--quick] [--no-fleet] [--no-telemetry]

``--quick`` caps calibration for CI smoke runs (one round per bench,
smaller fleet workload); the numbers are noisy but the ratios still
have to clear sanity floors.
"""

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)

#: Round floor for full runs.  pytest-benchmark's default calibration
#: settles on five rounds for the fast benches, which leaves their
#: stddev hostage to a single GC pause; twenty rounds with warm-up
#: keeps run-to-run stddev of the serialization roundtrip inside a few
#: percent of its median.
MIN_ROUNDS = 20
WARMUP_ITERATIONS = 3


def run_suite(quick: bool) -> dict:
    """Run bench_micro.py under pytest-benchmark, return its raw JSON."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        raw_path = tmp.name
    cmd = [
        sys.executable, "-m", "pytest",
        os.path.join(HERE, "bench_micro.py"),
        "--benchmark-only", "-q", "-p", "no:cacheprovider",
        f"--benchmark-json={raw_path}",
    ]
    if quick:
        cmd += ["--benchmark-disable-gc", "--benchmark-warmup=off",
                "--benchmark-min-rounds=1"]
    else:
        # GC stays off during timed rounds in full runs too: the
        # serialization roundtrip allocates enough that collection
        # pauses inside a round inflate its stddev ~13x (6.2ms on a
        # 1.7ms median) while shifting the median barely at all.
        cmd += ["--benchmark-disable-gc", "--benchmark-warmup=on",
                f"--benchmark-warmup-iterations={WARMUP_ITERATIONS}",
                f"--benchmark-min-rounds={MIN_ROUNDS}"]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(ROOT, "src"),
                    env.get("PYTHONPATH", "")) if p)
    try:
        proc = subprocess.run(cmd, cwd=ROOT, env=env)
        if proc.returncode != 0:
            raise SystemExit(f"benchmark run failed (rc={proc.returncode})")
        with open(raw_path) as handle:
            return json.load(handle)
    finally:
        os.unlink(raw_path)


def run_fleet(out_path: str, quick: bool) -> None:
    """Run the fleet benchmark CLI; it writes *out_path* itself."""
    cmd = [sys.executable, "-m", "repro", "bench-fleet",
           "--out", out_path]
    if quick:
        cmd.append("--quick")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(ROOT, "src"),
                    env.get("PYTHONPATH", "")) if p)
    proc = subprocess.run(cmd, cwd=ROOT, env=env)
    if proc.returncode != 0:
        raise SystemExit(
            f"fleet benchmark failed (rc={proc.returncode})")


def run_telemetry(out_path: str, quick: bool) -> None:
    """Run the telemetry overhead CLI; it writes *out_path* itself."""
    cmd = [sys.executable, "-m", "repro", "bench-telemetry",
           "--out", out_path, "--max-overhead-pct", "5"]
    if quick:
        cmd.append("--quick")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(ROOT, "src"),
                    env.get("PYTHONPATH", "")) if p)
    proc = subprocess.run(cmd, cwd=ROOT, env=env)
    if proc.returncode != 0:
        raise SystemExit(
            f"telemetry benchmark failed (rc={proc.returncode})")


def _backend_of(name: str) -> str:
    """The execution backend a parametrized bench ran on ('-' if the
    bench is backend-independent)."""
    if name.endswith("]") and "[" in name:
        return name[name.index("[") + 1:-1]
    return "-"


def summarize(raw: dict) -> dict:
    """Per-benchmark medians plus backend speedup ratios."""
    benches = {}
    for entry in raw["benchmarks"]:
        stats = entry["stats"]
        benches[entry["name"]] = {
            "backend": _backend_of(entry["name"]),
            "median_s": stats["median"],
            "mean_s": stats["mean"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }

    def ratios(numerator: str, denominator: str) -> dict:
        out = {}
        for name, stats in benches.items():
            if not name.endswith(f"[{denominator}]"):
                continue
            group = name[:-len(f"[{denominator}]")]
            other = benches.get(f"{group}[{numerator}]")
            if other:
                out[group] = round(
                    other["median_s"] / stats["median_s"], 2)
        return out

    # Batched checking vs the per-round bytecode loop on the same
    # 22-round command: how much the cross-round entry amortizes.
    per_round = benches.get("bench_checker_per_round[bytecode]")
    batched_speedups = {}
    if per_round:
        for name, stats in benches.items():
            if name.startswith("bench_checker_batched["):
                size = name[len("bench_checker_batched["):-1]
                batched_speedups[size] = round(
                    per_round["median_s"] / stats["median_s"], 2)

    return {
        "generated": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "unit": "seconds",
        "benchmarks": benches,
        "speedups_compiled_over_reference": ratios("reference",
                                                   "compiled"),
        "speedups_bytecode_over_compiled": ratios("compiled",
                                                  "bytecode"),
        "speedups_batched_over_per_round": batched_speedups,
    }


def print_table(summary: dict) -> None:
    """Per-benchmark medians with an explicit backend column."""
    rows = [("benchmark", "backend", "median", "stddev", "rounds")]
    for name, stats in sorted(summary["benchmarks"].items()):
        base = name.split("[")[0]
        rows.append((base, stats["backend"],
                     f"{stats['median_s'] * 1e3:.3f}ms",
                     f"{stats['stddev_s'] * 1e3:.3f}ms",
                     str(stats["rounds"])))
    widths = [max(len(row[col]) for row in rows)
              for col in range(len(rows[0]))]
    for row in rows:
        print("  ".join(cell.ljust(width)
                        for cell, width in zip(row, widths)).rstrip())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=os.path.join(ROOT,
                                                      "BENCH_micro.json"))
    parser.add_argument("--fleet-out",
                        default=os.path.join(ROOT, "BENCH_fleet.json"))
    parser.add_argument("--telemetry-out",
                        default=os.path.join(ROOT,
                                             "BENCH_telemetry.json"))
    parser.add_argument("--quick", action="store_true",
                        help="one round per bench (CI smoke)")
    parser.add_argument("--no-fleet", action="store_true",
                        help="skip the fleet scaling benchmark")
    parser.add_argument("--no-telemetry", action="store_true",
                        help="skip the telemetry overhead benchmark")
    args = parser.parse_args()
    summary = summarize(run_suite(quick=args.quick))
    with open(args.out, "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print_table(summary)
    for group, ratio in sorted(
            summary["speedups_compiled_over_reference"].items()):
        print(f"{group}: compiled is {ratio}x faster than reference")
    for group, ratio in sorted(
            summary["speedups_bytecode_over_compiled"].items()):
        print(f"{group}: bytecode is {ratio}x faster than compiled")
    for size, ratio in sorted(
            summary["speedups_batched_over_per_round"].items(),
            key=lambda kv: int(kv[0])):
        print(f"check_batch[{size}]: {ratio}x faster than per-round "
              f"bytecode")
    print(f"wrote {args.out}")
    if not args.no_fleet:
        run_fleet(args.fleet_out, quick=args.quick)
    if not args.no_telemetry:
        run_telemetry(args.telemetry_out, quick=args.quick)


if __name__ == "__main__":
    main()
