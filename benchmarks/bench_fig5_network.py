"""Figure 5 — PCNet bandwidth (TCP/UDP x up/down) and ping latency.

Paper claims reproduced: bandwidth overhead under 8% on all four bars,
ping latency increase under 10%.
"""

from conftest import spec_for

from repro.eval import generate_network_figure


def bench_fig5_pcnet_network(benchmark):
    spec = spec_for("pcnet")
    fig5 = benchmark.pedantic(
        generate_network_figure,
        kwargs=dict(spec=spec, frames=24, ping_count=20),
        rounds=1, iterations=1)
    print("\n" + fig5.render())
    assert fig5.max_bandwidth_overhead() < 8.0
    assert fig5.ping_overhead_percent < 10.0
    assert set(fig5.bandwidth_overhead) == {
        ("tcp", "up"), ("tcp", "down"), ("udp", "up"), ("udp", "down")}
    # Every bar shows a real (positive) cost — SEDSpec is not free.
    assert all(v > 0 for v in fig5.bandwidth_overhead.values())
