"""Figure 3 — normalized storage throughput (read/write) per record size.

Paper claim reproduced: SEDSpec costs the storage devices less than 5%
throughput at every record size (FDC swept only below its media limit).
"""

from conftest import spec_for

from repro.eval import generate_storage_figures
from repro.eval.figures import STORAGE_DEVICES


def bench_fig3_storage_throughput(benchmark):
    specs = {name: spec_for(name) for name in STORAGE_DEVICES}
    fig3, _ = benchmark.pedantic(
        generate_storage_figures,
        kwargs=dict(specs=specs, record_sizes=(512, 1024, 2048, 4096),
                    records_per_size=2),
        rounds=1, iterations=1)
    print("\n" + fig3.render())
    print(f"max throughput loss: {fig3.max_overhead_percent():.2f}%")
    assert fig3.max_overhead_percent() < 5.0
    for device, sizes in fig3.series.items():
        for size, (write_n, read_n) in sizes.items():
            assert 0.9 < write_n <= 1.0001, (device, size)
            assert 0.9 < read_n <= 1.0001, (device, size)
