"""Table I — device-state parameter selection, regenerated per device.

Benchmarks the CFG-analyzer selection pass and prints the table.
"""

import pytest

from repro.analysis import select_parameters
from repro.devices import create_device
from repro.eval import generate_table1

EXPECTED = {
    "fdc": {"registers": {"msr", "dor", "tdr"},
            "buffers": {"fifo"},
            "counters": {"data_pos", "data_len"},
            "funcptrs": {"irq"}},
    "ehci": {"buffers": {"data_buf", "setup_buf"},
             "counters": {"setup_len", "setup_index"},
             "funcptrs": {"irq"}},
    "pcnet": {"registers": {"csr0", "rap"},
              "buffers": {"buffer"},
              "counters": {"xmit_pos"},
              "funcptrs": {"irq"}},
    "sdhci": {"registers": {"blksize", "blkcnt"},
              "buffers": {"fifo_buffer"},
              "counters": {"data_count"}},
    "scsi": {"buffers": {"cmdbuf", "cdb", "fifo"},
             "counters": {"fifo_pos", "data_pos"}},
}


@pytest.mark.parametrize("device_name", sorted(EXPECTED))
def bench_selection(benchmark, device_name):
    device = create_device(device_name)
    selection = benchmark(select_parameters, device.program)
    want = EXPECTED[device_name]
    assert want.get("registers", set()) <= selection.registers
    assert want.get("buffers", set()) <= selection.buffers
    assert want.get("counters", set()) <= selection.counters
    assert want.get("funcptrs", set()) <= selection.funcptrs


def bench_table1_rendering(benchmark):
    table = benchmark(generate_table1)
    print("\n" + table.render())
    assert len(table.rows()) == 20
