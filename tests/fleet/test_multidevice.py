"""Multi-device tenants through the fleet and gateway: one guest VM with
several guarded devices, per-device specs, one shared quarantine verdict.

The corpus supplies the attacks (``SYN:`` ids regenerate deterministically
inside pool workers), so these tests also pin the cross-process story:
a composite tenant's batches carry the composite name, the registry stays
strictly per-device, and a detection on one part fences the whole tenant.
"""

import pytest

from repro.fleet import (
    FleetConfig, FleetSupervisor, OpRequest, SpecRegistry, build_load,
    plan_tenants,
)
from repro.gateway import ArrivalSpec, Gateway, GatewayConfig

PAIR = "virtio-net+virtio-blk"
BLK_ATTACK = "SYN:virtio-blk:oob-write:s11:v0"

STAT_FIELDS = (
    "workers", "requests", "completed", "rejected", "faults", "lost",
    "detections", "quarantined_instances", "duplicate_results",
    "trace_gaps", "infra_failures", "shed", "circuit_opens",
    "watchdog_kills", "spec_reloads", "io_rounds", "total_cycles",
    "makespan_cycles", "latency_samples", "p50_request_cycles",
    "p95_request_cycles", "p99_request_cycles",
)


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    """Disk-backed so the virtio pair trains once per (part, version)
    and pool workers share the artifacts."""
    cache = tmp_path_factory.mktemp("multidev-spec-cache")
    return SpecRegistry(cache_dir=str(cache))


def supervisor(registry, inline=True, workers=2):
    return FleetSupervisor(
        FleetConfig(workers=workers, inline=inline,
                    cache_dir=registry.cache_dir), registry)


class TestGuardedInstance:
    def test_composite_tenant_guards_every_part(self, registry):
        from repro.fleet.instance import GuardedInstance

        specs = {part: registry.get(part, "99.0.0")
                 for part in ("virtio-net", "virtio-blk")}
        inst = GuardedInstance("t0", PAIR, "99.0.0", specs)
        assert set(inst.attachments) == {"virtio-net", "virtio-blk"}
        assert set(inst.vm.devices) == {"virtio-net", "virtio-blk"}
        for index in range(4):
            outcome = inst.apply(OpRequest("common", index=index,
                                           seed=index))
            assert outcome.status == "ok", outcome.detail
        assert not inst.quarantined

    def test_attack_on_one_part_fences_the_whole_tenant(self, registry):
        from repro.fleet.instance import GuardedInstance

        specs = {part: registry.get(part, "7.0.0")
                 for part in ("virtio-net", "virtio-blk")}
        inst = GuardedInstance("t0", PAIR, "7.0.0", specs)
        # Benign traffic against both parts first.
        assert inst.apply(OpRequest("common", index=0, seed=1)).status \
            == "ok"
        outcome = inst.apply(OpRequest("exploit", cve=BLK_ATTACK))
        assert outcome.status == "detected"
        assert outcome.quarantined
        assert inst.quarantined
        # The net part never misbehaved, but the tenant shares one
        # verdict — its next op is rejected, exactly as terminating the
        # QEMU process would reject it.
        after = inst.apply(OpRequest("common", index=0, seed=2))
        assert after.status == "rejected"


class TestFleetQuarantine:
    def test_exact_tenant_quarantine_in_composite_fleet(self, registry):
        plans, schedule = build_load(
            [PAIR], 3, 3, 2, inject_cves=[BLK_ATTACK], seed=7)
        result = supervisor(registry).run(schedule, plans)
        attacked = result.attacked_tenants()
        assert len(attacked) == 1
        assert result.quarantined_tenants() == attacked
        assert result.stats.detections >= 1
        assert result.stats.lost == 0
        # Only one of the tenant's two devices was attacked; the shared
        # verdict still fenced the tenant and nobody else.
        for tenant, summary in result.tenants.items():
            if tenant in attacked:
                assert summary.rejected > 0
                assert summary.completed + summary.rejected \
                    == summary.submitted
            else:
                assert summary.completed == summary.submitted
                assert summary.rejected == 0

    def test_mixed_fleet_serves_legacy_and_composite_tenants(
            self, registry):
        plans, schedule = build_load([PAIR, "fdc"], 4, 2, 2, seed=5)
        result = supervisor(registry).run(schedule, plans)
        stats = result.stats
        assert stats.requests == stats.completed == 16
        assert stats.detections == stats.quarantined_instances == 0
        assert stats.lost == 0

    @pytest.mark.parametrize("inline", [True, False],
                             ids=["inline", "pool"])
    def test_session_parity_with_composite_tenants(self, registry,
                                                   inline):
        """The streaming facade and run() must agree stat-for-stat on a
        composite load — in pool mode this also proves SYN PoC ids
        regenerate identically inside worker processes."""
        plans, schedule = build_load(
            [PAIR], 2, 2, 2, inject_cves=[BLK_ATTACK], seed=9)
        batch = supervisor(registry, inline).run(schedule, plans)
        session = supervisor(registry, inline).session()
        for b in schedule:
            session.submit(b)
        streamed = session.close(plans)
        for f in STAT_FIELDS:
            assert getattr(streamed.stats, f) \
                == getattr(batch.stats, f), f
        assert streamed.tenants == batch.tenants
        assert batch.quarantined_tenants() == batch.attacked_tenants()


class TestGatewayMultiDevice:
    def gw_config(self, registry, **overrides):
        base = dict(
            shards=2, workers_per_shard=2, seed=3, inline=True,
            cache_dir=registry.cache_dir,
            arrival=ArrivalSpec(pattern="poisson", rate_per_sec=400.0,
                                horizon_s=0.01))
        base.update(overrides)
        return GatewayConfig(**base)

    def test_conservation_over_composite_tenants(self, registry):
        plans = plan_tenants([PAIR], 6)
        result = Gateway(self.gw_config(registry),
                         registry=registry).run(plans)
        assert result.safety_failures() == []
        s = result.stats
        assert s.offered > 0
        assert s.offered == s.admitted + s.quota_rejected + s.queue_shed
        assert result.fleet.requests == s.dispatched_ops
        assert result.fleet.lost == 0

    def test_admitted_attack_quarantines_only_its_tenant(self, registry):
        plans = plan_tenants([PAIR], 4, inject_cves=[BLK_ATTACK])
        result = Gateway(self.gw_config(registry),
                         registry=registry).run(plans)
        assert result.safety_failures() == []
        if result.fleet.detections:
            assert result.quarantined_tenants() == result.attacked_tenants()
