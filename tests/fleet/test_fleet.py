"""Fleet service: load generation, supervisor semantics, fault
tolerance, quarantine isolation, and throughput scaling."""

import queue

import pytest

from repro.checker import Action
from repro.errors import WorkloadError
from repro.fleet import (
    BatchResult, FleetConfig, FleetSupervisor, OpRequest, RequestBatch,
    SpecRegistry, batch_wants_crash, build_load, make_schedule,
    percentile, plan_tenants, tombstone_crashes,
)
from repro.fleet.supervisor import _WorkerHandle


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    """One disk-backed registry for the whole module: fdc specs train
    once and every supervisor (and worker process) shares them."""
    cache = tmp_path_factory.mktemp("spec-cache")
    return SpecRegistry(cache_dir=str(cache))


def fdc_supervisor(registry, workers=2, inline=True, **kwargs):
    config = FleetConfig(workers=workers, inline=inline,
                         cache_dir=registry.cache_dir, **kwargs)
    return FleetSupervisor(config, registry)


class TestLoadGen:
    def test_plan_round_robins_devices(self):
        plans = plan_tenants(["fdc", "sdhci"], 4)
        assert [p.device for p in plans] == ["fdc", "sdhci",
                                             "fdc", "sdhci"]
        assert not any(p.attacked for p in plans)

    def test_injected_cve_sets_vulnerable_version(self):
        plans = plan_tenants(["fdc", "sdhci"], 4,
                             inject_cves=["CVE-2015-3456"])
        attacked = [p for p in plans if p.attacked]
        assert len(attacked) == 1
        assert attacked[0].device == "fdc"
        assert attacked[0].qemu_version == "2.3.0"

    def test_inject_fraction_attacks_that_many_tenants(self):
        plans = plan_tenants(["fdc", "sdhci", "scsi"], 6,
                             inject_fraction=0.5, seed=3)
        assert sum(p.attacked for p in plans) == 3

    def test_injection_needs_a_matching_device(self):
        with pytest.raises(WorkloadError):
            plan_tenants(["fdc"], 2, inject_cves=["CVE-2021-3409"])

    def test_schedule_interleaves_and_splices_exploit(self):
        plans = plan_tenants(["fdc"], 2, inject_cves=["CVE-2015-3456"])
        schedule = make_schedule(plans, batches_per_tenant=4,
                                 ops_per_batch=3)
        assert len(schedule) == 8
        assert [b.seq for b in schedule] == list(range(8))
        exploit_ops = [op for b in schedule for op in b.ops
                       if op.kind == "exploit"]
        assert len(exploit_ops) == 1
        assert exploit_ops[0].cve == "CVE-2015-3456"

    def test_tombstoning_neutralizes_crash_ops(self):
        batch = RequestBatch("t", "fdc", "99.0.0", 0,
                             (OpRequest("crash"), OpRequest("common")))
        assert batch_wants_crash(batch)
        dead = tombstone_crashes(batch)
        assert not batch_wants_crash(dead)
        assert dead.ops[1].kind == "common"

    def test_percentile_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.95) == 95
        assert percentile([], 0.95) == 0.0


class TestSupervisorInline:
    def test_benign_fleet_serves_everything(self, registry):
        plans, schedule = build_load(["fdc"], 2, 3, 3, seed=11)
        result = fdc_supervisor(registry).run(schedule, plans)
        stats = result.stats
        assert stats.requests == 18
        assert stats.completed == 18
        assert stats.rejected == stats.lost == stats.faults == 0
        assert stats.detections == stats.quarantined_instances == 0
        assert stats.io_rounds > 0
        assert stats.makespan_cycles > 0
        assert stats.p95_request_cycles >= stats.p50_request_cycles > 0

    def test_detection_quarantines_only_the_attacked_tenant(
            self, registry):
        plans, schedule = build_load(
            ["fdc"], 3, 4, 3, inject_cves=["CVE-2015-3456"], seed=11)
        result = fdc_supervisor(registry).run(schedule, plans)
        attacked = result.attacked_tenants()
        assert result.quarantined_tenants() == attacked
        assert result.stats.detections >= 1
        assert result.stats.lost == 0
        # The CheckReport of the halt is on record, tagged by tenant.
        tenants = {t for t, _ in result.reports}
        assert tenants == set(attacked)
        assert any(r.action is Action.HALT and r.anomalies
                   for _, r in result.reports)
        # Benign tenants were fully served despite the quarantine.
        for summary in result.tenants.values():
            if not summary.attacked:
                assert summary.completed == summary.submitted
                assert summary.rejected == 0
        # The attacked tenant's post-attack requests were rejected, not
        # lost.
        victim = result.tenants[attacked[0]]
        assert victim.rejected > 0
        assert (victim.completed + victim.rejected == victim.submitted)

    def test_worker_crash_respawns_and_loses_nothing(self, registry):
        plans, schedule = build_load(["fdc"], 2, 3, 2, seed=4)
        crash_at = next(i for i, b in enumerate(schedule) if b.seq == 2)
        batch = schedule[crash_at]
        schedule[crash_at] = RequestBatch(
            batch.tenant, batch.device, batch.qemu_version, batch.seq,
            (OpRequest("crash"),) + batch.ops[1:])
        result = fdc_supervisor(registry).run(schedule, plans)
        assert result.stats.worker_respawns == 1
        assert result.stats.lost == 0
        assert result.stats.completed == result.stats.requests
        assert result.quarantined_tenants() == []

    def test_respawn_budget_bounds_crash_retries(self, registry):
        plans, schedule = build_load(["fdc"], 1, 2, 2, seed=4)
        batch = schedule[0]
        schedule[0] = RequestBatch(
            batch.tenant, batch.device, batch.qemu_version, batch.seq,
            (OpRequest("crash"),) + batch.ops[1:])
        supervisor = fdc_supervisor(registry, max_worker_respawns=0)
        result = supervisor.run(schedule, plans)
        assert result.stats.worker_respawns == 0
        assert result.stats.lost == result.stats.requests
        assert result.stats.completed == 0

    def test_more_workers_shrink_the_simulated_makespan(self, registry):
        plans, schedule = build_load(["fdc"], 4, 2, 3, seed=9)
        one = fdc_supervisor(registry, workers=1).run(list(schedule),
                                                      plans)
        four = fdc_supervisor(registry, workers=4).run(list(schedule),
                                                       plans)
        assert one.stats.io_rounds == four.stats.io_rounds
        assert four.stats.makespan_cycles < one.stats.makespan_cycles
        assert four.stats.rounds_per_sec > one.stats.rounds_per_sec
        assert len(four.worker_busy_cycles) == 4


class TestResultDedup:
    """Regression tests for the requeue race: a dying worker's result can
    still be buffered in the shared outbox when its batch is requeued,
    so the respawned worker produces a second result for the same seq.
    Before the ``done``-set fix the supervisor counted both, inflating
    latency samples and completion counts."""

    def _result(self, seq, worker_id, cycles=100):
        return BatchResult("t0", "fdc", seq, worker_id, submitted=3,
                           completed=3, cycles=cycles, io_rounds=9,
                           op_cycles=(cycles, cycles, cycles))

    def test_late_duplicate_result_is_dropped_first_wins(self, registry):
        supervisor = fdc_supervisor(registry, inline=False)
        outbox = queue.Queue()
        handles = {0: _WorkerHandle(0), 1: _WorkerHandle(1)}
        # Worker 0 served seq 5 but died before the supervisor saw it;
        # the batch was requeued to worker 1, which served it again.
        outbox.put(("result", 0, self._result(5, 0, cycles=100)))
        outbox.put(("result", 1, self._result(5, 1, cycles=999)))
        results, done = [], set()
        supervisor._collect(outbox, handles, results, done,
                            timeout=0.01)
        assert [r.seq for r in results] == [5]
        assert results[0].worker_id == 0  # first result wins
        assert done == {5}
        assert supervisor._duplicates == 1

    def test_duplicate_drop_still_clears_outstanding(self, registry):
        supervisor = fdc_supervisor(registry, inline=False)
        outbox = queue.Queue()
        handle = _WorkerHandle(1)
        batch = RequestBatch("t0", "fdc", "99.0.0", 5,
                             (OpRequest("common"),))
        handle.outstanding[5] = batch
        outbox.put(("result", 1, self._result(5, 1)))
        results, done = [], {5}   # seq already counted earlier
        supervisor._collect(outbox, handles={1: handle}, results=results,
                            done=done, timeout=0.01)
        # The duplicate is dropped from the stats but still acknowledges
        # the outstanding batch, or _reap would requeue it a third time.
        assert results == []
        assert handle.outstanding == {}
        assert supervisor._duplicates == 1

    def test_benign_run_counts_each_latency_sample_once(self, registry):
        plans, schedule = build_load(["fdc"], 2, 3, 3, seed=11)
        result = fdc_supervisor(registry).run(schedule, plans)
        stats = result.stats
        assert stats.duplicate_results == 0
        assert stats.latency_samples == stats.completed == 18

    def test_crash_requeue_latency_counted_once(self, registry):
        """After a worker crash and requeue, every completed request must
        feed the latency percentiles exactly once — not dropped with the
        dead worker, not double-counted by the respawn."""
        plans, schedule = build_load(["fdc"], 2, 3, 2, seed=4)
        crash_at = next(i for i, b in enumerate(schedule) if b.seq == 2)
        batch = schedule[crash_at]
        schedule[crash_at] = RequestBatch(
            batch.tenant, batch.device, batch.qemu_version, batch.seq,
            (OpRequest("crash"),) + batch.ops[1:])
        result = fdc_supervisor(registry).run(schedule, plans)
        stats = result.stats
        assert stats.worker_respawns == 1
        assert stats.latency_samples == stats.completed == stats.requests
        assert stats.duplicate_results == 0

    def test_dedup_also_protects_telemetry(self, registry):
        """Telemetry records results post-dedup in _aggregate, so the
        recorder's per-tenant counters and latency histograms must agree
        with the deduplicated FleetStats."""
        from repro.telemetry import Recorder

        recorder = Recorder("fleet")
        plans, schedule = build_load(["fdc"], 2, 3, 2, seed=4)
        config = FleetConfig(workers=2, inline=True,
                             cache_dir=registry.cache_dir)
        supervisor = FleetSupervisor(config, registry, recorder=recorder)
        result = supervisor.run(schedule, plans)
        snap = recorder.snapshot()
        by_outcome = snap.label_values("fleet.requests", "outcome")
        assert by_outcome.get("completed", 0) == result.stats.completed
        sampled = sum(h.count for (name, _), h in snap.histograms.items()
                      if name == "fleet.request_cycles")
        assert sampled == result.stats.latency_samples
        assert snap.counter("fleet.duplicate_results") == \
            result.stats.duplicate_results == 0


class TestSupervisorPool:
    """The real multiprocessing pool, kept small: spec loads come from
    the module registry's disk cache, so workers never retrain."""

    def test_pool_drains_and_respawns_after_crash(self, registry):
        plans, schedule = build_load(["fdc"], 2, 2, 2, seed=4)
        batch = schedule[-1]
        schedule[-1] = RequestBatch(
            batch.tenant, batch.device, batch.qemu_version, batch.seq,
            (OpRequest("crash"),) + batch.ops[1:])
        supervisor = fdc_supervisor(registry, inline=False)
        result = supervisor.run(schedule, plans)
        assert result.stats.lost == 0
        assert result.stats.completed == result.stats.requests
        assert result.stats.worker_respawns == 1

    def test_pool_detects_and_quarantines(self, registry):
        plans, schedule = build_load(
            ["fdc"], 2, 2, 2, inject_cves=["CVE-2015-3456"], seed=6)
        supervisor = fdc_supervisor(registry, inline=False)
        result = supervisor.run(schedule, plans)
        assert result.stats.lost == 0
        assert result.stats.detections >= 1
        assert result.quarantined_tenants() == result.attacked_tenants()
        assert any(r.anomalies for _, r in result.reports)
