"""Checkpoint/restore: ``restore(checkpoint(x))`` is verdict-identical.

For every device profile (the composite included), an instance serves a
benign prefix, is checkpointed mid-stream, and the restored twin must
produce byte-identical outcomes — status, report content, cycle
accounting — on the same continuation stream.  The envelope itself must
survive a JSON wire hop and reject any tampering before touching state.
"""

import json
import random

import pytest

from repro.checker import Mode
from repro.errors import FleetError
from repro.fleet import (
    CHECKPOINT_FORMAT, SpecRegistry, checkpoint_instance,
    envelope_bytes, restore_instance, verify,
)
from repro.fleet.instance import GuardedInstance
from repro.fleet.loadgen import OpRequest, sample_benign_op
from repro.fleet.migration import report_obj
from repro.policy.model import canonical_json

DEVICES = ("fdc", "sdhci", "scsi", "ehci", "pcnet", "virtio-net",
           "virtio-blk", "virtio-net+virtio-blk")


@pytest.fixture(scope="module")
def registry():
    return SpecRegistry(cache_dir=None)


def _spec_for(registry, device, qemu_version="99.0.0"):
    parts = device.split("+")
    if len(parts) > 1:
        return {part: registry.get(part, qemu_version)
                for part in parts}
    return registry.get(device, qemu_version)


def _outcome_obj(outcome):
    return {
        "status": outcome.status,
        "cycles": outcome.cycles,
        "io_rounds": outcome.io_rounds,
        "quarantined": outcome.quarantined,
        "report": (report_obj(outcome.report)
                   if outcome.report is not None else None),
    }


def _instance(registry, device, qemu_version="99.0.0"):
    return GuardedInstance("t0", device, qemu_version,
                           _spec_for(registry, device, qemu_version),
                           mode=Mode.PROTECTION, backend="compiled")


class TestRoundTrip:
    @pytest.mark.parametrize("device", DEVICES)
    def test_restored_verdicts_identical(self, registry, device):
        original = _instance(registry, device)
        rng = random.Random(31)
        for op in (sample_benign_op(device, rng) for _ in range(6)):
            original.apply(op)
        envelope = checkpoint_instance(original)
        # The wire hop a live migration performs: canonical JSON text.
        wire = json.loads(canonical_json(envelope))
        assert envelope_bytes(envelope) == len(
            canonical_json(wire).encode())
        restored = restore_instance(wire, _spec_for(registry, device))

        tail_rng = random.Random(77)
        tail = [sample_benign_op(device, tail_rng) for _ in range(6)]
        for op in tail:
            a, b = original.apply(op), restored.apply(op)
            assert _outcome_obj(a) == _outcome_obj(b)
        assert original._op_serial == restored._op_serial

    def test_detection_identical_after_restore(self, registry):
        # The PoC fires on the *restored* instance: the shadow checker
        # state crossed the checkpoint, so the verdict must not change.
        qemu = "2.3.0"      # Venom-vulnerable build
        original = _instance(registry, "fdc", qemu)
        rng = random.Random(5)
        for op in (sample_benign_op("fdc", rng) for _ in range(4)):
            original.apply(op)
        restored = restore_instance(
            checkpoint_instance(original),
            _spec_for(registry, "fdc", qemu))
        poc = OpRequest("exploit", 0, 9, cve="CVE-2015-3456")
        a, b = original.apply(poc), restored.apply(poc)
        assert a.status == b.status == "detected"
        assert _outcome_obj(a) == _outcome_obj(b)
        assert original.quarantined and restored.quarantined

    def test_quarantine_state_survives(self, registry):
        original = _instance(registry, "fdc", "2.3.0")
        original.apply(OpRequest("exploit", 0, 9, cve="CVE-2015-3456"))
        assert original.quarantined
        restored = restore_instance(
            checkpoint_instance(original),
            _spec_for(registry, "fdc", "2.3.0"))
        assert restored.quarantined
        assert restored.quarantine_reason == original.quarantine_reason
        assert restored.apply(
            sample_benign_op("fdc", random.Random(1))).status \
            == "rejected"


class TestEnvelope:
    def test_envelope_is_sealed_and_versioned(self, registry):
        envelope = checkpoint_instance(_instance(registry, "fdc"))
        assert envelope["format"] == CHECKPOINT_FORMAT
        verify(envelope)    # must not raise

    @pytest.mark.parametrize("mutate", [
        lambda env: env.update(op_serial=env["op_serial"] + 1),
        lambda env: env.pop("checkers"),
        lambda env: env.update(digest="0" * 64),
        lambda env: env["vm"]["memory"].update(dma_reads=999),
    ])
    def test_tampered_envelope_rejected(self, registry, mutate):
        instance = _instance(registry, "fdc")
        instance.apply(sample_benign_op("fdc", random.Random(2)))
        envelope = checkpoint_instance(instance)
        mutate(envelope)
        with pytest.raises(FleetError):
            restore_instance(envelope, _spec_for(registry, "fdc"))

    def test_wrong_format_rejected(self, registry):
        envelope = checkpoint_instance(_instance(registry, "fdc"))
        envelope["format"] = CHECKPOINT_FORMAT + 1
        with pytest.raises(FleetError):
            verify(envelope)

    def test_non_object_rejected(self):
        with pytest.raises(FleetError):
            verify("not an envelope")

    def test_unknown_device_part_rejected(self, registry):
        envelope = checkpoint_instance(_instance(registry, "fdc"))
        envelope["devices"]["ghost"] = envelope["devices"]["fdc"]
        from repro.fleet.checkpoint import seal
        seal(envelope)      # re-seal: digest is valid, content is not
        with pytest.raises(FleetError):
            restore_instance(envelope, _spec_for(registry, "fdc"))
