"""Fleet robustness under injected faults: watchdog, deterministic
backoff, enqueue-timestamp preservation, the per-tenant circuit breaker,
and inline-vs-pool determinism under a shared FaultPlan."""

import queue
from collections import deque

import pytest

from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.fleet import (
    FleetConfig, FleetSupervisor, FleetWorker, OpRequest, RequestBatch,
    SpecRegistry, batch_wants_crash, batch_wants_hang, build_load,
    inject_schedule_faults, requeue_batch,
)
from repro.fleet.supervisor import _WorkerHandle


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    cache = tmp_path_factory.mktemp("spec-cache")
    return SpecRegistry(cache_dir=str(cache))


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class DeadProcess:
    def is_alive(self):
        return False


class HungProcess:
    def __init__(self):
        self.terminated = False

    def is_alive(self):
        return not self.terminated

    def terminate(self):
        self.terminated = True


def crash_batch(seq, tenant="t0"):
    return RequestBatch(tenant, "fdc", "99.0.0", seq,
                        (OpRequest("crash"), OpRequest("common", 1, 1)))


def benign_batch(seq, tenant="t0"):
    return RequestBatch(tenant, "fdc", "99.0.0", seq,
                        (OpRequest("common", 0, 0),))


class TestRequeue:
    def test_requeue_tombstones_and_records_the_strike(self):
        batch = crash_batch(3)
        requeued = requeue_batch(batch)
        assert not batch_wants_crash(requeued)
        assert requeued.infra_strikes == 1
        assert requeue_batch(requeued).infra_strikes == 2
        # The benign op rides along untouched.
        assert requeued.ops[1] == batch.ops[1]

    def test_hang_ops_are_tombstoned_too(self):
        batch = RequestBatch("t0", "fdc", "99.0.0", 0,
                             (OpRequest("hang"),))
        assert batch_wants_hang(batch)
        assert not batch_wants_hang(requeue_batch(batch))


class TestReapBackoff:
    """Regression for the dead-worker path: deterministic exponential
    backoff, original enqueue timestamps kept, and only the batch the
    worker died on tombstoned."""

    def make(self, registry, **kwargs):
        sup = FleetSupervisor(
            FleetConfig(workers=1, cache_dir=registry.cache_dir,
                        backoff_base=0.05, backoff_cap=1.0,
                        max_worker_respawns=2, **kwargs),
            registry)
        sup._clock = FakeClock()
        return sup

    def reap(self, sup, handle, pending):
        return sup._reap(None, queue.Queue(), {0: handle}, pending,
                         [], set())

    def test_death_schedules_a_backoff_not_an_instant_spawn(
            self, registry):
        sup = self.make(registry)
        handle = _WorkerHandle(0)
        handle.process = DeadProcess()
        first = crash_batch(3)
        later = crash_batch(5, tenant="t1")
        handle.outstanding = {3: first, 5: later}
        handle.dispatched_at = {3: 90.0, 5: 91.0}
        sup._enqueue_ts = {3: 90.0, 5: 91.0}
        pending = {0: deque([benign_batch(7)])}

        respawned, lost = self.reap(sup, handle, pending)

        assert (respawned, lost) == (1, 0)
        assert handle.respawns == 1
        # Jitter-free exponential backoff: base * 2**(respawns-1).
        assert handle.respawn_at == sup._clock.now + 0.05
        assert not handle.outstanding and not handle.dispatched_at
        # Requeued in seq order, ahead of the untouched pending batch.
        queued = list(pending[0])
        assert [b.seq for b in queued] == [3, 5, 7]
        # Only the batch the worker died on (lowest live-fault seq) is
        # tombstoned; the later one must keep its fault op live so the
        # inline path sees the identical fault sequence.
        assert not batch_wants_crash(queued[0])
        assert queued[0].infra_strikes == 1
        assert batch_wants_crash(queued[1])
        assert queued[1].infra_strikes == 0
        # Original enqueue timestamps survive the requeue: the respawn
        # delay shows up as queue latency instead of resetting it.
        assert sup._enqueue_ts == {3: 90.0, 5: 91.0}

    def test_backoff_doubles_and_dispatch_waits_for_revival(
            self, registry):
        sup = self.make(registry)
        handle = _WorkerHandle(0)
        handle.process = DeadProcess()
        handle.respawns = 1
        handle.outstanding = {1: benign_batch(1)}
        pending = {0: deque()}
        self.reap(sup, handle, pending)
        assert handle.respawn_at == sup._clock.now + 0.10

        # While the backoff is pending no batch may be dispatched into
        # the dead process's stale inbox.
        sup._dispatch({0: handle}, pending)
        assert not handle.outstanding

        # _revive starts the spawn exactly when the deadline passes.
        spawned = []
        sup._spawn = lambda ctx, h, outbox: spawned.append(h.worker_id)
        assert sup._revive(None, {0: handle}, None) == 0
        sup._clock.now += 0.10
        assert sup._revive(None, {0: handle}, None) == 1
        assert spawned == [0] and handle.respawn_at is None

    def test_budget_exhaustion_counts_everything_lost(self, registry):
        sup = self.make(registry)
        handle = _WorkerHandle(0)
        handle.process = DeadProcess()
        handle.respawns = 2            # budget (2) already spent
        handle.outstanding = {1: benign_batch(1)}
        pending = {0: deque([crash_batch(2)])}
        respawned, lost = self.reap(sup, handle, pending)
        assert (respawned, lost) == (0, 3)
        assert handle.dead and not pending[0]


class TestWatchdog:
    def test_watchdog_kills_a_worker_past_the_deadline(self, registry):
        sup = FleetSupervisor(
            FleetConfig(workers=1, cache_dir=registry.cache_dir,
                        watchdog_timeout=30.0), registry)
        sup._clock = FakeClock()
        handle = _WorkerHandle(0)
        handle.process = HungProcess()
        handle.dispatched_at = {1: sup._clock.now - 31.0}
        sup._watchdog({0: handle})
        assert handle.process.terminated
        assert sup._watchdog_kills == 1

    def test_watchdog_spares_fresh_work_and_respects_disable(
            self, registry):
        sup = FleetSupervisor(
            FleetConfig(workers=1, cache_dir=registry.cache_dir,
                        watchdog_timeout=30.0), registry)
        sup._clock = FakeClock()
        handle = _WorkerHandle(0)
        handle.process = HungProcess()
        handle.dispatched_at = {1: sup._clock.now - 5.0}
        sup._watchdog({0: handle})
        assert not handle.process.terminated
        sup.config = FleetConfig(workers=1, watchdog_timeout=0.0)
        handle.dispatched_at = {1: sup._clock.now - 9999.0}
        sup._watchdog({0: handle})
        assert not handle.process.terminated

    def test_pool_hang_is_killed_requeued_and_drained(self, registry):
        plan = FaultPlan(13, (
            FaultSpec("worker.hang", probability=1.0, max_fires=1),))
        plans, schedule = build_load(["fdc"], 2, 2, 2, seed=5)
        schedule = inject_schedule_faults(schedule, plan)
        assert sum(batch_wants_hang(b) for b in schedule) == 1
        sup = FleetSupervisor(
            FleetConfig(workers=2, inline=False,
                        cache_dir=registry.cache_dir,
                        watchdog_timeout=1.0, backoff_base=0.01,
                        fault_plan=plan), registry)
        result = sup.run(schedule, plans)
        assert result.stats.watchdog_kills >= 1
        assert result.stats.worker_respawns >= 1
        assert result.stats.lost == 0
        assert result.stats.completed == result.stats.requests


def always_step_injector(max_fires=None):
    return FaultInjector(FaultPlan(1, (
        FaultSpec("interp.step", probability=1.0, max_fires=max_fires),)))


class TestCircuitBreaker:
    def batch(self, ops=8):
        return RequestBatch("t0", "fdc", "99.0.0", 0,
                            tuple(OpRequest("common", i, i)
                                  for i in range(ops)))

    def test_consecutive_gaps_open_the_circuit_and_shed(self, registry):
        worker = FleetWorker(0, registry,
                             injector=always_step_injector(),
                             circuit_threshold=2, circuit_cooldown=2)
        result = worker.run_batch(self.batch())
        # ops 0,1 gap -> open; 2,3 shed; 4 probe gaps; 5,6 shed; 7 probe.
        assert result.circuit_opens == 1
        assert result.trace_gaps == 4
        assert result.shed == 4
        assert result.completed == 0
        assert not result.quarantined      # infra, never security

    def test_successful_probe_closes_the_circuit(self, registry):
        worker = FleetWorker(0, registry,
                             injector=always_step_injector(max_fires=2),
                             circuit_threshold=2, circuit_cooldown=2)
        result = worker.run_batch(self.batch())
        # ops 0,1 gap -> open; 2,3 shed; probe at 4 succeeds (fault
        # budget spent) -> circuit closes and the rest is served.
        assert result.trace_gaps == 2
        assert result.shed == 2
        assert result.completed == 4
        assert result.circuit_opens == 1

    def test_strikes_survive_a_worker_respawn_via_the_batch(
            self, registry):
        import dataclasses
        worker = FleetWorker(0, registry,
                             injector=always_step_injector(max_fires=0),
                             circuit_threshold=2, circuit_cooldown=1)
        carried = dataclasses.replace(self.batch(ops=3), infra_strikes=2)
        result = worker.run_batch(carried)
        # The fresh worker opens the circuit from the carried strikes
        # before running a single op.
        assert result.circuit_opens == 1
        assert result.shed == 1            # op 0 shed, op 1 is the probe
        assert result.completed == 2

    def test_zero_threshold_disables_the_breaker(self, registry):
        worker = FleetWorker(0, registry,
                             injector=always_step_injector(),
                             circuit_threshold=0)
        result = worker.run_batch(self.batch(ops=4))
        assert result.circuit_opens == 0
        assert result.shed == 0
        assert result.trace_gaps == 4


#: FleetStats fields that must be identical across execution modes
#: (wall-clock and queue-wait fields excluded by design).
DETERMINISTIC_STATS = (
    "requests", "completed", "rejected", "faults", "lost", "detections",
    "quarantined_instances", "worker_respawns", "instance_respawns",
    "trace_gaps", "infra_failures", "shed", "circuit_opens",
    "watchdog_kills", "latency_samples", "io_rounds", "total_cycles",
    "makespan_cycles",
)


class TestInlinePoolDifferential:
    def test_same_fault_plan_same_stats_in_both_modes(self, registry):
        plan = FaultPlan(23, (
            FaultSpec("ipt.corrupt", probability=0.02),
            FaultSpec("ipt.drop", probability=0.0005),
            FaultSpec("interp.step", probability=0.05),
            FaultSpec("worker.crash", probability=1.0, max_fires=1),
        ))
        plans, schedule = build_load(
            ["fdc", "pcnet"], 4, 3, 2,
            inject_cves=["CVE-2015-3456"], seed=17)
        schedule = inject_schedule_faults(schedule, plan)
        assert sum(batch_wants_crash(b) for b in schedule) == 1

        def run(inline):
            sup = FleetSupervisor(
                FleetConfig(workers=2, inline=inline,
                            cache_dir=registry.cache_dir,
                            backoff_base=0.01, fault_plan=plan),
                registry)
            return sup.run(schedule, plans)

        inline, pool = run(True), run(False)
        for name in DETERMINISTIC_STATS:
            assert getattr(inline.stats, name) == \
                getattr(pool.stats, name), name
        assert inline.stats.detections >= 1
        assert inline.stats.worker_respawns == 1
        assert inline.stats.trace_gaps > 0
        # Per-tenant accounting agrees field by field as well.
        assert set(inline.tenants) == set(pool.tenants)
        for tenant, summary in inline.tenants.items():
            assert summary == pool.tenants[tenant], tenant
