"""Fleet-wide tenant-policy hot reload: epoch-consistent, eager
validation, inline/pool parity.

Policy reloads ride the same stamping mechanism as spec reloads: the
supervisor stamps every batch with the policy generation it must run
under, the worker swaps per tenant before the batch's first op, and
in-flight batches finish wholly under the old policy.  A malformed
document must fail at ``reload_policy`` time — before anything is
scheduled — leaving the running fleet untouched.
"""

import pytest

from repro.errors import PolicyError
from repro.fleet import (
    FleetConfig, FleetSupervisor, ScheduledPolicyReload, build_load,
)
from repro.policy.model import PolicySet, TenantPolicy

GOLD = PolicySet(default=TenantPolicy(policy_id="gold"))
SILVER = PolicySet(default=TenantPolicy(policy_id="silver",
                                        degradation="retry",
                                        max_retries=1))

PARITY_FIELDS = ("requests", "completed", "rejected", "lost",
                 "detections", "shed", "policy_reloads",
                 "policy_throttles", "policy_restores", "policy_fences",
                 "fenced_tenants", "io_rounds", "total_cycles")


def _run(inline, cache_dir, at_seq, tenants=3, batches=4, ops=3):
    plans, schedule = build_load(["fdc"], tenants, batches, ops, seed=9)
    supervisor = FleetSupervisor(FleetConfig(
        workers=2, inline=inline, cache_dir=cache_dir, policies=GOLD))
    supervisor.reload_policy(SILVER, at_seq=at_seq)
    return supervisor.run(schedule, plans), plans


class TestHotReload:
    def test_swaps_every_tenant_exactly_once(self):
        result, plans = _run(inline=True, cache_dir=None, at_seq=6)
        assert result.stats.policy_reloads == len(plans)
        assert result.stats.lost == 0
        assert result.stats.duplicate_results == 0
        for summary in result.tenants.values():
            assert summary.policy_id == "silver"

    def test_batches_flip_generation_at_the_boundary(self):
        # The supervisor stamps batches; the worker swaps per tenant
        # before the stamped batch's first op — earlier batches run
        # wholly under the old generation, later ones under the new.
        from dataclasses import replace

        from repro.fleet import FleetWorker, SpecRegistry
        from repro.fleet.loadgen import make_schedule, plan_tenants

        registry = SpecRegistry()
        digest = registry.policies.put(SILVER)
        worker = FleetWorker(0, registry, policies=GOLD)
        plans = plan_tenants(["fdc"], 1, seed=9)
        schedule = make_schedule(plans, 4, 3, seed=9)
        results = []
        for i, batch in enumerate(schedule):
            if i >= 2:
                batch = replace(batch, policy_epoch=1,
                                policy_digest=digest)
            results.append(worker.run_batch(batch))
        assert [r.policy_id for r in results] \
            == ["gold", "gold", "silver", "silver"]
        assert [r.policy_generation for r in results] == [0, 0, 1, 1]
        assert sum(r.policy_reloads for r in results) == 1

    def test_at_seq_zero_applies_before_first_batch(self):
        result, plans = _run(inline=True, cache_dir=None, at_seq=0)
        assert result.stats.policy_reloads == len(plans)
        assert all(summary.policy_id == "silver"
                   for summary in result.tenants.values())

    def test_inline_pool_parity(self, tmp_path):
        inline_result, _ = _run(inline=True, cache_dir=str(tmp_path),
                                at_seq=6)
        pool_result, _ = _run(inline=False, cache_dir=str(tmp_path),
                              at_seq=6)
        for name in PARITY_FIELDS:
            assert getattr(inline_result.stats, name) \
                == getattr(pool_result.stats, name), name
        inline_stamps = sorted(
            (t, r.policy_id, r.policy_generation)
            for t, r in inline_result.reports)
        pool_stamps = sorted(
            (t, r.policy_id, r.policy_generation)
            for t, r in pool_result.reports)
        assert inline_stamps == pool_stamps


class TestEagerValidation:
    @pytest.mark.parametrize("document", [
        {"default": {"circuit_cooldown": 0}},
        {"default": {"nonsense_knob": 3}},
        {"extra_section": {}},
        "not an object",
    ])
    def test_malformed_document_rejected_eagerly(self, document):
        supervisor = FleetSupervisor(FleetConfig(workers=2, inline=True))
        with pytest.raises(PolicyError):
            supervisor.reload_policy(document)
        # Nothing was scheduled: the fleet runs exactly as unconfigured.
        assert supervisor._policy_reloads == []
        plans, schedule = build_load(["fdc"], 2, 2, 2, seed=9)
        result = supervisor.run(schedule, plans)
        assert result.stats.policy_reloads == 0
        assert result.stats.lost == 0

    def test_raw_dict_document_accepted(self):
        supervisor = FleetSupervisor(FleetConfig(workers=2, inline=True))
        digest = supervisor.reload_policy(SILVER.to_obj())
        assert digest == SILVER.digest
        assert supervisor._policy_reloads == [
            ScheduledPolicyReload(SILVER.digest, 0)]

    def test_malformed_boot_policy_rejected(self):
        with pytest.raises(PolicyError):
            PolicySet.from_obj({"default": {"max_retries": -1}})
