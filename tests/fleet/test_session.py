"""FleetSession: the streaming facade must be result-identical to
``run()`` over the same executed batches, inline and pooled."""

import pytest

from repro.errors import FleetError
from repro.fleet import (
    FleetConfig, FleetSupervisor, SpecRegistry, build_load,
)

STAT_FIELDS = (
    "workers", "requests", "completed", "rejected", "faults", "lost",
    "detections", "quarantined_instances", "duplicate_results",
    "trace_gaps", "infra_failures", "shed", "circuit_opens",
    "watchdog_kills", "spec_reloads", "io_rounds", "total_cycles",
    "makespan_cycles", "latency_samples", "p50_request_cycles",
    "p95_request_cycles", "p99_request_cycles",
)


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    cache = tmp_path_factory.mktemp("session-spec-cache")
    return SpecRegistry(cache_dir=str(cache))


def supervisor(registry, inline=True, workers=2):
    return FleetSupervisor(
        FleetConfig(workers=workers, inline=inline,
                    cache_dir=registry.cache_dir), registry)


def small_load(**kwargs):
    return build_load(["fdc"], 4, 3, 3,
                      inject_cves=["CVE-2015-3456"], **kwargs)


def run_via_session(sup, schedule, plans):
    session = sup.session()
    for batch in schedule:
        session.submit(batch)
    return session.close(plans)


class TestRunParity:
    @pytest.mark.parametrize("inline", [True, False],
                             ids=["inline", "pool"])
    def test_session_equals_run(self, registry, inline):
        plans, schedule = small_load()
        batch_result = supervisor(registry, inline).run(schedule, plans)
        streamed = run_via_session(supervisor(registry, inline),
                                   schedule, plans)
        for f in STAT_FIELDS:
            assert getattr(streamed.stats, f) \
                == getattr(batch_result.stats, f), f
        assert streamed.tenants == batch_result.tenants
        assert streamed.retrain == batch_result.retrain

    def test_session_honors_scheduled_reload_stamps(self, registry):
        plans, schedule = build_load(["fdc"], 2, 4, 2)
        baseline = supervisor(registry).run(schedule, plans)
        assert baseline.stats.spec_reloads == 0
        # A reload scheduled mid-stream stamps exactly the tail batches.
        sup = supervisor(registry)
        spec = registry.get("fdc", "99.0.0")
        digest = registry.publish("fdc", "99.0.0", spec,
                                  provenance="test").digest
        sup.reload_spec("fdc", digest, at_seq=4)
        result = run_via_session(sup, schedule, plans)
        assert result.stats.spec_reloads == len(plans)
        assert result.stats.lost == 0


class TestSessionContract:
    def test_worker_pinning_is_first_appearance_round_robin(self,
                                                            registry):
        session = supervisor(registry, workers=3).session()
        assert [session.worker_for(t)
                for t in ("a", "b", "c", "d", "a")] == [0, 1, 2, 0, 0]

    def test_submit_after_close_rejected(self, registry):
        plans, schedule = build_load(["fdc"], 2, 1, 2)
        session = supervisor(registry).session()
        session.submit(schedule[0])
        session.close(plans)
        with pytest.raises(FleetError, match="closed"):
            session.submit(schedule[1])

    def test_pool_session_requires_a_cache_dir(self):
        sup = FleetSupervisor(FleetConfig(workers=1, inline=False,
                                          cache_dir=None))
        with pytest.raises(FleetError, match="cache"):
            sup.session()
