"""Spec lifecycle: generation chains, retrain queue, gated promotion,
and the fleet-wide epoch-based hot reload."""

import json
import os
import shutil

import pytest

from repro.checker import Action, Strategy, retrain_reason
from repro.checker.anomalies import Anomaly, CheckReport
from repro.errors import SpecError
from repro.faults import FaultPlan, FaultSpec
from repro.fleet import (
    FleetConfig, FleetSupervisor, ScheduledReload, SpecRegistry,
    build_load, inject_schedule_faults, make_schedule, plan_tenants,
    spec_digest,
)
from repro.fleet.loadgen import OpRequest, RequestBatch
from repro.spec import (
    PromotionConfig, RetrainQueue, RetrainRecord, candidate_from_records,
    promote, spec_from_json, spec_to_json,
)
from repro.spec import lifecycle as lifecycle_mod

FDC_QV = "2.3.0"     # the fdc seeded CVE's vulnerable build


@pytest.fixture(scope="module")
def seed_cache(tmp_path_factory):
    """Train the specs the module needs exactly once; tests copy the
    cache files into private dirs so chain state never leaks between
    tests (and nothing retrains)."""
    path = str(tmp_path_factory.mktemp("lifecycle-seed"))
    registry = SpecRegistry(cache_dir=path)
    registry.get("fdc", "99.0.0")
    registry.get("fdc", FDC_QV)
    return path


@pytest.fixture
def cache_dir(seed_cache, tmp_path):
    for name in os.listdir(seed_cache):
        shutil.copy(os.path.join(seed_cache, name), str(tmp_path))
    return str(tmp_path)


@pytest.fixture
def registry(cache_dir):
    return SpecRegistry(cache_dir=cache_dir)


def distinct_candidate(spec, sentinel=0x9999):
    """A content-distinct spec: same training, one extra visited block."""
    candidate = spec_from_json(spec_to_json(spec))
    candidate.visited_blocks.add(sentinel)
    assert spec_digest(candidate) != spec_digest(spec)
    return candidate


def rare_records(device, qemu_version, count=3, base_seed=5000):
    return [RetrainRecord(tenant="t", device=device,
                          qemu_version=qemu_version, reason="near-miss",
                          io_key=f"io-{i}", seq=i, kind="rare", index=i,
                          seed=base_seed + i) for i in range(count)]


class TestGenerationChain:
    def test_bootstrap_is_idempotent_and_active(self, registry):
        first = registry.ensure_base_generation("fdc", "99.0.0")
        again = registry.ensure_base_generation("fdc", "99.0.0")
        assert first == again
        assert first.generation == 1
        assert first.provenance.startswith("train:")
        active = registry.active_generation("fdc", "99.0.0")
        assert active is not None and active.digest == first.digest

    def test_publish_appends_and_is_idempotent_on_digest(self, registry):
        base = registry.ensure_base_generation("fdc", "99.0.0")
        candidate = distinct_candidate(registry.get("fdc", "99.0.0"))
        gen = registry.publish("fdc", "99.0.0", candidate,
                               provenance="test", parents=(base.digest,),
                               coverage_gain=0.25, edge_gain=3)
        assert gen.generation == 2
        assert gen.parents == (base.digest,)
        assert gen.coverage_gain == 0.25 and gen.edge_gain == 3
        again = registry.publish("fdc", "99.0.0", candidate)
        assert again == gen
        assert len(registry.generations("fdc", "99.0.0")) == 2

    def test_publish_does_not_switch_get_traffic(self, registry):
        registry.ensure_base_generation("fdc", "99.0.0")
        base_digest = spec_digest(registry.get("fdc", "99.0.0"))
        candidate = distinct_candidate(registry.get("fdc", "99.0.0"))
        registry.publish("fdc", "99.0.0", candidate)
        assert spec_digest(registry.get("fdc", "99.0.0")) == base_digest

    def test_activate_switches_get_and_round_trips(self, cache_dir):
        registry = SpecRegistry(cache_dir=cache_dir)
        registry.ensure_base_generation("fdc", "99.0.0")
        candidate = distinct_candidate(registry.get("fdc", "99.0.0"))
        gen = registry.publish("fdc", "99.0.0", candidate,
                               provenance="test")
        registry.activate("fdc", "99.0.0", gen.digest)
        assert spec_digest(registry.get("fdc", "99.0.0")) == gen.digest

        # A fresh registry over the same cache sees the same chain, the
        # same active generation, and byte-identical spec artifacts.
        fresh = SpecRegistry(cache_dir=cache_dir)
        assert (fresh.generations("fdc", "99.0.0")
                == registry.generations("fdc", "99.0.0"))
        active = fresh.active_generation("fdc", "99.0.0")
        assert active is not None and active.digest == gen.digest
        assert (spec_to_json(fresh.spec_by_digest(gen.digest))
                == spec_to_json(candidate))
        assert spec_digest(fresh.get("fdc", "99.0.0")) == gen.digest

    def test_activate_unknown_digest_raises(self, registry):
        registry.ensure_base_generation("fdc", "99.0.0")
        with pytest.raises(SpecError, match="publish it first"):
            registry.activate("fdc", "99.0.0", "f" * 64)

    def test_tampered_generation_artifact_rejected(self, cache_dir):
        registry = SpecRegistry(cache_dir=cache_dir)
        registry.ensure_base_generation("fdc", "99.0.0")
        candidate = distinct_candidate(registry.get("fdc", "99.0.0"))
        gen = registry.publish("fdc", "99.0.0", candidate)
        path = registry.generation_spec_path(gen.digest)
        with open(path) as handle:
            envelope = json.load(handle)
        # Flip the sentinel block (0x9999 = 39321) to another address:
        # still valid JSON, but no longer the content the digest names.
        assert "39321" in envelope["spec"]
        envelope["spec"] = envelope["spec"].replace("39321", "17185", 1)
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        fresh = SpecRegistry(cache_dir=cache_dir)
        with pytest.raises(SpecError, match="content-digest"):
            fresh.spec_by_digest(gen.digest)
        assert fresh.stats.corrupt_rejected == 1


class TestRetrainReason:
    def report(self, **kwargs):
        return CheckReport(io_key="pmio:write:1", **kwargs)

    def test_trace_gap_flag_and_action(self):
        assert retrain_reason(self.report(trace_gap=True)) == "trace-gap"
        assert (retrain_reason(self.report(action=Action.TRACE_GAP))
                == "trace-gap")

    def test_incomplete_walk(self):
        assert (retrain_reason(self.report(incomplete=True))
                == "incomplete-walk")

    def test_near_miss_is_control_flow_only(self):
        near = self.report(anomalies=[
            Anomaly(Strategy.CONDITIONAL_JUMP, "unobserved-branch", "")])
        assert retrain_reason(near) == "near-miss"

    def test_parameter_violations_never_retrain(self):
        mixed = self.report(anomalies=[
            Anomaly(Strategy.CONDITIONAL_JUMP, "unobserved-branch", ""),
            Anomaly(Strategy.PARAMETER, "integer-overflow", "")])
        assert retrain_reason(mixed) is None

    def test_clean_round_is_not_a_candidate(self):
        assert retrain_reason(self.report()) is None


class TestRetrainQueue:
    def test_dedup_on_replay_identity(self):
        queue = RetrainQueue()
        records = rare_records("fdc", FDC_QV, count=2)
        assert queue.add(records[0])
        assert queue.add(records[1])
        # Same (device, qv, kind, index, seed), different tenant/io_key:
        # still the same replay, still deduplicated.
        twin = RetrainRecord(tenant="other", device="fdc",
                             qemu_version=FDC_QV, reason="trace-gap",
                             io_key="elsewhere", seq=99, kind="rare",
                             index=records[0].index,
                             seed=records[0].seed)
        assert not queue.add(twin)
        assert len(queue) == 2 and queue.dropped == 1

    def test_max_records_bounds_the_queue(self):
        queue = RetrainQueue(max_records=2)
        assert queue.extend(rare_records("fdc", FDC_QV, count=5)) == 2
        assert len(queue) == 2 and queue.dropped == 3

    def test_persistence_survives_restart(self, tmp_path):
        path = str(tmp_path / "queue.jsonl")
        queue = RetrainQueue(path=path)
        queue.extend(rare_records("fdc", FDC_QV, count=3))
        reloaded = RetrainQueue(path=path)
        assert reloaded.records() == queue.records()
        # The backlog also participates in dedup after the restart.
        assert not reloaded.add(queue.records()[0])

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "queue.jsonl")
        queue = RetrainQueue(path=path)
        queue.extend(rare_records("fdc", FDC_QV, count=2))
        with open(path, "a") as handle:
            handle.write('{"tenant": "t", "device": "fd')   # torn write
        reloaded = RetrainQueue(path=path)
        assert len(reloaded) == 2

    def test_records_filters_by_device_and_version(self):
        queue = RetrainQueue()
        queue.extend(rare_records("fdc", FDC_QV, count=2))
        queue.extend(rare_records("scsi", "2.4.0", count=1,
                                  base_seed=7000))
        assert len(queue.records("fdc", FDC_QV)) == 2
        assert len(queue.records("scsi")) == 1
        assert len(queue.records()) == 3

    def test_candidate_refuses_exploit_records(self):
        poisoned = [RetrainRecord(tenant="t", device="fdc",
                                  qemu_version=FDC_QV, reason="near-miss",
                                  io_key="io", seq=0, kind="exploit")]
        with pytest.raises(SpecError, match="no replayable"):
            candidate_from_records("fdc", FDC_QV, poisoned)


class TestPromotionGates:
    def config(self, **kwargs):
        kwargs.setdefault("benign_rounds", 8)
        return PromotionConfig(**kwargs)

    def test_no_candidates_is_a_refusal(self, registry):
        report = promote(registry, "fdc", "99.0.0", [], self.config())
        assert not report.promoted
        assert report.reason == "no candidate specs"

    def test_coverage_threshold_refuses_and_publishes_nothing(
            self, registry):
        base = registry.get("fdc", "99.0.0")
        clone = spec_from_json(spec_to_json(base))
        report = promote(registry, "fdc", "99.0.0", [clone],
                         self.config(min_coverage_gain=0.5))
        assert not report.promoted
        assert "coverage gain" in report.reason
        assert len(registry.generations("fdc", "99.0.0")) == 1

    def test_edge_threshold_refuses(self, registry):
        base = registry.get("fdc", "99.0.0")
        clone = spec_from_json(spec_to_json(base))
        report = promote(registry, "fdc", "99.0.0", [clone],
                         self.config(min_edge_gain=10_000))
        assert not report.promoted
        assert "edge gain" in report.reason

    def test_new_false_positive_refuses(self, registry, monkeypatch):
        calls = []

        def fake_replay(spec, device, qemu_version, ops, backend):
            calls.append(spec)
            # First replay = base: all clean.  Second = merged: one
            # round the base allowed now halts.
            if len(calls) == 1:
                return ["ok"] * len(ops)
            return ["halt"] + ["ok"] * (len(ops) - 1)

        monkeypatch.setattr(lifecycle_mod, "_replay_outcomes",
                            fake_replay)
        candidate = distinct_candidate(registry.get("fdc", "99.0.0"))
        report = promote(registry, "fdc", "99.0.0", [candidate],
                         self.config())
        assert not report.promoted
        assert report.new_false_positives == 1
        assert "false positive" in report.reason
        assert len(registry.generations("fdc", "99.0.0")) == 1

    def test_cve_escape_refuses(self, registry, monkeypatch):
        monkeypatch.setattr(lifecycle_mod, "_replay_outcomes",
                            lambda *a, **k: ["ok"] * 8)
        seen = []

        def fake_detected(spec, cve, backend):
            seen.append(cve)
            return len(seen) == 1      # base detects, merged does not

        monkeypatch.setattr(lifecycle_mod, "_cve_detected",
                            fake_detected)
        candidate = distinct_candidate(registry.get("fdc", "99.0.0"))
        report = promote(registry, "fdc", "99.0.0", [candidate],
                         self.config())
        assert not report.promoted
        assert report.escapes == ["CVE-2015-3456"]
        assert "launders" in report.reason
        assert report.cve_results["CVE-2015-3456"] == (True, False)
        assert len(registry.generations("fdc", "99.0.0")) == 1

    def test_retrained_candidate_promotes_and_activates(self, registry):
        base = registry.ensure_base_generation("fdc", FDC_QV)
        candidate = candidate_from_records(
            "fdc", FDC_QV, rare_records("fdc", FDC_QV))
        report = promote(registry, "fdc", FDC_QV, [candidate],
                         self.config(), provenance="test:retrain")
        assert report.promoted, report.reason
        assert report.generation == 2
        assert report.coverage_gain > 0
        assert report.cve_results["CVE-2015-3456"] == (True, True)
        gen = registry.active_generation("fdc", FDC_QV)
        assert gen is not None and gen.digest == report.digest
        assert gen.parents[0] == base.digest
        assert spec_digest(registry.get("fdc", FDC_QV)) == report.digest

    def test_staged_rollout_publishes_without_activating(self, registry):
        base = registry.ensure_base_generation("fdc", FDC_QV)
        candidate = candidate_from_records(
            "fdc", FDC_QV, rare_records("fdc", FDC_QV))
        report = promote(registry, "fdc", FDC_QV, [candidate],
                         self.config(activate=False))
        assert report.promoted, report.reason
        active = registry.active_generation("fdc", FDC_QV)
        assert active is not None and active.digest == base.digest
        # ... but the artifact is fetchable for a hot reload by digest.
        assert registry.spec_by_digest(report.digest) is not None

    def test_exploit_trained_candidate_is_refused_as_escape(
            self, cache_dir):
        """A candidate whose training corpus contained the PoC traffic
        legitimizes the vulnerable branch; promotion must catch the
        laundering in the CVE differential and refuse."""
        from repro.core import build_execution_spec
        from repro.errors import DeviceFault
        from repro.exploits import exploit_by_cve
        from repro.workloads.profiles import PROFILES

        exploit = exploit_by_cve("CVE-2015-5158")   # cond-jump only
        prof = PROFILES[exploit.device]
        registry = SpecRegistry(cache_dir=cache_dir)
        registry.ensure_base_generation(exploit.device,
                                        exploit.qemu_version)

        def workload(vm, device):
            driver = prof.make_driver(vm)
            prof.prepare(vm, driver)
            import random
            rng = random.Random(3)
            for _ in range(6):
                rng.choice(prof.common_ops)(vm, driver, rng)
            try:
                exploit.run(vm, device)
            except DeviceFault:
                pass

        laundering = build_execution_spec(
            lambda: prof.make_vm(exploit.qemu_version), workload).spec
        report = promote(registry, exploit.device, exploit.qemu_version,
                         [laundering], self.config())
        assert not report.promoted
        assert report.escapes == [exploit.cve]
        assert report.cve_results[exploit.cve] == (True, False)
        assert len(registry.generations(
            exploit.device, exploit.qemu_version)) == 1


class TestHotReload:
    def promoted_digest(self, registry):
        registry.ensure_base_generation("fdc", FDC_QV)
        candidate = candidate_from_records(
            "fdc", FDC_QV, rare_records("fdc", FDC_QV))
        report = promote(registry, "fdc", FDC_QV, [candidate],
                         PromotionConfig(benign_rounds=6,
                                         activate=False))
        assert report.promoted, report.reason
        return report.digest

    def test_reload_spec_validates_the_digest_eagerly(self, registry):
        with pytest.raises(SpecError):
            registry_sup = FleetSupervisor(
                FleetConfig(workers=1, inline=True,
                            cache_dir=registry.cache_dir), registry)
            registry_sup.reload_spec("fdc", "e" * 64)

    def test_stamping_is_pure_schedule_arithmetic(self, registry):
        supervisor = FleetSupervisor(
            FleetConfig(workers=1, inline=True,
                        cache_dir=registry.cache_dir), registry)
        supervisor._reloads = [
            ScheduledReload("fdc", "d1", at_seq=2),
            ScheduledReload("fdc", "d2", at_seq=4),
            ScheduledReload("scsi", "d3", at_seq=0,
                            qemu_version="archaic"),
        ]
        batches = [RequestBatch("t0", "fdc", FDC_QV, seq,
                                (OpRequest("common"),))
                   for seq in range(6)]
        batches.append(RequestBatch("t1", "scsi", "2.4.0", 6,
                                    (OpRequest("common"),)))
        stamped = supervisor._stamp_reloads(batches)
        assert [(b.spec_epoch, b.spec_digest) for b in stamped] == [
            (0, ""), (0, ""),                 # before any reload
            (1, "d1"), (1, "d1"),             # first reload applies
            (2, "d2"), (2, "d2"),             # second stacks on top
            (0, ""),                          # wrong qemu_version
        ]

    def test_mid_run_reload_keeps_detection_and_loses_nothing(
            self, registry):
        digest = self.promoted_digest(registry)
        plans = plan_tenants(["fdc"], 3, inject_cves=["CVE-2015-3456"],
                             qemu_version=FDC_QV, seed=3)
        schedule = make_schedule(plans, 4, 3, seed=3, attack_batch=3)
        reload_at = 2 * len(plans)          # batch-boundary midpoint
        supervisor = FleetSupervisor(
            FleetConfig(workers=2, inline=True,
                        cache_dir=registry.cache_dir), registry)
        supervisor.reload_spec("fdc", digest, at_seq=reload_at)
        result = supervisor.run(schedule, plans)

        stats = result.stats
        assert stats.spec_reloads == len(plans)
        assert stats.lost == 0 and stats.duplicate_results == 0
        # The PoC lands *after* the swap and is still caught.
        assert stats.detections == 1
        assert (result.quarantined_tenants()
                == result.attacked_tenants())
        benign = [s for s in result.tenants.values() if not s.attacked]
        assert all(s.completed == s.submitted and not s.quarantined
                   for s in benign)

    def test_in_flight_batches_finish_under_the_old_spec(self, registry):
        """A reload scheduled mid-batch-row only applies to batches at
        or after its seq: earlier seqs keep epoch 0 even in the same
        round-robin row."""
        digest = self.promoted_digest(registry)
        plans = plan_tenants(["fdc"], 2, qemu_version=FDC_QV)
        schedule = make_schedule(plans, 2, 2, seed=1)
        supervisor = FleetSupervisor(
            FleetConfig(workers=1, inline=True,
                        cache_dir=registry.cache_dir), registry)
        supervisor.reload_spec("fdc", digest, at_seq=1)
        stamped = supervisor._stamp_reloads(schedule)
        assert stamped[0].spec_epoch == 0
        assert all(b.spec_epoch == 1 for b in stamped[1:])

    def test_inline_and_pool_agree_under_reload_and_faults(
            self, registry):
        """The acceptance differential: a shared fault plan (including a
        worker crash that forces a post-reload instance rebuild) plus a
        mid-run hot reload must leave the inline and multiprocessing
        paths byte-identical."""
        digest = self.promoted_digest(registry)
        plan = FaultPlan(29, (
            FaultSpec("ipt.corrupt", probability=0.02),
            FaultSpec("worker.crash", probability=1.0, max_fires=1),
        ))
        plans, schedule = build_load(
            ["fdc"], 3, 4, 2, inject_cves=["CVE-2015-3456"],
            qemu_version=FDC_QV, seed=19)
        schedule = inject_schedule_faults(schedule, plan)
        reload_at = 2 * len(plans)

        def run(inline):
            supervisor = FleetSupervisor(
                FleetConfig(workers=2, inline=inline,
                            cache_dir=registry.cache_dir,
                            backoff_base=0.01, fault_plan=plan),
                registry)
            supervisor.reload_spec("fdc", digest, at_seq=reload_at)
            return supervisor.run(schedule, plans)

        inline, pool = run(True), run(False)
        deterministic = (
            "requests", "completed", "rejected", "faults", "lost",
            "detections", "quarantined_instances", "worker_respawns",
            "instance_respawns", "trace_gaps", "infra_failures", "shed",
            "circuit_opens", "watchdog_kills", "spec_reloads",
            "retrain_candidates", "latency_samples", "io_rounds",
            "total_cycles", "makespan_cycles",
        )
        for name in deterministic:
            assert getattr(inline.stats, name) == \
                getattr(pool.stats, name), name
        assert inline.retrain == pool.retrain
        assert inline.stats.spec_reloads >= len(plans)
        assert inline.stats.worker_respawns == 1
        assert set(inline.tenants) == set(pool.tenants)
        for tenant, summary in inline.tenants.items():
            assert summary == pool.tenants[tenant], tenant

    def test_trace_gaps_feed_the_retrain_queue(self, registry):
        plan = FaultPlan(31, (
            FaultSpec("ipt.corrupt", probability=0.2),))
        plans, schedule = build_load(["fdc"], 2, 3, 3,
                                     qemu_version=FDC_QV, seed=11)
        supervisor = FleetSupervisor(
            FleetConfig(workers=1, inline=True,
                        cache_dir=registry.cache_dir, fault_plan=plan),
            registry)
        result = supervisor.run(schedule, plans)
        assert result.stats.trace_gaps > 0
        assert result.stats.retrain_candidates == len(result.retrain)
        assert result.retrain, "trace gaps should enqueue retrain work"
        for record in result.retrain:
            assert record.reason == "trace-gap"
            assert record.kind == "common"
            assert record.device == "fdc"
        # ... and they landed on the supervisor's persistent queue.
        assert len(supervisor.retrain_queue) > 0
        queued = supervisor.retrain_queue.records("fdc", FDC_QV)
        assert queued, "queue should hold fdc records"
        # The queued rounds mint the next candidate.
        candidate = candidate_from_records("fdc", FDC_QV, queued)
        assert candidate.device == registry.get("fdc", FDC_QV).device
