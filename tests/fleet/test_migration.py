"""Live tenant migration: session-level moves, certification, and
breaker-state carry.

A migration is only correct if it is invisible to the verdict stream:
the certification harness serves the same stamped schedule twice —
never-migrated vs migrate-every-tenant-mid-stream — and requires
byte-identical per-tenant verdict signatures plus op conservation in
both runs.  The breaker tests pin the satellite fix: circuit-breaker
strikes, the graduated-ladder rung, and the respawn budget ride the
envelope, so a tenant cannot launder its strike history by moving.
"""

import random

import pytest

from repro.errors import FleetError
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.fleet import (
    FleetConfig, FleetSupervisor, FleetWorker, SpecRegistry,
    certify, run_migration_certification,
)
from repro.fleet.checkpoint import seal
from repro.fleet.loadgen import RequestBatch, sample_benign_op
from repro.policy.model import PolicySet, TenantPolicy


def _batch(tenant, device, seq, rng, ops=3):
    return RequestBatch(tenant, device, "99.0.0", seq,
                        tuple(sample_benign_op(device, rng)
                              for _ in range(ops)))


class TestSessionMigration:
    def test_inline_certification(self):
        cert = run_migration_certification(
            devices=("fdc",), tenants=3, batches_per_tenant=3,
            ops_per_batch=4, backend="compiled", inject_fraction=0.5,
            seed=11)
        assert cert.ok, cert.describe()
        assert cert.migrations == 3
        assert cert.tenants == 3

    def test_migrating_twice_still_certifies(self):
        # Move after batch 0 *and* the certification default after
        # batch 1 — a tenant that bounces between lanes must still be
        # indistinguishable from one that never moved.
        cert = run_migration_certification(
            devices=("fdc",), tenants=2, batches_per_tenant=4,
            ops_per_batch=3, backend="compiled", inject_fraction=0.5,
            migrate_after_batch=0, seed=13)
        assert cert.ok, cert.describe()

    def test_certify_flags_verdict_divergence(self):
        # Same load, different inject schedule: signatures diverge and
        # the certificate must FAIL loudly, not average it away.
        from repro.fleet.loadgen import build_load

        def serve(inject):
            plans, schedule = build_load(
                ["fdc"], 2, 2, 3, inject_fraction=inject, seed=11)
            supervisor = FleetSupervisor(
                FleetConfig(workers=1, inline=True))
            return supervisor.run(schedule, plans)

        cert = certify(serve(0.5), serve(0.0), backend="compiled")
        assert not cert.ok
        assert cert.mismatched or cert.missing

    def test_checkpoint_unknown_tenant_is_none(self):
        supervisor = FleetSupervisor(FleetConfig(workers=2, inline=True))
        session = supervisor.session()
        try:
            assert session.checkpoint_tenant("never-seen") is None
        finally:
            session.close()


class TestBreakerCarry:
    def _strike(self, worker, tenant, device, rng, seq):
        """One batch under a certain-fire interp fault: every op
        degrades, strikes accrue."""
        plan = FaultPlan(3, (FaultSpec("interp.step", probability=1.0),))
        injector = FaultInjector(plan.for_sites("interp."))
        worker.injector = injector
        worker.instances[tenant].injector = injector
        result = worker.run_batch(_batch(tenant, device, seq, rng))
        worker.injector = None
        worker.instances[tenant].injector = None
        return result

    def test_strikes_and_rung_survive_migration(self):
        policy = PolicySet(default=TenantPolicy(
            policy_id="carry", throttle_after=2, circuit_cooldown=9,
            restore_after=0, quarantine_after=0))
        registry = SpecRegistry()
        registry.policies.put(policy)
        source = FleetWorker(0, registry, policies=policy)
        tenant, device = "t0-fdc", "fdc"
        rng = random.Random(41)
        source.run_batch(_batch(tenant, device, 0, rng))
        self._strike(source, tenant, device, rng, 1)
        assert source._strikes[tenant] >= 2
        assert source._circuit_open.get(tenant)

        envelope = source.checkpoint_tenant(tenant)
        assert envelope["breaker"]["strikes"] == \
            source._strikes[tenant]
        assert envelope["breaker"]["circuit_open"] is True
        assert envelope["policy"] == {"epoch": 0, "digest": ""}

        target = FleetWorker(1, registry, policies=policy)
        target.restore_tenant(envelope)
        assert target._strikes[tenant] == source._strikes[tenant]
        assert target._circuit_open.get(tenant) is True
        assert target._shed_since_probe[tenant] == \
            source._shed_since_probe.get(tenant, 0)
        # The open circuit keeps shedding on the target lane: the move
        # did not hand the tenant a fresh breaker.
        result = target.run_batch(_batch(tenant, device, 2, rng))
        assert result.shed > 0

    def test_reloaded_policy_generation_survives_migration(self):
        from dataclasses import replace

        boot = PolicySet(default=TenantPolicy(policy_id="gold"))
        silver = PolicySet(default=TenantPolicy(policy_id="silver"))
        registry = SpecRegistry()
        digest = registry.policies.put(silver)
        source = FleetWorker(0, registry, policies=boot)
        tenant, device = "t0-fdc", "fdc"
        rng = random.Random(43)
        batch = replace(_batch(tenant, device, 0, rng),
                        policy_epoch=1, policy_digest=digest)
        assert source.run_batch(batch).policy_id == "silver"

        target = FleetWorker(1, registry, policies=boot)
        target.restore_tenant(source.checkpoint_tenant(tenant))
        assert target.policy_for(tenant).policy_id == "silver"
        assert target._policy_epoch[tenant] == 1

    def test_tampered_breaker_rejected(self):
        registry = SpecRegistry()
        worker = FleetWorker(0, registry)
        tenant, device = "t0-fdc", "fdc"
        worker.run_batch(_batch(tenant, device, 0, random.Random(7)))
        envelope = worker.checkpoint_tenant(tenant)
        envelope["breaker"]["strikes"] = 7    # forge a strike history
        with pytest.raises(FleetError):
            FleetWorker(1, registry).restore_tenant(envelope)
        # Re-sealing makes it verify again — the digest covers the
        # breaker precisely so only a whole, honest envelope restores.
        seal(envelope)
        FleetWorker(1, registry).restore_tenant(envelope)
