"""SpecRegistry: train-once semantics and content-hash invalidation."""

import json
import os

import pytest

from repro.devices.base import create_device
from repro.fleet import SpecRegistry, program_fingerprint
from repro.fleet import registry as registry_mod
from repro.spec import spec_to_json


class TestFingerprint:
    def test_stable_for_same_build(self):
        a = program_fingerprint(create_device("fdc"))
        b = program_fingerprint(create_device("fdc"))
        assert a == b

    def test_differs_across_qemu_versions(self):
        # 2.3.0 folds the Venom-vulnerable path in; 99.0.0 the patched
        # one — different programs, different fingerprints.
        old = program_fingerprint(create_device(
            "fdc", qemu_version="2.3.0"))
        new = program_fingerprint(create_device(
            "fdc", qemu_version="99.0.0"))
        assert old != new

    def test_differs_across_devices(self):
        assert (program_fingerprint(create_device("fdc"))
                != program_fingerprint(create_device("scsi")))


class TestRegistry:
    def test_trains_once_then_memory_hits(self, tmp_path):
        registry = SpecRegistry(cache_dir=str(tmp_path))
        first = registry.get("fdc")
        second = registry.get("fdc")
        assert first is second
        assert registry.stats.trains == 1
        assert registry.stats.memory_hits == 1

    def test_disk_cache_shared_across_registries(self, tmp_path):
        a = SpecRegistry(cache_dir=str(tmp_path))
        spec = a.get("fdc")
        b = SpecRegistry(cache_dir=str(tmp_path))
        loaded = b.get("fdc")
        assert b.stats.trains == 0
        assert b.stats.disk_hits == 1
        assert spec_to_json(loaded) == spec_to_json(spec)

    def test_memory_only_without_cache_dir(self):
        registry = SpecRegistry(cache_dir=None)
        registry.get("fdc")
        assert registry.cache_path("fdc", "99.0.0") is None
        assert registry.stats.trains == 1

    def test_cache_path_is_content_addressed(self, tmp_path):
        registry = SpecRegistry(cache_dir=str(tmp_path))
        path = registry.cache_path("fdc", "99.0.0")
        digest = registry.fingerprint("fdc", "99.0.0")
        assert digest[:16] in os.path.basename(path)

    def test_changed_program_invalidates_cache(self, tmp_path,
                                               monkeypatch):
        registry = SpecRegistry(cache_dir=str(tmp_path))
        registry.get("fdc")
        assert registry.stats.trains == 1
        # The device model "changes": its content hash moves, so the
        # persisted spec's filename no longer matches and a fresh
        # registry retrains instead of reusing the stale file.
        monkeypatch.setattr(registry_mod, "program_fingerprint",
                            lambda device: "f" * 64)
        fresh = SpecRegistry(cache_dir=str(tmp_path))
        fresh.get("fdc")
        assert fresh.stats.trains == 1
        assert fresh.stats.disk_hits == 0

    def test_tampered_envelope_rejected(self, tmp_path):
        registry = SpecRegistry(cache_dir=str(tmp_path))
        registry.get("fdc")
        path = registry.cache_path("fdc", "99.0.0")
        with open(path) as handle:
            envelope = json.load(handle)
        envelope["fingerprint"] = "0" * 64
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        fresh = SpecRegistry(cache_dir=str(tmp_path))
        fresh.get("fdc")
        assert fresh.stats.stale_rejected == 1
        assert fresh.stats.trains == 1

    @pytest.mark.parametrize("version", ["2.3.0", "99.0.0"])
    def test_versions_get_distinct_cache_files(self, tmp_path, version):
        registry = SpecRegistry(cache_dir=str(tmp_path))
        other = "99.0.0" if version == "2.3.0" else "2.3.0"
        assert (registry.cache_path("fdc", version)
                != registry.cache_path("fdc", other))


class TestBytecodeArtifacts:
    """Lowered bytecode (interp + checker) through the registry:
    content-addressed, byte-identical round trips, tamper-rejected."""

    def _interp_artifact(self):
        from repro.interp import bytecode_program_for

        return bytecode_program_for(create_device("fdc").program)

    def _checker_artifact(self):
        from repro.checker.bytecode import bytecode_spec_for
        from repro.workloads.profiles import train_device_spec

        spec = train_device_spec("fdc").spec
        return bytecode_spec_for(spec)

    def test_interp_round_trip_byte_identical(self, tmp_path):
        registry = SpecRegistry(cache_dir=str(tmp_path))
        art = self._interp_artifact()
        digest = registry.store_bytecode(art)
        fresh = SpecRegistry(cache_dir=str(tmp_path))
        loaded = fresh.load_bytecode(digest)
        assert loaded.to_payload() == art.to_payload()
        assert loaded.digest() == digest
        blob = json.dumps(loaded.to_payload(), sort_keys=True)
        assert blob == json.dumps(art.to_payload(), sort_keys=True)

    def test_checker_round_trip_byte_identical(self, tmp_path):
        registry = SpecRegistry(cache_dir=str(tmp_path))
        art = self._checker_artifact()
        digest = registry.store_bytecode(art)
        fresh = SpecRegistry(cache_dir=str(tmp_path))
        loaded = fresh.load_bytecode(digest)
        assert loaded.to_payload() == art.to_payload()
        assert loaded.digest() == digest

    def test_memory_memo_returns_same_object(self, tmp_path):
        registry = SpecRegistry(cache_dir=str(tmp_path))
        art = self._interp_artifact()
        digest = registry.store_bytecode(art)
        assert registry.load_bytecode(digest) is art

    def test_tampered_payload_rejected(self, tmp_path):
        from repro.errors import SpecError

        registry = SpecRegistry(cache_dir=str(tmp_path))
        digest = registry.store_bytecode(self._interp_artifact())
        path = registry.bytecode_path(digest)
        with open(path) as handle:
            envelope = json.load(handle)
        # Flip one constant inside the payload: the envelope still
        # claims the original digest, so only the recomputed content
        # digest can catch it.
        funcs = envelope["payload"]["funcs"]
        body = funcs[sorted(funcs)[0]]
        body["code"][0] = body["code"][0] + 1
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        fresh = SpecRegistry(cache_dir=str(tmp_path))
        with pytest.raises(SpecError, match="digest|decode"):
            fresh.load_bytecode(digest)
        assert fresh.stats.corrupt_rejected == 1

    def test_renamed_artifact_rejected(self, tmp_path):
        """A file renamed to another address lies about its digest."""
        from repro.errors import SpecError

        registry = SpecRegistry(cache_dir=str(tmp_path))
        digest = registry.store_bytecode(self._interp_artifact())
        bogus = "0" * 64
        os.rename(registry.bytecode_path(digest),
                  registry.bytecode_path(bogus))
        fresh = SpecRegistry(cache_dir=str(tmp_path))
        with pytest.raises(SpecError, match="envelope"):
            fresh.load_bytecode(bogus)
        assert fresh.stats.corrupt_rejected == 1

    def test_missing_artifact_raises(self, tmp_path):
        from repro.errors import SpecError

        registry = SpecRegistry(cache_dir=str(tmp_path))
        with pytest.raises(SpecError, match="no bytecode artifact"):
            registry.load_bytecode("ab" * 32)


class TestBatchDispatchArtifacts:
    """Spec-specialized batched dispatch (``bd-*``) through the
    registry: addressed by the bytecode it was specialized from, hit
    skips re-specialization, corruption degrades to a miss."""

    def _bspec(self):
        from repro.checker.bytecode import (BytecodeSpec,
                                            bytecode_spec_for)
        from repro.workloads.profiles import train_device_spec

        spec = train_device_spec("fdc").spec
        # A private copy: the process-level bytecode_spec_for cache
        # would otherwise hand every test the same object with the
        # batched frame already assembled.
        return BytecodeSpec.from_payload(
            bytecode_spec_for(spec).to_payload())

    def test_round_trip_skips_respecialization(self, tmp_path):
        registry = SpecRegistry(cache_dir=str(tmp_path))
        stored = self._bspec()
        registry.store_batch_dispatch(stored)
        fresh_registry = SpecRegistry(cache_dir=str(tmp_path))
        fresh = self._bspec()
        assert fresh._walk_batch is None
        assert fresh_registry.load_batch_dispatch(fresh) is True
        # The adopted frame is the cached specialization verbatim.
        assert (fresh._walk_batch._bytecode_source
                == stored.batch_walk()._bytecode_source)

    def test_memory_memo_hits_without_disk(self, tmp_path):
        registry = SpecRegistry(cache_dir=str(tmp_path))
        registry.store_batch_dispatch(self._bspec())
        os.unlink(registry.batch_dispatch_path(self._bspec().digest()))
        assert registry.load_batch_dispatch(self._bspec()) is True

    def test_cold_cache_misses(self, tmp_path):
        registry = SpecRegistry(cache_dir=str(tmp_path))
        bspec = self._bspec()
        assert registry.load_batch_dispatch(bspec) is False
        assert bspec._walk_batch is None
        assert registry.stats.corrupt_rejected == 0

    def test_tampered_source_degrades_to_miss(self, tmp_path):
        registry = SpecRegistry(cache_dir=str(tmp_path))
        bspec = self._bspec()
        registry.store_batch_dispatch(bspec)
        path = registry.batch_dispatch_path(bspec.digest())
        with open(path) as handle:
            envelope = json.load(handle)
        # Altered generated source under an unchanged content digest:
        # only the recomputed payload digest can catch it.
        envelope["payload"]["source"] += "\n# tampered\n"
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        fresh_registry = SpecRegistry(cache_dir=str(tmp_path))
        fresh = self._bspec()
        assert fresh_registry.load_batch_dispatch(fresh) is False
        assert fresh._walk_batch is None
        assert fresh_registry.stats.corrupt_rejected == 1

    def test_other_generations_artifact_misses(self, tmp_path):
        """An artifact keyed by another spec generation's bytecode is
        simply not found under this one's digest."""
        from repro.checker.bytecode import bytecode_spec_for
        from repro.workloads.profiles import train_device_spec

        registry = SpecRegistry(cache_dir=str(tmp_path))
        registry.store_batch_dispatch(self._bspec())
        other = bytecode_spec_for(
            train_device_spec("sdhci").spec)
        assert registry.load_batch_dispatch(other) is False
        assert registry.stats.corrupt_rejected == 0
