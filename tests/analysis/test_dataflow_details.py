"""Detailed tests for reaching definitions and slicing behaviour."""

from repro.analysis import ReachingDefs, slice_function
from repro.compiler import DeviceLogic, arr, compile_device, fld


def compile_src(source):
    namespace = {}
    exec(source, {"DeviceLogic": DeviceLogic, "fld": fld, "arr": arr},
         namespace)
    return compile_device(namespace["D"], source=source)


LINEAR = (
    "class D(DeviceLogic):\n"
    "    STRUCT = 'D'\n"
    "    FIELDS = (fld('x', 'u8'), fld('scratch', 'u32'))\n"
    "    ENTRIES = {'pmio:write:0': 'h'}\n"
    "    def h(self, v):\n"
    "        a = v + 1\n"
    "        b = a * 2\n"
    "        self.scratch = b\n"
    "        a = v + 9\n"
    "        self.x = a\n"
    "        return 0\n")


class TestReachingDefs:
    def test_redefinition_kills_previous(self):
        program = compile_src(LINEAR)
        func = program.function("h")
        rd = ReachingDefs.compute(func)
        # Within a single block there is no 'in' ambiguity; at entry no
        # definition of 'a' reaches.
        assert rd.unique_def(func.entry, "a") is None

    def test_diamond_merges_definitions(self):
        program = compile_src(
            "class D(DeviceLogic):\n"
            "    STRUCT = 'D'\n"
            "    FIELDS = (fld('x', 'u8'),)\n"
            "    ENTRIES = {'pmio:write:0': 'h'}\n"
            "    def h(self, v):\n"
            "        if v > 4:\n"
            "            t = 1\n"
            "        else:\n"
            "            t = 2\n"
            "        self.x = t\n"
            "        return 0\n")
        func = program.function("h")
        rd = ReachingDefs.compute(func)
        join = [b.label for b in func.iter_blocks()
                if b.label.startswith("join")][0]
        # Both arms' definitions reach the join: not unique.
        assert rd.unique_def(join, "t") is None

    def test_single_path_definition_unique(self):
        program = compile_src(
            "class D(DeviceLogic):\n"
            "    STRUCT = 'D'\n"
            "    FIELDS = (fld('x', 'u8'),)\n"
            "    ENTRIES = {'pmio:write:0': 'h'}\n"
            "    def h(self, v):\n"
            "        t = v + 1\n"
            "        if v > 4:\n"
            "            self.x = t\n"
            "        return 0\n")
        func = program.function("h")
        rd = ReachingDefs.compute(func)
        then = [b.label for b in func.iter_blocks()
                if b.label.startswith("then")][0]
        assert rd.unique_def(then, "t") is not None


class TestSlicing:
    def test_dead_chain_dropped_live_chain_kept(self):
        program = compile_src(LINEAR)
        result = slice_function(program.function("h"), {"x"}, set())
        # b and the scratch store are dead for {x}; 'a = v + 9' is live.
        assert result.kept_stmts < result.total_stmts
        assert 0 < result.reduction_ratio < 1

    def test_param_buffer_store_is_root(self):
        program = compile_src(
            "class D(DeviceLogic):\n"
            "    STRUCT = 'D'\n"
            "    FIELDS = (fld('x', 'u8'), arr('buf', 'u8', 4))\n"
            "    ENTRIES = {'pmio:write:0': 'h'}\n"
            "    def h(self, v):\n"
            "        i = v & 3\n"
            "        self.buf[i] = v\n"
            "        return 0\n")
        result = slice_function(program.function("h"), set(), {"buf"})
        # Both the index computation and the store are kept.
        assert result.kept_stmts == 2

    def test_terminator_operands_rooted(self):
        program = compile_src(
            "class D(DeviceLogic):\n"
            "    STRUCT = 'D'\n"
            "    FIELDS = (fld('x', 'u8'),)\n"
            "    ENTRIES = {'pmio:write:0': 'h'}\n"
            "    def h(self, v):\n"
            "        gate = v & 1\n"
            "        if gate:\n"
            "            self.x = 1\n"
            "        return 0\n")
        result = slice_function(program.function("h"), {"x"}, set())
        # 'gate' feeds the branch: its definition must be kept.
        assert result.keeps("entry", 0)
