"""Unit tests for the CFG analyzer: taint, params, dataflow, obs logging."""

import pytest

from repro.analysis import (
    CATEGORY_COUNTER, CATEGORY_FUNCPTR, DeviceStateChangeLog,
    ObservationLogger, ReachingDefs, analyze_taint, observation_points,
    select_parameters, slice_function,
)
from repro.cfg import build_itc_cfg
from repro.compiler import compile_device
from repro.interp import Machine
from repro.ipt import Decoder, IPTTracer

from tests.toydev import ToyLogic


@pytest.fixture(scope="module")
def program():
    return compile_device(ToyLogic)


class TestTaint:
    def test_io_written_fields_tainted(self, program):
        result = analyze_taint(program)
        assert "cmd" in result.tainted_fields     # written from I/O value
        # fifo content comes from I/O too, but buffers aren't scalar fields

    def test_command_decision_detected_via_intrinsic(self, program):
        result = analyze_taint(program)
        write_cmd = program.function("write_cmd")
        addrs = {b.address for b in write_cmd.iter_blocks()}
        assert result.command_decision_blocks & addrs

    def test_command_end_blocks_include_handler_returns(self, program):
        result = analyze_taint(program)
        assert result.command_end_blocks

    def test_taint_propagates_through_calls(self, program):
        result = analyze_taint(program)
        # on_irq's "level" param receives a constant, not I/O data; but
        # write_cmd's dispatch target functions receive no args at all.
        assert result.tainted_params["write_cmd"] == {"value"}


class TestParamSelection:
    def test_registers_selected_by_rule1(self, program):
        sel = select_parameters(program)
        assert "status" in sel.registers
        assert "cmd" in sel.registers

    def test_buffers_and_counters_by_rule2(self, program):
        sel = select_parameters(program)
        assert "fifo" in sel.buffers
        assert "pos" in sel.counters     # indexes the fifo
        assert "count" in sel.counters   # compared against index/loop bound

    def test_funcptr_selected(self, program):
        sel = select_parameters(program)
        assert "irq" in sel.funcptrs

    def test_table_rows_shape(self, program):
        rows = select_parameters(program).table_rows()
        assert len(rows) == 4
        categories = [r[0] for r in rows]
        assert CATEGORY_COUNTER in categories
        assert CATEGORY_FUNCPTR in categories

    def test_counters_exclude_registers(self, program):
        sel = select_parameters(program)
        assert not (sel.counters & sel.registers)

    def test_selection_with_itc_cfg(self, program):
        machine = Machine(program)
        machine.bind_extern("host_log", lambda m, level: None)
        machine.set_funcptr("irq", "on_irq")
        tracer = machine.add_sink(IPTTracer())
        for i in range(10):
            machine.run_entry("pmio:write:1", (i,))
        machine.run_entry("pmio:write:0", (3,))
        rounds = Decoder(program).decode_stream(tracer.packets)
        itc = build_itc_cfg(program, rounds)
        sel = select_parameters(program, itc)
        assert "fifo" in sel.buffers
        assert "irq" in sel.funcptrs


class TestObservationPoints:
    def test_points_are_jump_blocks(self, program):
        points = observation_points(program)
        assert points
        for addr in points:
            block = program.block_at(addr)
            assert type(block.terminator).__name__ in (
                "Branch", "Switch", "ICall")


class TestDataflow:
    def test_slice_keeps_param_stores(self, program):
        sel = select_parameters(program)
        func = program.function("write_data")
        result = slice_function(func, sel.scalar_params | sel.funcptrs,
                                sel.buffers)
        assert result.kept_stmts > 0
        # every kept root is a store to a param or an intrinsic
        assert result.kept_stmts <= result.total_stmts

    def test_slice_reduction_on_padded_function(self):
        """Statements irrelevant to device state get sliced away."""
        from repro.compiler import DeviceLogic, fld, compile_device

        class Padded(DeviceLogic):
            STRUCT = "Padded"
            FIELDS = (fld("x", "u8"), fld("scratch", "u32"))
            ENTRIES = {"pmio:write:0": "h"}

            def h(self, v):
                a = v + 1
                b = a * 2          # noqa: F841 - dead for device state
                c = b + 3          # noqa: F841 - dead
                self.scratch = c   # not a selected param
                self.x = a
                return 0

        prog = compile_device(Padded)
        result = slice_function(prog.function("h"), {"x"}, set())
        # Stores to scratch and the b/c chain are dropped; a is kept.
        assert result.kept_stmts < result.total_stmts
        assert result.reduction_ratio > 0

    def test_extern_result_becomes_sync_local(self):
        from repro.compiler import DeviceLogic, fld, compile_device

        class Ext(DeviceLogic):
            STRUCT = "Ext"
            FIELDS = (fld("x", "u8"),)
            EXTERNS = ("host_time",)
            ENTRIES = {"pmio:write:0": "h"}

            def h(self, v):
                t = host_time()      # noqa: F821
                self.x = t
                return 0

        prog = compile_device(Ext)
        result = slice_function(prog.function("h"), {"x"}, set())
        assert "t" in result.sync_locals

    def test_reaching_defs_unique(self, program):
        func = program.function("do_sum")
        rd = ReachingDefs.compute(func)
        # 'total' is redefined in the loop; at the loop condition both the
        # init and the loop-body definitions reach -> not unique.
        loop_labels = [b.label for b in func.iter_blocks()
                       if b.label.startswith("forc")]
        assert loop_labels
        assert rd.unique_def(loop_labels[0], "total") is None


class TestObservationLogger:
    def make_logged_machine(self):
        program = compile_device(ToyLogic)
        sel = select_parameters(program)
        machine = Machine(program)
        machine.bind_extern("host_log", lambda m, level: None)
        machine.set_funcptr("irq", "on_irq")
        logger = machine.add_sink(ObservationLogger(
            "toy", sel.scalar_params | sel.funcptrs, sel.buffers))
        return machine, logger

    def test_rounds_recorded(self):
        machine, logger = self.make_logged_machine()
        machine.run_entry("pmio:write:1", (9,))
        machine.run_entry("pmio:read:1")
        assert len(logger.log.rounds) == 2
        assert logger.log.rounds[0].io_key == "pmio:write:1"
        assert logger.log.rounds[0].io_args == (9,)

    def test_param_store_events(self):
        machine, logger = self.make_logged_machine()
        machine.run_entry("pmio:write:1", (9,))
        kinds = {e.kind for e in logger.log.rounds[0].events}
        assert "store" in kinds       # pos/count updates
        assert "bufstore" in kinds    # fifo write
        assert "block" in kinds
        assert "branch" in kinds

    def test_command_events(self):
        machine, logger = self.make_logged_machine()
        machine.run_entry("pmio:write:0", (0,))
        round_ = logger.log.rounds[0]
        assert round_.command_values() == [0]
        assert any(e.kind == "cmd_end" for e in round_.events)

    def test_initial_and_final_state(self):
        machine, logger = self.make_logged_machine()
        machine.run_entry("pmio:write:1", (9,))
        round_ = logger.log.rounds[0]
        assert round_.initial_state["pos"] == 0
        assert round_.final_state["pos"] == 1

    def test_json_roundtrip(self):
        machine, logger = self.make_logged_machine()
        machine.run_entry("pmio:write:1", (9,))
        text = logger.log.to_json()
        restored = DeviceStateChangeLog.from_json(text)
        assert restored.device == logger.log.device
        assert len(restored.rounds) == 1
        assert (restored.rounds[0].block_sequence()
                == logger.log.rounds[0].block_sequence())

    def test_block_sequence_matches_execution_order(self):
        machine, logger = self.make_logged_machine()
        machine.run_entry("pmio:write:1", (1,))
        seq = logger.log.rounds[0].block_sequence()
        entry = machine.program.entry_for("pmio:write:1")
        assert seq[0] == entry.block(entry.entry).address
