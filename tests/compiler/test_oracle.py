"""Differential property test: compiled-and-interpreted device code must
compute exactly what the same Python computes.

Hypothesis generates small arithmetic/control-flow function bodies; they
are (a) exec'd as plain Python and (b) compiled to IR and interpreted;
the stored results must agree.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.compiler import DeviceLogic, compile_device, fld
from repro.interp import Machine

OPS = ("+", "-", "*", "&", "|", "^")


@st.composite
def function_bodies(draw):
    """A straight-line/branchy body over locals a,b,c and params x,y."""
    lines = []
    names = ["x", "y"]
    for local in ("a", "b", "c"):
        op = draw(st.sampled_from(OPS))
        lhs = draw(st.sampled_from(names))
        rhs_choice = draw(st.one_of(
            st.sampled_from(names),
            st.integers(0, 255).map(str)))
        lines.append(f"{local} = {lhs} {op} {rhs_choice}")
        names.append(local)
    # one conditional over the computed values
    cond_l = draw(st.sampled_from(names))
    cond_r = draw(st.sampled_from(names))
    cmp_op = draw(st.sampled_from(("<", "<=", "==", "!=")))
    then_v = draw(st.sampled_from(names))
    else_v = draw(st.sampled_from(names))
    lines.append(f"if {cond_l} {cmp_op} {cond_r}:")
    lines.append(f"    out = {then_v}")
    lines.append("else:")
    lines.append(f"    out = {else_v}")
    # a small bounded loop accumulating into out
    bound = draw(st.integers(0, 5))
    lines.append(f"for i in range({bound}):")
    lines.append("    out = out + i")
    lines.append("self.result = out")
    lines.append("return 0")
    return lines


def build_device(body_lines):
    source = (
        "class D(DeviceLogic):\n"
        "    STRUCT = 'D'\n"
        "    FIELDS = (fld('result', 'u64'),)\n"
        "    ENTRIES = {'pmio:write:0': 'h'}\n"
        "    def h(self, x, y):\n"
        + "".join(f"        {line}\n" for line in body_lines))
    namespace = {}
    exec(source, {"DeviceLogic": DeviceLogic, "fld": fld}, namespace)
    return namespace["D"], source


def python_oracle(body_lines, x, y):
    source = ("def h(x, y):\n"
              + "".join(f"    {line}\n" for line in body_lines))
    source = source.replace("self.result = out", "return out % 2**64")
    source = source.replace("    return 0\n", "")
    namespace = {}
    exec(source, {}, namespace)
    return namespace["h"](x, y)


class TestCompilerOracle:
    @settings(max_examples=60, deadline=None)
    @given(function_bodies(),
           st.integers(0, 255), st.integers(0, 255))
    def test_compiled_matches_python(self, body, x, y):
        cls, source = build_device(body)
        program = compile_device(cls, source=source)
        machine = Machine(program)
        machine.run_entry("pmio:write:0", (x, y))
        expected = python_oracle(body, x, y)
        assert machine.state.read_field("result") == expected
