"""Unit tests for the restricted-Python front end."""

import pytest

from repro.compiler import DeviceLogic, arr, compile_device, fld, ptr, reg
from repro.errors import CompileError
from repro.ir import Branch, Call, Goto, ICall, Intrinsic, Return

from tests.toydev import ToyLogic


class TestCompileToy:
    def setup_method(self):
        self.program = compile_device(ToyLogic)

    def test_all_public_methods_compiled(self):
        names = set(self.program.functions)
        assert {"write_cmd", "do_reset", "do_sum", "raise_irq", "on_irq",
                "write_data", "read_data"} <= names

    def test_entries_registered(self):
        assert self.program.entry_for("pmio:write:0").name == "write_cmd"
        assert self.program.entry_for("pmio:read:1").name == "read_data"

    def test_frozen_with_addresses(self):
        assert self.program.frozen
        lo, hi = self.program.code_range()
        assert lo < hi
        for func in self.program.functions.values():
            for block in func.iter_blocks():
                assert lo <= block.address < hi

    def test_layout_matches_fields(self):
        layout = self.program.layout
        assert layout.field("status").register
        assert layout.field("fifo").is_buffer
        assert layout.field("irq").is_funcptr

    def test_direct_call_compiles_to_call_terminator(self):
        func = self.program.function("write_cmd")
        calls = [b.terminator for b in func.iter_blocks()
                 if isinstance(b.terminator, Call)]
        assert {t.func for t in calls} == {"do_reset", "do_sum"}

    def test_funcptr_call_compiles_to_icall(self):
        func = self.program.function("raise_irq")
        terms = [b.terminator for b in func.iter_blocks()]
        icalls = [t for t in terms if isinstance(t, ICall)]
        assert len(icalls) == 1
        assert icalls[0].ptr_field == "irq"

    def test_intrinsics_preserved(self):
        func = self.program.function("write_cmd")
        kinds = [s.kind for b in func.iter_blocks() for s in b.stmts
                 if isinstance(s, Intrinsic)]
        assert "command_decision" in kinds
        assert "command_end" in kinds

    def test_vulnerable_variant_has_no_bounds_branch(self):
        """Dead-branch elimination: the vulnerable build drops the check."""
        vuln = compile_device(ToyLogic,
                              const_overrides={"VULN_UNCHECKED_PUSH": 1})
        patched_blocks = self.program.function("write_data").blocks
        vuln_blocks = vuln.function("write_data").blocks
        assert len(vuln_blocks) < len(patched_blocks)
        assert not any(isinstance(b.terminator, Branch)
                       for b in vuln_blocks.values())

    def test_loop_desugared(self):
        func = self.program.function("do_sum")
        branches = [b for b in func.iter_blocks()
                    if isinstance(b.terminator, Branch)]
        assert branches, "for-range should produce a loop branch"

    def test_every_block_has_valid_successors(self):
        for func in self.program.functions.values():
            func.validate()


class TestRejections:
    def _compile_method(self, body, params="self, v"):
        """Build a device class from source lines and compile it.

        The class object is exec'd with a trivially valid body (so Python's
        own compiler doesn't get in the way); the real method source is fed
        to compile_device via its ``source`` override.
        """
        method = f"def m({params}):\n" + "".join(
            f"    {line}\n" for line in body)
        header = (
            "class D(DeviceLogic):\n"
            "    STRUCT = 'D'\n"
            "    FIELDS = (fld('x', 'u8'), arr('b', 'u8', 4))\n")
        source = header + "".join(
            "    " + line + "\n" for line in method.splitlines())
        namespace = {}
        exec(header + "    pass\n",  # noqa: S102 - dynamic test class
             {"DeviceLogic": DeviceLogic, "fld": fld, "arr": arr}, namespace)
        return compile_device(namespace["D"], source=source)

    def test_missing_struct_rejected(self):
        class NoStruct(DeviceLogic):
            FIELDS = ()
        with pytest.raises(CompileError):
            compile_device(NoStruct)

    def test_float_literal_rejected(self):
        with pytest.raises(CompileError, match="literal"):
            self._compile_method(["self.x = 1.5"])

    def test_chained_comparison_rejected(self):
        with pytest.raises(CompileError, match="chained"):
            self._compile_method(["y = 0 < v < 5", "self.x = y"])

    def test_unknown_field_rejected(self):
        with pytest.raises(CompileError, match="unknown field"):
            self._compile_method(["self.nope = 1"])

    def test_unknown_function_rejected(self):
        with pytest.raises(CompileError, match="unknown function"):
            self._compile_method(["whatever(1)"])

    def test_slice_rejected(self):
        with pytest.raises(CompileError):
            self._compile_method(["self.b[0:2] = v"])

    def test_nested_call_rejected(self):
        with pytest.raises(CompileError):
            self._compile_method(["self.x = 1 + self.m2()"])

    def test_param_write_rejected(self):
        with pytest.raises(CompileError, match="read-only"):
            self._compile_method(["v = 1"])

    def test_break_outside_loop_rejected(self):
        with pytest.raises(CompileError, match="break outside"):
            self._compile_method(["break"])

    def test_bad_entry_name_rejected(self):
        class BadEntry(DeviceLogic):
            STRUCT = "E"
            FIELDS = (fld("x", "u8"),)
            ENTRIES = {"pmio:write:0": "missing"}

            def m(self):
                return 0
        with pytest.raises(CompileError, match="unknown method"):
            compile_device(BadEntry)

    def test_error_carries_line_number(self):
        with pytest.raises(CompileError) as exc:
            self._compile_method(["self.x = 0", "self.nope = 1"])
        assert exc.value.lineno > 0
