"""Property tests for the telemetry core.

Three load-bearing invariants:

* fixed-boundary bucketing agrees with a naive reference for any
  boundaries and any values (``le`` semantics, +Inf overflow);
* ``merge_snapshots`` over any partition of an event stream equals the
  snapshot of one recorder that saw every event — the property the fleet
  relies on when summing per-worker recorders;
* snapshots are frozen: recording after ``snapshot()`` never mutates an
  already-taken snapshot.
"""

from hypothesis import given, strategies as st

from repro.telemetry import (
    Histogram, Recorder, iter_jsonl, merge_snapshots,
)

bounds_strategy = st.lists(
    st.integers(1, 10**9), min_size=1, max_size=8, unique=True,
).map(lambda b: tuple(sorted(b)))

values_strategy = st.lists(st.integers(0, 2 * 10**9), max_size=64)

# An event stream a fleet might shard: counters keyed by (name, label)
# and observations into one histogram per name with fixed boundaries.
HIST_BOUNDS = (100, 10_000, 1_000_000)
event_strategy = st.one_of(
    st.tuples(st.just("counter"),
              st.sampled_from(["checks", "faults"]),
              st.sampled_from(["fdc", "sdhci"]),
              st.integers(1, 100)),
    st.tuples(st.just("observe"),
              st.sampled_from(["round_ns", "queue"]),
              st.integers(0, 10**7)),
)


def apply_events(recorder, events):
    for event in events:
        if event[0] == "counter":
            _, name, device, n = event
            recorder.counter(name, device=device).inc(n)
        else:
            _, name, value = event
            recorder.histogram(name, bounds=HIST_BOUNDS).observe(value)


def reference_bucket(bounds, value):
    for i, bound in enumerate(bounds):
        if value <= bound:
            return i
    return len(bounds)


class TestBucketing:
    @given(bounds=bounds_strategy, values=values_strategy)
    def test_bucketing_matches_reference(self, bounds, values):
        hist = Histogram("h", bounds=bounds)
        expected = [0] * (len(bounds) + 1)
        for value in values:
            hist.observe(value)
            expected[reference_bucket(bounds, value)] += 1
        assert hist.counts == expected
        assert sum(hist.counts) == hist.count == len(values)
        assert hist.total == sum(values)

    @given(bounds=bounds_strategy, values=values_strategy)
    def test_observe_many_equals_sequential_observe(self, bounds, values):
        seq = Histogram("h", bounds=bounds)
        batch = Histogram("h", bounds=bounds)
        for value in values:
            seq.observe(value)
        batch.observe_many(values)
        assert batch.snapshot() == seq.snapshot()

    @given(bounds=bounds_strategy, values=values_strategy,
           q=st.floats(0.0, 1.0))
    def test_percentile_is_a_bucket_bound_or_observed_max(self, bounds,
                                                          values, q):
        hist = Histogram("h", bounds=bounds)
        hist.observe_many(values)
        p = hist.snapshot().percentile(q)
        if not values:
            assert p == 0.0
        else:
            assert p in {float(b) for b in bounds} | {float(max(values))}


class TestMergePartition:
    @given(events=st.lists(event_strategy, max_size=60),
           parts=st.lists(st.integers(0, 2), min_size=60, max_size=60))
    def test_merge_of_any_partition_equals_one_recorder(self, events,
                                                        parts):
        whole = Recorder("whole")
        apply_events(whole, events)
        shards = [Recorder(f"s{i}") for i in range(3)]
        for event, part in zip(events, parts):
            apply_events(shards[part], [event])
        merged = merge_snapshots(s.snapshot() for s in shards)
        expected = whole.snapshot()
        assert merged.counters == expected.counters
        assert merged.histograms == expected.histograms

    @given(events=st.lists(event_strategy, max_size=40))
    def test_merge_is_order_independent(self, events):
        recorders = [Recorder("a"), Recorder("b")]
        for i, event in enumerate(events):
            apply_events(recorders[i % 2], [event])
        snaps = [r.snapshot() for r in recorders]
        forward = merge_snapshots(snaps)
        backward = merge_snapshots(reversed(snaps))
        assert forward.counters == backward.counters
        assert forward.histograms == backward.histograms


class _ScriptedClock:
    """Deterministic clock for spans: advances only when told to."""

    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


SPAN_BOUNDS = (1_000, 100_000, 10_000_000)

# The gateway's stats plane merges N per-shard snapshots that mix plain
# counters, latency histograms, and span timings.
shard_event_strategy = st.one_of(
    event_strategy,
    st.tuples(st.just("span"),
              st.sampled_from(["dispatch_ns", "drain_ns"]),
              st.integers(0, 10**8)),
)


def apply_shard_events(recorder, clock, events):
    apply_events(recorder, [e for e in events if e[0] != "span"])
    for event in events:
        if event[0] == "span":
            _, name, duration = event
            with recorder.span(name, bounds=SPAN_BOUNDS):
                clock.now += duration


class TestNShardMerge:
    """The cross-shard stats plane is only sound if merging snapshots
    is associative and order-insensitive — then it cannot matter how
    many shards exist, which rebalance created them, or which one
    reports first."""

    @given(events=st.lists(shard_event_strategy, max_size=80),
           assignment=st.lists(st.integers(0, 4), min_size=80,
                               max_size=80),
           order=st.permutations(list(range(5))),
           split=st.integers(1, 4))
    def test_any_grouping_any_order_same_merged_plane(self, events,
                                                      assignment,
                                                      order, split):
        shards, clocks = [], []
        for i in range(5):
            clock = _ScriptedClock()
            shards.append(Recorder(f"shard{i}", clock=clock))
            clocks.append(clock)
        for event, owner in zip(events, assignment):
            apply_shard_events(shards[owner], clocks[owner], [event])
        snaps = [r.snapshot() for r in shards]
        flat = merge_snapshots(snaps)

        # Order-insensitive: an arbitrary shard reporting order.
        shuffled = merge_snapshots(snaps[i] for i in order)
        assert shuffled.counters == flat.counters
        assert shuffled.histograms == flat.histograms

        # Associative: pre-merge arbitrary sub-groups (as a rebalanced
        # fleet would, folding retired shards in early), then merge the
        # partial merges.
        groups = [snaps[i::split] for i in range(split)]
        partials = [merge_snapshots(g) for g in groups if g]
        regrouped = merge_snapshots(partials)
        assert regrouped.counters == flat.counters
        assert regrouped.histograms == flat.histograms

    @given(events=st.lists(shard_event_strategy, max_size=60),
           assignment=st.lists(st.integers(0, 2), min_size=60,
                               max_size=60))
    def test_merged_span_buckets_equal_one_recorder(self, events,
                                                    assignment):
        """Bucket-level check: per-shard span histograms merged across
        shards carry the same bucket counts, totals, and extremes as a
        single recorder that timed every span itself."""
        whole_clock = _ScriptedClock()
        whole = Recorder("whole", clock=whole_clock)
        apply_shard_events(whole, whole_clock, events)
        shards = []
        clocks = []
        for i in range(3):
            clock = _ScriptedClock()
            shards.append(Recorder(f"s{i}", clock=clock))
            clocks.append(clock)
        for event, owner in zip(events, assignment):
            apply_shard_events(shards[owner], clocks[owner], [event])
        merged = merge_snapshots(r.snapshot() for r in shards)
        expected = whole.snapshot()
        assert merged.counters == expected.counters
        assert set(merged.histograms) == set(expected.histograms)
        for key, hist in expected.histograms.items():
            got = merged.histograms[key]
            assert got.counts == hist.counts
            assert (got.count, got.total, got.min, got.max) \
                == (hist.count, hist.total, hist.min, hist.max)


class TestSnapshotImmutability:
    @given(before=st.lists(event_strategy, max_size=40),
           after=st.lists(event_strategy, max_size=40))
    def test_later_recording_never_mutates_a_snapshot(self, before,
                                                      after):
        recorder = Recorder("r")
        apply_events(recorder, before)
        snap = recorder.snapshot()
        frozen = list(iter_jsonl(snap))     # deep textual fingerprint
        apply_events(recorder, after)
        recorder.snapshot()
        assert list(iter_jsonl(snap)) == frozen
