"""Property tests for the telemetry core.

Three load-bearing invariants:

* fixed-boundary bucketing agrees with a naive reference for any
  boundaries and any values (``le`` semantics, +Inf overflow);
* ``merge_snapshots`` over any partition of an event stream equals the
  snapshot of one recorder that saw every event — the property the fleet
  relies on when summing per-worker recorders;
* snapshots are frozen: recording after ``snapshot()`` never mutates an
  already-taken snapshot.
"""

from hypothesis import given, strategies as st

from repro.telemetry import (
    Histogram, Recorder, iter_jsonl, merge_snapshots,
)

bounds_strategy = st.lists(
    st.integers(1, 10**9), min_size=1, max_size=8, unique=True,
).map(lambda b: tuple(sorted(b)))

values_strategy = st.lists(st.integers(0, 2 * 10**9), max_size=64)

# An event stream a fleet might shard: counters keyed by (name, label)
# and observations into one histogram per name with fixed boundaries.
HIST_BOUNDS = (100, 10_000, 1_000_000)
event_strategy = st.one_of(
    st.tuples(st.just("counter"),
              st.sampled_from(["checks", "faults"]),
              st.sampled_from(["fdc", "sdhci"]),
              st.integers(1, 100)),
    st.tuples(st.just("observe"),
              st.sampled_from(["round_ns", "queue"]),
              st.integers(0, 10**7)),
)


def apply_events(recorder, events):
    for event in events:
        if event[0] == "counter":
            _, name, device, n = event
            recorder.counter(name, device=device).inc(n)
        else:
            _, name, value = event
            recorder.histogram(name, bounds=HIST_BOUNDS).observe(value)


def reference_bucket(bounds, value):
    for i, bound in enumerate(bounds):
        if value <= bound:
            return i
    return len(bounds)


class TestBucketing:
    @given(bounds=bounds_strategy, values=values_strategy)
    def test_bucketing_matches_reference(self, bounds, values):
        hist = Histogram("h", bounds=bounds)
        expected = [0] * (len(bounds) + 1)
        for value in values:
            hist.observe(value)
            expected[reference_bucket(bounds, value)] += 1
        assert hist.counts == expected
        assert sum(hist.counts) == hist.count == len(values)
        assert hist.total == sum(values)

    @given(bounds=bounds_strategy, values=values_strategy)
    def test_observe_many_equals_sequential_observe(self, bounds, values):
        seq = Histogram("h", bounds=bounds)
        batch = Histogram("h", bounds=bounds)
        for value in values:
            seq.observe(value)
        batch.observe_many(values)
        assert batch.snapshot() == seq.snapshot()

    @given(bounds=bounds_strategy, values=values_strategy,
           q=st.floats(0.0, 1.0))
    def test_percentile_is_a_bucket_bound_or_observed_max(self, bounds,
                                                          values, q):
        hist = Histogram("h", bounds=bounds)
        hist.observe_many(values)
        p = hist.snapshot().percentile(q)
        if not values:
            assert p == 0.0
        else:
            assert p in {float(b) for b in bounds} | {float(max(values))}


class TestMergePartition:
    @given(events=st.lists(event_strategy, max_size=60),
           parts=st.lists(st.integers(0, 2), min_size=60, max_size=60))
    def test_merge_of_any_partition_equals_one_recorder(self, events,
                                                        parts):
        whole = Recorder("whole")
        apply_events(whole, events)
        shards = [Recorder(f"s{i}") for i in range(3)]
        for event, part in zip(events, parts):
            apply_events(shards[part], [event])
        merged = merge_snapshots(s.snapshot() for s in shards)
        expected = whole.snapshot()
        assert merged.counters == expected.counters
        assert merged.histograms == expected.histograms

    @given(events=st.lists(event_strategy, max_size=40))
    def test_merge_is_order_independent(self, events):
        recorders = [Recorder("a"), Recorder("b")]
        for i, event in enumerate(events):
            apply_events(recorders[i % 2], [event])
        snaps = [r.snapshot() for r in recorders]
        forward = merge_snapshots(snaps)
        backward = merge_snapshots(reversed(snaps))
        assert forward.counters == backward.counters
        assert forward.histograms == backward.histograms


class TestSnapshotImmutability:
    @given(before=st.lists(event_strategy, max_size=40),
           after=st.lists(event_strategy, max_size=40))
    def test_later_recording_never_mutates_a_snapshot(self, before,
                                                      after):
        recorder = Recorder("r")
        apply_events(recorder, before)
        snap = recorder.snapshot()
        frozen = list(iter_jsonl(snap))     # deep textual fingerprint
        apply_events(recorder, after)
        recorder.snapshot()
        assert list(iter_jsonl(snap)) == frozen
