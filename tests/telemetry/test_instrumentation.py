"""Instrumentation wiring: staging/flush contracts, recorder caching on
toggle, IPT packet accounting, and the `repro stats` workload runner."""

from types import SimpleNamespace

import pytest

from repro.checker import Action, Mode, Strategy
from repro.compiler import compile_device
from repro.core import deploy
from repro.interp import Machine
from repro.ipt import Decoder, IPTTracer
from repro.telemetry import Recorder
from repro.telemetry.instruments import (
    _DRAIN_EVERY, CheckerTelemetry, MachineTelemetry,
)
from repro.telemetry.stats import (
    interp_summary, latency_rows, run_stats, strategy_rows,
)
from repro.workloads.profiles import PROFILES, train_device_spec

from tests.toydev import ToyLogic

LABELS = {"device": "FDCtrl", "backend": "compiled"}


def fake_report(action=Action.ALLOW, p=2, i=1, c=0, anomalies=(),
                incomplete=False):
    """Only the attributes CheckerTelemetry.record_round reads."""
    return SimpleNamespace(param_checks=p, indirect_checks=i,
                           conditional_checks=c, action=action,
                           anomalies=anomalies, incomplete=incomplete)


@pytest.fixture(scope="module")
def fdc_spec():
    return train_device_spec("fdc", qemu_version="99.0.0", seed=7,
                             repeats=2).spec


class TestCheckerStaging:
    def test_rounds_stage_until_snapshot_flushes(self):
        rec = Recorder("r")
        bundle = CheckerTelemetry(rec, "FDCtrl", "compiled")
        for _ in range(3):
            bundle.record_round(fake_report(), 500)
        # Nothing folded yet: the hot path only touches staged slots.
        assert rec.counter("checker.rounds", **LABELS).value == 0
        snap = rec.snapshot()     # snapshot() flushes first
        assert snap.counter("checker.rounds", **LABELS) == 3
        checks = snap.label_values("checker.checks", "strategy")
        assert checks == {"parameter": 6, "indirect_jump": 3,
                          "conditional_jump": 0}
        assert snap.label_values("checker.actions", "action") == \
            {"allow": 3, "warn": 0, "halt": 0, "trace_gap": 0}
        assert snap.histogram("checker.round_ns", **LABELS).count == 3
        # Staged state was consumed: a second snapshot adds nothing.
        again = rec.snapshot()
        assert again.counter("checker.rounds", **LABELS) == 3

    def test_non_allow_rounds_split_the_action_counters(self):
        rec = Recorder("r")
        bundle = CheckerTelemetry(rec, "FDCtrl", "compiled")
        anomaly = SimpleNamespace(strategy=Strategy.PARAMETER,
                                  kind="out-of-range")
        bundle.record_round(fake_report(), 500)
        bundle.record_round(
            fake_report(action=Action.WARN, anomalies=(anomaly,)), 700)
        bundle.record_round(
            fake_report(action=Action.HALT, anomalies=(anomaly,),
                        incomplete=True), 900)
        snap = rec.snapshot()
        assert snap.label_values("checker.actions", "action") == \
            {"allow": 1, "warn": 1, "halt": 1, "trace_gap": 0}
        assert snap.counter("checker.anomalies", strategy="parameter",
                            kind="out-of-range", **LABELS) == 2
        assert snap.counter("checker.incomplete_walks", **LABELS) == 1

    def test_sample_buffers_drain_without_a_snapshot(self):
        rec = Recorder("r")
        bundle = CheckerTelemetry(rec, "FDCtrl", "compiled")
        for _ in range(_DRAIN_EVERY):
            bundle.record_round(fake_report(), 500)
        # The histogram was drained to keep the buffer bounded...
        assert bundle._elapsed == []
        assert rec.histogram("checker.round_ns",
                             **LABELS).count == _DRAIN_EVERY
        # ...while the cheap integer counters stay staged until flush.
        assert rec.counter("checker.rounds", **LABELS).value == 0

    def test_ns_per_check_skips_zero_check_rounds(self):
        rec = Recorder("r")
        bundle = CheckerTelemetry(rec, "FDCtrl", "compiled")
        bundle.record_round(fake_report(p=0, i=0, c=0), 500)
        bundle.record_round(fake_report(p=4, i=0, c=0), 400)
        snap = rec.snapshot()
        per_check = snap.histogram("checker.ns_per_check", **LABELS)
        assert per_check.count == 1          # 0-check round contributed 0/0
        assert per_check.total == 100        # 400ns // 4 checks


class TestRecorderToggleCaching:
    def test_checker_reuses_bundle_and_registers_one_flush(self,
                                                           fdc_spec):
        prof = PROFILES["fdc"]
        vm, dev = prof.make_vm("99.0.0")
        deploy(vm, dev, fdc_spec, mode=Mode.ENHANCEMENT)
        checker = vm.attachments[dev.NAME].checker
        rec = Recorder("r")
        checker.set_recorder(rec)
        bundle = checker._telemetry
        assert bundle is not None
        checker.set_recorder(None)
        assert checker._telemetry is None
        checker.set_recorder(rec)
        assert checker._telemetry is bundle   # cached, not rebuilt
        assert len(rec._flushes) == 1         # no duplicate flush hooks

    def test_machine_reuses_bundle_and_registers_one_flush(self,
                                                           fdc_spec):
        prof = PROFILES["fdc"]
        vm, dev = prof.make_vm("99.0.0")
        rec = Recorder("r")
        dev.machine.set_recorder(rec)
        bundle = dev.machine._telemetry
        dev.machine.set_recorder(None)
        dev.machine.set_recorder(rec)
        assert dev.machine._telemetry is bundle
        assert len(rec._flushes) == 1


class TestMachineTelemetry:
    def test_rounds_and_blocks_stage_until_flush(self):
        rec = Recorder("r")
        bundle = MachineTelemetry(rec, "FDCtrl")
        bundle.record_round(10)
        bundle.record_round(15)
        assert rec.counter("interp.io_rounds", device="FDCtrl").value == 0
        snap = rec.snapshot()
        assert snap.counter("interp.io_rounds", device="FDCtrl") == 2
        assert snap.counter("interp.blocks", device="FDCtrl") == 25

    def test_faults_are_counted_immediately_by_kind(self):
        rec = Recorder("r")
        bundle = MachineTelemetry(rec, "FDCtrl")
        bundle.record_fault("oob-segfault", 7)
        assert rec.counter("interp.faults", kind="oob-segfault",
                           device="FDCtrl").value == 1
        snap = rec.snapshot()
        assert snap.counter("interp.io_rounds", device="FDCtrl") == 1
        assert snap.counter("interp.blocks", device="FDCtrl") == 7


class TestIPTAccounting:
    def test_every_emitted_packet_is_decoded(self):
        program = compile_device(ToyLogic)
        machine = Machine(program)
        machine.bind_extern("host_log", lambda m, level: None)
        machine.set_funcptr("irq", "on_irq")
        emit_rec = Recorder("emit")
        dec_rec = Recorder("dec")
        tracer = machine.add_sink(IPTTracer(recorder=emit_rec))
        for byte in (1, 2, 3):
            machine.run_entry("pmio:write:1", (byte,))
        Decoder(program, recorder=dec_rec).decode_stream(tracer.packets)
        emitted = emit_rec.snapshot().label_values("ipt.packets", "kind")
        decoded = dec_rec.snapshot().label_values("ipt.packets", "kind")
        # PSB is a stream-sync packet emitted *between* rounds; the
        # decoder consumes rounds (PGE..PGD), so every in-round packet
        # kind must balance exactly.
        assert emitted.pop("PSB") == 3
        assert emitted and emitted == decoded
        assert emit_rec.snapshot().counter("ipt.rounds",
                                           dir="emitted") == 3
        assert dec_rec.snapshot().counter("ipt.rounds",
                                          dir="decoded") == 3


class TestSpanClock:
    def test_span_times_with_the_recorder_clock(self):
        ticks = iter([100, 350])
        rec = Recorder("sim", clock=lambda: next(ticks))
        with rec.span("lat", bounds=(200, 400)):
            pass
        hist = rec.snapshot().histogram("lat")
        assert hist.count == 1
        assert hist.total == 250   # deterministic under the sim clock


class TestRunStats:
    def test_run_stats_fills_every_breakdown(self):
        run = run_stats(device="fdc", rounds=60, seed=7)
        assert run.rounds >= 60
        rows = {name: (checks, violations)
                for name, checks, violations in strategy_rows(
                    run.snapshot)}
        assert set(rows) == {"parameter", "indirect_jump",
                             "conditional_jump"}
        assert rows["parameter"][0] > 0
        assert rows["parameter"][1] == 0    # benign workload
        assert any(name == "checker.round_ns" and count >= 60
                   for name, count, *_ in latency_rows(run.snapshot))
        summary = interp_summary(run.snapshot)
        assert summary["io_rounds"] >= 60
        assert summary["blocks"] > 0
        assert summary["faults"] == 0
