"""Differential telemetry: the compiled and reference backends must
produce byte-identical *semantic* counters for the same workload.

Timing histograms may of course differ between backends; everything a
CheckReport feeds (rounds, per-strategy check counts, actions, anomaly
causes) and everything the interpreter counts (I/O rounds, blocks,
faults) must not.  This pins the invariant the overhead benchmark and
the fleet's mixed-backend deployments rely on: switching backend changes
speed, never what the telemetry says happened.
"""

import random

import pytest

from repro.checker import Mode
from repro.core import deploy
from repro.exploits import exploit_by_cve, run_exploit
from repro.telemetry import TelemetryRegistry
from repro.workloads.profiles import PROFILES, train_device_spec

DEVICE = "fdc"
ROUNDS = 120


@pytest.fixture(scope="module")
def benign_spec():
    return train_device_spec(DEVICE, qemu_version="99.0.0", seed=7,
                             repeats=2).spec


@pytest.fixture(scope="module")
def vulnerable_spec():
    exploit = exploit_by_cve("CVE-2015-3456")
    return train_device_spec(DEVICE, qemu_version=exploit.qemu_version,
                             seed=7, repeats=2).spec


def semantic_counters(snap):
    """Everything that must be backend-invariant, with the
    backend-distinguishing labels summed away."""
    return {
        "rounds": sum(snap.counters_named("checker.rounds").values()),
        "checks": snap.label_values("checker.checks", "strategy"),
        "actions": snap.label_values("checker.actions", "action"),
        "anomaly_strategies": snap.label_values("checker.anomalies",
                                                "strategy"),
        "anomaly_kinds": snap.label_values("checker.anomalies", "kind"),
        "incomplete": sum(
            snap.counters_named("checker.incomplete_walks").values()),
        "io_rounds": sum(
            snap.counters_named("interp.io_rounds").values()),
        "blocks": sum(snap.counters_named("interp.blocks").values()),
        "faults": snap.label_values("interp.faults", "kind"),
    }


def run_benign(spec, backend):
    registry = TelemetryRegistry()
    prof = PROFILES[DEVICE]
    vm, dev = prof.make_vm("99.0.0", backend=backend)
    deploy(vm, dev, spec, mode=Mode.ENHANCEMENT, backend=backend,
           recorder=registry.recorder("checker"))
    dev.machine.set_recorder(registry.recorder("interp"))
    driver = prof.make_driver(vm)
    prof.prepare(vm, driver)
    rng = random.Random(13)
    ops = prof.common_ops
    weights = prof.op_weights
    attachment = vm.attachments[dev.NAME]
    while attachment.checked_rounds < ROUNDS:
        if weights:
            op = rng.choices(ops, weights=weights, k=1)[0]
        else:
            op = rng.choice(ops)
        op(vm, driver, rng)
    return registry.snapshot()


def run_attacked(spec, backend):
    """CVE-2015-3456 at the vulnerable build, ENHANCEMENT mode: the
    checker warns and keeps serving, so the anomaly counters fill in."""
    exploit = exploit_by_cve("CVE-2015-3456")
    registry = TelemetryRegistry()
    prof = PROFILES[DEVICE]
    vm, dev = prof.make_vm(exploit.qemu_version, backend=backend)
    deploy(vm, dev, spec, mode=Mode.ENHANCEMENT, backend=backend,
           recorder=registry.recorder("checker"))
    dev.machine.set_recorder(registry.recorder("interp"))
    driver = prof.make_driver(vm)
    prof.prepare(vm, driver)
    run_exploit(vm, dev, exploit)
    return registry.snapshot()


class TestBackendCounterParity:
    def test_benign_workload_counters_identical(self, benign_spec):
        compiled = semantic_counters(run_benign(benign_spec, "compiled"))
        reference = semantic_counters(run_benign(benign_spec,
                                                 "reference"))
        assert compiled == reference
        # And the workload actually exercised the pipeline.
        assert compiled["rounds"] >= ROUNDS
        assert sum(compiled["checks"].values()) > 0
        assert compiled["io_rounds"] > 0
        assert compiled["blocks"] > 0

    def test_violation_counters_identical_under_attack(self,
                                                       vulnerable_spec):
        compiled = semantic_counters(
            run_attacked(vulnerable_spec, "compiled"))
        reference = semantic_counters(
            run_attacked(vulnerable_spec, "reference"))
        assert compiled == reference
        # The attack must be visible — otherwise parity is vacuous.
        assert sum(compiled["anomaly_strategies"].values()) > 0
        assert compiled["actions"].get("warn", 0) > 0
