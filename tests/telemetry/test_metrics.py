"""Telemetry primitives: counters, histograms, snapshots, exporters."""

import json

import pytest

from repro.telemetry import (
    EMPTY_SNAPSHOT, Counter, Histogram, Recorder, TelemetryError,
    TelemetryRegistry, iter_jsonl, labels_key, merge_snapshots,
    prometheus_text, write_jsonl,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_recorder_returns_same_handle_per_key(self):
        rec = Recorder("r")
        a = rec.counter("checks", strategy="parameter", device="fdc")
        b = rec.counter("checks", device="fdc", strategy="parameter")
        assert a is b   # label order must not mint a second cell
        assert rec.counter("checks", strategy="other") is not a

    def test_labels_key_is_order_independent(self):
        assert labels_key({"a": 1, "b": "x"}) == \
            labels_key({"b": "x", "a": 1})


class TestHistogram:
    def test_le_bucket_semantics(self):
        h = Histogram("h", bounds=(10, 20, 30))
        for value in (5, 10, 11, 30, 31):
            h.observe(value)
        # le=10 gets {5, 10}; le=20 gets {11}; le=30 gets {30};
        # +Inf overflow gets {31}.
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.total == 87
        assert (h.min, h.max) == (5, 31)

    def test_observe_many_matches_observe(self):
        values = [1, 7, 250, 251, 10**10, 3, 250]
        one = Histogram("a", bounds=(250, 500))
        many = Histogram("b", bounds=(250, 500))
        for v in values:
            one.observe(v)
        many.observe_many(values)
        many.observe_many([])    # no-op
        assert many.counts == one.counts
        assert (many.count, many.total) == (one.count, one.total)
        assert (many.min, many.max) == (one.min, one.max)

    def test_bad_boundaries_rejected(self):
        for bounds in ((), (10, 10), (20, 10)):
            with pytest.raises(TelemetryError):
                Histogram("h", bounds=bounds)

    def test_percentiles_answer_bucket_upper_bounds(self):
        h = Histogram("h", bounds=(100, 200, 300))
        h.observe_many([50] * 50 + [150] * 45 + [10_000] * 5)
        snap = h.snapshot()
        assert snap.percentile(0.50) == 100.0
        assert snap.percentile(0.95) == 200.0
        assert snap.percentile(0.99) == 10_000.0   # overflow -> observed max
        assert snap.percentile(0.0) == 100.0       # rank clamps to 1
        assert Histogram("e").snapshot().percentile(0.5) == 0.0

    def test_snapshot_mean(self):
        h = Histogram("h", bounds=(10,))
        h.observe(4)
        h.observe(8)
        assert h.snapshot().mean == 6.0
        assert Histogram("e").snapshot().mean == 0.0


class TestMerge:
    def test_merge_sums_counters_and_buckets(self):
        r1, r2 = Recorder("a"), Recorder("b")
        r1.inc("n", 3, device="fdc")
        r2.inc("n", 4, device="fdc")
        r2.inc("n", 5, device="sdhci")
        r1.observe("lat", 50)
        r2.observe("lat", 600)
        merged = merge_snapshots([r1.snapshot(), r2.snapshot()])
        assert merged.counter("n", device="fdc") == 7
        assert merged.counter("n", device="sdhci") == 5
        lat = merged.histogram("lat")
        assert lat.count == 2
        assert (lat.min, lat.max) == (50, 600)

    def test_merge_rejects_mismatched_bounds(self):
        r1, r2 = Recorder("a"), Recorder("b")
        r1.histogram("lat", bounds=(10, 20)).observe(1)
        r2.histogram("lat", bounds=(10, 30)).observe(1)
        with pytest.raises(TelemetryError):
            merge_snapshots([r1.snapshot(), r2.snapshot()])

    def test_merge_of_nothing_is_empty(self):
        assert merge_snapshots([]).empty
        assert EMPTY_SNAPSHOT.empty


class TestRegistry:
    def test_registries_do_not_share_state(self):
        reg1, reg2 = TelemetryRegistry(), TelemetryRegistry()
        reg1.recorder("checker").inc("n")
        assert reg2.snapshot().empty
        assert reg1.snapshot().counter("n") == 1

    def test_named_recorder_is_memoized(self):
        reg = TelemetryRegistry()
        assert reg.recorder("checker") is reg.recorder("checker")
        reg.recorder("interp")
        assert reg.names() == ["checker", "interp"]

    def test_snapshot_merges_all_recorders(self):
        reg = TelemetryRegistry()
        reg.recorder("a").inc("n", 1)
        reg.recorder("b").inc("n", 2)
        assert reg.snapshot().counter("n") == 3
        assert reg.snapshots()["a"].counter("n") == 1


class TestExporters:
    def _snapshot(self):
        rec = Recorder("r")
        rec.inc("checker.checks", 7, strategy="parameter")
        rec.histogram("checker.round_ns", bounds=(100, 200)).observe(150)
        return rec.snapshot()

    def test_jsonl_lines_parse_and_sort(self):
        lines = list(iter_jsonl(self._snapshot()))
        objs = [json.loads(line) for line in lines]
        assert [o["type"] for o in objs] == ["counter", "histogram"]
        assert objs[0]["value"] == 7
        assert objs[0]["labels"] == {"strategy": "parameter"}
        assert objs[1]["counts"] == [0, 1, 0]
        assert objs[1]["p50"] == 200.0

    def test_write_jsonl_returns_line_count(self, tmp_path):
        path = tmp_path / "out.jsonl"
        n = write_jsonl(self._snapshot(), str(path))
        assert n == 2
        assert len(path.read_text().splitlines()) == 2

    def test_prometheus_text_shape(self):
        text = prometheus_text(self._snapshot())
        assert '# TYPE checker_checks counter' in text
        assert 'checker_checks{strategy="parameter"} 7' in text
        assert '# TYPE checker_round_ns histogram' in text
        # Bucket counts are cumulative, ending in the +Inf total.
        assert 'checker_round_ns_bucket{le="100"} 0' in text
        assert 'checker_round_ns_bucket{le="200"} 1' in text
        assert 'checker_round_ns_bucket{le="+Inf"} 1' in text
        assert 'checker_round_ns_count 1' in text
        assert prometheus_text(EMPTY_SNAPSHOT) == ""
