"""A small synthetic device used throughout the test suite.

It has just enough structure to exercise every compiler/interpreter/spec
feature: registers, a FIFO with index/length counters, a function-pointer
IRQ callback, a command dispatch switch, a vulnerable (unchecked) write
path gated by a compile-time constant, and extern calls.
"""

from repro.compiler import DeviceLogic, arr, fld, ptr, reg


class ToyLogic(DeviceLogic):
    STRUCT = "ToyCtrl"
    FIELDS = (
        reg("status", "u8", doc="status register"),
        reg("cmd", "u8", doc="command register"),
        arr("fifo", "u8", 8, doc="data FIFO"),
        fld("pos", "i32", doc="FIFO cursor"),
        fld("count", "u8", doc="bytes queued"),
        ptr("irq", doc="interrupt callback"),
        fld("irq_level", "u8"),
    )
    CONSTS = {"VULN_UNCHECKED_PUSH": 0, "CMD_RESET": 0, "CMD_PUSH": 1,
              "CMD_POP": 2, "CMD_SUM": 3}
    EXTERNS = ("host_log",)
    ENTRIES = {
        "pmio:write:0": "write_cmd",
        "pmio:write:1": "write_data",
        "pmio:read:1": "read_data",
    }

    def write_cmd(self, value):
        """Command register write: dispatch on the command byte."""
        self.cmd = value
        sed_command_decision(value)  # noqa: F821  (compiler intrinsic)
        if value == self.CMD_RESET:
            self.do_reset()
        elif value == self.CMD_SUM:
            self.do_sum()
        sed_command_end()  # noqa: F821
        return 0

    def do_reset(self):
        self.pos = 0
        self.count = 0
        self.status = 0
        self.irq_level = 0

    def do_sum(self):
        total = 0
        for i in range(self.count):
            total = total + self.fifo[i]
        self.status = total
        self.raise_irq()

    def raise_irq(self):
        self.irq(1)

    def on_irq(self, level):
        self.irq_level = level
        host_log(level)  # noqa: F821

    def write_data(self, value):
        """Push a byte; the patched build bounds-checks the cursor."""
        if self.VULN_UNCHECKED_PUSH:
            self.fifo[self.pos] = value
            self.pos += 1
            self.count += 1
        else:
            if self.pos < len(self.fifo):
                self.fifo[self.pos] = value
                self.pos += 1
                self.count += 1
            else:
                self.status = 0xFF
        return 0

    def read_data(self):
        if self.count == 0:
            self.status = 0xFE
            return 0
        self.pos -= 1
        self.count -= 1
        value = self.fifo[self.pos]
        return value


def make_toy_machine(vuln=False, extern_cost=None, backend="compiled"):
    """The canonical ToyLogic machine: compiled with or without the
    vulnerable push path, ``host_log`` bound to a no-op, and the IRQ
    function pointer seeded.  Formerly copy-pasted (with slight drift)
    across the interp, checker, spec, telemetry, and integration
    suites — shared so device-harness changes land in one place."""
    from repro.compiler import compile_device
    from repro.interp import Machine

    overrides = {"VULN_UNCHECKED_PUSH": 1} if vuln else None
    program = compile_device(ToyLogic, const_overrides=overrides)
    machine = Machine(program, backend=backend)
    if extern_cost is None:
        machine.bind_extern("host_log", lambda m, level: None)
    else:
        machine.bind_extern("host_log", lambda m, level: None,
                            cost=extern_cost)
    machine.set_funcptr("irq", "on_irq")
    return machine
