"""Consistent-hash ring: determinism, coverage, minimal movement."""

import pytest

from repro.errors import GatewayError
from repro.gateway import HashRing, moved_tenants

TENANTS = [f"t{i:04d}" for i in range(400)]


class TestLookup:
    def test_placement_is_deterministic_across_instances(self):
        a = HashRing(range(4))
        b = HashRing(range(4))
        assert [a.lookup(t) for t in TENANTS] \
            == [b.lookup(t) for t in TENANTS]

    def test_shard_order_does_not_matter(self):
        a = HashRing([0, 1, 2, 3])
        b = HashRing([3, 1, 0, 2])
        assert [a.lookup(t) for t in TENANTS] \
            == [b.lookup(t) for t in TENANTS]

    def test_every_tenant_lands_on_a_real_shard(self):
        ring = HashRing(range(3))
        assert {ring.lookup(t) for t in TENANTS} <= set(ring.shards)

    def test_vnodes_spread_load_across_all_shards(self):
        ring = HashRing(range(4))
        owners = {ring.lookup(t) for t in TENANTS}
        assert owners == {0, 1, 2, 3}

    def test_empty_ring_rejected(self):
        with pytest.raises(GatewayError):
            HashRing([])
        with pytest.raises(GatewayError):
            HashRing([0], vnodes=0)


class TestRebalance:
    def test_add_moves_only_to_the_new_shard(self):
        old = HashRing(range(2))
        new = old.with_shards(add=(2,))
        moved = moved_tenants(old, new, TENANTS)
        assert moved                        # something moved...
        assert all(dst == 2 for _, dst in moved.values())
        # ...but nowhere near everything: consistent hashing moves
        # ~1/shards of the keys, full rehash would move ~2/3.
        assert len(moved) < len(TENANTS) * 0.55

    def test_remove_moves_exactly_the_dead_shards_tenants(self):
        old = HashRing(range(3))
        new = old.with_shards(remove=(1,))
        moved = moved_tenants(old, new, TENANTS)
        orphans = [t for t in TENANTS if old.lookup(t) == 1]
        assert sorted(moved) == sorted(orphans)
        assert all(dst != 1 for _, dst in moved.values())

    def test_with_shards_leaves_the_original_untouched(self):
        old = HashRing(range(2))
        before = [old.lookup(t) for t in TENANTS]
        old.with_shards(add=(5,), remove=(0,))
        assert [old.lookup(t) for t in TENANTS] == before

    def test_add_then_remove_round_trips(self):
        base = HashRing(range(2))
        there_and_back = base.with_shards(add=(2,)).with_shards(
            remove=(2,))
        assert not moved_tenants(base, there_and_back, TENANTS)
