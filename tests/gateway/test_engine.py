"""Gateway event loop: conservation, coalescing, determinism,
rebalancing, and inline/pool parity across shards."""

import pytest

from repro.errors import GatewayError, ReproError
from repro.fleet import SpecRegistry
from repro.fleet.loadgen import plan_tenants
from repro.gateway import (
    AdmissionConfig, ArrivalSpec, Gateway, GatewayConfig,
    RebalanceAction,
)
from repro.telemetry.stats import gateway_rows


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    cache = tmp_path_factory.mktemp("gw-spec-cache")
    return SpecRegistry(cache_dir=str(cache))


def gw_config(registry, **overrides):
    base = dict(
        shards=2, workers_per_shard=2, seed=3, inline=True,
        cache_dir=registry.cache_dir,
        arrival=ArrivalSpec(pattern="poisson", rate_per_sec=400.0,
                            horizon_s=0.01))
    base.update(overrides)
    return GatewayConfig(**base)


def fdc_plans(n=16, **kwargs):
    return plan_tenants(["fdc"], n, **kwargs)


class TestConservation:
    def test_small_run_certifies_all_invariants(self, registry):
        result = Gateway(gw_config(registry),
                         registry=registry).run(fdc_plans())
        assert result.safety_failures() == []
        s = result.stats
        assert s.offered > 0
        assert s.offered == s.admitted + s.quota_rejected + s.queue_shed
        assert s.latency_samples == s.admitted
        assert result.fleet.requests == s.dispatched_ops
        assert result.fleet.lost == 0

    def test_stats_plane_matches_the_books(self, registry):
        result = Gateway(gw_config(registry),
                         registry=registry).run(fdc_plans())
        rows = dict(gateway_rows(result.telemetry))
        assert rows["gateway.admitted"] == result.stats.admitted
        assert rows["gateway.dispatches"] == result.stats.dispatches
        assert rows["gateway.slo_violations"] \
            == result.stats.slo_violations

    def test_tight_quota_sheds_but_stays_safe(self, registry):
        config = gw_config(
            registry,
            arrival=ArrivalSpec(pattern="bursty", rate_per_sec=3_000.0,
                                horizon_s=0.01),
            admission=AdmissionConfig(quota_rate_per_sec=100.0,
                                      quota_burst=2, queue_cap=2))
        result = Gateway(config, registry=registry).run(fdc_plans(8))
        assert result.stats.quota_rejected + result.stats.queue_shed > 0
        assert result.safety_failures() == []

    def test_runs_are_deterministic(self, registry):
        fields = ("offered", "admitted", "quota_rejected", "queue_shed",
                  "dispatches", "dispatched_ops", "makespan_cycles",
                  "p50_latency_cycles", "p99_latency_cycles",
                  "slo_violations")
        a = Gateway(gw_config(registry), registry=registry).run(
            fdc_plans())
        b = Gateway(gw_config(registry), registry=registry).run(
            fdc_plans())
        assert [getattr(a.stats, f) for f in fields] \
            == [getattr(b.stats, f) for f in fields]
        assert a.fleet.detections == b.fleet.detections


class TestCoalescing:
    def test_backlog_coalesces_into_fewer_dispatches(self, registry):
        config = gw_config(
            registry, shards=1, workers_per_shard=1, coalesce_max=8,
            arrival=ArrivalSpec(pattern="poisson",
                                rate_per_sec=5_000.0, horizon_s=0.01))
        result = Gateway(config, registry=registry).run(fdc_plans(4))
        assert result.stats.coalesce_mean > 1.0
        assert result.safety_failures() == []

    def test_coalesce_max_one_means_singleton_batches(self, registry):
        config = gw_config(
            registry, shards=1, workers_per_shard=1, coalesce_max=1,
            arrival=ArrivalSpec(pattern="poisson",
                                rate_per_sec=5_000.0, horizon_s=0.01))
        result = Gateway(config, registry=registry).run(fdc_plans(4))
        assert result.stats.dispatches == result.stats.dispatched_ops
        assert result.safety_failures() == []


class TestRebalance:
    def test_shard_add_moves_tenants_and_loses_nothing(self, registry):
        plans = fdc_plans(24, inject_cves=["CVE-2015-3456"])
        config = gw_config(registry)
        mid = config.arrival.horizon_cycles // 2
        result = Gateway(config, registry=registry).run(
            plans, rebalances=[RebalanceAction(at_cycle=mid, add=(2,))])
        assert result.stats.rebalances == 1
        assert result.stats.moved_tenants > 0
        assert all(dst == 2 for _, dst in result.moves.values())
        assert result.fleet.lost == 0
        assert result.fleet.duplicate_results == 0
        assert result.fleet.detections >= 1
        assert result.quarantined_tenants() == result.attacked_tenants()
        assert result.safety_failures() == []

    def test_shard_remove_drains_cleanly(self, registry):
        config = gw_config(registry)
        mid = config.arrival.horizon_cycles // 2
        result = Gateway(config, registry=registry).run(
            fdc_plans(24),
            rebalances=[RebalanceAction(at_cycle=mid, remove=(1,))])
        assert result.stats.moved_tenants > 0
        assert all(dst == 0 for _, dst in result.moves.values())
        assert result.fleet.lost == 0
        assert result.safety_failures() == []


class TestShardedParity:
    def test_pool_matches_inline_byte_for_byte(self, registry):
        """The sharded path preserves the supervisor's inline/pool
        parity: identical admission books, identical deterministic
        latency percentiles, identical security outcome."""
        plans = fdc_plans(6, inject_cves=["CVE-2015-3456"])
        arrival = ArrivalSpec(pattern="poisson", rate_per_sec=200.0,
                              horizon_s=0.01)
        inline = Gateway(gw_config(registry, arrival=arrival),
                         registry=registry).run(plans)
        pool = Gateway(gw_config(registry, arrival=arrival,
                                 inline=False),
                       registry=registry).run(plans)
        for f in ("offered", "admitted", "dispatches", "dispatched_ops",
                  "makespan_cycles", "p50_latency_cycles",
                  "p95_latency_cycles", "p99_latency_cycles"):
            assert getattr(inline.stats, f) == getattr(pool.stats, f), f
        assert inline.fleet.detections == pool.fleet.detections
        assert inline.fleet.completed == pool.fleet.completed
        for tenant, summary in inline.tenants.items():
            other = pool.tenants[tenant]
            assert (summary.submitted, summary.completed,
                    summary.detections, summary.quarantined) \
                == (other.submitted, other.completed,
                    other.detections, other.quarantined), tenant
        assert pool.safety_failures() == []


class TestValidation:
    def test_bad_configs_rejected(self):
        with pytest.raises(GatewayError):
            Gateway(GatewayConfig(shards=0))
        with pytest.raises(GatewayError):
            Gateway(GatewayConfig(coalesce_max=0))

    def test_reload_of_unknown_digest_rejected(self, registry):
        gateway = Gateway(GatewayConfig(cache_dir=registry.cache_dir),
                          registry=registry)
        with pytest.raises(ReproError):
            gateway.reload_spec("fdc", "no-such-digest")

    def test_describe_mentions_the_slo(self, registry):
        result = Gateway(gw_config(registry),
                         registry=registry).run(fdc_plans(4))
        text = result.stats.describe()
        assert "SLO" in text and "coalesce" in text
