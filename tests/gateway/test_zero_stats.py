"""Degenerate-run hardening: derived metrics at zero dispatches.

A gateway run where nothing arrives (empty tenant set, zero horizon) or
nothing is admitted (zero quota, zero queue capacity) still renders its
whole stats plane — ``describe()``, the benchmark row, the Prometheus
and JSON-lines exports — with no ``ZeroDivisionError`` and no NaN/inf
leaking into any derived metric (``coalesce_mean``, latency
percentiles, SLO-violation rate, rounds/sec).  These tests pin the
zero-guards so a refactor of the stats plane cannot silently drop one.
"""

import math

import pytest

from repro.fleet import SpecRegistry
from repro.fleet.loadgen import plan_tenants
from repro.fleet.supervisor import FleetStats, percentile
from repro.gateway import (
    AdmissionConfig, ArrivalSpec, Gateway, GatewayConfig,
)
from repro.gateway.bench import gateway_point
from repro.gateway.engine import (
    GatewayStats, merge_fleet_stats, merge_tenant_summaries,
)
from repro.telemetry import Recorder, prometheus_text
from repro.telemetry.export import iter_jsonl


def _assert_finite(value):
    assert isinstance(value, (int, float))
    assert math.isfinite(value), value


def _assert_row_finite(row):
    for key, value in row.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            assert math.isfinite(value), (key, value)


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    cache = tmp_path_factory.mktemp("zero-stats-cache")
    return SpecRegistry(cache_dir=str(cache))


def _config(registry, **overrides):
    base = dict(shards=2, workers_per_shard=2, seed=3, inline=True,
                cache_dir=registry.cache_dir,
                arrival=ArrivalSpec(pattern="poisson",
                                    rate_per_sec=400.0, horizon_s=0.01))
    base.update(overrides)
    return GatewayConfig(**base)


def _assert_stats_plane_clean(result):
    stats = result.stats
    for value in (stats.coalesce_mean, stats.slo_violation_rate,
                  stats.makespan_seconds, stats.p50_latency_ms,
                  stats.p95_latency_ms, stats.p99_latency_ms,
                  result.fleet.rounds_per_sec,
                  result.fleet.p50_request_ms):
        _assert_finite(value)
    assert "nan" not in stats.describe().split("tenants")[0]
    _assert_row_finite(gateway_point(result))
    assert result.safety_failures() == []


class TestEmptyGatewayRuns:
    def test_no_tenants_at_all(self, registry):
        result = Gateway(_config(registry), registry=registry).run([])
        _assert_stats_plane_clean(result)
        assert result.stats.offered == 0
        assert result.stats.dispatches == 0

    def test_zero_horizon_offers_nothing(self, registry):
        config = _config(registry, arrival=ArrivalSpec(
            pattern="poisson", rate_per_sec=400.0, horizon_s=0.0))
        result = Gateway(config, registry=registry).run(
            plan_tenants(["fdc"], 4))
        _assert_stats_plane_clean(result)
        assert result.stats.offered == 0

    def test_zero_quota_admits_nothing(self, registry):
        config = _config(registry, admission=AdmissionConfig(
            quota_rate_per_sec=0.0, quota_burst=0))
        result = Gateway(config, registry=registry).run(
            plan_tenants(["fdc"], 4))
        _assert_stats_plane_clean(result)
        assert result.stats.offered > 0
        assert result.stats.admitted == 0
        assert result.stats.quota_rejected == result.stats.offered

    def test_zero_queue_capacity_sheds_everything(self, registry):
        config = _config(registry,
                         admission=AdmissionConfig(queue_cap=0))
        result = Gateway(config, registry=registry).run(
            plan_tenants(["fdc"], 4))
        _assert_stats_plane_clean(result)
        assert result.stats.admitted == 0
        assert result.stats.queue_shed == result.stats.offered


class TestZeroValueDataclasses:
    def test_gateway_stats_defaults(self):
        stats = GatewayStats()
        assert stats.coalesce_mean == 0.0
        assert stats.slo_violation_rate == 0.0
        assert "x0.00" in stats.describe()

    def test_fleet_stats_defaults(self):
        stats = FleetStats()
        assert stats.rounds_per_sec == 0.0
        assert stats.p50_request_ms == 0.0
        assert stats.makespan_seconds == 0.0

    def test_percentile_empty_sample(self):
        assert percentile([], 0.50) == 0.0
        assert percentile([], 0.99) == 0.0

    def test_merge_of_zero_shards(self):
        merged = merge_fleet_stats([], [], [])
        assert merged.rounds_per_sec == 0.0
        assert merged.p99_request_cycles == 0.0
        assert merge_tenant_summaries([]) == {}


class TestZeroSampleExports:
    def test_prometheus_export_of_untouched_recorder(self):
        recorder = Recorder()
        recorder.histogram("gateway.latency_cycles", pattern="poisson")
        text = prometheus_text(recorder.snapshot())
        assert "nan" not in text.lower().replace("+inf", "")
        assert "gateway_latency_cycles_count" in text
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            _assert_finite(float(line.rsplit(" ", 1)[1]))

    def test_jsonl_export_of_zero_count_histogram(self):
        import json

        recorder = Recorder()
        recorder.histogram("gateway.latency_cycles", pattern="poisson")
        lines = list(iter_jsonl(recorder.snapshot()))
        assert lines
        for line in lines:
            obj = json.loads(line)     # NaN would raise in strict JSON
            if obj["type"] == "histogram":
                assert obj["count"] == 0
                assert obj["p50"] == 0.0
                assert obj["p99"] == 0.0

    def test_zero_count_histogram_mean(self):
        recorder = Recorder()
        hist = recorder.histogram("x.y")
        snap = hist.snapshot()
        assert snap.mean == 0.0
        assert snap.percentile(0.99) == 0.0
