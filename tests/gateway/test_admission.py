"""Admission gates: token-bucket quota and bounded per-tenant queues,
both on the simulated (cycle) clock."""

from repro.gateway import (
    ADMIT_OK, ADMIT_QUEUE, ADMIT_QUOTA, AdmissionConfig,
    AdmissionController, TokenBucket,
)
from repro.workloads.benchtools import CYCLES_PER_SECOND


class TestTokenBucket:
    def test_burst_capacity_then_rejection(self):
        bucket = TokenBucket(rate_per_sec=100.0, burst=4)
        assert [bucket.admit(0) for _ in range(5)] \
            == [True, True, True, True, False]

    def test_refills_at_the_configured_rate(self):
        bucket = TokenBucket(rate_per_sec=100.0, burst=1)
        assert bucket.admit(0)
        assert not bucket.admit(0)
        # 100/s on the 1 GHz clock: one token every 10 ms of cycles.
        one_token = int(CYCLES_PER_SECOND / 100)
        assert not bucket.admit(one_token // 2)
        assert bucket.admit(one_token + 1)

    def test_refill_never_exceeds_capacity(self):
        bucket = TokenBucket(rate_per_sec=1_000.0, burst=3)
        for _ in range(3):
            assert bucket.admit(0)
        # An hour of idle refill still caps at burst=3 tokens.
        later = 3600 * CYCLES_PER_SECOND
        assert [bucket.admit(later) for _ in range(4)] \
            == [True, True, True, False]

    def test_deterministic_replay(self):
        def drive(bucket):
            return [bucket.admit(c) for c in range(0, 10**8, 10**6)]
        a = TokenBucket(rate_per_sec=500.0, burst=2)
        b = TokenBucket(rate_per_sec=500.0, burst=2)
        assert drive(a) == drive(b)


class TestAdmissionController:
    def test_quota_gate_fires_before_queue_gate(self):
        ctl = AdmissionController(AdmissionConfig(
            quota_rate_per_sec=100.0, quota_burst=2, queue_cap=1))
        assert ctl.try_admit("t0", 0, queue_depth=0) == ADMIT_OK
        # Second token available but the queue is full: shed.
        assert ctl.try_admit("t0", 0, queue_depth=1) == ADMIT_QUEUE
        # Third arrival has no token left: quota, not queue.
        assert ctl.try_admit("t0", 0, queue_depth=1) == ADMIT_QUOTA

    def test_books_always_balance(self):
        ctl = AdmissionController(AdmissionConfig(
            quota_rate_per_sec=1_000.0, quota_burst=3, queue_cap=2))
        for cycle in range(0, 50 * 10**6, 10**6):
            for tenant in ("a", "b"):
                ctl.try_admit(tenant, cycle, queue_depth=cycle % 4)
        assert ctl.offered == 100
        assert ctl.offered == (ctl.admitted + ctl.quota_rejected
                               + ctl.queue_shed)
        assert sum(ctl.rejected_by_tenant.values()) \
            == ctl.quota_rejected + ctl.queue_shed

    def test_tenants_have_independent_buckets(self):
        ctl = AdmissionController(AdmissionConfig(
            quota_rate_per_sec=100.0, quota_burst=1, queue_cap=8))
        assert ctl.try_admit("noisy", 0, 0) == ADMIT_OK
        assert ctl.try_admit("noisy", 0, 0) == ADMIT_QUOTA
        # The noisy neighbour's exhausted bucket is not "quiet"'s.
        assert ctl.try_admit("quiet", 0, 0) == ADMIT_OK
        assert ctl.rejected_by_tenant == {"noisy": 1}
