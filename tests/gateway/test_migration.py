"""Gateway-level migration and policy hot reload.

A rebalance now *migrates* moved tenants — sealed checkpoint from the
source shard, restore on the destination — instead of dropping their
instance state, so a mid-run shard add must be invisible to the verdict
stream.  Policy reloads are gateway events: validated eagerly (malformed
documents never reach a shard), applied to every live shard at one
simulated instant, and inherited by shards added later.
"""

import pytest

from repro.errors import PolicyError
from repro.fleet import SpecRegistry
from repro.fleet.loadgen import plan_tenants
from repro.fleet.migration import tenant_signatures
from repro.gateway import (
    ArrivalSpec, Gateway, GatewayConfig, PolicyReloadAction,
    RebalanceAction,
)
from repro.policy.model import PolicySet, TenantPolicy

ARRIVAL = ArrivalSpec(pattern="poisson", rate_per_sec=400.0,
                      horizon_s=0.01)


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    cache = tmp_path_factory.mktemp("gw-mig-cache")
    return SpecRegistry(cache_dir=str(cache))


def _config(registry, **overrides):
    base = dict(shards=2, workers_per_shard=2, seed=3, inline=True,
                cache_dir=registry.cache_dir, arrival=ARRIVAL)
    base.update(overrides)
    return GatewayConfig(**base)


def _run(registry, rebalances=(), policy_reloads=(), tenants=12,
         inject_fraction=0.25, **overrides):
    plans = plan_tenants(["fdc"], tenants,
                         inject_fraction=inject_fraction, seed=3)
    return Gateway(_config(registry, **overrides),
                   registry=registry).run(
        plans, rebalances=rebalances, policy_reloads=policy_reloads)


def _signatures(result):
    """Per-tenant verdict signatures over all shards' report streams."""
    class _Merged:
        reports = [(tenant, report)
                   for fleet_result in result.shard_results.values()
                   for tenant, report in fleet_result.reports]
    return tenant_signatures(_Merged)


MID_REBALANCE = RebalanceAction(
    at_cycle=ARRIVAL.horizon_cycles // 2, add=(2,))


class TestRebalanceMigration:
    def test_shard_add_migrates_state_byte_identically(self, registry):
        baseline = _run(registry)
        moved = _run(registry, rebalances=[MID_REBALANCE])
        assert baseline.safety_failures() == []
        assert moved.safety_failures() == []
        assert moved.moves, "rebalance moved nobody"
        assert moved.stats.migrations > 0
        assert moved.fleet.migrations == moved.stats.migrations
        # The moved run's verdict streams are indistinguishable from
        # the never-rebalanced baseline: nothing lost, nothing rerun,
        # no verdict changed by the move.
        assert _signatures(moved) == _signatures(baseline)
        assert moved.fleet.detections == baseline.fleet.detections
        assert moved.quarantined_tenants() \
            == baseline.quarantined_tenants()

    def test_strikeless_tenants_still_move_safely(self, registry):
        # Tenants the source shard never built an instance for yield no
        # envelope (checkpoint is None); the move must still be clean.
        result = _run(registry, rebalances=[MID_REBALANCE],
                      inject_fraction=0.0)
        assert result.safety_failures() == []
        assert result.stats.migrations <= len(result.moves)


class TestPolicyReload:
    SILVER = PolicySet(default=TenantPolicy(policy_id="silver"))

    def test_mid_run_reload_fires_on_every_shard(self, registry):
        action = PolicyReloadAction(
            at_cycle=ARRIVAL.horizon_cycles // 3,
            policies=self.SILVER)
        result = _run(registry, policy_reloads=[action],
                      policies=PolicySet(
                          default=TenantPolicy(policy_id="gold")))
        assert result.safety_failures() == []
        assert result.stats.policy_reload_events == 1
        assert result.fleet.policy_reloads > 0
        ids = {s.policy_id for s in result.tenants.values()
               if s.policy_id}
        assert "silver" in ids

    def test_added_shard_inherits_fired_reload(self, registry):
        reload_at = ARRIVAL.horizon_cycles // 4
        action = PolicyReloadAction(at_cycle=reload_at,
                                    policies=self.SILVER)
        result = _run(registry, policy_reloads=[action],
                      rebalances=[MID_REBALANCE])
        assert result.safety_failures() == []
        # Shard 2 only exists after the reload fired, so every batch it
        # served — stamped tenants included — ran on the reloaded
        # generation, never the boot default.
        added = result.shard_results[2]
        stamped = {s.policy_id for s in added.tenants.values()
                   if s.policy_id}
        assert stamped <= {"silver"}
        assert "silver" in {s.policy_id for s in result.tenants.values()
                            if s.policy_id}

    def test_malformed_reload_rejected_before_any_shard(self, registry):
        action = PolicyReloadAction(
            at_cycle=1, policies={"default": {"circuit_cooldown": 0}})
        gateway = Gateway(_config(registry), registry=registry)
        with pytest.raises(PolicyError):
            gateway.run(plan_tenants(["fdc"], 4, seed=3),
                        policy_reloads=[action])
        # The gateway object is still usable: nothing was scheduled.
        result = gateway.run(plan_tenants(["fdc"], 4, seed=3))
        assert result.safety_failures() == []
        assert result.stats.policy_reload_events == 0
