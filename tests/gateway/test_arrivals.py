"""Open-loop arrival streams: seeded determinism, tenant independence,
exploit splicing, and the pattern dispatcher."""

import pytest

from repro.errors import GatewayError
from repro.fleet.loadgen import plan_tenants
from repro.gateway import ArrivalSpec, build_streams, tenant_rng
from repro.workloads.benchtools import ARRIVAL_PATTERNS

SPEC = ArrivalSpec(pattern="poisson", rate_per_sec=500.0,
                   horizon_s=0.02)


def plans(n=6, **kwargs):
    return plan_tenants(["fdc", "pcnet"], n, **kwargs)


class TestDeterminism:
    def test_same_seed_same_streams(self):
        a = build_streams(plans(), SPEC, seed=3)
        b = build_streams(plans(), SPEC, seed=3)
        assert a == b

    def test_different_seed_different_streams(self):
        a = build_streams(plans(), SPEC, seed=3)
        b = build_streams(plans(), SPEC, seed=4)
        assert a != b

    def test_streams_survive_other_tenants_leaving(self):
        """sha256-keyed per-tenant RNG: dropping half the fleet leaves
        the remaining tenants' streams byte-identical (so a scaling
        sweep at 1k and 4k tenants serves the shared prefix the same)."""
        big = {s.plan.tenant: s for s in build_streams(plans(6), SPEC,
                                                       seed=7)}
        small = {s.plan.tenant: s for s in build_streams(plans(3), SPEC,
                                                         seed=7)}
        for tenant, stream in small.items():
            assert big[tenant].arrivals == stream.arrivals

    def test_tenant_rng_is_keyed_not_shared(self):
        assert tenant_rng(1, "a").random() != tenant_rng(1, "b").random()
        assert tenant_rng(1, "a").random() == tenant_rng(1, "a").random()


class TestPatterns:
    @pytest.mark.parametrize("pattern", ARRIVAL_PATTERNS)
    def test_all_patterns_produce_sorted_in_horizon_arrivals(self,
                                                             pattern):
        spec = ArrivalSpec(pattern=pattern, rate_per_sec=2_000.0,
                           horizon_s=0.02)
        for stream in build_streams(plans(), spec, seed=5):
            times = [t for t, _ in stream.arrivals]
            assert times == sorted(times)
            assert all(0 <= t < spec.horizon_cycles for t in times)
            assert times        # 2k ops/s over 20 ms: ~40 expected

    def test_bursty_is_burstier_than_poisson(self):
        """Same mean rate: the MMPP's on-phase packs arrivals into a
        fraction of the horizon, so its peak 1-ms window beats the
        Poisson one across the fleet."""
        def peak_window(spec):
            peak = 0
            for stream in build_streams(plans(8), spec, seed=11):
                times = [t for t, _ in stream.arrivals]
                for t in times:
                    window = sum(1 for u in times
                                 if t <= u < t + 10**6)
                    peak = max(peak, window)
            return peak
        rate = 3_000.0
        assert peak_window(ArrivalSpec("bursty", rate, 0.02)) \
            > peak_window(ArrivalSpec("poisson", rate, 0.02))

    def test_unknown_pattern_raises(self):
        with pytest.raises(GatewayError, match="unknown arrival"):
            build_streams(plans(), ArrivalSpec(pattern="lunar"), seed=0)


class TestExploitSplicing:
    def test_attacked_tenant_gets_exactly_one_exploit_op(self):
        attacked_plans = plans(4, inject_cves=["CVE-2015-3456"])
        streams = build_streams(attacked_plans, SPEC, seed=9)
        for stream in streams:
            exploits = [op for _, op in stream.arrivals
                        if op.kind == "exploit"]
            if stream.plan.attacked:
                assert len(exploits) == 1
                assert exploits[0].cve == stream.plan.attack_cve
            else:
                assert not exploits

    def test_empty_stream_still_carries_the_exploit(self):
        quiet = ArrivalSpec(pattern="poisson", rate_per_sec=0.001,
                            horizon_s=0.001)
        streams = build_streams(plans(4, inject_cves=["CVE-2015-3456"]),
                                quiet, seed=1)
        attacked = [s for s in streams if s.plan.attacked]
        assert attacked
        for stream in attacked:
            assert any(op.kind == "exploit"
                       for _, op in stream.arrivals)
