"""Tests for the Nioh FSM and VMDec Markov baselines."""

import random

import pytest

from repro.baselines import (
    DeviceFSM, MarkovModel, VMDecDetector, attach_nioh, tokenize,
)
from repro.errors import DeviceFault
from repro.exploits import exploit_by_cve
from repro.workloads.profiles import PROFILES

NIOH_CVES = ("CVE-2015-3456", "CVE-2015-5158", "CVE-2016-4439",
             "CVE-2016-7909", "CVE-2016-1568")


class TestDeviceFSM:
    def make(self):
        return DeviceFSM("t", "A", {("A", "go"): "B", ("B", "back"): "A"},
                         selfloop_events=("noise",))

    def test_legal_transitions(self):
        fsm = self.make()
        assert fsm.feed("go")
        assert fsm.state == "B"
        assert fsm.feed("back")
        assert fsm.state == "A"

    def test_illegal_transition_recorded_and_refused(self):
        fsm = self.make()
        assert not fsm.feed("back")     # not legal from A
        assert fsm.state == "A"
        assert len(fsm.violations) == 1

    def test_selfloop_events_always_legal(self):
        fsm = self.make()
        assert fsm.feed("noise")
        assert fsm.state == "A"
        assert not fsm.violations

    def test_reset(self):
        fsm = self.make()
        fsm.feed("go")
        fsm.reset()
        assert fsm.state == "A"


class TestNiohDetection:
    @pytest.mark.parametrize("cve", NIOH_CVES)
    def test_detects_all_five_nioh_cves(self, cve):
        exploit = exploit_by_cve(cve)
        prof = PROFILES[exploit.device]
        vm, device = prof.make_vm(exploit.qemu_version)
        monitor = attach_nioh(device)
        try:
            exploit.run(vm, device)
        except DeviceFault:
            pass
        assert monitor.detected, cve

    @pytest.mark.parametrize("name", ["fdc", "scsi", "pcnet"])
    def test_benign_and_rare_traffic_clean(self, name):
        prof = PROFILES[name]
        vm, device = prof.make_vm()
        monitor = attach_nioh(device)
        driver = prof.make_driver(vm)
        rng = random.Random(5)
        prof.prepare(vm, driver)
        for _ in range(30):
            rng.choice(prof.common_ops)(vm, driver, rng)
        for rare in prof.rare_ops:
            rare(vm, driver, rng)
        assert not monitor.violations, [str(v) for v in monitor.violations]

    def test_unmodelled_device_rejected(self):
        prof = PROFILES["sdhci"]
        _, device = prof.make_vm()
        with pytest.raises(KeyError, match="scalability"):
            attach_nioh(device)


class TestVMDec:
    def test_tokenize(self):
        assert tokenize("pmio:write:5") == ("write", 5)
        assert tokenize("pmio:read:0") == ("read", 0)

    def test_trained_transitions_probable(self):
        model = MarkovModel()
        model.train(["pmio:write:1", "pmio:write:1", "pmio:read:1"])
        assert model.probability(("write", 1), ("write", 1)) == 0.5
        assert model.probability(("write", 1), ("read", 1)) == 0.5

    def test_unseen_transition_zero(self):
        model = MarkovModel()
        model.train(["pmio:write:1", "pmio:read:1"])
        assert model.probability(("read", 1), ("write", 9)) == 0.0

    def test_detector_flags_novel_sequence(self):
        detector = VMDecDetector()
        detector.train_sequences(
            [["pmio:write:1", "pmio:read:1"]] * 10)
        assert not detector.is_anomalous(["pmio:write:1", "pmio:read:1"])
        assert detector.is_anomalous(["pmio:write:7"])

    def test_flagged_positions(self):
        detector = VMDecDetector()
        detector.train_sequences([["pmio:write:1", "pmio:read:1"]] * 3)
        positions = detector.flagged_positions(
            ["pmio:write:1", "pmio:write:7", "pmio:read:1"])
        assert 1 in positions

    def test_statistically_ordinary_attack_slips_through(self):
        """Venom's flood of data-port writes looks like normal traffic to
        a Markov model — the imprecision the paper cites."""
        detector = VMDecDetector()
        detector.train_sequences(
            [["pmio:write:5"] * 6 + ["pmio:read:5"] * 2] * 5)
        flood = ["pmio:write:5"] * 600
        assert not detector.is_anomalous(flood)
