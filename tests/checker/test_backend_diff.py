"""Differential tests: the compiled and bytecode ES-Checker backends
vs the reference spec walker.

The fast checkers' contract mirrors the compiled Machine's: bit-exact
observables.  Every ``CheckReport`` (action, anomaly list, walk
counters, incompleteness, final shadow state), the checker's cycle
accounting, and the shadow device state must be identical whichever
backend walked the spec — across all five device profiles under benign
workloads, and across every seeded CVE PoC.  In particular, every
detection the reference walker fires must still fire on the fast
backends.  The reference walker remains the semantic oracle for both.
"""

import random

import pytest

from repro.checker import Mode
from repro.core import deploy
from repro.exploits.pocs import EXPLOITS, run_exploit
from repro.vm.machine import SEDSpecHalt
from repro.workloads.profiles import PROFILES, train_device_spec

ALL_DEVICES = ("fdc", "ehci", "pcnet", "sdhci", "scsi",
               "virtio-net", "virtio-blk")
BACKENDS = ("reference", "compiled", "bytecode")
FAST_BACKENDS = ("compiled", "bytecode")


@pytest.fixture(scope="module")
def spec_cache():
    """Specs are expensive to train; share them across every test in the
    module, keyed exactly like eval.security's cache."""
    return {}


def _spec(cache, device, qemu_version="99.0.0"):
    key = (device, qemu_version)
    if key not in cache:
        cache[key] = train_device_spec(
            device, qemu_version=qemu_version).spec
    return cache[key]


def _assert_checkers_identical(ref, com):
    """Full observable equality between two checker deployments."""
    assert len(ref.history) == len(com.history)
    for ref_report, com_report in zip(ref.history, com.history):
        # dataclass equality covers io_key, action, anomalies,
        # blocks_walked, dsod_stmts_executed and incomplete
        assert ref_report == com_report
        assert ref_report.final_state == com_report.final_state
    assert ref.cycles == com.cycles
    assert ref.device_state.dump() == com.device_state.dump()


@pytest.mark.parametrize("name", ALL_DEVICES)
class TestProfileDifferential:
    """Benign traffic through a deployed checker, one run per backend."""

    def test_workload_reports_identical(self, name, spec_cache):
        spec = _spec(spec_cache, name)
        prof = PROFILES[name]
        attachments = []
        for backend in BACKENDS:
            vm, device = prof.make_vm()
            attachment = deploy(vm, device, spec,
                                mode=Mode.ENHANCEMENT, backend=backend)
            driver = prof.make_driver(vm)
            prof.prepare(vm, driver)
            rng = random.Random(2024)
            for op in prof.common_ops + prof.rare_ops:
                op(vm, driver, rng)
            attachments.append((attachment, device))
        ref_att, ref_dev = attachments[0]
        for com_att, com_dev in attachments[1:]:
            _assert_checkers_identical(ref_att.checker, com_att.checker)
            assert ref_att.checked_rounds == com_att.checked_rounds
            assert ref_att.warnings == com_att.warnings
            assert ref_att.halts == com_att.halts
            assert bytes(ref_dev.state.data) == bytes(com_dev.state.data)

    def test_rounds_were_actually_checked(self, name, spec_cache):
        """Guard against the differential passing vacuously."""
        spec = _spec(spec_cache, name)
        prof = PROFILES[name]
        vm, device = prof.make_vm()
        attachment = deploy(vm, device, spec, mode=Mode.ENHANCEMENT,
                            backend="compiled")
        driver = prof.make_driver(vm)
        prof.prepare(vm, driver)
        assert attachment.checked_rounds > 0
        assert attachment.checker.cycles > 0


@pytest.mark.parametrize("exploit", EXPLOITS, ids=lambda e: e.cve)
class TestExploitDifferential:
    """Every seeded CVE PoC, protection mode, all strategies."""

    def _run(self, exploit, spec, backend):
        prof = PROFILES[exploit.device]
        vm, device = prof.make_vm(exploit.qemu_version)
        attachment = deploy(vm, device, spec, mode=Mode.PROTECTION,
                            backend=backend)
        outcome = run_exploit(vm, device, exploit)
        return outcome, attachment, device

    def test_outcome_and_reports_identical(self, exploit, spec_cache):
        spec = _spec(spec_cache, exploit.device, exploit.qemu_version)
        ref_out, ref_att, ref_dev = self._run(exploit, spec, "reference")
        for backend in FAST_BACKENDS:
            com_out, com_att, com_dev = self._run(exploit, spec, backend)
            assert ref_out == com_out
            _assert_checkers_identical(ref_att.checker, com_att.checker)
            assert ref_att.halts == com_att.halts
            assert ref_dev.halted == com_dev.halted

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_detection_still_fires_fast(self, exploit, backend,
                                        spec_cache):
        """The point of the whole exercise: no CVE goes undetected just
        because a fast backend walked the spec."""
        spec = _spec(spec_cache, exploit.device, exploit.qemu_version)
        outcome, attachment, _ = self._run(exploit, spec, backend)
        if exploit.expected_miss:
            assert not outcome.detected
        else:
            assert outcome.detected
            assert attachment.halts


class TestHaltParity:
    """A protection-mode halt raises through vm._io identically."""

    def test_halt_raised_on_both_backends(self, spec_cache):
        from repro.exploits import exploit_by_cve

        exploit = exploit_by_cve("CVE-2015-3456")
        spec = _spec(spec_cache, exploit.device, exploit.qemu_version)
        messages = []
        for backend in BACKENDS:
            prof = PROFILES[exploit.device]
            vm, device = prof.make_vm(exploit.qemu_version)
            deploy(vm, device, spec, mode=Mode.PROTECTION,
                   backend=backend)
            with pytest.raises(SEDSpecHalt) as exc:
                exploit.run(vm, device)
            report = exc.value.report
            messages.append((report.io_key, report.action,
                             tuple(report.anomalies)))
        assert all(m == messages[0] for m in messages[1:])
