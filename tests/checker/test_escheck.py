"""End-to-end tests for the ES-Checker on the toy device.

Each check strategy is exercised both ways: benign traffic passes, the
matching attack trips it.
"""

import pytest

from repro.analysis import ObservationLogger, select_parameters
from repro.checker import (
    Action, ESChecker, Mode, Strategy,
)
from repro.compiler import compile_device
from repro.errors import DeviceFault
from repro.interp import Machine
from repro.spec import build_spec

from tests.toydev import ToyLogic, make_toy_machine

CMD = ToyLogic.CONSTS


def make_machine(vuln=False):
    return make_toy_machine(vuln=vuln)


BENIGN = (
    [("pmio:write:1", (i,)) for i in range(4)]
    + [("pmio:write:0", (CMD["CMD_SUM"],))]
    + [("pmio:read:1", ())] * 2
    + [("pmio:write:0", (CMD["CMD_RESET"],))]
    + [("pmio:write:1", (5,)), ("pmio:read:1", ())]
)


def build_toy_spec(vuln=False, workload=None):
    machine = make_machine(vuln)
    program = machine.program
    selection = select_parameters(program)
    logger = machine.add_sink(ObservationLogger(
        "toy", selection.scalar_params | selection.funcptrs,
        selection.buffers))
    for key, args in (workload or BENIGN):
        machine.run_entry(key, args)
    return build_spec(program, logger.log, selection)


def checked_machine(spec, vuln=False, **kwargs):
    """Fresh device + booted checker, like deployment."""
    machine = make_machine(vuln)
    checker = ESChecker(spec, **kwargs)
    checker.boot_sync(machine.state)
    return machine, checker


class TestBenignTraffic:
    def test_benign_replay_all_allowed(self):
        spec = build_toy_spec()
        machine, checker = checked_machine(spec)
        for key, args in BENIGN:
            report = checker.check_io(key, args)
            assert report.action is Action.ALLOW, report.anomalies
            machine.run_entry(key, args)

    def test_shadow_state_tracks_device(self):
        spec = build_toy_spec()
        machine, checker = checked_machine(spec)
        for key, args in BENIGN:
            checker.check_io(key, args)
            machine.run_entry(key, args)
        shadow = checker.device_state.dump()
        for name, value in shadow.items():
            assert value == machine.state.read_field(name), name

    def test_checker_cost_accrues(self):
        spec = build_toy_spec()
        _, checker = checked_machine(spec)
        checker.check_io("pmio:write:1", (1,))
        assert checker.cycles > 0

    def test_unknown_io_key_flagged(self):
        spec = build_toy_spec(workload=[("pmio:write:1", (1,))])
        _, checker = checked_machine(spec)
        report = checker.check_io("pmio:read:1", ())
        assert not report.ok
        assert report.anomalies[0].kind == "unknown-io-key"


class TestParameterCheck:
    def test_buffer_overflow_detected_on_vulnerable_build(self):
        """Venom-style: unchecked push past the FIFO -> parameter check."""
        spec = build_toy_spec(vuln=True)
        machine, checker = checked_machine(spec, vuln=True)
        # Fill to capacity (benign in-training behaviour reached pos=4;
        # the spec allows any in-bounds push).
        for i in range(8):
            report = checker.check_io("pmio:write:1", (i,))
            if report.action is Action.ALLOW:
                machine.run_entry("pmio:write:1", (i,))
        # The 9th push writes fifo[8]: out of bounds.
        report = checker.check_io("pmio:write:1", (0x41,))
        assert report.action is Action.HALT
        anomaly = report.first_anomaly()
        assert anomaly.strategy is Strategy.PARAMETER
        assert anomaly.kind == "buffer-overflow"

    def test_halt_prevents_real_corruption(self):
        spec = build_toy_spec(vuln=True)
        machine, checker = checked_machine(spec, vuln=True)
        for i in range(20):
            report = checker.check_io("pmio:write:1", (i,))
            if report.action is Action.ALLOW:
                machine.run_entry("pmio:write:1", (i,))
        # Device never executed the overflowing writes: pos intact.
        assert machine.state.read_field("pos") == 8

    def test_without_checker_device_is_corrupted(self):
        machine = make_machine(vuln=True)
        for i in range(9):
            machine.run_entry("pmio:write:1", (0x60 + i,))
        # The 9th byte (0x68) landed on pos itself, then pos += 1.
        assert machine.state.read_field("pos") == 0x69

    def test_parameter_anomalies_halt_even_in_enhancement_mode(self):
        spec = build_toy_spec(vuln=True)
        _, checker = checked_machine(spec, vuln=True,
                                     mode=Mode.ENHANCEMENT)
        for i in range(8):
            checker.check_io("pmio:write:1", (i,))
        report = checker.check_io("pmio:write:1", (0xFF,))
        assert report.action is Action.HALT


class TestConditionalJumpCheck:
    def test_unobserved_branch_side_flagged(self):
        """Patched build: training never overfilled, so the bounds-check
        branch is one-sided; an overfill takes the unobserved side."""
        spec = build_toy_spec(vuln=False)
        machine, checker = checked_machine(spec)
        for i in range(8):
            report = checker.check_io("pmio:write:1", (i,))
            if report.action is Action.ALLOW:
                machine.run_entry("pmio:write:1", (i,))
        report = checker.check_io("pmio:write:1", (9,))
        assert not report.ok
        assert report.first_anomaly().strategy is Strategy.CONDITIONAL_JUMP

    def test_enhancement_mode_warns_only(self):
        spec = build_toy_spec(vuln=False)
        machine, checker = checked_machine(spec, mode=Mode.ENHANCEMENT)
        for i in range(8):
            if checker.check_io("pmio:write:1", (i,)).action is Action.ALLOW:
                machine.run_entry("pmio:write:1", (i,))
        report = checker.check_io("pmio:write:1", (9,))
        assert report.action is Action.WARN

    def test_protection_mode_halts(self):
        spec = build_toy_spec(vuln=False)
        machine, checker = checked_machine(spec, mode=Mode.PROTECTION)
        for i in range(8):
            if checker.check_io("pmio:write:1", (i,)).action is Action.ALLOW:
                machine.run_entry("pmio:write:1", (i,))
        report = checker.check_io("pmio:write:1", (9,))
        assert report.action is Action.HALT

    def test_unknown_command_flagged(self):
        spec = build_toy_spec()   # BENIGN never issues CMD_POP via port 0
        _, checker = checked_machine(spec)
        report = checker.check_io("pmio:write:0", (CMD["CMD_POP"],))
        assert not report.ok
        assert report.first_anomaly().kind == "unknown-command"

    def test_known_command_allowed(self):
        spec = build_toy_spec()
        _, checker = checked_machine(spec)
        report = checker.check_io("pmio:write:0", (CMD["CMD_RESET"],))
        assert report.action is Action.ALLOW


class TestIndirectJumpCheck:
    def exploit_corrupt_irq(self, checker, machine=None):
        """Vulnerable-build attack: overflow pos, then aim a push at the
        irq pointer's first byte, then trigger the icall via CMD_SUM."""
        # 8 legitimate pushes fill the FIFO (pos = 8).
        for i in range(8):
            checker.check_io("pmio:write:1", (i,))
            if machine:
                machine.run_entry("pmio:write:1", (i,))
        # 9th push lands on pos's low byte: set pos = 12 (then +1 = 13).
        checker.check_io("pmio:write:1", (12,))
        if machine:
            machine.run_entry("pmio:write:1", (12,))
        # 10th push writes fifo[13] = irq byte 0: pointer corrupted.
        checker.check_io("pmio:write:1", (0xAA,))
        if machine:
            machine.run_entry("pmio:write:1", (0xAA,))
        # Trigger the indirect call.
        return checker.check_io("pmio:write:0", (CMD["CMD_SUM"],))

    def test_hijack_detected_by_indirect_check_alone(self):
        spec = build_toy_spec(vuln=True)
        machine, checker = checked_machine(
            spec, vuln=True,
            strategies=frozenset({Strategy.INDIRECT_JUMP}))
        report = self.exploit_corrupt_irq(checker)
        assert not report.ok
        anomaly = report.first_anomaly()
        assert anomaly.strategy is Strategy.INDIRECT_JUMP
        assert anomaly.kind == "illegal-target"

    def test_parameter_check_fires_first_when_enabled(self):
        spec = build_toy_spec(vuln=True)
        machine, checker = checked_machine(spec, vuln=True)
        # With all strategies on, the OOB push is caught before the
        # pointer is ever corrupted.
        for i in range(8):
            checker.check_io("pmio:write:1", (i,))
        report = checker.check_io("pmio:write:1", (12,))
        assert report.first_anomaly().strategy is Strategy.PARAMETER

    def test_legitimate_icall_passes_indirect_check(self):
        spec = build_toy_spec(vuln=True)
        _, checker = checked_machine(
            spec, vuln=True,
            strategies=frozenset({Strategy.INDIRECT_JUMP}))
        for i in range(3):
            checker.check_io("pmio:write:1", (i,))
        report = checker.check_io("pmio:write:0", (CMD["CMD_SUM"],))
        assert report.ok, report.anomalies


class TestStrategyToggles:
    def test_disabled_parameter_check_is_silent(self):
        spec = build_toy_spec(vuln=True)
        _, checker = checked_machine(
            spec, vuln=True, strategies=frozenset({Strategy.CONDITIONAL_JUMP}))
        for i in range(9):
            report = checker.check_io("pmio:write:1", (i,))
        assert all(a.strategy is not Strategy.PARAMETER
                   for r in checker.history for a in r.anomalies)

    def test_history_accumulates(self):
        spec = build_toy_spec()
        _, checker = checked_machine(spec)
        checker.check_io("pmio:write:1", (1,))
        checker.check_io("pmio:read:1", ())
        assert len(checker.history) == 2
