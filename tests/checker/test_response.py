"""Tests for anomaly response: alert levels, rollback, quarantine."""

import pytest

from repro.checker import (
    Action, AlertLevel, AlertManager, Anomaly, CheckReport,
    DeviceQuarantine, ResponsePolicy, RollbackManager, Strategy, classify,
)
from repro.devices.fdc import FDC
from repro.errors import DeviceFault


def anomaly(strategy: Strategy, kind: str = "k") -> Anomaly:
    return Anomaly(strategy=strategy, kind=kind, message="m",
                   block_address=0x40, io_key="pmio:write:5")


def report_with(*strategies: Strategy) -> CheckReport:
    report = CheckReport(io_key="pmio:write:5")
    report.anomalies = [anomaly(s) for s in strategies]
    return report


class TestAlerts:
    def test_classification_ladder(self):
        assert classify(anomaly(Strategy.CONDITIONAL_JUMP)) \
            is AlertLevel.WARNING
        assert classify(anomaly(Strategy.INDIRECT_JUMP)) \
            is AlertLevel.SEVERE
        assert classify(anomaly(Strategy.PARAMETER)) \
            is AlertLevel.CRITICAL

    def test_manager_collects_and_ranks(self):
        manager = AlertManager()
        manager.ingest(report_with(Strategy.CONDITIONAL_JUMP))
        manager.next_round()
        manager.ingest(report_with(Strategy.PARAMETER))
        assert manager.worst() is AlertLevel.CRITICAL
        assert len(manager.at_level(AlertLevel.WARNING)) == 1

    def test_empty_manager(self):
        assert AlertManager().worst() is None


class TestRollback:
    def test_checkpoint_and_restore(self):
        device = FDC()
        manager = RollbackManager(device, interval=2)
        device.state.write_field("track", 9)
        manager.on_round()
        manager.on_round()          # checkpoint at round 2 (track=9)
        device.state.write_field("track", 77)   # "corruption"
        restored = manager.rollback()
        assert device.state.read_field("track") == 9
        assert restored.round_index == 2
        assert manager.rollbacks == 1

    def test_rollback_unhalts_device(self):
        device = FDC(qemu_version="2.3.0")
        manager = RollbackManager(device, interval=1)
        device.handle_io("pmio:write:5", (0x4A,))
        manager.on_round()
        device.handle_io("pmio:write:5", (0x80,))
        with pytest.raises(DeviceFault):
            for i in range(4000):
                device.handle_io("pmio:write:5", (0x41,))
        assert device.halted
        manager.rollback()
        assert not device.halted
        assert device.handle_io("pmio:read:4", ()) is not None

    def test_rollback_before_round(self):
        device = FDC()
        manager = RollbackManager(device, interval=1)
        for track in (1, 2, 3):
            device.state.write_field("track", track)
            manager.on_round()      # checkpoints at rounds 1,2,3
        chosen = manager.rollback(before_round=3)
        assert chosen.round_index == 2
        assert device.state.read_field("track") == 2

    def test_boot_checkpoint_always_available(self):
        device = FDC()
        manager = RollbackManager(device, interval=100)
        device.state.write_field("track", 50)
        manager.rollback()
        assert device.state.read_field("track") == 0

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            RollbackManager(FDC(), interval=0)


class TestQuarantine:
    def test_quarantine_halts_device(self):
        device = FDC()
        quarantine = DeviceQuarantine()
        quarantine.quarantine(device, "test")
        assert quarantine.is_quarantined("fdc")
        with pytest.raises(DeviceFault, match="halted"):
            device.handle_io("pmio:read:4", ())

    def test_release(self):
        device = FDC()
        quarantine = DeviceQuarantine()
        quarantine.quarantine(device, "test")
        quarantine.release(device)
        assert not quarantine.is_quarantined("fdc")
        device.handle_io("pmio:read:4", ())


class TestResponsePolicy:
    def test_critical_rolls_back_and_quarantines(self):
        device = FDC()
        policy = ResponsePolicy(device)
        device.state.write_field("track", 5)
        policy.on_clean_round()
        policy.rollback.checkpoint()
        device.state.write_field("track", 66)
        policy.on_report(report_with(Strategy.PARAMETER))
        assert device.state.read_field("track") == 5    # rolled back
        assert policy.quarantine.is_quarantined("fdc")

    def test_severe_rolls_back_only(self):
        device = FDC()
        policy = ResponsePolicy(device)
        policy.on_report(report_with(Strategy.INDIRECT_JUMP))
        assert policy.rollback.rollbacks == 1
        assert not policy.quarantine.is_quarantined("fdc")

    def test_warning_alerts_only(self):
        device = FDC()
        policy = ResponsePolicy(device)
        policy.on_report(report_with(Strategy.CONDITIONAL_JUMP))
        assert policy.rollback.rollbacks == 0
        assert policy.alerts.worst() is AlertLevel.WARNING

    def test_clean_rounds_advance_checkpoints(self):
        device = FDC()
        policy = ResponsePolicy(device, RollbackManager(device, interval=2))
        for _ in range(4):
            policy.on_clean_round()
        assert len(policy.rollback.checkpoints) >= 2
