"""Unit tests for the sync-point oracles."""

from collections import deque

import pytest

from repro.checker import (
    ExternHarvestSink, FieldSyncOracle, MappingSyncOracle, NullSyncOracle,
    QueueSyncOracle,
)
from repro.errors import CheckerError
from repro.ir import StateLayout, StateMemory, U8, U32


def make_memory():
    layout = StateLayout("T")
    layout.add("phase", U8)
    layout.add("count", U32)
    memory = StateMemory(layout)
    memory.write_field("phase", 3)
    memory.write_field("count", 77)
    return memory


class TestOracles:
    def test_null_refuses(self):
        with pytest.raises(CheckerError):
            NullSyncOracle().resolve("anything")

    def test_mapping(self):
        oracle = MappingSyncOracle({"a": 5})
        assert oracle.resolve("a") == 5
        with pytest.raises(CheckerError):
            oracle.resolve("b")

    def test_field_oracle_reads_live_memory(self):
        oracle = FieldSyncOracle(make_memory())
        assert oracle.resolve("field:phase") == 3
        assert oracle.resolve("field:count") == 77

    def test_field_oracle_falls_back(self):
        oracle = FieldSyncOracle(make_memory(),
                                 fallback=MappingSyncOracle({"x": 9}))
        assert oracle.resolve("x") == 9

    def test_queue_oracle_pops_in_order(self):
        queues = {"extern:f:byte": deque([10, 20, 30])}
        oracle = QueueSyncOracle(queues)
        assert [oracle.resolve("extern:f:byte") for _ in range(3)] \
            == [10, 20, 30]

    def test_queue_exhaustion_is_divergence(self):
        oracle = QueueSyncOracle({"extern:f:b": deque([1])})
        oracle.resolve("extern:f:b")
        with pytest.raises(CheckerError, match="diverged"):
            oracle.resolve("extern:f:b")

    def test_queue_falls_back_for_fields(self):
        oracle = QueueSyncOracle({}, fallback=FieldSyncOracle(
            make_memory()))
        assert oracle.resolve("field:phase") == 3


class TestHarvestSink:
    def test_keys_by_caller_and_dest(self):
        sink = ExternHarvestSink()
        sink.on_extern("fill_fifo", "disk_read", "byte", (0,), 0xAA)
        sink.on_extern("fill_fifo", "disk_read", "byte", (1,), 0xBB)
        sink.on_extern("other", "disk_read", "byte", (2,), 0xCC)
        assert list(sink.queues["extern:fill_fifo:byte"]) == [0xAA, 0xBB]
        assert list(sink.queues["extern:other:byte"]) == [0xCC]

    def test_destless_externs_not_harvested(self):
        sink = ExternHarvestSink()
        sink.on_extern("f", "set_irq", None, (1,), 0)
        assert not sink.queues
