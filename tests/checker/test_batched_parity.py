"""Batched-vs-per-round parity: ``check_batch`` is semantics-free.

The batched entry exists purely for throughput — one checker invocation
amortizes frame setup, dispatch-table binding and bound-constant loads
over a queue of I/O rounds.  Its contract is byte-identical observables:
running ``check_batch`` over N captured rounds must yield exactly the
``CheckReport`` sequence of N ``check_io`` calls in the same order —
same anomalies, actions, walk counters, per-round final states, cycle
accounting, history, and committed shadow device state.

The suite certifies that contract over every device profile (composite
multi-device guests included), every seeded CVE PoC, and the generated
synthetic vulnerability corpus, on all three backends: no detection may
be lost and no new false positive introduced by batching.
"""

import random

import pytest

from repro.checker import ESChecker, Mode
from repro.errors import DeviceFault
from repro.exploits.corpus import generate_corpus, trained_spec
from repro.exploits.pocs import EXPLOITS
from repro.workloads.profiles import profile, split_device

ALL_DEVICES = ("fdc", "ehci", "pcnet", "sdhci", "scsi",
               "virtio-net", "virtio-blk")
COMPOSITES = ("virtio-net+virtio-blk", "fdc+sdhci")
BACKENDS = ("reference", "compiled", "bytecode")
BATCH_SIZES = (1, 3, 8)
CORPUS = generate_corpus()


def _capture(device_name, qemu_version="99.0.0", drive=None):
    """Run a workload with *no* checker attached, spying on the VM's
    I/O demux; returns per-part (boot state, captured rounds)."""
    prof = profile(device_name)
    vm, device = prof.make_vm(qemu_version)
    boot = {name: dev.snapshot() for name, dev in vm.devices.items()}
    rounds = {name: [] for name in vm.devices}
    orig = vm._io

    def spy(dev, key, args):
        rounds[dev.NAME].append((key, tuple(args)))
        return orig(dev, key, args)

    vm._io = spy
    if drive is None:
        driver = prof.make_driver(vm)
        prof.prepare(vm, driver)
        rng = random.Random(2024)
        for op in prof.common_ops + prof.rare_ops:
            op(vm, driver, rng)
    else:
        try:
            drive(vm, device)
        except DeviceFault:
            pass    # the captured prefix is the interesting part
    return boot, rounds


def _replay(spec, boot_state, rounds, backend, mode, batch=0):
    """Feed captured rounds to a fresh checker; ``batch == 0`` checks
    per round, otherwise in chunks of *batch* through check_batch."""
    checker = ESChecker(spec, mode=mode, backend=backend)
    checker.boot_sync(boot_state)
    reports = []
    if batch == 0:
        for key, args in rounds:
            reports.append(checker.check_io(key, args))
    else:
        for i in range(0, len(rounds), batch):
            reports.extend(checker.check_batch(rounds[i:i + batch]))
    return checker, reports


def _assert_parity(ref, ref_reports, bat, bat_reports):
    assert len(bat_reports) == len(ref_reports)
    for ref_report, bat_report in zip(ref_reports, bat_reports):
        # dataclass equality covers io_key, action, anomalies, policy,
        # walk counters and incompleteness
        assert bat_report == ref_report
        assert bat_report.final_state == ref_report.final_state
    assert bat.cycles == ref.cycles
    assert len(bat.history) == len(ref.history)
    for ref_report, bat_report in zip(ref.history, bat.history):
        assert bat_report == ref_report
    assert bat.device_state.dump() == ref.device_state.dump()


@pytest.fixture(scope="module")
def benign_captures():
    """One benign capture per (possibly composite) profile, shared —
    replays are cheap, captures drive a whole VM workload."""
    captures = {}
    for name in ALL_DEVICES + COMPOSITES:
        captures[name] = _capture(name)
    return captures


@pytest.mark.parametrize("name", ALL_DEVICES + COMPOSITES)
@pytest.mark.parametrize("backend", BACKENDS)
class TestBenignParity:
    """Benign profile traffic, every backend, every batch size."""

    def test_batched_equals_per_round(self, name, backend,
                                      benign_captures):
        boot, rounds = benign_captures[name]
        for part in split_device(name):
            spec = trained_spec(part)
            part_rounds = rounds[part]
            assert part_rounds, f"capture for {part} is empty"
            ref, ref_reports = _replay(spec, boot[part], part_rounds,
                                       backend, Mode.ENHANCEMENT)
            for size in BATCH_SIZES:
                bat, bat_reports = _replay(spec, boot[part], part_rounds,
                                           backend, Mode.ENHANCEMENT,
                                           batch=size)
                _assert_parity(ref, ref_reports, bat, bat_reports)


@pytest.mark.parametrize("attack", EXPLOITS + tuple(CORPUS),
                         ids=lambda a: a.cve)
@pytest.mark.parametrize("backend", BACKENDS)
class TestExploitParity:
    """Every seeded CVE PoC and every synthetic corpus PoC: batching
    loses no detection and invents none."""

    def test_reports_identical_and_detections_kept(self, attack,
                                                   backend):
        boot, rounds = _capture(attack.device, attack.qemu_version,
                                drive=attack.run)
        spec = trained_spec(attack.device, attack.qemu_version)
        attack_rounds = rounds[attack.device]
        assert attack_rounds, f"capture for {attack.cve} is empty"
        ref, ref_reports = _replay(spec, boot[attack.device],
                                   attack_rounds, backend,
                                   Mode.PROTECTION)
        bat, bat_reports = _replay(spec, boot[attack.device],
                                   attack_rounds, backend,
                                   Mode.PROTECTION, batch=8)
        _assert_parity(ref, ref_reports, bat, bat_reports)
        flagged_ref = [i for i, r in enumerate(ref_reports)
                       if r.anomalies]
        flagged_bat = [i for i, r in enumerate(bat_reports)
                       if r.anomalies]
        assert flagged_bat == flagged_ref
        if not getattr(attack, "expected_miss", False):
            assert flagged_bat, f"{attack.cve} detection lost"


class TestEdgeParity:
    """Batch-boundary edges the benign sweep cannot hit."""

    def test_unknown_keys_interleaved(self, benign_captures):
        """Unknown io keys flag-and-skip without binding a final state;
        interleaving them mid-batch must not desync the committed
        shadow snapshot the neighbouring rounds see."""
        boot, rounds = benign_captures["fdc"]
        seq = list(rounds["fdc"])
        for pos in (0, len(seq) // 2, len(seq)):
            seq.insert(pos, ("pmio:write:15", (0x55,)))
        spec = trained_spec("fdc")
        ref, ref_reports = _replay(spec, boot["fdc"], seq,
                                   "bytecode", Mode.ENHANCEMENT)
        for size in BATCH_SIZES:
            bat, bat_reports = _replay(spec, boot["fdc"], seq,
                                       "bytecode", Mode.ENHANCEMENT,
                                       batch=size)
            _assert_parity(ref, ref_reports, bat, bat_reports)
        assert any(r.anomalies and r.anomalies[0].kind == "unknown-io-key"
                   for r in ref_reports)

    def test_empty_batch_is_a_noop(self):
        spec = trained_spec("fdc")
        checker = ESChecker(spec, backend="bytecode")
        assert checker.check_batch([]) == []
        assert checker.history == []
        assert checker.cycles == 0

    def test_generator_input_streams(self, benign_captures):
        """check_batch accepts a generator — the streaming-decode
        consumer shape — without materializing the round list."""
        boot, rounds = benign_captures["fdc"]
        seq = list(rounds["fdc"])
        spec = trained_spec("fdc")
        ref, ref_reports = _replay(spec, boot["fdc"], seq,
                                   "bytecode", Mode.ENHANCEMENT)
        bat = ESChecker(spec, backend="bytecode")
        bat.boot_sync(boot["fdc"])
        bat_reports = bat.check_batch(pair for pair in seq)
        _assert_parity(ref, ref_reports, bat, bat_reports)
