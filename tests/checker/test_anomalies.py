"""Unit tests for the anomaly taxonomy and working-mode policy."""

import pytest

from repro.checker import (
    ALL_STRATEGIES, Action, Anomaly, CheckReport, Mode, Strategy,
    decide_action,
)


def anomaly(strategy):
    return Anomaly(strategy=strategy, kind="k", message="m",
                   block_address=0x1234, io_key="pmio:write:0")


class TestDecideAction:
    def test_no_anomalies_allows(self):
        for mode in Mode:
            assert decide_action([], mode) is Action.ALLOW

    def test_protection_halts_on_anything(self):
        for strategy in Strategy:
            assert decide_action([anomaly(strategy)],
                                 Mode.PROTECTION) is Action.HALT

    def test_enhancement_halts_only_on_parameter(self):
        assert decide_action([anomaly(Strategy.PARAMETER)],
                             Mode.ENHANCEMENT) is Action.HALT
        assert decide_action([anomaly(Strategy.INDIRECT_JUMP)],
                             Mode.ENHANCEMENT) is Action.WARN
        assert decide_action([anomaly(Strategy.CONDITIONAL_JUMP)],
                             Mode.ENHANCEMENT) is Action.WARN

    def test_mixed_anomalies_take_strictest(self):
        mixed = [anomaly(Strategy.CONDITIONAL_JUMP),
                 anomaly(Strategy.PARAMETER)]
        assert decide_action(mixed, Mode.ENHANCEMENT) is Action.HALT


class TestReport:
    def test_ok_property(self):
        report = CheckReport(io_key="x")
        assert report.ok
        report.anomalies.append(anomaly(Strategy.PARAMETER))
        assert not report.ok

    def test_first_anomaly(self):
        report = CheckReport(io_key="x")
        assert report.first_anomaly() is None
        a1 = anomaly(Strategy.PARAMETER)
        report.anomalies.append(a1)
        report.anomalies.append(anomaly(Strategy.INDIRECT_JUMP))
        assert report.first_anomaly() is a1

    def test_anomaly_str_mentions_strategy_and_block(self):
        text = str(anomaly(Strategy.INDIRECT_JUMP))
        assert "indirect_jump" in text
        assert "0x1234" in text

    def test_all_strategies_frozen(self):
        assert ALL_STRATEGIES == frozenset(Strategy)
        with pytest.raises(AttributeError):
            ALL_STRATEGIES.add  # frozenset has no add
