"""Degradation policies: infra failures get explicit, safe outcomes."""

import pytest

from repro.checker import (
    Action, CheckReport, DEFAULT_DEGRADATION, DegradationConfig,
    DegradationPolicy, gap_report, run_with_policy,
)
from repro.checker.degrade import INFRA_EXCEPTIONS
from repro.errors import DecodeError, InfraError, TraceError


def ok_report():
    report = CheckReport(io_key="io")
    report.action = Action.ALLOW
    return report


class TestConfig:
    def test_default_is_fail_closed_single_attempt(self):
        assert DEFAULT_DEGRADATION.policy is DegradationPolicy.FAIL_CLOSED
        assert DEFAULT_DEGRADATION.attempts == 1

    def test_retry_grants_extra_attempts(self):
        config = DegradationConfig(policy=DegradationPolicy.RETRY,
                                   max_retries=3)
        assert config.attempts == 4

    def test_infra_exceptions_cover_the_machinery_failures(self):
        for exc in (InfraError("x"), DecodeError("y", offset=3),
                    TraceError("z")):
            assert isinstance(exc, INFRA_EXCEPTIONS)


class TestGapReport:
    def test_fail_closed_gap_is_trace_gap_action(self):
        report = gap_report("io", DEFAULT_DEGRADATION, "pkt loss")
        assert report.action is Action.TRACE_GAP
        assert report.trace_gap
        assert report.policy == "fail-closed"
        assert report.gap_reason == "pkt loss"
        assert not report.anomalies   # emphatically not a detection

    def test_fail_open_gap_allows_but_stays_marked(self):
        config = DegradationConfig(policy=DegradationPolicy.FAIL_OPEN)
        report = gap_report("io", config, "pkt loss")
        assert report.action is Action.ALLOW
        assert report.trace_gap
        assert report.policy == "fail-open"


class TestRunWithPolicy:
    def test_healthy_attempt_is_stamped_with_the_policy(self):
        report = run_with_policy(DEFAULT_DEGRADATION, "io",
                                 lambda n: ok_report())
        assert report.action is Action.ALLOW
        assert report.policy == "fail-closed"
        assert not report.trace_gap

    def test_fail_closed_converts_infra_error_to_gap(self):
        def attempt(n):
            raise TraceError("buffer overflowed")
        report = run_with_policy(DEFAULT_DEGRADATION, "io", attempt)
        assert report.action is Action.TRACE_GAP
        assert "TraceError" in report.gap_reason

    def test_retry_clears_a_transient_fault(self):
        calls = []

        def attempt(n):
            calls.append(n)
            if n < 2:
                raise InfraError("transient step fault", kind="step")
            return ok_report()
        config = DegradationConfig(policy=DegradationPolicy.RETRY,
                                   max_retries=2)
        report = run_with_policy(config, "io", attempt)
        assert calls == [0, 1, 2]
        assert report.action is Action.ALLOW
        assert report.gap_reason == "recovered after 2 retries"

    def test_retry_exhaustion_falls_back_to_fail_closed(self):
        def attempt(n):
            raise DecodeError("bad magic", offset=12)
        config = DegradationConfig(policy=DegradationPolicy.RETRY,
                                   max_retries=2)
        report = run_with_policy(config, "io", attempt)
        assert report.action is Action.TRACE_GAP
        assert "DecodeError" in report.gap_reason

    def test_non_infra_exceptions_stay_loud(self):
        def attempt(n):
            raise ValueError("a genuine bug")
        with pytest.raises(ValueError, match="genuine bug"):
            run_with_policy(DEFAULT_DEGRADATION, "io", attempt)
