"""Property-based differential test: random device programs through the
bytecode backends vs the reference walkers.

Hypothesis generates whole device-logic classes — random scalar field
widths, random handler bodies drawn from a small statement/expression
grammar (stores, nested conditionals, masked buffer writes) — then:

* the interpreter property runs the same I/O script on a reference
  Machine and a bytecode Machine and requires identical results and
  final device state;
* the checker property trains a spec on the generated device, replays
  a workload *with injected faults* (out-of-range parameter values,
  untrained I/O keys) through a reference-backend and a
  bytecode-backend ``ESChecker``, and requires the two CheckReport
  histories to be dataclass-identical — same anomalies in the same
  order, same walk counters, same final shadow state, same cycle
  accounting.

The fixed-device differential suites pin the five real profiles; this
one walks the program space around them.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import ObservationLogger, select_parameters
from repro.checker import ESChecker
from repro.checker.sync import ExternHarvestSink, QueueSyncOracle
from repro.compiler import DeviceLogic, arr, compile_device, fld
from repro.interp import Machine
from repro.spec import build_spec

WIDTHS = ("u8", "u16", "i32")
BINOPS = ("+", "-", "&", "|", "^")
CMPS = ("<", "<=", "==", "!=", ">", ">=")


def _bind_peek(machine):
    """The deterministic host read generated devices may call."""
    machine.bind_extern("peek", lambda m, v: (v * 37 + 11) & 0xFF,
                        cost=3)
    return machine


@st.composite
def device_classes(draw):
    """A random DeviceLogic subclass, returned as ``(cls, source)`` —
    ``compile_device`` needs the source text for exec'd classes.

    When Hypothesis opts in to the extern, the handler binds one host
    read into a local up front and the grammar may use that local any
    number of times — including in several branch conditions, the
    virtio descriptor-walk shape that forces the spec's sync-FIFO to
    stay aligned with the device's read count."""
    nfields = draw(st.integers(min_value=2, max_value=4))
    names = [f"f{i}" for i in range(nfields)]
    widths = [draw(st.sampled_from(WIDTHS)) for _ in names]
    use_extern = draw(st.booleans())

    def expr(depth=0):
        kinds = ["const", "field", "value"]
        if use_extern:
            kinds.append("extern_local")
        if depth < 2:
            kinds.append("binop")
        kind = draw(st.sampled_from(kinds))
        if kind == "const":
            return str(draw(st.integers(min_value=0, max_value=255)))
        if kind == "field":
            return f"self.{draw(st.sampled_from(names))}"
        if kind == "value":
            return "value"
        if kind == "extern_local":
            return "t0"
        op = draw(st.sampled_from(BINOPS))
        return f"({expr(depth + 1)} {op} {expr(depth + 1)})"

    def stmt(indent, depth=0):
        pad = "    " * indent
        kinds = ["store", "bufstore"]
        if depth < 2:
            kinds.append("if")
        kind = draw(st.sampled_from(kinds))
        if kind == "store":
            target = draw(st.sampled_from(names))
            return [f"{pad}self.{target} = {expr()}"]
        if kind == "bufstore":
            return [f"{pad}self.buf[{expr()} & 3] = {expr()}"]
        cmp = draw(st.sampled_from(CMPS))
        lines = [f"{pad}if {expr()} {cmp} {expr()}:"]
        lines += stmt(indent + 1, depth + 1)
        lines.append(f"{pad}else:")
        lines += stmt(indent + 1, depth + 1)
        return lines

    body = []
    if use_extern:
        body.append("        t0 = peek(value)")
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        body += stmt(2)

    field_decls = ", ".join(
        f"fld({name!r}, {width!r})"
        for name, width in zip(names, widths))
    source = "\n".join([
        "class GenLogic(DeviceLogic):",
        "    STRUCT = 'GenCtrl'",
        f"    FIELDS = ({field_decls}, arr('buf', 'u8', 4),)",
        "    CONSTS = {}",
        f"    EXTERNS = {('peek',) if use_extern else ()!r}",
        "    ENTRIES = {'pmio:write:0': 'write_a',",
        "               'pmio:read:0': 'read_s'}",
        "",
        "    def write_a(self, value):",
        *body,
        "        return 0",
        "",
        "    def read_s(self):",
        f"        return self.{names[0]}",
    ])
    namespace = {"DeviceLogic": DeviceLogic, "fld": fld, "arr": arr}
    exec(source, namespace)
    return namespace["GenLogic"], source


#: Workload values stay in-distribution; fault values go far outside it.
script_strategy = st.lists(
    st.integers(min_value=0, max_value=255), min_size=3, max_size=12)
fault_strategy = st.lists(
    st.one_of(
        st.integers(min_value=256, max_value=1 << 40),
        st.integers(min_value=-(1 << 33), max_value=-1),
    ),
    min_size=1, max_size=4)


class TestInterpreterParity:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(device_classes(), script_strategy)
    def test_fast_machines_match_reference(self, logic, script):
        cls, source = logic
        program = compile_device(cls, source=source)
        machines = {name: _bind_peek(Machine(program, backend=name))
                    for name in ("reference", "compiled", "bytecode")}
        for value in script:
            results = {name: m.run_entry("pmio:write:0", (value,))
                       for name, m in machines.items()}
            reads = {name: m.run_entry("pmio:read:0", ())
                     for name, m in machines.items()}
            for name in ("compiled", "bytecode"):
                assert results[name] == results["reference"]
                assert reads[name] == reads["reference"]
        ref = machines["reference"]
        for name in ("compiled", "bytecode"):
            fast = machines[name]
            assert bytes(fast.state.data) == bytes(ref.state.data)
            assert fast.cycles == ref.cycles
            assert fast.steps == ref.steps


class TestCheckerParity:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(device_classes(), script_strategy, fault_strategy)
    def test_reports_identical_under_faults(self, logic, script,
                                            faults):
        cls, source = logic
        program = compile_device(cls, source=source)

        machine = _bind_peek(Machine(program))
        selection = select_parameters(program)
        logger = machine.add_sink(ObservationLogger(
            "gen", selection.scalar_params | selection.funcptrs,
            selection.buffers))
        for value in script:
            machine.run_entry("pmio:write:0", (value,))
            machine.run_entry("pmio:read:0", ())
        spec = build_spec(program, logger.log, selection)

        checkers = {}
        for name in ("reference", "compiled", "bytecode"):
            seed = Machine(program)
            checker = ESChecker(spec, backend=name)
            checker.boot_sync(seed.state)
            checkers[name] = checker

        # Each probe is first run on a live device machine with a
        # harvest sink — exactly the runtime's co-execution scheme — so
        # checkers resolve extern sync vars from the same FIFO the
        # device produced.  Every checker gets its own copy of the
        # harvest (resolving pops).
        device = _bind_peek(Machine(program))
        harvest = device.add_sink(ExternHarvestSink())

        def oracles():
            import copy
            return {name: QueueSyncOracle(copy.deepcopy(harvest.queues))
                    for name in checkers}

        # Benign replay, then the injected faults: values far outside
        # the trained distribution (conditional-jump anomalies, or
        # parameter anomalies where a store widens them), plus an I/O
        # key training never saw.
        probes = [("pmio:write:0", (v,)) for v in script]
        probes += [("pmio:read:0", ())]
        probes += [("pmio:write:0", (v,)) for v in faults]
        probes += [("pmio:write:7", (1,))]
        for key, args in probes:
            harvest.queues.clear()
            try:
                device.run_entry(key, args)
            except Exception:
                pass        # unknown key / device fault: empty harvest
            per_checker = oracles()
            reports = {name: checker.check_io(key, args,
                                              oracle=per_checker[name])
                       for name, checker in checkers.items()}
            for name in ("compiled", "bytecode"):
                assert reports[name] == reports["reference"], (key, args)
                assert (reports[name].final_state
                        == reports["reference"].final_state)
        ref = checkers["reference"]
        for name in ("compiled", "bytecode"):
            assert checkers[name].cycles == ref.cycles
            assert (checkers[name].device_state.dump()
                    == ref.device_state.dump())
