"""The batched parameter bound tables (repro.checker.bounds).

The online backends enforce bounds inline at each store site; the
``BoundTable`` is the same data turned sideways — per-command tables an
offline audit can run in one pass.  These tests pin (a) the table's
agreement with the spec's declared types, (b) the reachability rule
(sites appear under exactly the commands whose handlers reach them),
and (c) the batch audits: clean sessions scan clean, and injected
out-of-range values are flagged with the right site.
"""

import pytest

from repro.checker import ESChecker
from repro.checker.bounds import (
    BoundTable, BoundViolation, ScalarBound, audit_reports, scan,
)
from repro.checker.sync import FieldSyncOracle
from repro.ir import Call, IntType, StateStore
from repro.workloads.profiles import PROFILES, train_device_spec


@pytest.fixture(scope="module")
def fdc_spec():
    return train_device_spec("fdc").spec


@pytest.fixture(scope="module")
def table(fdc_spec):
    return BoundTable.from_spec(fdc_spec)


class TestConstruction:
    def test_every_trained_command_has_a_row(self, fdc_spec, table):
        assert set(table.commands) == set(fdc_spec.entry_handlers)

    def test_scalar_bounds_match_declared_types(self, fdc_spec, table):
        for sites in table.commands.values():
            for site in sites:
                decl = fdc_spec.layout.field(site.field)
                if isinstance(decl.type, IntType):
                    assert site.lo == decl.type.min_value
                    assert site.hi == decl.type.max_value

    def test_handler_local_stores_all_present(self, fdc_spec, table):
        """Every StateStore lexically inside a handler function (no call
        following needed) must appear in that command's table."""
        for io_key, handler in fdc_spec.entry_handlers.items():
            func = fdc_spec.functions[handler]
            direct = {(stmt.field, block.address)
                      for block in func.blocks.values()
                      for stmt in block.dsod
                      if isinstance(stmt, StateStore)
                      and not isinstance(
                          fdc_spec.layout.field(stmt.field).type,
                          type(None))}
            table_sites = {(s.field, s.address)
                           for s in table.commands[io_key]}
            missing = {(f, a) for f, a in direct
                       if (f, a) not in table_sites}
            # Buffer fields land in buffer_sites, not the scalar table.
            missing = {(f, a) for f, a in missing
                       if f in table.field_bounds}
            assert not missing

    def test_transitive_callee_sites_included(self, fdc_spec, table):
        """A command whose handler calls into another routine inherits
        that routine's store sites."""
        for io_key, handler in fdc_spec.entry_handlers.items():
            func = fdc_spec.functions[handler]
            callees = {block.nbtd.func for block in func.blocks.values()
                       if isinstance(block.nbtd, Call)}
            for callee in callees & set(fdc_spec.functions):
                callee_fn = fdc_spec.functions[callee]
                callee_sites = {
                    (stmt.field, block.address)
                    for block in callee_fn.blocks.values()
                    for stmt in block.dsod
                    if isinstance(stmt, StateStore)
                    and stmt.field in table.field_bounds}
                table_sites = {(s.field, s.address)
                               for s in table.commands[io_key]}
                assert callee_sites <= table_sites

    def test_field_bounds_is_union_of_sites(self, table):
        site_fields = {s.field for sites in table.commands.values()
                       for s in sites}
        assert set(table.field_bounds) == site_fields


class TestScan:
    def test_in_range_samples_pass(self, table):
        io_key = next(k for k, v in table.commands.items() if v)
        site = table.commands[io_key][0]
        samples = [(io_key, site.field, site.lo),
                   (io_key, site.field, site.hi)]
        assert scan(table, samples) == []

    def test_out_of_range_sample_flagged_with_site(self, table):
        io_key = next(k for k, v in table.commands.items() if v)
        site = table.commands[io_key][0]
        bad = site.hi + 1
        violations = scan(table, [(io_key, site.field, bad)])
        assert violations == [BoundViolation(
            io_key, site.field, bad, site.lo, site.hi, site.address)]
        assert site.field in str(violations[0])

    def test_unknown_field_for_command_is_admitted(self, table):
        """The table audits stores; a field the command never stores to
        has no site and cannot be judged."""
        io_key = next(iter(table.commands))
        assert scan(table, [(io_key, "no_such_field", 1 << 80)]) == []

    def test_check_value_matches_scan(self, table):
        io_key = next(k for k, v in table.commands.items() if v)
        site = table.commands[io_key][0]
        one = table.check_value(io_key, site.field, site.hi + 7)
        batch = scan(table, [(io_key, site.field, site.hi + 7)])
        assert [one] == batch


class TestAuditReports:
    def test_clean_session_audits_clean(self, fdc_spec, table):
        prof = PROFILES["fdc"]
        vm, device = prof.make_vm()
        driver = prof.make_driver(vm)
        checker = ESChecker(fdc_spec)
        checker.boot_sync(device.machine.state)
        oracle = FieldSyncOracle(device.machine.state)
        seen = []
        orig = vm._io

        def spy(dev, key, args):
            result = orig(dev, key, args)
            seen.append(checker.check_io(key, args, oracle=oracle))
            return result

        vm._io = spy
        prof.prepare(vm, driver)
        driver.read_lba(3)
        assert seen
        assert audit_reports(table, seen) == []

    def test_tampered_report_is_flagged(self, table):
        """A final_state value outside the field's declared range can
        only mean checker malfunction or report tampering."""
        from repro.checker import CheckReport

        field = next(iter(table.field_bounds))
        lo, hi = table.field_bounds[field]
        forged = CheckReport(io_key="pmio:write:0")
        forged.final_state = {field: hi + 1}
        violations = audit_reports(table, [forged])
        assert len(violations) == 1
        assert violations[0].field == field
        assert violations[0].value == hi + 1


def _toy_table(device="toy", **commands):
    """Hand-built table: commands maps io_key -> ScalarBound sites."""
    field_bounds = {}
    for sites in commands.values():
        for site in sites:
            field_bounds.setdefault(site.field, (site.lo, site.hi))
    return BoundTable(device, {k: tuple(v) for k, v in commands.items()},
                      {k: () for k in commands}, field_bounds)


class TestAuditEdges:
    """Edge cases of the batch audits: empty inputs, duplicate sites,
    duplicate samples, and reports spanning a spec hot reload."""

    def test_empty_report_list_audits_clean(self, table):
        assert audit_reports(table, []) == []

    def test_report_with_empty_final_state(self, table):
        from repro.checker import CheckReport

        report = CheckReport(io_key="pmio:write:0")
        report.final_state = {}
        assert audit_reports(table, [report]) == []

    def test_duplicate_sites_attribute_first_site(self):
        """A command storing the same field at two sites: scan and
        check_value must flag the *same* (first) site address, not
        diverge on attribution."""
        first = ScalarBound("msl", 0, 15, 0x100)
        second = ScalarBound("msl", 0, 15, 0x200)
        table = _toy_table(**{"pmio:write:0": [first, second]})
        one = table.check_value("pmio:write:0", "msl", 99)
        batch = scan(table, [("pmio:write:0", "msl", 99)])
        assert one is not None
        assert one.address == 0x100
        assert batch == [one]

    def test_duplicate_samples_each_flagged(self):
        site = ScalarBound("msl", 0, 15, 0x100)
        table = _toy_table(**{"pmio:write:0": [site]})
        samples = [("pmio:write:0", "msl", 99)] * 3
        violations = scan(table, samples)
        assert len(violations) == 3
        assert len(set(map(str, violations))) == 1

    def test_hot_reload_epochs_audited_against_own_table(self):
        """A session spanning a spec hot reload holds reports from two
        spec generations; each must be judged against its own epoch's
        declared ranges, or narrowed bounds turn historical in-range
        values into false tampering verdicts."""
        from repro.checker import CheckReport

        wide = _toy_table(**{"pmio:write:0":
                             [ScalarBound("msl", 0, 255, 0x100)]})
        narrow = _toy_table(**{"pmio:write:0":
                               [ScalarBound("msl", 0, 15, 0x100)]})
        old = CheckReport(io_key="pmio:write:0", spec_epoch=0)
        old.final_state = {"msl": 200}      # fine under epoch 0
        new = CheckReport(io_key="pmio:write:0", spec_epoch=1)
        new.final_state = {"msl": 200}      # tampered under epoch 1
        by_epoch = {0: wide, 1: narrow}
        violations = audit_reports(narrow, [old, new],
                                   by_epoch=by_epoch)
        assert len(violations) == 1
        assert violations[0].hi == 15
        # Without the epoch map the old report is mis-attributed.
        assert len(audit_reports(narrow, [old, new])) == 2

    def test_unmapped_epoch_falls_back_to_default_table(self):
        from repro.checker import CheckReport

        narrow = _toy_table(**{"pmio:write:0":
                               [ScalarBound("msl", 0, 15, 0x100)]})
        report = CheckReport(io_key="pmio:write:0", spec_epoch=7)
        report.final_state = {"msl": 200}
        assert len(audit_reports(narrow, [report], by_epoch={})) == 1

    def test_instance_stamps_reports_with_spec_epoch(self):
        """The guarded instance stamps each recorded report with the
        spec generation it ran under, across a hot reload."""
        from repro.checker import Mode
        from repro.exploits.corpus import trained_spec
        from repro.exploits.pocs import EXPLOITS
        from repro.fleet.instance import GuardedInstance
        from repro.fleet.loadgen import OpRequest

        venom = next(e for e in EXPLOITS if e.cve == "CVE-2015-3456")
        spec = trained_spec("fdc", venom.qemu_version)
        instance = GuardedInstance("t0", "fdc", venom.qemu_version,
                                   spec, mode=Mode.PROTECTION)
        instance.reload_spec(spec, epoch=3, digest="d3")
        outcome = instance.apply(
            OpRequest(kind="exploit", cve=venom.cve))
        assert outcome.status == "detected"
        assert instance.reports[-1].spec_epoch == 3
