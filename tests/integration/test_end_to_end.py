"""End-to-end integration tests: the complete SEDSpec story per device.

Each test runs the whole Figure-1 pipeline — train on benign traffic,
build the spec, deploy the checker — then validates both directions:
benign traffic flows, the device's CVE is stopped.
"""

import random

import pytest

from repro.checker import Mode
from repro.core import build_execution_spec, deploy
from repro.exploits import EXPLOITS, exploit_by_cve, run_exploit
from repro.spec import spec_from_json, spec_to_json
from repro.workloads import train_device_spec
from repro.workloads.profiles import PROFILES

ALL_DEVICES = ("fdc", "ehci", "pcnet", "sdhci", "scsi")


@pytest.fixture(scope="module")
def patched_specs():
    return {name: train_device_spec(name).spec for name in ALL_DEVICES}


class TestPipeline:
    @pytest.mark.parametrize("name", ALL_DEVICES)
    def test_benign_traffic_under_protection_mode(self, name,
                                                  patched_specs):
        prof = PROFILES[name]
        vm, device = prof.make_vm()
        attachment = deploy(vm, device, patched_specs[name],
                            mode=Mode.PROTECTION)
        driver = prof.make_driver(vm)
        rng = random.Random(31)
        prof.prepare(vm, driver)
        for _ in range(30):
            rng.choice(prof.common_ops)(vm, driver, rng)
        assert not attachment.halts
        assert not attachment.warnings

    @pytest.mark.parametrize(
        "cve", [e.cve for e in EXPLOITS if not e.expected_miss])
    def test_exploits_stopped_in_protection_mode(self, cve):
        exploit = exploit_by_cve(cve)
        spec = train_device_spec(exploit.device,
                                 qemu_version=exploit.qemu_version).spec
        prof = PROFILES[exploit.device]
        vm, device = prof.make_vm(exploit.qemu_version)
        deploy(vm, device, spec, mode=Mode.PROTECTION)
        outcome = run_exploit(vm, device, exploit)
        assert outcome.detected, cve

    def test_uaf_is_the_documented_miss(self):
        exploit = exploit_by_cve("CVE-2016-1568")
        spec = train_device_spec(exploit.device,
                                 qemu_version=exploit.qemu_version).spec
        prof = PROFILES[exploit.device]
        vm, device = prof.make_vm(exploit.qemu_version)
        deploy(vm, device, spec, mode=Mode.PROTECTION)
        outcome = run_exploit(vm, device, exploit)
        assert not outcome.detected
        # ... and yet the device was really attacked:
        assert device.irq_line.raise_count >= 3

    @pytest.mark.parametrize("name", ("fdc", "sdhci"))
    def test_spec_survives_serialization_roundtrip(self, name,
                                                   patched_specs):
        restored = spec_from_json(spec_to_json(patched_specs[name]))
        prof = PROFILES[name]
        vm, device = prof.make_vm()
        attachment = deploy(vm, device, restored, mode=Mode.PROTECTION)
        driver = prof.make_driver(vm)
        rng = random.Random(13)
        prof.prepare(vm, driver)
        for _ in range(15):
            rng.choice(prof.common_ops)(vm, driver, rng)
        assert not attachment.warnings

    def test_training_artifacts_expose_itc_and_selection(self):
        prof = PROFILES["sdhci"]

        def workload(vm, device):
            prof.training(vm, device, random.Random(7))

        artifacts = build_execution_spec(lambda: prof.make_vm(), workload)
        assert artifacts.training_rounds > 0
        assert artifacts.itc.executed_nodes()
        assert "fifo_buffer" in artifacts.selection.buffers
        assert artifacts.spec.block_count() > 0

    def test_shadow_state_follows_device_across_session(self,
                                                        patched_specs):
        prof = PROFILES["fdc"]
        vm, device = prof.make_vm()
        attachment = deploy(vm, device, patched_specs["fdc"])
        driver = prof.make_driver(vm)
        rng = random.Random(3)
        prof.prepare(vm, driver)
        for _ in range(20):
            rng.choice(prof.common_ops)(vm, driver, rng)
        shadow = attachment.checker.device_state.dump()
        for name in ("data_pos", "data_len", "msr", "dor"):
            assert shadow[name] == device.state.read_field(name), name
