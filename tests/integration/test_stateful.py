"""Hypothesis stateful test: the SDHCI device + SEDSpec vs a pure-Python
model of an SD card.

A RuleBasedStateMachine interleaves writes, reads, register probes, and
status polls; invariants checked continuously:

* data integrity — reads return exactly what the model says,
* zero false positives — every step is legitimate traffic,
* shadow fidelity — the checker's tracked scalars match the device.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine, initialize, invariant, precondition, rule,
)
from hypothesis import strategies as st

from repro.checker import Mode
from repro.core import deploy
from repro.workloads import train_device_spec
from repro.workloads.profiles import PROFILES

SPEC = train_device_spec("sdhci").spec
BLOCKS = 16


class SDCardModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.model = {}

    @initialize()
    def boot(self):
        prof = PROFILES["sdhci"]
        self.vm, self.device = prof.make_vm()
        self.attachment = deploy(self.vm, self.device, SPEC,
                                 mode=Mode.ENHANCEMENT)
        self.driver = prof.make_driver(self.vm)
        self.driver.reset_card()

    @rule(lba=st.integers(0, BLOCKS - 1), fill=st.integers(0, 255),
          count=st.integers(1, 2))
    def write(self, lba, fill, count):
        payload = bytes([fill]) * (512 * count)
        self.driver.write_blocks(lba, payload)
        for i in range(count):
            self.model[lba + i] = bytes([fill]) * 512

    @rule(lba=st.integers(0, BLOCKS - 1), count=st.integers(1, 2))
    def read(self, lba, count):
        data = self.driver.read_blocks(lba, count)
        for i in range(count):
            expected = self.model.get(lba + i, bytes(512))
            assert data[i * 512:(i + 1) * 512] == expected

    @rule()
    def poll_status(self):
        self.driver.card_status()

    @rule()
    def read_identification(self):
        assert self.driver.read_cid()[0] == 0xCD

    @rule()
    def reset(self):
        self.driver.reset_card()

    @invariant()
    def no_false_positives(self):
        if hasattr(self, "attachment"):
            assert not self.attachment.warnings, \
                [str(a) for r in self.attachment.warnings
                 for a in r.anomalies]
            assert not self.attachment.halts

    @invariant()
    def shadow_tracks_device(self):
        if hasattr(self, "attachment"):
            shadow = self.attachment.checker.device_state
            for name in ("blksize", "blkcnt", "data_count"):
                assert shadow.read_field(name) \
                    == self.device.state.read_field(name), name


SDCardModel.TestCase.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None)
TestSDCardStateful = SDCardModel.TestCase
