"""Property-based integration tests on the toy device.

Hypothesis generates arbitrary benign interaction sequences; invariants:

* the IPT-decoded path always equals the ground-truth execution,
* a specification trained on a superset workload never flags a benign
  replay drawn from the training distribution,
* the checker's shadow state equals the device state after every clean
  round.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import ObservationLogger, select_parameters
from repro.checker import Action, ESChecker
from repro.compiler import compile_device
from repro.interp import Machine, TraceSink
from repro.ipt import Decoder, IPTTracer
from repro.spec import build_spec

from tests.toydev import ToyLogic, make_toy_machine

CMD = ToyLogic.CONSTS

#: A benign op: (io key, args builder).  Bounded so the FIFO (8 slots)
#: never overflows: pushes only when the model says there is room.
op_strategy = st.lists(
    st.sampled_from(["push", "pop", "reset", "sum"]),
    min_size=1, max_size=40)


def make_machine():
    return make_toy_machine()


def drive(machine, script, sinks_cb=None):
    """Run a bounded-benign interpretation of *script*."""
    depth = 0
    for op in script:
        if op == "push":
            if depth < 8:
                machine.run_entry("pmio:write:1", (depth + 1,))
                depth += 1
        elif op == "pop":
            machine.run_entry("pmio:read:1", ())
            depth = max(0, depth - 1)
        elif op == "reset":
            machine.run_entry("pmio:write:0", (CMD["CMD_RESET"],))
            depth = 0
        elif op == "sum":
            machine.run_entry("pmio:write:0", (CMD["CMD_SUM"],))


class _Truth(TraceSink):
    def __init__(self):
        self.rounds = []
        self._cur = None

    def on_io_enter(self, key, args):
        self._cur = []

    def on_block(self, func, block):
        if self._cur is not None:
            self._cur.append(block.address)

    def on_io_exit(self, key, result):
        self.rounds.append(self._cur)
        self._cur = None


class TestDecoderFidelity:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(op_strategy)
    def test_decoded_paths_equal_ground_truth(self, script):
        machine = make_machine()
        tracer = machine.add_sink(IPTTracer())
        truth = machine.add_sink(_Truth())
        drive(machine, script)
        decoded = Decoder(machine.program).decode_stream(tracer.packets)
        assert [r.block_addresses for r in decoded] == truth.rounds


def _train_full_spec():
    """Training that covers every benign behaviour of the toy device."""
    machine = make_machine()
    selection = select_parameters(machine.program)
    logger = machine.add_sink(ObservationLogger(
        "toy", selection.scalar_params | selection.funcptrs,
        selection.buffers))
    drive(machine, ["push"] * 8 + ["pop"] * 9 + ["sum", "reset",
                                                 "push", "sum", "pop",
                                                 "reset"])
    return build_spec(machine.program, logger.log, selection)


FULL_SPEC = _train_full_spec()


class TestCheckerSoundness:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(op_strategy)
    def test_benign_scripts_never_flagged(self, script):
        machine = make_machine()
        checker = ESChecker(FULL_SPEC)
        checker.boot_sync(machine.state)

        depth = 0
        for op in script:
            if op == "push":
                if depth >= 8:
                    continue
                key, args = "pmio:write:1", (depth + 1,)
                depth += 1
            elif op == "pop":
                key, args = "pmio:read:1", ()
                depth = max(0, depth - 1)
            elif op == "reset":
                key, args = "pmio:write:0", (CMD["CMD_RESET"],)
                depth = 0
            else:
                key, args = "pmio:write:0", (CMD["CMD_SUM"],)
            report = checker.check_io(key, args)
            assert report.action is Action.ALLOW, (op, report.anomalies)
            machine.run_entry(key, args)

        # Shadow and device agree on every tracked scalar parameter.
        shadow = checker.device_state.dump()
        for name, value in shadow.items():
            assert value == machine.state.read_field(name), name
