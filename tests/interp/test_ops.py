"""Unit tests for the shared operator tables (repro.interp.ops).

One module owns the integer semantics of every IR operator; these tests
pin those semantics directly AND through each lowering that consumes the
tables — the reference ``eval_binop``/``eval_unop`` entry points, the
device-side closure compiler, and the checker-side closure compiler — so
no backend can drift from another.
"""

import pytest
from hypothesis import given, strategies as st

from repro.checker.compile import _compile_expr as checker_compile_expr
from repro.errors import DeviceFault, InterpError
from repro.interp.compile import compile_expr as device_compile_expr
from repro.interp.ops import (
    BINOP_FUNCS, UNOP_FUNCS, binop_fn, eval_binop, eval_unop, unop_fn,
)
from repro.ir.expr import BINOPS, UNOPS, BinOp, Const, Param, UnOp

#: ground truth for each operator at sample operands
CASES = {
    "+": [((3, 4), 7), ((-3, 4), 1)],
    "-": [((3, 4), -1), ((10, 4), 6)],
    "*": [((3, 4), 12), ((-3, 4), -12)],
    "//": [((9, 4), 2), ((-9, 4), -3)],
    "%": [((9, 4), 1), ((-9, 4), 3)],
    "&": [((0b1100, 0b1010), 0b1000)],
    "|": [((0b1100, 0b1010), 0b1110)],
    "^": [((0b1100, 0b1010), 0b0110)],
    "<<": [((1, 4), 16), ((1, 64), 1), ((1, 65), 2)],
    ">>": [((16, 4), 1), ((16, 64), 16), ((16, 65), 8)],
    "==": [((3, 3), 1), ((3, 4), 0)],
    "!=": [((3, 3), 0), ((3, 4), 1)],
    "<": [((3, 4), 1), ((4, 3), 0), ((3, 3), 0)],
    "<=": [((3, 4), 1), ((4, 3), 0), ((3, 3), 1)],
    ">": [((3, 4), 0), ((4, 3), 1), ((3, 3), 0)],
    ">=": [((3, 4), 0), ((4, 3), 1), ((3, 3), 1)],
    "and": [((2, 3), 1), ((2, 0), 0), ((0, 3), 0), ((0, 0), 0)],
    "or": [((2, 3), 1), ((2, 0), 1), ((0, 3), 1), ((0, 0), 0)],
}
UNOP_CASES = {
    "-": [(5, -5), (-5, 5), (0, 0)],
    "~": [(0, -1), (5, -6), (-1, 0)],
    "not": [(0, 1), (5, 0), (-5, 0)],
}


def _run_device_compiled(op, a, b):
    fn = device_compile_expr(BinOp(op, Param("a"), Param("b")),
                             "test", _FakeProgram())
    return fn(None, {}, {"a": a, "b": b})


def _run_checker_compiled(op, a, b):
    fn = checker_compile_expr(BinOp(op, Param("a"), Param("b")),
                              _FakeSpec(), 0)
    return fn(None, {}, {"a": a, "b": b})


class _FakeProgram:
    """compile_expr only touches the program for state accesses."""
    layout = None


class _FakeSpec:
    layout = None


class TestTableCompleteness:
    def test_every_ir_binop_has_a_table_entry(self):
        assert set(BINOP_FUNCS) == BINOPS

    def test_every_ir_unop_has_a_table_entry(self):
        assert set(UNOP_FUNCS) == UNOPS

    def test_unknown_binop_raises(self):
        with pytest.raises(InterpError, match="unknown operator"):
            eval_binop("**", 2, 3)
        with pytest.raises(InterpError, match="unknown operator"):
            binop_fn("**")

    def test_unknown_unop_raises(self):
        with pytest.raises(InterpError, match="unknown unary"):
            eval_unop("!", 1)
        with pytest.raises(InterpError, match="unknown unary"):
            unop_fn("!")


@pytest.mark.parametrize("op", sorted(BINOPS))
class TestEveryBinop:
    def test_reference_eval(self, op):
        for (a, b), expected in CASES[op]:
            assert eval_binop(op, a, b) == expected

    def test_device_compiled(self, op):
        for (a, b), expected in CASES[op]:
            assert _run_device_compiled(op, a, b) == expected

    def test_checker_compiled(self, op):
        for (a, b), expected in CASES[op]:
            assert _run_checker_compiled(op, a, b) == expected

    def test_const_folding_matches_runtime(self, op):
        for (a, b), expected in CASES[op]:
            folded = device_compile_expr(
                BinOp(op, Const(a), Const(b)), "test", _FakeProgram())
            assert folded(None, {}, {}) == expected


@pytest.mark.parametrize("op", sorted(UNOPS))
class TestEveryUnop:
    def test_reference_eval(self, op):
        for a, expected in UNOP_CASES[op]:
            assert eval_unop(op, a) == expected

    def test_device_compiled(self, op):
        for a, expected in UNOP_CASES[op]:
            fn = device_compile_expr(UnOp(op, Param("a")),
                                     "test", _FakeProgram())
            assert fn(None, {}, {"a": a}) == expected

    def test_checker_compiled(self, op):
        for a, expected in UNOP_CASES[op]:
            fn = checker_compile_expr(UnOp(op, Param("a")),
                                      _FakeSpec(), 0)
            assert fn(None, {}, {"a": a}) == expected


class TestDivisionByZero:
    @pytest.mark.parametrize("op", ["//", "%"])
    def test_reference_faults(self, op):
        with pytest.raises(DeviceFault) as exc:
            eval_binop(op, 1, 0)
        assert exc.value.kind == "div0"

    @pytest.mark.parametrize("op", ["//", "%"])
    def test_compiled_faults_at_runtime(self, op):
        fn = device_compile_expr(BinOp(op, Param("a"), Param("b")),
                                 "test", _FakeProgram())
        with pytest.raises(DeviceFault) as exc:
            fn(None, {}, {"a": 1, "b": 0})
        assert exc.value.kind == "div0"

    @pytest.mark.parametrize("op", ["//", "%"])
    def test_const_div0_folds_to_runtime_fault(self, op):
        """Constant folding must not turn a runtime crash into a
        compile-time one."""
        fn = device_compile_expr(BinOp(op, Const(1), Const(0)),
                                 "test", _FakeProgram())
        with pytest.raises(DeviceFault) as exc:
            fn(None, {}, {})
        assert exc.value.kind == "div0"


class TestCrossBackendAgreement:
    @given(st.sampled_from(sorted(BINOPS)),
           st.integers(-(2 ** 40), 2 ** 40),
           st.integers(-(2 ** 40), 2 ** 40))
    def test_all_three_lowerings_agree(self, op, a, b):
        try:
            reference = eval_binop(op, a, b)
        except DeviceFault:
            with pytest.raises(DeviceFault):
                _run_device_compiled(op, a, b)
            with pytest.raises(DeviceFault):
                _run_checker_compiled(op, a, b)
            return
        assert _run_device_compiled(op, a, b) == reference
        assert _run_checker_compiled(op, a, b) == reference

    @given(st.sampled_from(sorted(UNOPS)),
           st.integers(-(2 ** 40), 2 ** 40))
    def test_unop_lowerings_agree(self, op, a):
        reference = eval_unop(op, a)
        fn = device_compile_expr(UnOp(op, Param("a")),
                                 "test", _FakeProgram())
        cfn = checker_compile_expr(UnOp(op, Param("a")), _FakeSpec(), 0)
        assert fn(None, {}, {"a": a}) == reference
        assert cfn(None, {}, {"a": a}) == reference
