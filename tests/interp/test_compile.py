"""Differential tests: the compiled and bytecode Machine backends vs
the reference tree-walker.

The fast backends' contract is bit-exactness — same final state bytes,
same cycle/step accounting, same sink event stream (order included),
same faults with the same kinds and messages.  Every test here runs
the identical workload on one machine per backend and demands
identical observables, on the toy device and on all five real device
models.  The reference walker is the oracle for both fast backends.
"""

import random

import pytest

from repro.compiler import compile_device
from repro.devices.base import create_device
from repro.errors import DeviceFault
from repro.interp import Machine, TraceSink, compiled_program_for
from repro.interp.compile import CompiledProgram
from repro.ir import StateMemory
from repro.vm.machine import GuestVM
from repro.workloads.profiles import PROFILES

from tests.toydev import ToyLogic

ALL_DEVICES = ("fdc", "ehci", "pcnet", "sdhci", "scsi")
BACKENDS = ("reference", "compiled", "bytecode")


class EventRecorder(TraceSink):
    """Records every sink event, normalized to comparable tuples."""

    def __init__(self):
        self.events = []

    def on_io_enter(self, key, args):
        self.events.append(("io_enter", key, tuple(args)))

    def on_io_exit(self, key, result):
        self.events.append(("io_exit", key, result))

    def on_block(self, func, block):
        self.events.append(("block", func.name, block.label,
                            block.address))

    def on_branch(self, block, taken):
        self.events.append(("branch", block.address, taken))

    def on_tip(self, block, target_addr, kind):
        self.events.append(("tip", block.address, target_addr, kind))

    def on_switch(self, block, value, target_addr):
        self.events.append(("switch", block.address, value, target_addr))

    def on_call(self, caller, callee):
        self.events.append(("call", caller.name, callee.name))

    def on_return(self, func):
        self.events.append(("return", func.name))

    def on_intrinsic(self, kind, values):
        self.events.append(("intrinsic", kind, tuple(values)))

    def on_extern(self, caller, func, dest, args, result):
        self.events.append(("extern", caller, func, dest, tuple(args),
                            result))

    def on_state_store(self, field, value, overflowed):
        self.events.append(("state_store", field, value, overflowed))

    def on_buf_store(self, buf, index, value):
        self.events.append(("buf_store", buf, index, value))


def _toy_machines(vuln=False, traced=False):
    overrides = {"VULN_UNCHECKED_PUSH": 1} if vuln else None
    pair = []
    for backend in BACKENDS:
        program = compile_device(ToyLogic, const_overrides=overrides)
        machine = Machine(program, backend=backend)
        machine.bind_extern("host_log", lambda m, level: None, cost=2)
        machine.set_funcptr("irq", "on_irq")
        recorder = machine.add_sink(EventRecorder()) if traced else None
        pair.append((machine, recorder))
    return pair


TOY_SCRIPT = (
    [("pmio:write:1", (b,)) for b in (10, 20, 30, 255, 0)]
    + [("pmio:write:0", (ToyLogic.CONSTS["CMD_SUM"],)),
       ("pmio:read:1", ()),
       ("pmio:read:1", ()),
       ("pmio:write:0", (ToyLogic.CONSTS["CMD_RESET"],)),
       ("pmio:read:1", ())]
)


class TestToyDifferential:
    @pytest.mark.parametrize("traced", [False, True],
                             ids=["fast", "traced"])
    def test_state_cycles_and_results_identical(self, traced):
        machines = _toy_machines(traced=traced)
        ref, ref_rec = machines[0]
        for key, args in TOY_SCRIPT:
            results = [m.run_entry(key, args) for m, _ in machines]
            assert all(r == results[0] for r in results[1:])
        for com, com_rec in machines[1:]:
            assert bytes(ref.state.data) == bytes(com.state.data)
            assert ref.cycles == com.cycles
            assert ref.steps == com.steps
            if traced:
                assert ref_rec.events == com_rec.events

    def test_vulnerable_build_corruption_identical(self):
        """Near-OOB writes corrupt the same neighbour on both backends,
        and the eventual far-OOB segfault matches kind and message."""
        machines = [m for m, _ in _toy_machines(vuln=True)]
        ref = machines[0]
        for i in range(12):
            outcomes = []
            for machine in machines:
                try:
                    machine.run_entry("pmio:write:1", (0x60 + i,))
                    outcomes.append(None)
                except DeviceFault as fault:
                    outcomes.append((fault.kind, str(fault)))
            assert all(o == outcomes[0] for o in outcomes[1:])
            for com in machines[1:]:
                assert bytes(ref.state.data) == bytes(com.state.data)
                assert ref.cycles == com.cycles
            if outcomes[0] is not None:
                break
        else:
            pytest.fail("vulnerable build never segfaulted")

    def test_wild_jump_fault_identical(self):
        faults = []
        for machine in (m for m, _ in _toy_machines()):
            machine.state.write_field("irq", 0xDEAD)
            machine.run_entry("pmio:write:1", (5,))
            with pytest.raises(DeviceFault) as exc:
                machine.run_entry("pmio:write:0",
                                  (ToyLogic.CONSTS["CMD_SUM"],))
            faults.append((exc.value.kind, str(exc.value)))
        assert all(f == faults[0] for f in faults[1:])

    def test_watchdog_fault_identical(self):
        faults = []
        for machine in (m for m, _ in _toy_machines()):
            machine.max_steps = 10
            with pytest.raises(DeviceFault) as exc:
                machine.run_entry("pmio:write:0",
                                  (ToyLogic.CONSTS["CMD_SUM"],))
            faults.append((exc.value.kind, str(exc.value),
                           machine.steps, machine.cycles))
        assert all(f == faults[0] for f in faults[1:])


def _vm_pair(name):
    """One (vm, device, recorder) per backend, identically wired."""
    prof = PROFILES[name]
    out = []
    for backend in BACKENDS:
        vm = GuestVM()
        device = create_device(name, backend=backend)
        if prof.bus == "mmio":
            vm.attach_mmio_device(device, prof.base_port)
        else:
            vm.attach_device(device, prof.base_port)
        recorder = device.machine.add_sink(EventRecorder())
        out.append((vm, device, recorder))
    return prof, out


@pytest.mark.parametrize("name", ALL_DEVICES)
class TestRealDeviceDifferential:
    def test_workload_identical(self, name):
        """prepare + a sample of each common op, event-for-event."""
        prof, pair = _vm_pair(name)
        for vm, device, _ in pair:
            driver = prof.make_driver(vm)
            prof.prepare(vm, driver)
            rng = random.Random(1234)
            for op in prof.common_ops:
                op(vm, driver, rng)
        _, ref_dev, ref_rec = pair[0]
        for _, com_dev, com_rec in pair[1:]:
            assert bytes(ref_dev.state.data) == bytes(com_dev.state.data)
            assert ref_dev.machine.cycles == com_dev.machine.cycles
            assert ref_dev.machine.steps == com_dev.machine.steps
            assert ref_rec.events == com_rec.events

    def test_rare_ops_identical(self, name):
        prof, pair = _vm_pair(name)
        for vm, device, _ in pair:
            driver = prof.make_driver(vm)
            prof.prepare(vm, driver)
            rng = random.Random(99)
            for op in prof.rare_ops:
                op(vm, driver, rng)
        _, ref_dev, _ = pair[0]
        for _, com_dev, _ in pair[1:]:
            assert bytes(ref_dev.state.data) == bytes(com_dev.state.data)
            assert ref_dev.machine.cycles == com_dev.machine.cycles


class TestCompiledArtifactSharing:
    def test_compiled_program_cached_per_program(self):
        program = compile_device(ToyLogic)
        first = compiled_program_for(program)
        assert compiled_program_for(program) is first
        assert isinstance(first, CompiledProgram)

    def test_machines_share_the_artifact(self):
        program = compile_device(ToyLogic)
        a = Machine(program)
        b = Machine(program, state=StateMemory(program.layout))
        assert a._compiled is b._compiled

    def test_unknown_backend_rejected(self):
        program = compile_device(ToyLogic)
        with pytest.raises(Exception, match="backend"):
            Machine(program, backend="jit")


class TestBytecodeArtifactSharing:
    def test_bytecode_program_cached_per_program(self):
        from repro.interp import BytecodeProgram, bytecode_program_for

        program = compile_device(ToyLogic)
        first = bytecode_program_for(program)
        assert bytecode_program_for(program) is first
        assert isinstance(first, BytecodeProgram)

    def test_machines_share_the_artifact(self):
        program = compile_device(ToyLogic)
        a = Machine(program, backend="bytecode")
        b = Machine(program, backend="bytecode",
                    state=StateMemory(program.layout))
        assert a._bytecode is b._bytecode

    def test_payload_round_trips_to_same_digest(self):
        from repro.interp import bytecode_program_for
        from repro.interp.bytecode import BytecodeProgram

        program = compile_device(ToyLogic)
        art = bytecode_program_for(program)
        clone = BytecodeProgram.from_payload(art.to_payload())
        assert clone.digest() == art.digest()
        assert clone.to_payload() == art.to_payload()
