"""Interpreter and compiler corner cases beyond the happy path."""

import pytest

from repro.compiler import DeviceLogic, arr, compile_device, fld, ptr
from repro.errors import DeviceFault, InterpError
from repro.interp import Machine
from repro.ir import Switch


def compile_src(source, consts=None):
    namespace = {}
    exec(source, {"DeviceLogic": DeviceLogic, "fld": fld, "arr": arr,
                  "ptr": ptr}, namespace)
    return compile_device(namespace["D"], const_overrides=consts,
                          source=source)


class TestControlFlowCorners:
    def test_nested_loops(self):
        program = compile_src(
            "class D(DeviceLogic):\n"
            "    STRUCT = 'D'\n"
            "    FIELDS = (fld('out', 'u32'),)\n"
            "    ENTRIES = {'pmio:write:0': 'h'}\n"
            "    def h(self, n):\n"
            "        total = 0\n"
            "        for i in range(n):\n"
            "            for j in range(i):\n"
            "                total = total + 1\n"
            "        self.out = total\n"
            "        return 0\n")
        machine = Machine(program)
        machine.run_entry("pmio:write:0", (6,))
        assert machine.state.read_field("out") == sum(range(6))

    def test_break_and_continue(self):
        program = compile_src(
            "class D(DeviceLogic):\n"
            "    STRUCT = 'D'\n"
            "    FIELDS = (fld('out', 'u32'),)\n"
            "    ENTRIES = {'pmio:write:0': 'h'}\n"
            "    def h(self, n):\n"
            "        total = 0\n"
            "        i = 0\n"
            "        while 1:\n"
            "            i = i + 1\n"
            "            if i > 100:\n"
            "                break\n"
            "            if i % 2 == 0:\n"
            "                continue\n"
            "            total = total + i\n"
            "        self.out = total\n"
            "        return 0\n")
        machine = Machine(program)
        machine.run_entry("pmio:write:0", (0,))
        assert machine.state.read_field("out") \
            == sum(i for i in range(1, 101) if i % 2)

    def test_range_with_negative_step(self):
        program = compile_src(
            "class D(DeviceLogic):\n"
            "    STRUCT = 'D'\n"
            "    FIELDS = (fld('out', 'u32'),)\n"
            "    ENTRIES = {'pmio:write:0': 'h'}\n"
            "    def h(self, n):\n"
            "        total = 0\n"
            "        for i in range(n, 0, -1):\n"
            "            total = total + i\n"
            "        self.out = total\n"
            "        return 0\n")
        machine = Machine(program)
        machine.run_entry("pmio:write:0", (5,))
        assert machine.state.read_field("out") == 15

    def test_recursion_depth_guard(self):
        program = compile_src(
            "class D(DeviceLogic):\n"
            "    STRUCT = 'D'\n"
            "    FIELDS = (fld('out', 'u32'),)\n"
            "    ENTRIES = {'pmio:write:0': 'h'}\n"
            "    def h(self, n):\n"
            "        self.h(n)\n"
            "        return 0\n")
        machine = Machine(program)
        with pytest.raises(DeviceFault) as exc:
            machine.run_entry("pmio:write:0", (1,))
        assert exc.value.kind == "stack-overflow"

    def test_division_by_zero_is_fault(self):
        program = compile_src(
            "class D(DeviceLogic):\n"
            "    STRUCT = 'D'\n"
            "    FIELDS = (fld('out', 'u32'),)\n"
            "    ENTRIES = {'pmio:write:0': 'h'}\n"
            "    def h(self, n):\n"
            "        self.out = 10 // n\n"
            "        return 0\n")
        machine = Machine(program)
        with pytest.raises(DeviceFault):
            machine.run_entry("pmio:write:0", (0,))
        machine2 = Machine(program)
        machine2.run_entry("pmio:write:0", (5,))
        assert machine2.state.read_field("out") == 2

    def test_switch_lowering_triggers_at_three_arms(self):
        def src(n_arms):
            arms = "".join(
                f"        {'if' if i == 0 else 'elif'} n == {i}:\n"
                f"            self.out = {i * 10}\n"
                for i in range(n_arms))
            return ("class D(DeviceLogic):\n"
                    "    STRUCT = 'D'\n"
                    "    FIELDS = (fld('out', 'u32'),)\n"
                    "    ENTRIES = {'pmio:write:0': 'h'}\n"
                    "    def h(self, n):\n"
                    + arms +
                    "        else:\n"
                    "            self.out = 999\n"
                    "        return 0\n")

        two = compile_src(src(2))
        three = compile_src(src(3))
        def has_switch(program):
            return any(isinstance(b.terminator, Switch)
                       for f in program.functions.values()
                       for b in f.iter_blocks())
        assert not has_switch(two)
        assert has_switch(three)
        # semantics identical either way
        for program in (two, three):
            machine = Machine(program)
            machine.run_entry("pmio:write:0", (1,))
            assert machine.state.read_field("out") == 10
            machine.run_entry("pmio:write:0", (77,))
            assert machine.state.read_field("out") == 999

    def test_signed_field_arithmetic(self):
        program = compile_src(
            "class D(DeviceLogic):\n"
            "    STRUCT = 'D'\n"
            "    FIELDS = (fld('pos', 'i32'),)\n"
            "    ENTRIES = {'pmio:write:0': 'h'}\n"
            "    def h(self, n):\n"
            "        self.pos = self.pos - n\n"
            "        return 0\n")
        machine = Machine(program)
        machine.run_entry("pmio:write:0", (5,))
        assert machine.state.read_field("pos") == -5

    def test_funcptr_comparison_and_null(self):
        program = compile_src(
            "class D(DeviceLogic):\n"
            "    STRUCT = 'D'\n"
            "    FIELDS = (fld('out', 'u32'), ptr('cb'))\n"
            "    ENTRIES = {'pmio:write:0': 'h'}\n"
            "    def h(self, n):\n"
            "        if self.cb != 0:\n"
            "            self.cb(n)\n"
            "        else:\n"
            "            self.out = 1\n"
            "        return 0\n"
            "    def target(self, n):\n"
            "        self.out = n\n"
            "        return 0\n")
        machine = Machine(program)
        machine.run_entry("pmio:write:0", (9,))
        assert machine.state.read_field("out") == 1   # null guard
        machine.set_funcptr("cb", "target")
        machine.run_entry("pmio:write:0", (9,))
        assert machine.state.read_field("out") == 9
