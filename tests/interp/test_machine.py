"""Unit tests for the IR interpreter."""

import pytest
from hypothesis import given, strategies as st

from repro.compiler import compile_device
from repro.errors import DeviceFault, InterpError
from repro.interp import CoverageSink, Machine, TraceSink, eval_binop

from tests.toydev import ToyLogic, make_toy_machine


def make_machine(vuln=False):
    return make_toy_machine(vuln=vuln, extern_cost=2)


class TestBasicExecution:
    def test_push_then_pop(self):
        m = make_machine()
        m.run_entry("pmio:write:1", (0x41,))
        m.run_entry("pmio:write:1", (0x42,))
        assert m.run_entry("pmio:read:1") == 0x42
        assert m.run_entry("pmio:read:1") == 0x41

    def test_pop_empty_sets_status(self):
        m = make_machine()
        m.run_entry("pmio:read:1")
        assert m.state.read_field("status") == 0xFE

    def test_reset_command(self):
        m = make_machine()
        m.run_entry("pmio:write:1", (1,))
        m.run_entry("pmio:write:0", (ToyLogic.CONSTS["CMD_RESET"],))
        assert m.state.read_field("pos") == 0
        assert m.state.read_field("count") == 0

    def test_sum_command_fires_irq(self):
        m = make_machine()
        for byte in (10, 20, 30):
            m.run_entry("pmio:write:1", (byte,))
        m.run_entry("pmio:write:0", (ToyLogic.CONSTS["CMD_SUM"],))
        assert m.state.read_field("status") == 60
        assert m.state.read_field("irq_level") == 1

    def test_patched_build_tolerates_overflow_attempts(self):
        m = make_machine()
        for i in range(20):
            m.run_entry("pmio:write:1", (i,))
        assert m.state.read_field("status") == 0xFF
        assert m.state.read_field("pos") == 8

    def test_vulnerable_build_corrupts_state(self):
        """Pushing past the FIFO clobbers pos itself (adjacent field)."""
        m = make_machine(vuln=True)
        for i in range(9):
            m.run_entry("pmio:write:1", (0x60 + i,))
        # The 9th write landed on the first byte of pos.
        assert m.state.read_field("pos") != 9

    def test_cycles_accumulate(self):
        m = make_machine()
        before = m.cycles
        m.run_entry("pmio:write:1", (1,))
        assert m.cycles > before

    def test_unbound_extern_raises(self):
        program = compile_device(ToyLogic)
        m = Machine(program)
        m.set_funcptr("irq", "on_irq")
        for byte in (1,):
            m.run_entry("pmio:write:1", (byte,))
        with pytest.raises(InterpError, match="extern"):
            m.run_entry("pmio:write:0", (ToyLogic.CONSTS["CMD_SUM"],))

    def test_wrong_arity_raises(self):
        m = make_machine()
        with pytest.raises(InterpError, match="expects"):
            m.run_entry("pmio:write:1", ())

    def test_run_function_directly(self):
        m = make_machine()
        m.run_function("do_reset")
        assert m.state.read_field("status") == 0


class TestFaults:
    def test_wild_indirect_jump_faults(self):
        m = make_machine()
        m.state.write_field("irq", 0xDEAD)
        m.run_entry("pmio:write:1", (5,))
        with pytest.raises(DeviceFault) as exc:
            m.run_entry("pmio:write:0", (ToyLogic.CONSTS["CMD_SUM"],))
        assert exc.value.kind == "wild-jump"

    def test_hijacked_pointer_runs_other_function(self):
        """Corrupting irq to point at do_reset is a successful hijack...

        ...except do_reset takes no args while the call passes one, so the
        interpreter reports the arity mismatch — either way, not on_irq.
        """
        m = make_machine()
        m.set_funcptr("irq", "do_reset")
        m.run_entry("pmio:write:1", (5,))
        with pytest.raises(InterpError):
            m.run_entry("pmio:write:0", (ToyLogic.CONSTS["CMD_SUM"],))

    def test_watchdog_trips_on_runaway(self):
        m = make_machine()
        m.max_steps = 10
        with pytest.raises(DeviceFault) as exc:
            m.run_entry("pmio:write:0", (ToyLogic.CONSTS["CMD_SUM"],))
        assert exc.value.kind == "watchdog"


class _Recorder(TraceSink):
    def __init__(self):
        self.events = []

    def on_io_enter(self, key, args):
        self.events.append(("enter", key))

    def on_io_exit(self, key, result):
        self.events.append(("exit", key))

    def on_branch(self, block, taken):
        self.events.append(("tnt", taken))

    def on_tip(self, block, target, kind):
        self.events.append(("tip", kind))

    def on_intrinsic(self, kind, values):
        self.events.append(("intr", kind, values))


class TestSinks:
    def test_io_enter_exit_bracketing(self):
        m = make_machine()
        rec = m.add_sink(_Recorder())
        m.run_entry("pmio:write:1", (1,))
        assert rec.events[0] == ("enter", "pmio:write:1")
        assert rec.events[-1] == ("exit", "pmio:write:1")

    def test_branches_recorded(self):
        m = make_machine()
        rec = m.add_sink(_Recorder())
        m.run_entry("pmio:write:1", (1,))
        assert ("tnt", True) in rec.events

    def test_icall_emits_tip(self):
        m = make_machine()
        rec = m.add_sink(_Recorder())
        m.run_entry("pmio:write:0", (ToyLogic.CONSTS["CMD_SUM"],))
        assert ("tip", "icall") in rec.events

    def test_intrinsic_carries_command_value(self):
        m = make_machine()
        rec = m.add_sink(_Recorder())
        m.run_entry("pmio:write:0", (ToyLogic.CONSTS["CMD_RESET"],))
        assert ("intr", "command_decision", (0,)) in rec.events

    def test_remove_sink(self):
        m = make_machine()
        rec = m.add_sink(_Recorder())
        m.remove_sink(rec)
        m.run_entry("pmio:write:1", (1,))
        assert rec.events == []

    def test_coverage_sink_collects_blocks_and_edges(self):
        m = make_machine()
        cov = m.add_sink(CoverageSink())
        m.run_entry("pmio:write:1", (1,))
        assert cov.blocks
        assert cov.edges
        lo, hi = m.program.code_range()
        assert all(lo <= a < hi for a in cov.blocks)


class TestEvalBinop:
    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_arith_matches_python(self, a, b):
        assert eval_binop("+", a, b) == a + b
        assert eval_binop("-", a, b) == a - b
        assert eval_binop("*", a, b) == a * b
        if b != 0:
            assert eval_binop("//", a, b) == a // b

    def test_division_by_zero_is_device_fault(self):
        with pytest.raises(DeviceFault):
            eval_binop("//", 1, 0)

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_comparisons_are_zero_one(self, a, b):
        for op in ("==", "!=", "<", "<=", ">", ">="):
            assert eval_binop(op, a, b) in (0, 1)
