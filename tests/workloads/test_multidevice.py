"""Multi-device guest workloads: composite profiles, cross-device ops,
and the interleaved-PT-stream model with per-device address filtering."""

import random

import pytest

from repro.errors import WorkloadError
from repro.ipt.packets import Tip, TipPgd, TipPge, Tnt, iter_rounds
from repro.ipt.tracer import IPTTracer
from repro.workloads.multidevice import (
    WINDOW_SPAN, composite_profile, demux_stream, device_windows,
    interleave_streams,
)
from repro.workloads.profiles import profile, split_device

PAIR = "virtio-net+virtio-blk"


class TestNames:
    def test_split_device(self):
        assert split_device(PAIR) == ("virtio-net", "virtio-blk")
        assert split_device("fdc") == ("fdc",)

    def test_composite_needs_two_parts(self):
        with pytest.raises(WorkloadError):
            composite_profile("fdc")

    def test_unknown_part_rejected(self):
        with pytest.raises(WorkloadError):
            composite_profile("fdc+gpu")

    def test_profile_resolves_composites(self):
        assert profile(PAIR) is composite_profile(PAIR)


class TestCompositeProfile:
    def test_vm_hosts_every_part(self):
        prof = composite_profile(PAIR)
        vm, primary = prof.make_vm()
        assert set(vm.devices) == {"virtio-net", "virtio-blk"}
        assert primary.NAME == "virtio-net"

    def test_part_ops_plus_cross_ops(self):
        prof = composite_profile(PAIR)
        net = profile("virtio-net")
        blk = profile("virtio-blk")
        # Each part's common ops, the interleaver, and the two
        # virtio-pair cross-device patterns.
        assert len(prof.common_ops) == (len(net.common_ops)
                                        + len(blk.common_ops) + 3)
        assert len(prof.op_weights) == len(prof.common_ops)

    def test_all_ops_run_clean(self):
        prof = composite_profile(PAIR)
        vm, _ = prof.make_vm()
        driver = prof.make_driver(vm)
        prof.prepare(vm, driver)
        rng = random.Random(7)
        for op in prof.common_ops + prof.rare_ops:
            op(vm, driver, rng)
        assert not any(d.halted for d in vm.devices.values())

    def test_cross_device_dma_reaches_both_devices(self):
        prof = composite_profile(PAIR)
        vm, _ = prof.make_vm()
        driver = prof.make_driver(vm)
        prof.prepare(vm, driver)
        net_dev = vm.devices["virtio-net"]
        frames = len(net_dev.net.tx_frames)
        from repro.workloads.multidevice import _x_dma_scatter_gather
        _x_dma_scatter_gather(vm, driver, random.Random(3))
        # The transmitted frame begins with bytes gathered out of blk's
        # readback landing zone.
        assert len(net_dev.net.tx_frames) > frames
        payload = net_dev.net.tx_frames[-1].payload
        assert len(payload) > 256

    def test_irq_pingpong_round_trips(self):
        prof = composite_profile(PAIR)
        vm, _ = prof.make_vm()
        driver = prof.make_driver(vm)
        prof.prepare(vm, driver)
        from repro.workloads.multidevice import _x_irq_pingpong
        _x_irq_pingpong(vm, driver, random.Random(5))
        assert vm.devices["virtio-blk"].disk.writes > 0


class TestInterleavedStreams:
    def _streams(self):
        return {
            "virtio-net": [TipPge(0x100), Tnt((True,)), Tip(0x140),
                           TipPgd(0x180),
                           TipPge(0x200), Tnt((False, True)),
                           TipPgd(0x240)],
            "virtio-blk": [TipPge(0x300), Tnt((True, True)),
                           TipPgd(0x340)],
        }

    def test_windows_are_disjoint_and_ordered(self):
        windows = device_windows(("virtio-net", "virtio-blk"))
        assert windows[0].slide == 0
        assert windows[1].slide == WINDOW_SPAN
        assert windows[0].contains(0x100)
        assert not windows[0].contains(WINDOW_SPAN + 0x100)
        assert windows[1].contains(WINDOW_SPAN + 0x100)

    def test_roundtrip_is_exact(self):
        streams = self._streams()
        windows = device_windows(tuple(streams))
        merged = interleave_streams(streams, windows, seed=11)
        back = demux_stream(merged, windows)
        assert back == {k: list(v) for k, v in streams.items()}

    def test_roundtrip_exact_for_any_seed(self):
        streams = self._streams()
        windows = device_windows(tuple(streams))
        for seed in range(6):
            merged = interleave_streams(streams, windows, seed=seed)
            assert demux_stream(merged, windows) \
                == {k: list(v) for k, v in streams.items()}

    def test_merged_stream_keeps_per_device_round_order(self):
        streams = self._streams()
        windows = device_windows(tuple(streams))
        merged = interleave_streams(streams, windows, seed=3)
        net_pges = [p.ip for p in merged
                    if isinstance(p, TipPge) and windows[0].contains(p.ip)]
        assert net_pges == [0x100, 0x200]

    def test_real_traces_roundtrip(self):
        """Capture genuine PT streams from both live devices, merge,
        demux, and compare byte-for-byte."""
        streams = {}
        for name in ("virtio-net", "virtio-blk"):
            prof = profile(name)
            vm, device = prof.make_vm()
            tracer = device.machine.add_sink(IPTTracer())
            driver = prof.make_driver(vm)
            prof.prepare(vm, driver)
            rng = random.Random(1)
            prof.common_ops[0](vm, driver, rng)
            streams[name] = list(tracer.packets)
        windows = device_windows(tuple(streams))
        merged = interleave_streams(streams, windows, seed=4)
        back = demux_stream(merged, windows)
        for name, packets in streams.items():
            # Packets outside any PGE..PGD round (sync preambles,
            # inter-round status) never enter the merged buffer; the
            # rounds themselves must round-trip exactly.
            expected = [p for segment in iter_rounds(packets)
                        for p in segment]
            assert back[name] == expected, name
