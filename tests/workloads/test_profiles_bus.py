"""Tests for profile bus abstraction (PMIO vs MMIO) and layouts."""

import pytest

from repro.workloads.profiles import FILESYSTEM_LAYOUTS, PROFILES


class TestBusAbstraction:
    def test_ehci_is_mmio(self):
        assert PROFILES["ehci"].bus == "mmio"

    def test_others_are_pmio(self):
        for name in ("fdc", "pcnet", "sdhci", "scsi"):
            assert PROFILES[name].bus == "pmio"

    def test_poke_peek_pmio(self):
        prof = PROFILES["fdc"]
        vm, device = prof.make_vm()
        assert prof.peek(vm, 4) & 0x80       # MSR RQM after reset
        prof.poke(vm, 2, 0x0C)               # DOR write routes through
        assert device.state.read_field("dor") == 0x0C

    def test_poke_peek_mmio(self):
        prof = PROFILES["ehci"]
        vm, device = prof.make_vm()
        prof.poke(vm, 0, 1)                  # USBCMD run
        assert device.state.read_field("usbcmd") == 1
        assert prof.peek(vm, 1) == device.state.read_field("usbsts")

    def test_mmio_device_not_reachable_via_ports(self):
        from repro.errors import WorkloadError
        prof = PROFILES["ehci"]
        vm, _ = prof.make_vm()
        with pytest.raises(WorkloadError, match="no device"):
            vm.inb(prof.base_port + 1)


class TestFilesystemLayouts:
    def test_three_filesystems(self):
        assert set(FILESYSTEM_LAYOUTS) == {"FAT32", "NTFS", "EXT4"}

    def test_layouts_are_distinct(self):
        signatures = {(v["superblock_lba"], v["meta_stride"], v["fill"])
                      for v in FILESYSTEM_LAYOUTS.values()}
        assert len(signatures) == 3
