"""Tests for workload profiles, interaction modes, fuzzing, bench tools."""

import random

import pytest

from repro.checker import Mode
from repro.core import deploy
from repro.workloads import (
    InteractionMode, Measurement, PROFILES, fuzz_device, iozone, iperf,
    measure_effective_coverage, normalized, overhead_percent, ping,
    run_interaction, train_device_spec, training_coverage,
)


@pytest.fixture(scope="module")
def sdhci_art():
    return train_device_spec("sdhci")


class TestProfiles:
    def test_all_devices_profiled(self):
        # Composite tenants ("virtio-net+virtio-blk") are synthesized on
        # demand by profile(), not registered here.
        assert set(PROFILES) == {"fdc", "pcnet", "ehci", "sdhci", "scsi",
                                 "virtio-net", "virtio-blk"}

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_training_runs_clean(self, name):
        prof = PROFILES[name]
        vm, device = prof.make_vm()
        prof.training(vm, device, random.Random(1))
        assert not device.halted

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_common_and_rare_ops_run_clean(self, name):
        prof = PROFILES[name]
        vm, device = prof.make_vm()
        driver = prof.make_driver(vm)
        rng = random.Random(2)
        prof.prepare(vm, driver)
        for op in prof.common_ops + prof.rare_ops:
            op(vm, driver, rng)
        assert not device.halted

    def test_weights_align_with_ops(self):
        for prof in PROFILES.values():
            if prof.op_weights is not None:
                assert len(prof.op_weights) == len(prof.common_ops)


class TestInteraction:
    def test_report_shape(self, sdhci_art):
        report = run_interaction(sdhci_art.spec, "sdhci",
                                 InteractionMode.SEQUENTIAL, hours=1,
                                 cases_per_hour=4)
        assert report.total_cases == 4
        assert report.total_rounds > 0
        assert 0.0 <= report.fpr <= 1.0

    def test_benign_modes_have_zero_fp_without_rare_ops(self, sdhci_art):
        for mode in InteractionMode:
            report = run_interaction(sdhci_art.spec, "sdhci", mode,
                                     hours=1, cases_per_hour=3,
                                     rare_case_rate=0.0)
            assert report.false_positives == 0, mode

    def test_rare_commands_cause_fp(self, sdhci_art):
        report = run_interaction(sdhci_art.spec, "sdhci",
                                 InteractionMode.RANDOM, hours=1,
                                 cases_per_hour=6, rare_case_rate=1.0)
        # Every case contains a rare command: every case is flagged.
        assert report.false_positives == report.total_cases

    def test_deterministic_given_seed(self, sdhci_art):
        a = run_interaction(sdhci_art.spec, "sdhci",
                            InteractionMode.RANDOM, hours=1,
                            cases_per_hour=3, seed=9)
        b = run_interaction(sdhci_art.spec, "sdhci",
                            InteractionMode.RANDOM, hours=1,
                            cases_per_hour=3, seed=9)
        assert [c.rounds for c in a.cases] == [c.rounds for c in b.cases]


class TestFuzz:
    def test_fuzz_collects_edges(self):
        result = fuzz_device("sdhci", iterations=60)
        assert result.legitimate_edges
        assert result.iterations == 60

    def test_training_coverage_subset_relation(self):
        trained = training_coverage("sdhci")
        assert trained

    def test_effective_coverage_in_paper_regime(self):
        report = measure_effective_coverage("sdhci", iterations=200)
        assert 0.75 <= report.ratio <= 1.0


class TestBenchtools:
    def test_measurement_math(self):
        m = Measurement("x", payload_bytes=1000, cycles=2_000_000,
                        operations=4)
        assert m.seconds == 0.002
        assert m.throughput_bytes_per_sec == 500_000
        assert m.latency_sec_per_op == 0.0005

    def test_normalized_and_overhead(self):
        base = Measurement("b", 1000, 1_000_000, 1)
        slow = Measurement("s", 1000, 1_100_000, 1)
        assert abs(normalized(base, slow, "throughput") - 1 / 1.1) < 1e-9
        assert abs(overhead_percent(base, slow, "latency") - 10.0) < 1e-6

    def test_iozone_sweep(self):
        prof = PROFILES["sdhci"]
        vm, _ = prof.make_vm()
        driver = prof.make_driver(vm)
        prof.prepare(vm, driver)
        result = iozone("sdhci", vm, driver, record_sizes=(512, 1024),
                        records_per_size=1)
        assert set(result.write) == {512, 1024}
        assert result.write[1024].cycles > result.write[512].cycles

    def test_iperf_four_bars(self):
        prof = PROFILES["pcnet"]
        vm, _ = prof.make_vm()
        driver = prof.make_driver(vm)
        prof.prepare(vm, driver)
        result = iperf(vm, driver, frames=4)
        assert set(result.bandwidth) == {
            ("tcp", "up"), ("tcp", "down"), ("udp", "up"), ("udp", "down")}
        for m in result.bandwidth.values():
            assert m.cycles > 0

    def test_ping_roundtrips(self):
        prof = PROFILES["pcnet"]
        vm, _ = prof.make_vm()
        driver = prof.make_driver(vm)
        prof.prepare(vm, driver)
        m = ping(vm, driver, count=5)
        assert m.operations == 5
        assert m.latency_sec_per_op > 0

    def test_sedspec_costs_more_than_baseline(self, sdhci_art):
        prof = PROFILES["sdhci"]
        vm, _ = prof.make_vm()
        drv = prof.make_driver(vm)
        prof.prepare(vm, drv)
        base = iozone("sdhci", vm, drv, record_sizes=(512,),
                      records_per_size=1)
        vm2, dev2 = prof.make_vm()
        deploy(vm2, dev2, sdhci_art.spec, mode=Mode.ENHANCEMENT)
        drv2 = prof.make_driver(vm2)
        prof.prepare(vm2, drv2)
        treated = iozone("sdhci", vm2, drv2, record_sizes=(512,),
                         records_per_size=1)
        assert treated.write[512].cycles > base.write[512].cycles
        # ... but within the paper's bound.
        assert overhead_percent(base.write[512], treated.write[512],
                                "throughput") < 5.0
