"""Protocol-level unit tests for the guest drivers."""

import pytest

from repro.devices.ehci import EHCI
from repro.devices.fdc import FDC
from repro.devices.pcnet import PCNet
from repro.devices.scsi import SCSI
from repro.devices.sdhci import SDHCI
from repro.errors import GuestError
from repro.vm import GuestVM
from repro.vm.drivers.ehci import EHCIDriver
from repro.vm.drivers.fdc import FDCDriver, _lba_to_chs
from repro.vm.drivers.pcnet import PCNetDriver
from repro.vm.drivers.scsi import SCSIDriver
from repro.vm.drivers.sdhci import SDHCIDriver


class TestFDCDriverProtocol:
    def test_lba_chs_mapping(self):
        assert _lba_to_chs(0) == (0, 0, 1)
        assert _lba_to_chs(17) == (0, 0, 18)
        assert _lba_to_chs(18) == (0, 1, 1)
        assert _lba_to_chs(36) == (1, 0, 1)

    def test_lba_chs_bijective_over_media(self):
        seen = set()
        for lba in range(2880):
            chs = _lba_to_chs(lba)
            assert chs not in seen
            seen.add(chs)
            track, head, sector = chs
            assert 0 <= track < 80 and head in (0, 1) and 1 <= sector <= 18

    def test_command_refused_when_not_ready(self):
        vm = GuestVM()
        fdc = vm.attach_device(FDC(), 0x3F0)
        driver = FDCDriver(vm)
        fdc.state.write_field("msr", 0)     # not RQM
        with pytest.raises(GuestError, match="not ready"):
            driver.version()

    def test_sense_interrupt_returns_st0_track(self):
        vm = GuestVM()
        vm.attach_device(FDC(), 0x3F0)
        driver = FDCDriver(vm)
        driver.controller_reset()
        driver.seek(12)
        st0, track = driver.sense_interrupt()
        assert track == 12


class TestSCSIDriverProtocol:
    def test_cdb10_encoding(self):
        cdb = SCSIDriver._cdb10(0x28, 0x01020304, 0x0506)
        assert cdb == [0x28, 0, 0x01, 0x02, 0x03, 0x04, 0, 0x05, 0x06, 0]

    def test_partial_block_write_rejected(self):
        vm = GuestVM()
        vm.attach_device(SCSI(), 0x600)
        driver = SCSIDriver(vm)
        driver.reset()
        with pytest.raises(GuestError):
            driver.write10(0, b"not-a-block")


class TestSDHCIDriverProtocol:
    def test_partial_block_rejected(self):
        vm = GuestVM()
        vm.attach_device(SDHCI(), 0x500)
        driver = SDHCIDriver(vm)
        with pytest.raises(GuestError):
            driver.write_blocks(0, b"x" * 100)

    def test_single_vs_multi_command_selection(self):
        vm = GuestVM()
        sd = vm.attach_device(SDHCI(), 0x500)
        driver = SDHCIDriver(vm)
        driver.reset_card()
        driver.write_blocks(0, bytes(512))
        assert sd.state.read_field("cmdreg") & 0x3F == 24   # single
        driver.write_blocks(0, bytes(1024))
        assert sd.state.read_field("cmdreg") & 0x3F == 25   # multi


class TestPCNetDriverProtocol:
    def test_oversized_descriptor_chunk_rejected(self):
        vm = GuestVM()
        vm.attach_device(PCNet(), 0x300)
        driver = PCNetDriver(vm)
        driver.init_rings()
        with pytest.raises(GuestError, match="too large"):
            driver.send_frame(b"", chunks=[b"x" * 300])

    def test_too_many_chunks_rejected(self):
        vm = GuestVM()
        vm.attach_device(PCNet(), 0x300)
        driver = PCNetDriver(vm)
        driver.init_rings()
        with pytest.raises(GuestError, match="too many"):
            driver.send_frame(b"", chunks=[b"a"] * 5)


class TestEHCIDriverProtocol:
    def test_block_size_enforced(self):
        vm = GuestVM()
        vm.attach_mmio_device(EHCI(), 0x400)
        driver = EHCIDriver(vm)
        driver.start_controller()
        with pytest.raises(GuestError):
            driver.write_block(0, b"short")

    def test_setup_packet_encoding(self):
        vm = GuestVM()
        usb = vm.attach_mmio_device(EHCI(), 0x400)
        driver = EHCIDriver(vm)
        driver.start_controller()
        driver._send_setup(0x80, 0x06, 0x0100, 0, 18)
        state = usb.state
        assert state.read_buf("setup_buf", 0) == 0x80
        assert state.read_buf("setup_buf", 1) == 0x06
        assert state.read_buf("setup_buf", 3) == 0x01   # wValue high
        assert state.read_buf("setup_buf", 6) == 18     # wLength low
