"""Unit tests for the guest VM substrate and the SEDSpec attachment."""

import pytest

from repro.checker import Mode, Strategy
from repro.core import deploy
from repro.devices.fdc import FDC
from repro.devices.sdhci import SDHCI
from repro.errors import WorkloadError
from repro.vm import GuestVM, SEDSpecHalt, VMEXIT_COST
from repro.vm.drivers.fdc import FDCDriver
from repro.vm.drivers.sdhci import SDHCIDriver
from repro.workloads import train_device_spec


class TestTopology:
    def test_port_ranges_route_to_devices(self):
        vm = GuestVM()
        fdc = vm.attach_device(FDC(), 0x3F0)
        sd = vm.attach_device(SDHCI(), 0x500)
        assert vm.device_at(0x3F5)[0] is fdc
        assert vm.device_at(0x504)[0] is sd

    def test_port_clash_rejected(self):
        vm = GuestVM()
        vm.attach_device(FDC(), 0x3F0)
        with pytest.raises(WorkloadError, match="clash"):
            vm.attach_device(SDHCI(), 0x3F8)

    def test_unmapped_port_rejected(self):
        vm = GuestVM()
        with pytest.raises(WorkloadError, match="no device"):
            vm.inb(0x999)

    def test_shared_guest_memory(self):
        vm = GuestVM()
        fdc = vm.attach_device(FDC(), 0x3F0)
        assert fdc.memory is vm.memory


class TestAccounting:
    def test_every_io_pays_vmexit(self):
        vm = GuestVM()
        vm.attach_device(FDC(), 0x3F0)
        driver = FDCDriver(vm)
        driver.msr()
        driver.msr()
        assert vm.stats.io_rounds == 2
        assert vm.stats.vmexit_cycles == 2 * VMEXIT_COST

    def test_device_cycles_accrue(self):
        vm = GuestVM()
        vm.attach_device(FDC(), 0x3F0)
        FDCDriver(vm).controller_reset()
        assert vm.stats.device_cycles > 0
        assert vm.stats.checker_cycles == 0     # nothing attached

    def test_stats_delta(self):
        vm = GuestVM()
        vm.attach_device(FDC(), 0x3F0)
        driver = FDCDriver(vm)
        driver.msr()
        snap = vm.stats.snapshot()
        driver.msr()
        delta = vm.stats.delta(snap)
        assert delta.io_rounds == 1
        assert delta.vmexit_cycles == VMEXIT_COST


@pytest.fixture(scope="module")
def sdhci_spec():
    return train_device_spec("sdhci").spec


class TestAttachment:
    def test_checker_cycles_accrue_when_attached(self, sdhci_spec):
        vm = GuestVM()
        vm.attach_device(SDHCI(), 0x500)
        deploy(vm, vm.devices["sdhci"], sdhci_spec)
        driver = SDHCIDriver(vm)
        driver.reset_card()
        driver.write_blocks(1, bytes(512))
        assert vm.stats.checker_cycles > 0

    def test_checker_cheaper_than_device(self, sdhci_spec):
        vm = GuestVM()
        vm.attach_device(SDHCI(), 0x500)
        deploy(vm, vm.devices["sdhci"], sdhci_spec)
        driver = SDHCIDriver(vm)
        driver.reset_card()
        driver.write_blocks(1, bytes(1024))
        assert vm.stats.checker_cycles < vm.stats.device_cycles

    def test_detach_stops_checking(self, sdhci_spec):
        vm = GuestVM()
        vm.attach_device(SDHCI(), 0x500)
        deploy(vm, vm.devices["sdhci"], sdhci_spec)
        vm.detach_sedspec("sdhci")
        before = vm.stats.checker_cycles
        SDHCIDriver(vm).reset_card()
        assert vm.stats.checker_cycles == before

    def test_sync_keys_computed(self, sdhci_spec):
        vm = GuestVM()
        vm.attach_device(SDHCI(), 0x500)
        attachment = deploy(vm, vm.devices["sdhci"], sdhci_spec)
        # The read path stages media bytes into the control structure:
        # it must be a co-execution key; plain register writes must not.
        assert attachment.sync_keys["pmio:read:4"] is True
        assert attachment.sync_keys["pmio:write:0"] is False

    def test_protection_halt_raises(self, sdhci_spec):
        vm = GuestVM()
        vm.attach_device(SDHCI(), 0x500)
        deploy(vm, vm.devices["sdhci"], sdhci_spec,
               mode=Mode.PROTECTION)
        with pytest.raises(SEDSpecHalt):
            # CMD_APP was never trained: unknown command.
            vm.outb(0x503, 55)
        assert vm.halt_count("sdhci") == 1

    def test_enhancement_warns_and_continues(self, sdhci_spec):
        vm = GuestVM()
        vm.attach_device(SDHCI(), 0x500)
        deploy(vm, vm.devices["sdhci"], sdhci_spec,
               mode=Mode.ENHANCEMENT)
        vm.outb(0x503, 55)          # rare command: warn, not halt
        assert vm.warning_count("sdhci") == 1
        assert vm.halt_count("sdhci") == 0

    def test_benign_traffic_unflagged(self, sdhci_spec):
        vm = GuestVM()
        vm.attach_device(SDHCI(), 0x500)
        deploy(vm, vm.devices["sdhci"], sdhci_spec,
               mode=Mode.PROTECTION)
        driver = SDHCIDriver(vm)
        driver.reset_card()
        data = bytes(range(256)) * 4
        driver.write_blocks(3, data)
        assert driver.read_blocks(3, 2) == data
        assert vm.warning_count("sdhci") == 0
