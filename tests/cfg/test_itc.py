"""Unit tests for ITC-CFG construction and coverage accounting."""

from repro.cfg import (
    CoverageReport, build_itc_cfg, build_static, effective_coverage,
)
from repro.compiler import compile_device
from repro.interp import Machine
from repro.ipt import Decoder, IPTTracer

from tests.toydev import ToyLogic


def run_training(inputs):
    program = compile_device(ToyLogic)
    machine = Machine(program)
    machine.bind_extern("host_log", lambda m, level: None)
    machine.set_funcptr("irq", "on_irq")
    tracer = machine.add_sink(IPTTracer())
    for key, args in inputs:
        machine.run_entry(key, args)
    rounds = Decoder(program).decode_stream(tracer.packets)
    return program, rounds


class TestStaticCFG:
    def test_every_block_is_a_node(self):
        program = compile_device(ToyLogic)
        graph = build_static(program)
        assert len(graph.nodes) == program.block_count()

    def test_node_kinds_assigned(self):
        program = compile_device(ToyLogic)
        graph = build_static(program)
        kinds = {n.kind for n in graph.nodes.values()}
        assert {"cond", "icall", "call", "ret"} <= kinds

    def test_direct_call_edge_to_callee_entry(self):
        program = compile_device(ToyLogic)
        graph = build_static(program)
        write_cmd = program.function("write_cmd")
        do_reset = program.function("do_reset")
        entry_addr = do_reset.block(do_reset.entry).address
        call_blocks = [b.address for b in write_cmd.iter_blocks()
                       if (b.address, entry_addr) in graph.edges]
        assert call_blocks

    def test_nothing_executed_initially(self):
        program = compile_device(ToyLogic)
        graph = build_static(program)
        assert not graph.executed_nodes()
        assert not graph.executed_edges


class TestConnectedCFG:
    def test_training_marks_nodes_executed(self):
        program, rounds = run_training([("pmio:write:1", (1,))])
        graph = build_itc_cfg(program, rounds)
        executed = graph.executed_nodes()
        assert executed
        entry = program.entry_for("pmio:write:1")
        assert entry.block(entry.entry).address in executed

    def test_indirect_targets_collected(self):
        program, rounds = run_training(
            [("pmio:write:0", (ToyLogic.CONSTS["CMD_SUM"],))])
        graph = build_itc_cfg(program, rounds)
        targets = set()
        for addrs in graph.indirect_targets.values():
            targets |= addrs
        assert program.func_addr["on_irq"] in targets

    def test_one_sided_branch_detection(self):
        """Pushing only in-bounds bytes never takes the overflow branch."""
        inputs = [("pmio:write:1", (i,)) for i in range(4)]
        program, rounds = run_training(inputs)
        graph = build_itc_cfg(program, rounds)
        one_sided = graph.one_sided_branches()
        assert one_sided, "bounds check should be one-sided in training"

    def test_both_sides_seen_not_one_sided(self):
        """Overfilling the FIFO exercises both sides of the bounds check."""
        inputs = [("pmio:write:1", (i,)) for i in range(12)]
        program, rounds = run_training(inputs)
        graph = build_itc_cfg(program, rounds)
        write_data = program.function("write_data")
        cond_addrs = {b.address for b in write_data.iter_blocks()
                      if graph.nodes[b.address].kind == "cond"}
        flagged = {a for a, _ in graph.one_sided_branches()}
        assert not (cond_addrs & flagged)

    def test_executed_edges_subset_of_edges(self):
        program, rounds = run_training([("pmio:read:1", ())])
        graph = build_itc_cfg(program, rounds)
        assert graph.executed_edges <= graph.edges


class TestCoverage:
    def test_full_coverage(self):
        edges = {(1, 2), (2, 3)}
        report = effective_coverage(edges, edges)
        assert report.ratio == 1.0

    def test_partial_coverage(self):
        report = effective_coverage({(1, 2)}, {(1, 2), (2, 3), (3, 4)})
        assert abs(report.ratio - 1 / 3) < 1e-9
        assert "33.3%" in str(report)

    def test_empty_reference_is_full(self):
        assert effective_coverage({(1, 2)}, set()).ratio == 1.0

    def test_training_cannot_exceed_reference(self):
        report = effective_coverage({(1, 2), (9, 9)}, {(1, 2)})
        assert report.covered == 1
        assert report.ratio == 1.0

    def test_report_is_dataclass(self):
        assert CoverageReport(1, 2).percent == 50.0
