"""TenantPolicy / PolicySet: round-trip identity, eager validation,
content addressing, and the content-addressed store.

The Hypothesis properties pin the serialization contract live migration
and policy hot reload depend on: ``from_obj(to_obj(p)) == p`` for every
valid policy, digests are an injective function of content (order of
tenant overrides never matters), and *every* unknown key is rejected —
a typo'd knob must fail at load, not silently fall back to a default.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PolicyError
from repro.policy.model import (
    DEFAULT_POLICY, PolicySet, PolicyStore, TenantPolicy,
    canonical_json, load_policy_file, policy_digest,
)

IDENT = st.text(alphabet="abcdefghij-0123456789", min_size=1,
                max_size=12)


@st.composite
def policies(draw):
    """Valid TenantPolicy instances, ladder ordering included."""
    throttle = draw(st.integers(0, 4))
    restore = draw(st.one_of(
        st.just(0), st.integers(max(throttle, 1), 8)))
    quarantine = draw(st.one_of(
        st.just(0), st.integers(max(throttle, restore, 1), 12)))
    return TenantPolicy(
        policy_id=draw(IDENT),
        degradation=draw(st.sampled_from(
            ("fail-closed", "fail-open", "retry"))),
        max_retries=draw(st.integers(0, 5)),
        rate_quota=draw(st.integers(0, 64)),
        respawn_budget=draw(st.integers(0, 4)),
        throttle_after=throttle,
        circuit_cooldown=draw(st.integers(1, 8)),
        restore_after=restore,
        quarantine_after=quarantine)


@st.composite
def policy_sets(draw):
    overrides = draw(st.dictionaries(IDENT, policies(), max_size=4))
    return PolicySet(default=draw(policies()), tenants=overrides)


class TestRoundTrip:
    @given(policies())
    @settings(max_examples=60, deadline=None)
    def test_policy_parse_serialize_identity(self, policy):
        assert TenantPolicy.from_obj(policy.to_obj()) == policy

    @given(policy_sets())
    @settings(max_examples=60, deadline=None)
    def test_set_parse_serialize_identity(self, policies):
        again = PolicySet.from_obj(policies.to_obj())
        assert again == policies
        assert again.digest == policies.digest

    @given(policy_sets())
    @settings(max_examples=60, deadline=None)
    def test_obj_survives_json_encoding(self, policies):
        # The wire form (what a policy file or a pool worker sees) is
        # JSON text, not live dicts; digests must agree across the hop.
        wire = json.loads(canonical_json(policies.to_obj()))
        assert PolicySet.from_obj(wire) == policies
        assert policy_digest(wire) == policies.digest

    @given(policy_sets(), IDENT)
    @settings(max_examples=40, deadline=None)
    def test_resolve_falls_back_to_default(self, policies, tenant):
        resolved = policies.resolve(tenant)
        if tenant in policies.tenants:
            assert resolved == policies.tenants[tenant]
        else:
            assert resolved == policies.default

    @given(policies(), IDENT)
    @settings(max_examples=40, deadline=None)
    def test_unknown_policy_key_rejected(self, policy, key):
        obj = policy.to_obj()
        obj[f"x-{key}"] = 1    # prefixed: never collides with a field
        with pytest.raises(PolicyError):
            TenantPolicy.from_obj(obj)

    @given(policy_sets(), IDENT)
    @settings(max_examples=40, deadline=None)
    def test_unknown_set_key_rejected(self, policies, key):
        obj = policies.to_obj()
        obj[f"x-{key}"] = {}
        with pytest.raises(PolicyError):
            PolicySet.from_obj(obj)


class TestValidation:
    def test_default_policy_is_valid(self):
        assert TenantPolicy.from_obj(DEFAULT_POLICY.to_obj()) \
            == DEFAULT_POLICY

    @pytest.mark.parametrize("overrides", [
        {"policy_id": ""},
        {"degradation": "explode"},
        {"max_retries": -1},
        {"max_retries": True},          # bool is not an int here
        {"rate_quota": "lots"},
        {"circuit_cooldown": 0},
        {"throttle_after": 3, "restore_after": 2},
        {"throttle_after": 2, "restore_after": 4, "quarantine_after": 3},
        {"quarantine_after": -2},
    ])
    def test_malformed_policy_rejected(self, overrides):
        obj = DEFAULT_POLICY.to_obj()
        obj.update(overrides)
        with pytest.raises(PolicyError):
            TenantPolicy.from_obj(obj)

    def test_non_dict_documents_rejected(self):
        with pytest.raises(PolicyError):
            TenantPolicy.from_obj([1, 2])
        with pytest.raises(PolicyError):
            PolicySet.from_obj("not an object")

    def test_wrong_format_rejected(self):
        obj = PolicySet().to_obj()
        obj["format"] = 99
        with pytest.raises(PolicyError):
            PolicySet.from_obj(obj)


class TestDigest:
    def test_digest_ignores_tenant_insertion_order(self):
        a = PolicySet().with_override(
            "t1", TenantPolicy(policy_id="a")).with_override(
            "t2", TenantPolicy(policy_id="b"))
        b = PolicySet().with_override(
            "t2", TenantPolicy(policy_id="b")).with_override(
            "t1", TenantPolicy(policy_id="a"))
        assert a.digest == b.digest

    def test_digest_changes_with_content(self):
        base = PolicySet()
        assert base.digest != base.with_override(
            "t", TenantPolicy(policy_id="other")).digest


class TestStoreAndFile:
    def test_store_round_trip(self, tmp_path):
        store = PolicyStore(cache_dir=str(tmp_path))
        policies = PolicySet(default=TenantPolicy(policy_id="gold"))
        digest = store.put(policies)
        # A second store over the same dir (a pool worker process)
        # resolves the digest from disk to an equal set.
        other = PolicyStore(cache_dir=str(tmp_path))
        assert other.get(digest) == policies

    def test_store_rejects_tampered_artifact(self, tmp_path):
        store = PolicyStore(cache_dir=str(tmp_path))
        digest = store.put(PolicySet())
        path = store.path(digest)
        with open(path) as handle:
            envelope = json.load(handle)
        envelope["policy"]["default"]["max_retries"] = 99
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        with pytest.raises(PolicyError):
            PolicyStore(cache_dir=str(tmp_path)).get(digest)

    def test_store_misses_unknown_digest(self, tmp_path):
        with pytest.raises(PolicyError):
            PolicyStore(cache_dir=str(tmp_path)).get("0" * 64)

    def test_load_policy_file_round_trip(self, tmp_path):
        policies = PolicySet(default=TenantPolicy(policy_id="gold"),
                             tenants={"t0": TenantPolicy(
                                 policy_id="bronze", rate_quota=4)})
        path = tmp_path / "pol.json"
        path.write_text(json.dumps(policies.to_obj()))
        assert load_policy_file(str(path)) == policies

    def test_load_policy_file_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(PolicyError):
            load_policy_file(str(path))

    def test_load_policy_file_rejects_unknown_key(self, tmp_path):
        obj = PolicySet().to_obj()
        obj["default"]["throttle_afterr"] = 3
        path = tmp_path / "typo.json"
        path.write_text(json.dumps(obj))
        with pytest.raises(PolicyError):
            load_policy_file(str(path))
