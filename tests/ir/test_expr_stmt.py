"""Unit + property tests for IR expressions, statements, terminators."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import IRError
from repro.ir import (
    Assign, BinOp, Branch, BufLen, BufLoad, BufStore, Call, Const,
    ExternCall, Goto, ICall, Intrinsic, Local, Param, Return, StateRef,
    StateStore, Switch, SyncVar, UnOp, stmt_state_reads,
    terminator_state_reads,
)


def leaf_exprs():
    return st.one_of(
        st.integers(-1000, 1000).map(Const),
        st.sampled_from("abcxyz").map(Local),
        st.sampled_from(["value", "addr"]).map(Param),
        st.sampled_from(["msr", "pos", "len"]).map(StateRef),
        st.sampled_from(["f1", "f2"]).map(lambda n: SyncVar(n)),
    )


def exprs(depth=3):
    return st.recursive(
        leaf_exprs(),
        lambda children: st.one_of(
            st.tuples(st.sampled_from(["+", "-", "*", "&", "|", "==",
                                       "<", "and"]),
                      children, children).map(lambda t: BinOp(*t)),
            st.tuples(st.sampled_from(["-", "not", "~"]),
                      children).map(lambda t: UnOp(*t)),
            st.tuples(st.sampled_from(["fifo", "buf"]),
                      children).map(lambda t: BufLoad(*t)),
        ),
        max_leaves=8)


class TestExprQueries:
    @given(exprs())
    def test_walk_includes_self(self, expr):
        assert expr in list(expr.walk())

    @given(exprs())
    def test_ref_sets_disjoint_name_spaces(self, expr):
        # state refs name fields; locals name locals; no crossing
        assert expr.local_refs() <= {"a", "b", "c", "x", "y", "z"}
        assert expr.param_refs() <= {"value", "addr"}

    def test_state_refs_include_bufload(self):
        expr = BinOp("+", StateRef("pos"), BufLoad("fifo", Const(0)))
        assert expr.state_refs() == {"pos", "fifo"}

    def test_sync_refs(self):
        expr = BinOp("+", SyncVar("field:phase"), Const(1))
        assert expr.sync_refs() == {"field:phase"}

    def test_bad_binop_rejected(self):
        with pytest.raises(IRError):
            BinOp("**", Const(1), Const(2))

    def test_bad_unop_rejected(self):
        with pytest.raises(IRError):
            UnOp("!", Const(1))

    def test_str_forms(self):
        assert str(BufLoad("fifo", StateRef("pos"))) == "dev.fifo[dev.pos]"
        assert str(BufLen("fifo", 512)) == "len(dev.fifo)"
        assert str(SyncVar("x")) == "sync(x)"


class TestStatements:
    def test_assign_defines_local(self):
        stmt = Assign("x", Const(1))
        assert stmt.defined_local() == "x"
        assert stmt.stored_field() is None

    def test_statestore_stores_field(self):
        stmt = StateStore("msr", Const(0x80))
        assert stmt.stored_field() == "msr"

    def test_bufstore_reads(self):
        stmt = BufStore("fifo", StateRef("pos"), Param("value"))
        assert stmt_state_reads(stmt) == {"pos"}
        assert stmt.stored_field() == "fifo"

    def test_extern_call_defines_dest(self):
        stmt = ExternCall("dma_read", (Const(0),), dest="byte")
        assert stmt.defined_local() == "byte"
        assert "extern" in str(stmt)

    def test_intrinsic_str(self):
        stmt = Intrinsic("command_decision", (Param("value"),))
        assert "@command_decision" in str(stmt)


class TestTerminators:
    def test_goto_successors(self):
        assert Goto("b1").successors() == ("b1",)

    def test_branch_successors_and_reads(self):
        term = Branch(StateRef("msr"), "t", "f")
        assert term.successors() == ("t", "f")
        assert terminator_state_reads(term) == {"msr"}

    def test_switch_successors_dedupe(self):
        term = Switch(Local("x"), {1: "a", 2: "a", 3: "b"}, default="d")
        assert term.successors() == ("a", "b", "d")

    def test_icall_reads_ptr_field(self):
        term = ICall("irq", (Const(1),), None, "cont")
        assert "irq" in terminator_state_reads(term)
        assert term.successors() == ("cont",)

    def test_call_successor_is_continuation(self):
        term = Call("helper", (), "r", "cont")
        assert term.successors() == ("cont",)

    def test_return_no_successors(self):
        assert Return(Const(0)).successors() == ()
