"""Unit tests for control-structure layout and flat-memory semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DeviceFault, IRError
from repro.ir import (
    FUNCPTR, I32, U8, U16, U32, BufType, StateLayout, StateMemory,
)


def make_layout():
    layout = StateLayout("TestCtrl")
    layout.add("msr", U8, register=True)
    layout.add("fifo", BufType(U8, 16))
    layout.add("data_pos", I32)
    layout.add("irq", FUNCPTR)
    return layout


class TestStateLayout:
    def test_offsets_packed(self):
        layout = make_layout()
        assert layout.field("msr").offset == 0
        assert layout.field("fifo").offset == 1
        assert layout.field("data_pos").offset == 17
        assert layout.field("irq").offset == 21
        assert layout.size == 29

    def test_duplicate_field_rejected(self):
        layout = make_layout()
        with pytest.raises(IRError):
            layout.add("msr", U8)

    def test_unknown_field(self):
        with pytest.raises(IRError):
            make_layout().field("nope")

    def test_field_at(self):
        layout = make_layout()
        assert layout.field_at(0).name == "msr"
        assert layout.field_at(5).name == "fifo"
        assert layout.field_at(18).name == "data_pos"
        assert layout.field_at(layout.size) is None

    def test_neighbours(self):
        layout = make_layout()
        before, after = layout.neighbours("data_pos")
        assert before.name == "fifo"
        assert after.name == "irq"

    def test_describe_mentions_all_fields(self):
        text = make_layout().describe()
        for name in ("msr", "fifo", "data_pos", "irq"):
            assert name in text


class TestStateMemory:
    def test_scalar_roundtrip(self):
        mem = StateMemory(make_layout())
        mem.write_field("msr", 0x80)
        assert mem.read_field("msr") == 0x80

    def test_signed_roundtrip(self):
        mem = StateMemory(make_layout())
        mem.write_field("data_pos", -7)
        assert mem.read_field("data_pos") == -7

    def test_write_reports_overflow(self):
        mem = StateMemory(make_layout())
        assert mem.write_field("msr", 256) is True
        assert mem.read_field("msr") == 0
        assert mem.write_field("msr", 255) is False

    def test_buffer_roundtrip(self):
        mem = StateMemory(make_layout())
        mem.write_buf("fifo", 3, 0xAB)
        assert mem.read_buf("fifo", 3) == 0xAB

    def test_oob_write_corrupts_neighbour(self):
        """The Venom-style bug: running past fifo clobbers data_pos."""
        mem = StateMemory(make_layout())
        mem.write_field("data_pos", 0)
        mem.write_buf("fifo", 16, 0x7F)   # one past the end
        assert mem.read_field("data_pos") == 0x7F

    def test_negative_index_corrupts_predecessor(self):
        """CVE-2020-14364 style: negative index hits the field before."""
        mem = StateMemory(make_layout())
        mem.write_buf("fifo", -1, 0x55)
        assert mem.read_field("msr") == 0x55

    def test_far_oob_faults(self):
        mem = StateMemory(make_layout())
        with pytest.raises(DeviceFault) as exc:
            mem.write_buf("fifo", 1000, 1)
        assert exc.value.kind == "oob-segfault"

    def test_scalar_access_to_buffer_rejected(self):
        mem = StateMemory(make_layout())
        with pytest.raises(IRError):
            mem.read_field("fifo")
        with pytest.raises(IRError):
            mem.write_field("fifo", 0)

    def test_buffer_access_to_scalar_rejected(self):
        mem = StateMemory(make_layout())
        with pytest.raises(IRError):
            mem.read_buf("msr", 0)

    def test_snapshot_restore(self):
        mem = StateMemory(make_layout())
        mem.write_field("msr", 1)
        snap = mem.snapshot()
        mem.write_field("msr", 2)
        assert snap.read_field("msr") == 1
        mem.restore(snap)
        assert mem.read_field("msr") == 1

    def test_snapshot_is_independent(self):
        mem = StateMemory(make_layout())
        snap = mem.snapshot()
        snap.write_field("msr", 9)
        assert mem.read_field("msr") == 0

    def test_dump_fields_skips_buffers(self):
        fields = StateMemory(make_layout()).dump_fields()
        assert "fifo" not in fields
        assert set(fields) == {"msr", "data_pos", "irq"}

    @given(st.integers(min_value=0, max_value=15),
           st.integers(min_value=0, max_value=255))
    def test_in_bounds_buffer_never_touches_scalars(self, idx, value):
        mem = StateMemory(make_layout())
        mem.write_field("msr", 0x11)
        mem.write_field("data_pos", 42)
        mem.write_buf("fifo", idx, value)
        assert mem.read_field("msr") == 0x11
        assert mem.read_field("data_pos") == 42
        assert mem.read_buf("fifo", idx) == value
