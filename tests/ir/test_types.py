"""Unit tests for the IR type system."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import IRError
from repro.ir import (
    I8, I16, I32, U8, U16, U32, U64, BufType, FuncPtrType, IntType,
    type_by_name,
)


class TestIntType:
    def test_sizes(self):
        assert U8.size == 1
        assert U16.size == 2
        assert U32.size == 4
        assert U64.size == 8

    def test_bounds_unsigned(self):
        assert U8.min_value == 0
        assert U8.max_value == 255
        assert U32.max_value == 2**32 - 1

    def test_bounds_signed(self):
        assert I8.min_value == -128
        assert I8.max_value == 127
        assert I32.min_value == -(2**31)

    def test_bad_width_rejected(self):
        with pytest.raises(IRError):
            IntType(12)

    def test_wrap_in_range_no_overflow(self):
        result = U8.wrap(200)
        assert result.value == 200
        assert not result.overflowed

    def test_wrap_unsigned_overflow(self):
        result = U8.wrap(256)
        assert result.value == 0
        assert result.overflowed

    def test_wrap_unsigned_negative(self):
        result = U8.wrap(-1)
        assert result.value == 255
        assert result.overflowed

    def test_wrap_signed_overflow(self):
        result = I8.wrap(128)
        assert result.value == -128
        assert result.overflowed

    def test_wrap_signed_negative_ok(self):
        result = I16.wrap(-5)
        assert result.value == -5
        assert not result.overflowed

    def test_str(self):
        assert str(U16) == "u16"
        assert str(I32) == "i32"

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    def test_wrap_is_mod_2n(self, value):
        """Wrapped value always equals value mod 2^bits (as unsigned)."""
        wrapped = U16.wrap(value).value
        assert wrapped == value % (1 << 16)

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    def test_signed_wrap_in_declared_range(self, value):
        wrapped = I16.wrap(value)
        assert I16.min_value <= wrapped.value <= I16.max_value
        assert wrapped.overflowed == (not I16.contains(value))


class TestBufType:
    def test_size(self):
        assert BufType(U8, 512).size == 512
        assert BufType(U32, 4).size == 16

    def test_zero_length_rejected(self):
        with pytest.raises(IRError):
            BufType(U8, 0)

    def test_str(self):
        assert str(BufType(U8, 16)) == "u8[16]"


class TestLookup:
    def test_by_name(self):
        assert type_by_name("u8") is U8
        assert type_by_name("i32") is I32
        assert isinstance(type_by_name("funcptr"), FuncPtrType)

    def test_unknown_name(self):
        with pytest.raises(IRError):
            type_by_name("u12")

    def test_funcptr_size(self):
        assert FuncPtrType().size == 8
