"""FaultPlan/FaultInjector core: keyed determinism, budgets, corruption."""

import pytest

from repro.errors import WorkloadError
from repro.faults import (
    FaultInjector, FaultPlan, FaultSpec, corrupt_bytes, corrupt_file,
    keyed_rng, plan_from_json, plan_to_json,
)


class TestSpecs:
    def test_unknown_site_rejected(self):
        with pytest.raises(WorkloadError, match="unknown fault site"):
            FaultSpec("ipt.meteor_strike")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(WorkloadError, match="probability"):
            FaultSpec("ipt.drop", probability=1.5)

    def test_plan_json_round_trip(self):
        plan = FaultPlan(42, (
            FaultSpec("ipt.drop", probability=0.25, max_fires=3),
            FaultSpec("interp.stall", trigger_round=7, arg=250),
        ))
        assert plan_from_json(plan_to_json(plan)) == plan

    def test_for_sites_filters_by_prefix(self):
        plan = FaultPlan(1, (FaultSpec("ipt.drop"),
                             FaultSpec("worker.crash"),
                             FaultSpec("interp.step")))
        sub = plan.for_sites("ipt.", "interp.")
        assert {s.site for s in sub.specs} == {"ipt.drop", "interp.step"}
        assert sub.seed == plan.seed
        assert plan.has_site("worker.")
        assert not sub.has_site("worker.")


class TestKeyedDeterminism:
    def test_same_inputs_same_stream(self):
        a = keyed_rng(7, "ipt.drop", "3:hello")
        b = keyed_rng(7, "ipt.drop", "3:hello")
        assert [a.random() for _ in range(5)] == \
            [b.random() for _ in range(5)]

    def test_different_keys_diverge(self):
        assert keyed_rng(7, "ipt.drop", "a").random() != \
            keyed_rng(7, "ipt.drop", "b").random()

    def test_decisions_are_call_order_independent(self):
        plan = FaultPlan(11, (FaultSpec("ipt.drop", probability=0.5),))
        keys = [f"k{i}" for i in range(40)]
        forward = FaultInjector(plan)
        backward = FaultInjector(plan)
        got_fwd = {k: forward.decide("ipt.drop", 0, k) is not None
                   for k in keys}
        got_bwd = {k: backward.decide("ipt.drop", 0, k) is not None
                   for k in reversed(keys)}
        assert got_fwd == got_bwd
        assert 0 < sum(got_fwd.values()) < len(keys)

    def test_unarmed_site_never_fires(self):
        injector = FaultInjector(FaultPlan(1, (FaultSpec("ipt.drop"),)))
        assert not injector.armed("interp.step")
        assert injector.decide("interp.step", 0, "x") is None

    def test_max_fires_budget_caps_a_certain_fault(self):
        plan = FaultPlan(1, (FaultSpec("ipt.drop", max_fires=2),))
        injector = FaultInjector(plan)
        fired = [injector.decide("ipt.drop", r, "k") is not None
                 for r in range(5)]
        assert fired == [True, True, False, False, False]
        assert injector.fired == {"ipt.drop": 2}
        assert injector.fired_total() == 2

    def test_trigger_round_fires_exactly_there(self):
        plan = FaultPlan(1, (FaultSpec("interp.stall", trigger_round=3),))
        injector = FaultInjector(plan)
        fired = [injector.decide("interp.stall", r) is not None
                 for r in range(6)]
        assert fired == [False, False, False, True, False, False]


class TestCorruption:
    def test_corrupt_bytes_is_deterministic(self):
        plan = FaultPlan(5, (FaultSpec("ipt.corrupt", arg=3),))
        data = bytes(range(64))
        one = corrupt_bytes(data, FaultInjector(plan), round_=2, key="k")
        two = corrupt_bytes(data, FaultInjector(plan), round_=2, key="k")
        assert one == two
        assert one != data
        assert len(one) == len(data)

    def test_corrupt_bytes_without_a_fire_is_identity(self):
        plan = FaultPlan(5, (FaultSpec("ipt.corrupt", probability=0.0),))
        data = b"\x01\x02\x03"
        assert corrupt_bytes(data, FaultInjector(plan)) is data

    def test_corrupt_file_truncates(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_bytes(b"x" * 100)
        plan = FaultPlan(9, (FaultSpec("registry.truncate"),))
        kind = corrupt_file(str(path), FaultInjector(plan), key="spec")
        assert kind == "truncate"
        assert len(path.read_bytes()) < 100

    def test_corrupt_file_bitflips_one_byte(self, tmp_path):
        path = tmp_path / "spec.json"
        original = bytes(100)
        path.write_bytes(original)
        plan = FaultPlan(9, (FaultSpec("registry.bitflip"),))
        kind = corrupt_file(str(path), FaultInjector(plan), key="spec")
        assert kind == "bitflip"
        mutated = path.read_bytes()
        assert len(mutated) == 100
        assert sum(a != b for a, b in zip(mutated, original)) == 1
