"""Chaos campaigns: replayability, safety invariants, recovery paths."""

import pytest

from repro.faults import (
    CampaignConfig, FaultInjector, FaultPlan, FaultSpec,
    corrupt_cache_dir, decoder_recovery_experiment, run_campaign,
    run_seed, seeded_cves, write_report,
)
from repro.fleet import SpecRegistry

#: A campaign small enough for unit tests: the two cheapest devices,
#: every fault family armed.
QUICK = CampaignConfig(
    seeds=(31,), devices=("fdc", "pcnet"), tenants=4,
    batches_per_tenant=2, ops_per_batch=2,
    specs=(
        FaultSpec("ipt.corrupt", probability=0.05),
        FaultSpec("ipt.drop", probability=0.0005),
        FaultSpec("interp.step", probability=0.02),
        FaultSpec("registry.bitflip", probability=0.5),
        FaultSpec("worker.crash", probability=0.1, max_fires=1),
    ))


@pytest.fixture(scope="module")
def quick_report():
    return run_campaign(QUICK)


class TestSeededCves:
    def test_one_detectable_cve_per_device(self):
        cves = seeded_cves(("fdc", "sdhci", "scsi", "ehci", "pcnet"))
        assert len(cves) == 5
        assert len(set(cves)) == 5

    def test_device_order_is_preserved_and_stable(self):
        assert seeded_cves(("fdc", "pcnet")) == \
            seeded_cves(("fdc", "pcnet"))


class TestCampaign:
    def test_invariants_hold_under_fail_closed(self, quick_report):
        assert quick_report.passed
        for outcome in quick_report.outcomes:
            assert outcome.i1_ok and outcome.i2_ok
            # Every seeded CVE was detected, not merely refused.
            assert outcome.cves_detected == outcome.cves_total == 2

    def test_same_seed_is_byte_for_byte_identical(self, quick_report):
        again = run_campaign(QUICK)
        assert again.to_json() == quick_report.to_json()

    def test_report_carries_the_plan_and_stats(self, quick_report,
                                               tmp_path):
        obj = quick_report.to_obj()
        assert {s["site"] for s in obj["plan"]["specs"]} == \
            {s.site for s in QUICK.specs}
        outcome = obj["outcomes"][0]
        assert outcome["stats"]["requests"] == 4 * 2 * 2
        assert outcome["stats"]["lost"] == 0
        path = tmp_path / "chaos" / "report.json"
        write_report(quick_report, str(path))
        assert path.read_text() == quick_report.to_json()

    def test_fail_open_serves_gapped_rounds(self):
        import dataclasses
        closed = run_seed(QUICK, 31)
        open_ = run_seed(dataclasses.replace(QUICK, policy="fail-open"),
                         31)
        # Fail-open converts refusals into (audited) service: nothing is
        # refused for trace loss, and the benign completion count rises.
        assert open_.stats["trace_gaps"] == 0
        assert open_.stats["completed"] >= closed.stats["completed"]
        assert open_.i2_ok    # degraded allows still never quarantine

    def test_retry_policy_clears_transient_interp_faults(self):
        import dataclasses
        flaky = dataclasses.replace(
            QUICK, specs=(FaultSpec("interp.step", probability=0.3),))
        closed = run_seed(flaky, 31)
        retried = run_seed(
            dataclasses.replace(flaky, policy="retry", max_retries=3), 31)
        assert closed.stats["trace_gaps"] > 0
        # Transient step faults clear on a keyed re-draw, so nearly every
        # refusal disappears under the retry policy.
        assert retried.stats["trace_gaps"] < closed.stats["trace_gaps"]
        assert retried.i1_ok and retried.i2_ok


class TestRegistryRecovery:
    def test_corrupt_envelopes_are_rejected_and_retrained(self, tmp_path):
        cache = str(tmp_path / "specs")
        trainer = SpecRegistry(cache_dir=cache)
        spec = trainer.get("fdc", "99.0.0")
        plan = FaultPlan(3, (FaultSpec("registry.bitflip"),))
        applied = corrupt_cache_dir(cache, FaultInjector(plan))
        assert applied and applied[0][1] == "bitflip"
        fresh = SpecRegistry(cache_dir=cache)
        recovered = fresh.get("fdc", "99.0.0")
        assert fresh.stats.corrupt_rejected == 1
        assert fresh.stats.trains == 1
        # Retraining is deterministic: the recovered spec matches.
        assert recovered.visited_blocks == spec.visited_blocks

    def test_truncated_envelope_recovers_too(self, tmp_path):
        cache = str(tmp_path / "specs")
        SpecRegistry(cache_dir=cache).get("fdc", "99.0.0")
        plan = FaultPlan(4, (FaultSpec("registry.truncate"),))
        corrupt_cache_dir(cache, FaultInjector(plan))
        fresh = SpecRegistry(cache_dir=cache)
        assert fresh.get("fdc", "99.0.0") is not None
        assert fresh.stats.corrupt_rejected == 1


class TestDecoderRecovery:
    def test_psb_resync_recovers_most_injected_losses(self):
        result = decoder_recovery_experiment(seed=7, runs=120, rounds=30)
        assert result["recovered"] + result["tail_loss"] == result["runs"]
        assert result["recovery_rate"] >= 0.95
