"""Graduated response ladder: throttle → snapshot restore → fence.

A benign tenant hit by a persistent infrastructure fault must walk the
ladder in order — circuit throttle first, a restore from the healthy
snapshot next, the infrastructure fence last — and come out the other
side *fenced*, never security-quarantined.  Quarantine is a security
verdict; an unlucky tenant on a broken lane has earned none.
"""

import pytest

from repro.faults.chaos import LadderOutcome, run_ladder_scenario


@pytest.fixture(scope="module")
def outcome():
    return run_ladder_scenario()


class TestLadder:
    def test_healthy_snapshot_captured_before_faults(self, outcome):
        assert outcome.snapshot_taken

    def test_rungs_fire_in_order(self, outcome):
        assert outcome.ladder_in_order, (
            outcome.throttle_batch, outcome.restore_batch,
            outcome.fence_batch)
        assert outcome.throttles >= 1
        assert outcome.restores >= 1
        assert outcome.fences >= 1

    def test_benign_tenant_is_fenced_not_quarantined(self, outcome):
        assert outcome.fenced
        assert not outcome.quarantined
        assert outcome.i2_ok

    def test_fence_sheds_everything(self, outcome):
        assert outcome.served_after_fence == 0


class TestLadderVariants:
    @pytest.mark.parametrize("backend", ["reference", "bytecode"])
    def test_ladder_is_backend_independent(self, backend):
        outcome = run_ladder_scenario(backend=backend)
        assert outcome.ladder_in_order
        assert outcome.i2_ok

    def test_never_fired_ladder_is_not_in_order(self):
        # The property is strict: -1 sentinels (rung never fired) must
        # not satisfy it, so a scenario that silently skips a rung fails.
        assert not LadderOutcome().ladder_in_order
