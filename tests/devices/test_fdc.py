"""Unit tests for the FDC device model."""

import pytest

from repro.devices.fdc import FDC, SECTOR_LEN
from repro.errors import DeviceFault, GuestError
from tests.devices.fixtures import make_device


def make(version="99.0.0"):
    return make_device("fdc", version)


class TestBasicProtocol:
    def test_msr_ready_after_reset(self):
        _, _, driver = make()
        assert driver.msr() & 0x80

    def test_version_command(self):
        _, _, driver = make()
        assert driver.version() == 0x90

    def test_sense_interrupt_clears_pending(self):
        _, fdc, driver = make()
        driver.recalibrate()
        assert fdc.state.read_field("int_pending") == 0

    def test_seek_sets_track(self):
        _, fdc, driver = make()
        driver.seek(17)
        assert fdc.state.read_field("track") == 17

    def test_recalibrate_resets_track(self):
        _, fdc, driver = make()
        driver.seek(20)
        driver.recalibrate()
        assert fdc.state.read_field("track") == 0

    def test_dumpreg_result_length(self):
        _, _, driver = make()
        regs = driver.dumpreg()
        assert len(regs) == 10

    def test_unknown_command_yields_error_byte(self):
        vm, _, driver = make()
        driver._command(0x1F, [])
        assert driver._results(1)[0] == 0x80


class TestSectorIO:
    def test_write_read_roundtrip_through_disk(self):
        _, fdc, driver = make()
        a = bytes([0xAA]) * SECTOR_LEN
        b = bytes([0xBB]) * SECTOR_LEN
        driver.write_lba(3, a)
        driver.write_lba(4, b)
        assert driver.read_lba(3) == a      # disk, not the bounce buffer
        assert driver.read_lba(4) == b

    def test_disk_backend_actually_written(self):
        _, fdc, driver = make()
        payload = bytes(range(256)) * 2
        driver.write_lba(0, payload)
        assert fdc.disk.read_block(0, SECTOR_LEN) == payload

    def test_bad_sector_payload_rejected(self):
        _, _, driver = make()
        with pytest.raises(GuestError):
            driver.write_sector(0, 0, 1, b"short")

    def test_irq_raised_on_transfer(self):
        _, fdc, driver = make()
        before = fdc.irq_line.raise_count
        driver.write_lba(1, bytes(SECTOR_LEN))
        assert fdc.irq_line.raise_count > before


class TestVenom:
    def test_patched_build_masks_cursor(self):
        vm, fdc, driver = make("2.4.0")
        driver._command(0x4A, [0x80])     # invalid head: patched resets ok
        # In the patched build READ_ID completes normally.
        assert fdc.state.read_field("phase") != 1 or \
            fdc.state.read_field("data_pos") <= fdc.state.read_field(
                "data_len")

    def test_vulnerable_build_unbounded_cursor(self):
        vm, fdc, driver = make("2.3.0")
        driver._command(0x4A, [0x80])     # early return, no FIFO reset
        for i in range(40):
            driver._out(5, 0x41)
        assert fdc.state.read_field("data_pos") > 40

    def test_vulnerable_build_eventually_faults(self):
        vm, fdc, driver = make("2.3.0")
        driver._command(0x4A, [0x80])
        with pytest.raises(DeviceFault):
            for i in range(4000):
                driver._out(5, 0x41)

    def test_active_cves_reflect_version(self):
        assert "CVE-2015-3456" in FDC(qemu_version="2.3.0").active_cves()
        assert "CVE-2015-3456" not in FDC(
            qemu_version="2.4.0").active_cves()
        assert "CVE-2016-1568" in FDC(qemu_version="2.5.0").active_cves()


class TestUAFMissCase:
    def exploit(self, version):
        vm, fdc, driver = make(version)
        before = fdc.irq_line.raise_count
        # Begin a WRITE command (marks a transfer in flight)...
        driver._out(5, 0x45)
        driver._out(5, 0)
        driver._out(5, 1)
        # ... then yank the controller into reset and back out.
        driver._out(2, 0x00)
        driver._out(2, 0x0C)
        return fdc, before

    def test_vulnerable_build_fires_stale_callback(self):
        fdc, before = self.exploit("2.5.0")
        # The leaked completion callback raised a *spurious* interrupt
        # beyond the legitimate reset interrupt.
        assert fdc.irq_line.raise_count >= before + 2

    def test_patched_build_cancels_cleanly(self):
        fdc, before = self.exploit("2.6.0")
        assert fdc.irq_line.raise_count == before + 1   # reset IRQ only
