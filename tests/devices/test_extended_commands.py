"""Tests for the secondary device commands (format/CID/CSD/sense/rw6/
init-block) and their interaction with SEDSpec."""

import pytest

from repro.devices.fdc import FDC
from repro.devices.pcnet import PCNet
from repro.devices.scsi import SCSI
from repro.devices.sdhci import SDHCI
from repro.vm import GuestVM
from repro.vm.drivers.fdc import FDCDriver
from repro.vm.drivers.pcnet import PCNetDriver, RX_RING, TX_RING
from repro.vm.drivers.scsi import SCSIDriver
from repro.vm.drivers.sdhci import SDHCIDriver


class TestFDCFormat:
    def make(self):
        vm = GuestVM()
        fdc = vm.attach_device(FDC(), 0x3F0)
        driver = FDCDriver(vm)
        driver.controller_reset()
        return vm, fdc, driver

    def test_format_fills_track(self):
        _, fdc, driver = self.make()
        driver.format_track(3, filler=0x5A)
        for sector in range(3):
            assert driver.read_lba(3 * 36 + sector) == bytes([0x5A]) * 512

    def test_format_respects_sector_count(self):
        _, fdc, driver = self.make()
        driver.write_lba(4 * 36 + 17, bytes([0x11]) * 512)
        driver.format_track(4, sectors=2, filler=0x00)
        # Sector 18 (index 17) was beyond the 2 formatted sectors.
        assert driver.read_lba(4 * 36 + 17) == bytes([0x11]) * 512

    def test_format_produces_result_phase_and_irq(self):
        _, fdc, driver = self.make()
        before = fdc.irq_line.raise_count
        results = driver.format_track(1)
        assert len(results) == 7
        assert fdc.irq_line.raise_count > before


class TestSDHCIRegisters:
    def make(self):
        vm = GuestVM()
        sd = vm.attach_device(SDHCI(), 0x500)
        driver = SDHCIDriver(vm)
        driver.reset_card()
        return vm, sd, driver

    def test_cid_and_csd_distinct(self):
        _, _, driver = self.make()
        cid, csd = driver.read_cid(), driver.read_csd()
        assert cid != csd
        assert cid[0] == 0xCD and csd[0] == 0xC5
        assert cid[3] == 0xCD ^ 3

    def test_stop_transmission_aborts_multiblock(self):
        vm, sd, driver = self.make()
        vm.outl(0x501, 4)            # 4 blocks
        vm.outl(0x502, 8)
        vm.outb(0x503, 18)           # READ_MULTI
        for _ in range(100):
            vm.inb(0x504)
        driver.stop_transmission()
        assert sd.state.read_field("transfer_mode") == 0
        # Normal I/O works again afterwards.
        driver.write_blocks(1, bytes(512))
        assert driver.read_blocks(1) == bytes(512)


class TestSCSISecondary:
    def make(self):
        vm = GuestVM()
        scsi = vm.attach_device(SCSI(), 0x600)
        driver = SCSIDriver(vm)
        driver.reset()
        return vm, scsi, driver

    def test_rw6_roundtrip(self):
        _, _, driver = self.make()
        payload = bytes((i * 3) & 0xFF for i in range(1024))
        driver.write6(20, payload)
        assert driver.read6(20, 2) == payload

    def test_rw6_and_rw10_share_media(self):
        _, _, driver = self.make()
        driver.write6(30, bytes([0x77]) * 512)
        assert driver.read10(30) == bytes([0x77]) * 512

    def test_request_sense_reports_and_clears(self):
        _, scsi, driver = self.make()
        driver._select([0x2F, 0, 0, 0, 1, 0])   # unsupported opcode
        assert scsi.state.read_field("scsi_status") == 2
        sense = driver.request_sense()
        assert sense[0] == 0x70
        assert sense[2] == 2
        assert scsi.state.read_field("scsi_status") == 0

    def test_clean_sense_after_good_command(self):
        _, _, driver = self.make()
        driver.test_unit_ready()
        assert driver.request_sense()[2] == 0


class TestPCNetInitBlock:
    def make(self):
        vm = GuestVM()
        nic = vm.attach_device(PCNet(), 0x300)
        driver = PCNetDriver(vm)
        return vm, nic, driver

    def test_init_block_programs_rings(self):
        _, nic, driver = self.make()
        driver.init_via_block()
        assert nic.state.read_field("rdra") == RX_RING
        assert nic.state.read_field("tdra") == TX_RING
        assert nic.state.read_field("rcvrl") == 4
        assert nic.state.read_field("xmtrl") == 4

    def test_init_done_bit_set(self):
        _, nic, driver = self.make()
        driver.init_via_block()
        assert nic.state.read_field("csr0") & 0x0100

    def test_init_block_loopback_mode(self):
        _, nic, driver = self.make()
        driver.init_via_block(loopback=True)
        driver.send_frame(b"ping")
        assert driver.read_frame(8)[:4] == b"ping"

    def test_traffic_after_init_block(self):
        _, nic, driver = self.make()
        driver.init_via_block()
        driver.send_frame(b"hello")
        assert nic.net.tx_frames[0].payload == b"hello"
        driver.deliver_frame(b"reply")
        assert driver.read_frame(5) == b"reply"
