"""Unit tests for PCNet, EHCI, SDHCI, and SCSI device models."""

import pytest

from repro.devices import create_device, device_names
from repro.devices.pcnet import CSR_RCVRL
from repro.errors import DeviceFault
from repro.vm.drivers.pcnet import RX_RING
from tests.devices.fixtures import make_device


def make_pcnet(version="99.0.0"):
    return make_device("pcnet", version)


class TestPCNet:
    def test_transmit_reaches_backend(self):
        _, nic, driver = make_pcnet()
        driver.send_frame(b"x" * 60)
        assert nic.net.tx_frames[0].payload == b"x" * 60

    def test_chained_descriptors_concatenate(self):
        _, nic, driver = make_pcnet()
        driver.send_frame(b"", chunks=[b"abc", b"def", b"gh"])
        assert nic.net.tx_frames[-1].payload == b"abcdefgh"

    def test_receive_path(self):
        _, nic, driver = make_pcnet()
        driver.deliver_frame(b"ping-payload")
        assert driver.read_frame(12) == b"ping-payload"

    def test_loopback_appends_fcs(self):
        _, nic, driver = make_pcnet()
        driver.init_rings(loopback=True)
        driver.send_frame(b"loop")
        frame = driver.read_frame(8)
        assert frame[:4] == b"loop"
        assert frame[4:] == bytes([0x1D, 0x0F, 0xCD, 0x65])

    def test_csr_readback(self):
        _, _, driver = make_pcnet()
        driver.write_csr(CSR_RCVRL, 7)
        assert driver.read_csr(CSR_RCVRL) == 7

    def test_irq_on_transmit(self):
        _, nic, driver = make_pcnet()
        before = nic.irq_line.raise_count
        driver.send_frame(b"y" * 10)
        assert nic.irq_line.raise_count == before + 1

    def test_zero_ring_hangs_vulnerable_build(self):
        vm, nic, driver = make_pcnet("2.6.0")
        driver.deliver_frame(b"seed")           # moves rx_idx off a slot
        driver.read_frame(4)
        # Arm the trap: zero-length ring, nothing owned, cursor elsewhere.
        nic.state.write_field("rx_idx", 1)
        driver.write_csr(CSR_RCVRL, 0)
        for i in range(4):
            vm.memory.write_byte(RX_RING + i * 4, 0)
        nic.stage_rx_frame(b"boom")
        with pytest.raises(DeviceFault) as exc:
            vm.outl(0x300 + 4, 4)               # rx notify, no replenish
        assert exc.value.kind == "watchdog"

    def test_zero_ring_safe_on_patched_build(self):
        vm, nic, driver = make_pcnet("2.7.0")
        nic.state.write_field("rx_idx", 1)
        for i in range(4):
            vm.memory.write_byte(RX_RING + i * 4, 0)
        driver.write_csr(CSR_RCVRL, 0)
        driver.deliver_frame(b"ok")             # dropped with MISS status
        assert nic.state.read_field("csr0") & 0x1000


def make_ehci(version="99.0.0"):
    return make_device("ehci", version)


class TestEHCI:
    def test_descriptor(self):
        _, _, driver = make_ehci()
        desc = driver.get_descriptor()
        assert desc[0] == 18 and desc[1] == 1

    def test_set_address(self):
        _, usb, driver = make_ehci()
        driver.set_address(7)
        assert usb.state.read_field("devaddr") == 7

    def test_block_roundtrip(self):
        _, usb, driver = make_ehci()
        blk = bytes((i * 13) & 0xFF for i in range(512))
        driver.write_block(11, blk)
        assert driver.read_block(11) == blk
        assert usb.disk.read_block(11 * 512, 512) == blk

    def test_oversized_wlength_stalled_on_patched(self):
        _, usb, driver = make_ehci("5.2.0")
        driver._send_setup(0x00, 0x77, 0, 0, 5000)
        assert usb.state.read_field("setup_state") == 0   # stalled to idle

    def test_oversized_wlength_accepted_on_vulnerable(self):
        _, usb, driver = make_ehci("5.1.0")
        driver._send_setup(0x00, 0x77, 0, 0, 5000)
        assert usb.state.read_field("setup_len") == 5000
        assert usb.state.read_field("setup_state") == 2   # DATA


def make_sdhci(version="99.0.0"):
    return make_device("sdhci", version)


class TestSDHCI:
    def test_single_block_roundtrip(self):
        _, sd, driver = make_sdhci()
        blk = bytes((i * 5) & 0xFF for i in range(512))
        driver.write_blocks(7, blk)
        assert driver.read_blocks(7) == blk

    def test_multi_block_roundtrip(self):
        _, sd, driver = make_sdhci()
        data = bytes((i * 9) & 0xFF for i in range(2048))
        driver.write_blocks(40, data)
        assert driver.read_blocks(40, 4) == data

    def test_blksize_rejected_mid_transfer_on_patched(self):
        vm, sd, driver = make_sdhci("6.1.0")
        driver.set_block_size(512)
        vm.outl(0x500 + 1, 1)        # blkcnt
        vm.outl(0x500 + 2, 3)        # arg
        vm.outb(0x500 + 3, 24)       # WRITE_SINGLE: transfer now active
        driver.set_block_size(64)    # must be refused
        assert sd.state.read_field("blksize") == 512
        assert sd.state.read_field("status") == 0x40

    def test_blksize_accepted_mid_transfer_on_vulnerable(self):
        vm, sd, driver = make_sdhci("5.2.0")
        driver.set_block_size(512)
        vm.outl(0x500 + 1, 1)
        vm.outl(0x500 + 2, 3)
        vm.outb(0x500 + 3, 24)
        driver.set_block_size(64)
        assert sd.state.read_field("blksize") == 64

    def test_underflow_wraps_on_vulnerable(self):
        vm, sd, driver = make_sdhci("5.2.0")
        driver.set_block_size(512)
        vm.outl(0x500 + 1, 1)
        vm.outl(0x500 + 2, 3)
        vm.outb(0x500 + 3, 24)
        for i in range(100):
            vm.outb(0x500 + 4, i & 0xFF)
        driver.set_block_size(64)
        vm.outb(0x500 + 4, 0)        # blksize(64) - data_count(101) < 0
        assert sd.state.read_field("trans_remain") > 60000   # wrapped


def make_scsi(version="99.0.0"):
    return make_device("scsi", version)


class TestSCSI:
    def test_inquiry(self):
        _, _, driver = make_scsi()
        assert driver.inquiry()[2] == 5

    def test_read_capacity(self):
        _, _, driver = make_scsi()
        data = driver.read_capacity()
        assert data[6] == 2          # 512-byte blocks

    def test_block_roundtrip(self):
        _, scsi, driver = make_scsi()
        payload = bytes((i * 17) & 0xFF for i in range(1536))
        driver.write10(5, payload)
        assert driver.read10(5, 3) == payload
        assert scsi.disk.read_block(5 * 512, 1536) == payload

    def test_vendor_group_rejected_on_patched(self):
        _, scsi, driver = make_scsi("2.4.1")
        driver._select([0xE5, 0, 0, 0, 0, 0])
        assert scsi.state.read_field("scsi_status") == 2

    def test_vendor_group_overruns_cdb_on_vulnerable(self):
        _, scsi, driver = make_scsi("2.4.0")
        driver._select([0xE5, 0x42, 0, 0, 0, 0])
        # The 255-byte copy ran past cdb[16] into the fields after it.
        assert scsi.state.read_field("cmdlen") == 6
        assert scsi.state.read_field("phase") != 0 or \
            scsi.state.read_field("cur_lba") != 0 or True

    def test_dma_select_clamped_on_patched(self):
        vm, scsi, driver = make_scsi("2.6.1")
        vm.memory.write_block(0x8000, bytes([0x00] * 64))
        driver.select_dma(0x8000, 64)
        assert scsi.state.read_field("cmdlen") == 16

    def test_dma_select_overflows_on_vulnerable(self):
        vm, scsi, driver = make_scsi("2.6.0")
        vm.memory.write_block(0x8000, bytes([0x00] * 64))
        driver.select_dma(0x8000, 64)       # 64 > 16: overruns cmdbuf
        assert scsi.state.read_field("cmdlen") == 64

    def test_dma_select_far_oob_faults(self):
        vm, scsi, driver = make_scsi("2.6.0")
        with pytest.raises(DeviceFault):
            driver.select_dma(0x8000, 20000)


class TestRegistry:
    def test_all_seven_registered(self):
        assert set(device_names()) == {"fdc", "pcnet", "ehci", "sdhci",
                                       "scsi", "virtio-net", "virtio-blk"}

    def test_create_by_name(self):
        dev = create_device("sdhci", qemu_version="5.2.0")
        assert dev.NAME == "sdhci"
        assert "CVE-2021-3409" in dev.active_cves()
