"""Unit tests for the device framework and host backends."""

import pytest
from hypothesis import given, strategies as st

from repro.devices import (
    DiskImage, GuestMemory, IRQLine, NetBackend, create_device,
    device_names, version_lt,
)
from repro.devices.base import CveGate
from repro.devices.fdc import FDC
from repro.errors import DeviceFault, WorkloadError


class TestVersions:
    def test_version_lt(self):
        assert version_lt("2.3.0", "2.4.0")
        assert version_lt("2.4.0", "2.4.1")
        assert not version_lt("2.4.0", "2.4.0")
        assert version_lt("2.9.0", "2.10.0")   # numeric, not lexical

    def test_bad_version_rejected(self):
        with pytest.raises(WorkloadError):
            version_lt("2.x", "2.4.0")

    def test_cve_gate(self):
        gate = CveGate("CVE-X", "VULN_X", "2.5.0")
        assert gate.active_in("2.4.0")
        assert not gate.active_in("2.5.0")
        assert not gate.active_in("3.0.0")


class TestDeviceLifecycle:
    def test_registry_lists_devices(self):
        assert "fdc" in device_names()

    def test_unknown_device_rejected(self):
        with pytest.raises(WorkloadError, match="unknown device"):
            create_device("gpu")

    def test_fault_latches_device(self):
        fdc = FDC(qemu_version="2.3.0")
        fdc.handle_io("pmio:write:5", (0x4A,))      # READ_ID
        fdc.handle_io("pmio:write:5", (0x80,))      # invalid head
        with pytest.raises(DeviceFault):
            for i in range(4000):
                fdc.handle_io("pmio:write:5", (0x41,))
        assert fdc.halted
        with pytest.raises(DeviceFault, match="halted"):
            fdc.handle_io("pmio:read:4", ())

    def test_speculative_machine_isolated(self):
        fdc = FDC()
        spec_machine = fdc.speculative_machine()
        spec_machine.state.write_field("msr", 0x11)
        assert fdc.state.read_field("msr") != 0x11

    def test_io_keys(self):
        assert "pmio:write:5" in FDC().io_keys()


class TestDiskImage:
    def test_roundtrip(self):
        disk = DiskImage(4096)
        disk.write_block(100, b"hello")
        assert disk.read_block(100, 5) == b"hello"

    def test_out_of_range_reads_zero(self):
        disk = DiskImage(64)
        assert disk.read_byte(1000) == 0

    def test_out_of_range_write_ignored(self):
        disk = DiskImage(64)
        disk.write_byte(1000, 7)    # like writing past a sparse image
        assert disk.read_byte(1000) == 0

    def test_counters(self):
        disk = DiskImage(64)
        disk.write_byte(0, 1)
        disk.read_byte(0)
        assert disk.writes == 1 and disk.reads == 1

    def test_zero_size_rejected(self):
        with pytest.raises(WorkloadError):
            DiskImage(0)

    @given(st.integers(0, 63), st.integers(0, 255))
    def test_byte_roundtrip(self, offset, value):
        disk = DiskImage(64)
        disk.write_byte(offset, value)
        assert disk.read_byte(offset) == value


class TestGuestMemory:
    def test_block_roundtrip(self):
        memory = GuestMemory(1024)
        memory.write_block(10, b"abc")
        assert memory.read_block(10, 3) == b"abc"

    def test_dma_counters(self):
        memory = GuestMemory(64)
        memory.write_byte(0, 1)
        memory.read_byte(0)
        assert memory.dma_writes == 1 and memory.dma_reads == 1

    def test_out_of_range_safe(self):
        memory = GuestMemory(64)
        memory.write_byte(9999, 1)
        assert memory.read_byte(9999) == 0


class TestSparseBacking:
    """Backing stores allocate 64 KiB chunks on first write, so a fleet
    of thousands of idle instances stays small."""

    def test_fresh_stores_allocate_nothing(self):
        assert DiskImage(1 << 30).allocated_bytes == 0
        assert GuestMemory(1 << 30).allocated_bytes == 0

    def test_one_write_allocates_one_chunk(self):
        disk = DiskImage(1 << 30)
        disk.write_byte((1 << 30) - 1, 0xAB)
        assert disk.allocated_bytes == 1 << 16
        assert disk.read_byte((1 << 30) - 1) == 0xAB

    def test_unallocated_regions_read_zero(self):
        memory = GuestMemory(1 << 24)
        memory.write_byte(0, 1)
        assert memory.read_block(1 << 20, 8) == b"\x00" * 8
        assert memory.allocated_bytes == 1 << 16

    def test_chunk_spanning_block_roundtrip(self):
        memory = GuestMemory(1 << 20)
        payload = bytes(range(256)) * 8
        offset = (1 << 16) - 1024          # straddles chunks 0 and 1
        memory.write_block(offset, payload)
        assert memory.read_block(offset, len(payload)) == payload
        assert memory.allocated_bytes == 2 << 16

    def test_write_block_clamps_at_the_boundary(self):
        disk = DiskImage(64)
        disk.write_block(60, b"abcdefgh")   # only 4 bytes fit
        assert disk.read_block(60, 4) == b"abcd"
        assert disk.read_block(64, 4) == b"\x00" * 4

    @given(st.lists(st.tuples(st.integers(0, 300_000),
                              st.binary(min_size=1, max_size=64)),
                    max_size=20))
    def test_sparse_matches_a_dense_reference(self, writes):
        size = 200_000                      # spans several chunks
        memory = GuestMemory(size)
        dense = bytearray(size)
        for offset, payload in writes:
            memory.write_block(offset, payload)
            fit = payload[:max(0, size - offset)]
            dense[offset:offset + len(fit)] = fit
        for offset, payload in writes:
            # read_block clamps at size, exactly like the dense slice
            assert memory.read_block(offset, len(payload) + 8) \
                == bytes(dense[offset:offset + len(payload) + 8])


class TestIRQAndNet:
    def test_irq_counts_raises(self):
        line = IRQLine()
        line.set_level(1)
        line.set_level(1)
        line.set_level(0)
        assert line.raise_count == 2
        assert line.level == 0

    def test_net_backend_queues(self):
        net = NetBackend()
        net.inject(b"abc")
        frame = net.pop_rx()
        assert frame.payload == b"abc"
        assert net.pop_rx() is None
        assert net.rx_bytes == 3

    def test_net_transmit(self):
        net = NetBackend()
        net.transmit(b"xyzw")
        assert net.tx_bytes == 4
        assert net.tx_frames[0].payload == b"xyzw"
