"""Shared device-fixture helpers for the test suite.

Every device test module used to grow its own ``make_<device>()`` helper
(GuestVM + attach + driver + bring-up), so adding a device class meant
touching half a dozen files.  New device models register here once; test
modules call :func:`make_device` (or keep a thin local alias for
readability) and stay oblivious to bus type, base address, and bring-up
protocol.
"""

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.devices.ehci import EHCI
from repro.devices.fdc import FDC
from repro.devices.pcnet import PCNet
from repro.devices.scsi import SCSI
from repro.devices.sdhci import SDHCI
from repro.devices.virtio import VirtioBlk, VirtioNet
from repro.vm import GuestVM
from repro.vm.drivers.ehci import EHCIDriver
from repro.vm.drivers.fdc import FDCDriver
from repro.vm.drivers.pcnet import PCNetDriver
from repro.vm.drivers.scsi import SCSIDriver
from repro.vm.drivers.sdhci import SDHCIDriver
from repro.vm.drivers.virtio import VirtioBlkDriver, VirtioNetDriver


@dataclass(frozen=True)
class DeviceFixture:
    """One registered device model: how to build and bring it up."""

    device_cls: type
    base: int
    bus: str                                # "pmio" | "mmio"
    make_driver: Callable[[GuestVM], object]
    bring_up: Callable[[object], None]


DEVICE_FIXTURES: Dict[str, DeviceFixture] = {
    "fdc": DeviceFixture(
        FDC, 0x3F0, "pmio", lambda vm: FDCDriver(vm),
        lambda drv: drv.controller_reset()),
    "pcnet": DeviceFixture(
        PCNet, 0x300, "pmio", lambda vm: PCNetDriver(vm),
        lambda drv: drv.init_rings()),
    "ehci": DeviceFixture(
        EHCI, 0x400, "mmio", lambda vm: EHCIDriver(vm),
        lambda drv: drv.start_controller()),
    "sdhci": DeviceFixture(
        SDHCI, 0x500, "pmio", lambda vm: SDHCIDriver(vm),
        lambda drv: drv.reset_card()),
    "scsi": DeviceFixture(
        SCSI, 0x600, "pmio", lambda vm: SCSIDriver(vm),
        lambda drv: drv.reset()),
    "virtio-net": DeviceFixture(
        VirtioNet, 0x700, "pmio", lambda vm: VirtioNetDriver(vm, 0x700),
        lambda drv: drv.bring_up()),
    "virtio-blk": DeviceFixture(
        VirtioBlk, 0x800, "pmio", lambda vm: VirtioBlkDriver(vm, 0x800),
        lambda drv: drv.bring_up()),
}


def make_device(name: str, version: str = "99.0.0",
                bring_up: bool = True) -> Tuple[GuestVM, object, object]:
    """Build ``(vm, device, driver)`` for a registered device model."""
    fixture = DEVICE_FIXTURES[name]
    vm = GuestVM()
    device = fixture.device_cls(qemu_version=version)
    if fixture.bus == "mmio":
        vm.attach_mmio_device(device, fixture.base)
    else:
        vm.attach_device(device, fixture.base)
    driver = fixture.make_driver(vm)
    if bring_up:
        fixture.bring_up(driver)
    return vm, device, driver
