"""Property tests: spec expression/statement serialization round-trips."""

from hypothesis import given, strategies as st

from repro.ir import (
    Assign, BinOp, Branch, BufLen, BufLoad, BufStore, Call, Const, Goto,
    ICall, Intrinsic, Local, Param, Return, StateRef, StateStore, Switch,
    SyncVar, UnOp,
)
from repro.spec.serialize import (
    expr_from_obj, expr_to_obj, stmt_from_obj, stmt_to_obj, term_from_obj,
    term_to_obj,
)

import json


def expr_strategy():
    leaves = st.one_of(
        st.integers(-(2**40), 2**40).map(Const),
        st.text(alphabet="abcdef_", min_size=1, max_size=6).map(Local),
        st.text(alphabet="pqr", min_size=1, max_size=4).map(Param),
        st.text(alphabet="xyz_", min_size=1, max_size=6).map(StateRef),
        st.text(alphabet="sv:", min_size=1, max_size=8).map(SyncVar),
        st.tuples(st.just("fifo"),
                  st.integers(1, 4096)).map(lambda t: BufLen(*t)),
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.tuples(st.sampled_from(["+", "-", "*", "//", "%", "&",
                                       "|", "^", "<<", ">>", "==", "!=",
                                       "<", "<=", ">", ">=", "and",
                                       "or"]),
                      children, children).map(lambda t: BinOp(*t)),
            st.tuples(st.sampled_from(["-", "not", "~"]),
                      children).map(lambda t: UnOp(*t)),
            st.tuples(st.just("buf"), children).map(
                lambda t: BufLoad(*t)),
        ),
        max_leaves=10)


class TestExprRoundTrip:
    @given(expr_strategy())
    def test_roundtrip_identity(self, expr):
        obj = expr_to_obj(expr)
        # Must survive a real JSON hop, not just the object encoding.
        restored = expr_from_obj(json.loads(json.dumps(obj)))
        assert restored == expr

    def test_none_roundtrip(self):
        assert expr_from_obj(expr_to_obj(None)) is None


class TestStmtRoundTrip:
    @given(expr_strategy(), expr_strategy())
    def test_stmts(self, a, b):
        for stmt in (Assign("x", a), StateStore("f", a),
                     BufStore("buf", a, b),
                     Intrinsic("command_decision", (a,))):
            restored = stmt_from_obj(
                json.loads(json.dumps(stmt_to_obj(stmt))))
            assert str(restored) == str(stmt)


class TestTerminatorRoundTrip:
    @given(expr_strategy())
    def test_terminators(self, cond):
        for term in (Goto("b1"),
                     Branch(cond, "t", "f"),
                     Switch(cond, {0: "a", 5: "b"}, "d"),
                     Call("fn", (cond,), "r", "cont"),
                     ICall("irq", (cond,), None, "cont"),
                     Return(cond), Return(None)):
            restored = term_from_obj(
                json.loads(json.dumps(term_to_obj(term))))
            assert str(restored) == str(term)

    def test_switch_keys_survive_json_stringification(self):
        term = Switch(Const(1), {0: "a", 255: "b"}, "d")
        restored = term_from_obj(json.loads(json.dumps(term_to_obj(term))))
        assert restored.table == {0: "a", 255: "b"}
