"""Tests for spec merging (distributed training) and DOT export."""

import random

import pytest

from repro.checker import Action, ESChecker
from repro.errors import SpecError
from repro.spec import coverage_gain, merge_all, merge_specs, spec_to_dot
from repro.workloads.profiles import PROFILES

from tests.checker.test_escheck import (
    BENIGN, build_toy_spec, checked_machine, CMD,
)


def narrow_spec(keys):
    """A spec trained on a narrow slice of the benign workload."""
    return build_toy_spec(workload=[op for op in BENIGN if op[0] in keys])


class TestMergeSpecs:
    def test_merge_unions_visited_blocks(self):
        writes = narrow_spec({"pmio:write:1"})
        reads = narrow_spec({"pmio:read:1"})
        merged = merge_specs(writes, reads)
        assert merged.visited_blocks \
            == writes.visited_blocks | reads.visited_blocks

    def test_merge_adopts_missing_functions(self):
        writes = narrow_spec({"pmio:write:1"})
        reads = narrow_spec({"pmio:read:1"})
        assert not writes.has_function("read_data")
        merged = merge_specs(writes, reads)
        assert merged.has_function("read_data")
        assert merged.has_function("write_data")

    def test_merge_unions_command_tables(self):
        full = build_toy_spec()
        sums = build_toy_spec(workload=[
            ("pmio:write:1", (1,)),
            ("pmio:write:0", (CMD["CMD_SUM"],))])
        resets = build_toy_spec(workload=[
            ("pmio:write:0", (CMD["CMD_RESET"],))])
        merged = merge_specs(sums, resets)
        assert merged.cmd_access.knows(CMD["CMD_SUM"])
        assert merged.cmd_access.knows(CMD["CMD_RESET"])
        assert set(full.cmd_access.table) >= set(merged.cmd_access.table)

    def test_merged_spec_accepts_union_traffic(self):
        """Traffic needing both corpora passes only under the merger."""
        writes_only = narrow_spec({"pmio:write:1"})
        full = build_toy_spec()
        merged = merge_specs(writes_only, full)

        machine, checker = checked_machine(merged)
        for key, args in (("pmio:write:1", (5,)), ("pmio:read:1", ())):
            report = checker.check_io(key, args)
            assert report.action is Action.ALLOW, report.anomalies
            machine.run_entry(key, args)

        _, narrow_checker = checked_machine(writes_only)
        assert not narrow_checker.check_io("pmio:read:1", ()).ok

    def test_merge_does_not_mutate_inputs(self):
        writes = narrow_spec({"pmio:write:1"})
        reads = narrow_spec({"pmio:read:1"})
        before = set(writes.visited_blocks)
        merge_specs(writes, reads)
        assert writes.visited_blocks == before

    def test_merge_all_folds(self):
        parts = [narrow_spec({k}) for k in
                 ("pmio:write:1", "pmio:read:1", "pmio:write:0")]
        merged = merge_all(parts)
        assert merged.stats["merged_from"] == 3

    def test_merge_all_empty_rejected(self):
        with pytest.raises(SpecError):
            merge_all([])

    def test_incompatible_devices_rejected(self):
        toy = build_toy_spec()
        prof = PROFILES["fdc"]
        from repro.workloads import train_device_spec
        fdc = train_device_spec("fdc").spec
        with pytest.raises(SpecError, match="different"):
            merge_specs(toy, fdc)

    def test_coverage_gain(self):
        writes = narrow_spec({"pmio:write:1"})
        reads = narrow_spec({"pmio:read:1"})
        merged = merge_specs(writes, reads)
        assert coverage_gain(writes, merged) > 0
        assert coverage_gain(merged, merged) == 0


class TestDotExport:
    def test_dot_contains_blocks_and_edges(self):
        spec = build_toy_spec()
        dot = spec_to_dot(spec)
        assert dot.startswith("digraph")
        assert "cluster_write_data" in dot
        assert "->" in dot
        assert "ENTRY" in dot and "EXIT" in dot

    def test_single_function_export(self):
        spec = build_toy_spec()
        dot = spec_to_dot(spec, function="do_sum")
        assert "cluster_do_sum" in dot
        assert "cluster_write_data" not in dot

    def test_one_sided_branches_highlighted(self):
        spec = build_toy_spec()
        assert "ONE-SIDED" in spec_to_dot(spec)

    def test_dsod_optional(self):
        spec = build_toy_spec()
        with_dsod = spec_to_dot(spec, include_dsod=True)
        without = spec_to_dot(spec, include_dsod=False)
        assert len(without) < len(with_dsod)

    def test_quotes_escaped(self):
        spec = build_toy_spec()
        dot = spec_to_dot(spec)
        # No raw unescaped quote sequences that would break Graphviz.
        for line in dot.splitlines():
            assert line.count('"') % 2 == 0, line
