"""Tests for ES-CFG construction (Algorithm 1), reduction, and serialization."""

import pytest

from repro.analysis import ObservationLogger, analyze_taint, select_parameters
from repro.compiler import compile_device
from repro.errors import SpecError
from repro.interp import Machine
from repro.ir import Branch, Goto
from repro.spec import build_spec, spec_from_json, spec_to_json

from tests.toydev import ToyLogic

CMD = ToyLogic.CONSTS


def train(inputs, vuln=False):
    """Run a training workload and return (program, log, selection)."""
    overrides = {"VULN_UNCHECKED_PUSH": 1} if vuln else None
    program = compile_device(ToyLogic, const_overrides=overrides)
    selection = select_parameters(program)
    machine = Machine(program)
    machine.bind_extern("host_log", lambda m, level: None)
    machine.set_funcptr("irq", "on_irq")
    logger = machine.add_sink(ObservationLogger(
        "toy", selection.scalar_params | selection.funcptrs,
        selection.buffers))
    for key, args in inputs:
        machine.run_entry(key, args)
    return program, logger.log, selection


BENIGN = (
    [("pmio:write:1", (i,)) for i in range(4)]
    + [("pmio:write:0", (CMD["CMD_SUM"],))]
    + [("pmio:read:1", ())] * 2
    + [("pmio:write:0", (CMD["CMD_RESET"],))]
    + [("pmio:write:1", (9,))]
)


class TestBuildSpec:
    def setup_method(self):
        self.program, self.log, self.selection = train(BENIGN)
        self.spec = build_spec(self.program, self.log, self.selection)

    def test_functions_present(self):
        assert self.spec.has_function("write_data")
        assert self.spec.has_function("do_sum")
        assert self.spec.has_function("on_irq")

    def test_entry_handlers_carried_over(self):
        assert self.spec.entry_for("pmio:write:1").name == "write_data"

    def test_unvisited_functions_absent(self):
        # All toy functions run in BENIGN; a narrower workload drops some.
        program, log, selection = train([("pmio:read:1", ())])
        spec = build_spec(program, log, selection)
        assert not spec.has_function("do_sum")

    def test_branch_observations_recorded(self):
        assert self.spec.branch_observed
        one_sided = [a for a in self.spec.branch_observed
                     if self.spec.branch_is_one_sided(a) is not None]
        assert one_sided, "bounds check never failed in training"

    def test_icall_targets_recorded(self):
        targets = set()
        for addrs in self.spec.icall_targets.values():
            targets |= addrs
        assert self.program.func_addr["on_irq"] in targets

    def test_command_access_table(self):
        assert self.spec.cmd_access.knows(CMD["CMD_SUM"])
        assert self.spec.cmd_access.knows(CMD["CMD_RESET"])
        assert not self.spec.cmd_access.knows(CMD["CMD_POP"])

    def test_reduction_shrinks_graph(self):
        unreduced = build_spec(self.program, self.log, self.selection,
                               reduce_cfg=False)
        assert self.spec.block_count() <= unreduced.block_count()
        assert (self.spec.stats["blocks_after_reduction"]
                <= self.spec.stats["blocks_before_reduction"])

    def test_dsod_smaller_than_source(self):
        assert (self.spec.stats["dsod_stmts"]
                <= self.spec.stats["stmts_before_slicing"])

    def test_entry_exit_marked(self):
        write_data = self.spec.function("write_data")
        entries = [b for b in write_data.blocks.values() if b.is_entry]
        exits = [b for b in write_data.blocks.values() if b.is_exit]
        assert len(entries) == 1
        assert exits

    def test_faulted_rounds_excluded(self):
        program, log, selection = train(BENIGN)
        log.rounds[0].faulted = True
        spec = build_spec(program, log, selection)
        assert spec.block_count() > 0

    def test_empty_log_rejected(self):
        program, log, selection = train(BENIGN)
        log.rounds = []
        with pytest.raises(SpecError):
            build_spec(program, log, selection)

    def test_describe_mentions_device(self):
        assert "ToyCtrl" in self.spec.describe()


class TestReduction:
    def test_goto_chains_bypassed(self):
        program, log, selection = train(BENIGN)
        spec = build_spec(program, log, selection, reduce_cfg=True)
        for es_func in spec.functions.values():
            for block in es_func.blocks.values():
                if isinstance(block.nbtd, Goto):
                    succ = es_func.block(block.nbtd.target)
                    # A retained Goto successor must carry information.
                    assert (succ.dsod or not isinstance(succ.nbtd, Goto)
                            or succ.is_entry or succ.is_exit
                            or succ.is_cmd_decision or succ.is_cmd_end)

    def test_successors_still_resolve(self):
        program, log, selection = train(BENIGN)
        spec = build_spec(program, log, selection)
        for es_func in spec.functions.values():
            for block in es_func.blocks.values():
                if isinstance(block.nbtd, Branch):
                    # At least the trained side must exist in the spec.
                    sides = [es_func.has_block(block.nbtd.taken),
                             es_func.has_block(block.nbtd.not_taken)]
                    assert any(sides)


class TestSerialization:
    def test_json_roundtrip_preserves_structure(self):
        program, log, selection = train(BENIGN)
        spec = build_spec(program, log, selection)
        restored = spec_from_json(spec_to_json(spec))
        assert restored.device == spec.device
        assert set(restored.functions) == set(spec.functions)
        assert restored.block_count() == spec.block_count()
        assert restored.branch_observed == spec.branch_observed
        assert restored.icall_targets == spec.icall_targets
        assert restored.cmd_access.table == spec.cmd_access.table
        assert restored.visited_blocks == spec.visited_blocks
        assert restored.layout.size == spec.layout.size

    def test_restored_spec_builds_device_state(self):
        program, log, selection = train(BENIGN)
        spec = build_spec(program, log, selection)
        restored = spec_from_json(spec_to_json(spec))
        state = restored.make_device_state()
        state.write_field("pos", 3)
        assert state.read_field("pos") == 3
        assert state.buffer_length("fifo") == 8

    def test_dsod_expressions_roundtrip(self):
        program, log, selection = train(BENIGN)
        spec = build_spec(program, log, selection)
        restored = spec_from_json(spec_to_json(spec))
        for name, es_func in spec.functions.items():
            for label, block in es_func.blocks.items():
                other = restored.function(name).block(label)
                assert [str(s) for s in block.dsod] \
                    == [str(s) for s in other.dsod]
                assert str(block.nbtd) == str(other.nbtd)
