"""Spec persistence round-trips for every device profile.

A persisted spec must be a faithful replacement for the freshly trained
one: train at the CVE's vulnerable QEMU version, serialize, reload, and
deploy both against the same PoC — the loaded spec must produce the same
CheckReport, anomaly for anomaly.  This is what the fleet's SpecRegistry
relies on when worker processes load specs from the disk cache.
"""

import pytest

from repro.checker import Mode
from repro.core import deploy
from repro.exploits import exploit_by_cve
from repro.spec import spec_from_json, spec_to_json
from repro.vm.machine import SEDSpecHalt
from repro.workloads.profiles import PROFILES, train_device_spec

# One detectable CVE per device profile, pinned to its vulnerable build.
DEVICE_CVES = [
    ("fdc", "CVE-2015-3456"),
    ("ehci", "CVE-2020-14364"),
    ("pcnet", "CVE-2015-7512"),
    ("sdhci", "CVE-2021-3409"),
    ("scsi", "CVE-2015-5158"),
]


@pytest.fixture(scope="module")
def trained():
    """Train each device's spec once for the whole module."""
    specs = {}
    for device, cve in DEVICE_CVES:
        exploit = exploit_by_cve(cve)
        specs[device] = train_device_spec(
            device, qemu_version=exploit.qemu_version, seed=7,
            repeats=2).spec
    return specs


def poc_report(device, spec, cve):
    """Deploy *spec* on a fresh VM and run the PoC; return its halt
    report."""
    exploit = exploit_by_cve(cve)
    prof = PROFILES[device]
    vm, dev = prof.make_vm(exploit.qemu_version)
    deploy(vm, dev, spec, mode=Mode.PROTECTION)
    driver = prof.make_driver(vm)
    prof.prepare(vm, driver)
    with pytest.raises(SEDSpecHalt) as excinfo:
        exploit.run(vm, dev)
    return excinfo.value.report


@pytest.mark.parametrize("device,cve", DEVICE_CVES,
                         ids=[d for d, _ in DEVICE_CVES])
class TestRoundTrip:
    def test_json_round_trip_is_stable(self, trained, device, cve):
        blob = spec_to_json(trained[device])
        assert spec_to_json(spec_from_json(blob)) == blob

    def test_loaded_spec_reproduces_the_check_report(self, trained,
                                                     device, cve):
        spec = trained[device]
        loaded = spec_from_json(spec_to_json(spec))
        original = poc_report(device, spec, cve)
        replayed = poc_report(device, loaded, cve)
        # CheckReport equality covers action, anomalies (strategy, kind,
        # message, block, io key), walk counters, and completeness.
        assert replayed == original
        assert original.anomalies
        strategies = {a.strategy for a in original.anomalies}
        assert strategies <= exploit_by_cve(cve).expected_strategies
