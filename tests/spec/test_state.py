"""Unit tests for the shadow DeviceState (flat-layout semantics)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DeviceFault, SpecError
from repro.ir import FUNCPTR, I32, U8, U16, BufType, StateLayout, StateMemory
from repro.spec import DeviceState


def make_layout():
    layout = StateLayout("Shadow")
    layout.add("reg", U8, register=True)
    layout.add("buf", BufType(U8, 8))
    layout.add("count", U16)
    layout.add("signed", I32)
    layout.add("ptr", FUNCPTR)
    return layout


def make_state():
    layout = make_layout()
    return DeviceState(layout, {"reg", "count", "signed", "ptr"}, {"buf"})


class TestShadowState:
    def test_boot_sync_copies_everything(self):
        state = make_state()
        memory = StateMemory(make_layout())
        memory.write_field("reg", 0x42)
        memory.write_buf("buf", 3, 0x99)
        state.sync_from(memory)
        assert state.read_field("reg") == 0x42
        assert state.read_buf("buf", 3) == 0x99

    def test_clone_is_independent(self):
        state = make_state()
        copy = state.clone()
        copy.write_field("reg", 7)
        assert state.read_field("reg") == 0

    def test_in_range_checks_declared_types(self):
        state = make_state()
        assert state.in_range("reg", 255)
        assert not state.in_range("reg", 256)
        assert state.in_range("signed", -5)
        assert not state.in_range("count", -1)
        assert state.in_range("ptr", 2**63)

    def test_buffer_geometry(self):
        state = make_state()
        assert state.buffer_length("buf") == 8
        assert state.index_in_bounds("buf", 7)
        assert not state.index_in_bounds("buf", 8)
        assert not state.index_in_bounds("buf", -1)

    def test_flat_layout_corruption_mirrors_device(self):
        """The property the indirect-jump check relies on: a simulated
        near-OOB store corrupts the same neighbour."""
        state = make_state()
        state.write_buf("buf", 8, 0x5A)     # one past the end: count b0
        assert state.read_field("count") == 0x5A

    def test_far_oob_faults_like_device(self):
        state = make_state()
        with pytest.raises(DeviceFault):
            state.write_buf("buf", 500, 1)

    def test_non_buffer_length_rejected(self):
        with pytest.raises(SpecError):
            make_state().buffer_length("reg")

    def test_buffer_listed_as_field_rejected(self):
        layout = make_layout()
        with pytest.raises(SpecError):
            DeviceState(layout, {"buf"}, set())

    def test_dump_lists_scalar_params_only(self):
        dump = make_state().dump()
        assert set(dump) == {"reg", "count", "signed", "ptr"}

    @given(st.integers(-(2**20), 2**20))
    def test_write_field_wraps_like_c(self, value):
        state = make_state()
        state.write_field("count", value)
        assert state.read_field("count") == value % (1 << 16)
