"""Unit tests for ES-CFG data structures."""

import pytest

from repro.errors import SpecError
from repro.ir import Const, Goto, Return
from repro.spec import CommandAccessTable, ESBlock, ESFunction, ExecutionSpec


class TestCommandAccessTable:
    def test_record_and_query(self):
        table = CommandAccessTable()
        table.record(0x46, 0x100)
        table.record(0x46, 0x140)
        table.record(0x45, 0x100)
        assert table.knows(0x46)
        assert not table.knows(0x99)
        assert table.allows(0x46, 0x140)
        assert not table.allows(0x45, 0x140)
        assert table.commands() == [0x45, 0x46]

    def test_unknown_command_allows_nothing(self):
        assert not CommandAccessTable().allows(1, 0x100)


class TestESFunction:
    def make(self):
        func = ESFunction("h", "entry", ("value",))
        func.blocks["entry"] = ESBlock(0x100, "h", "entry",
                                       nbtd=Goto("end"))
        func.blocks["end"] = ESBlock(0x140, "h", "end",
                                     nbtd=Return(Const(0)))
        return func

    def test_block_lookup(self):
        func = self.make()
        assert func.block("entry").address == 0x100
        assert func.has_block("end")
        assert not func.has_block("ghost")

    def test_missing_block_is_spec_error(self):
        with pytest.raises(SpecError, match="left the execution"):
            self.make().block("ghost")


class TestESBlockDisplay:
    def test_tags_in_str(self):
        block = ESBlock(0x200, "h", "b0", kind="cond", is_entry=True,
                        is_cmd_decision=True, nbtd=Return(None))
        text = str(block)
        assert "entry" in text and "cmd-dec" in text and "cond" in text


class TestExecutionSpecQueries:
    def make(self):
        spec = ExecutionSpec(device="T")
        func = ESFunction("h", "entry", ())
        func.blocks["entry"] = ESBlock(0x100, "h", "entry",
                                       nbtd=Return(None))
        spec.functions["h"] = func
        spec.entry_handlers["pmio:write:0"] = "h"
        spec.branch_observed[0x100] = {True}
        spec.branch_observed[0x140] = {True, False}
        spec.icall_targets[0x180] = {0x9999}
        return spec

    def test_entry_resolution(self):
        spec = self.make()
        assert spec.entry_for("pmio:write:0").name == "h"
        with pytest.raises(SpecError):
            spec.entry_for("pmio:write:9")

    def test_unknown_function_is_spec_error(self):
        with pytest.raises(SpecError, match="never executed"):
            self.make().function("ghost")

    def test_one_sided_branch_queries(self):
        spec = self.make()
        assert spec.branch_is_one_sided(0x100) is True
        assert spec.branch_is_one_sided(0x140) is None
        assert spec.branch_is_one_sided(0xFFFF) is None

    def test_legit_target_queries(self):
        spec = self.make()
        assert spec.legit_icall_targets(0x180) == {0x9999}
        assert spec.legit_icall_targets(0x1) == set()
        assert spec.legit_switch_targets(0x1) == set()

    def test_counts(self):
        spec = self.make()
        assert spec.block_count() == 1
        assert spec.dsod_stmt_count() == 0

    def test_make_device_state_requires_layout(self):
        with pytest.raises(SpecError, match="layout"):
            self.make().make_device_state()

    def test_describe(self):
        text = self.make().describe()
        assert "T" in text and "functions: 1" in text
