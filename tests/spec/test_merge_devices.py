"""Merge tests on real device specs (distributed-training fidelity)."""

import random

import pytest

from repro.checker import Mode
from repro.core import build_execution_spec, deploy
from repro.spec import merge_specs
from repro.workloads.profiles import PROFILES


def train_slice(prof, ops, seed=11, rounds=20):
    def workload(vm, device):
        rng = random.Random(seed)
        driver = prof.make_driver(vm)
        prof.prepare(vm, driver)
        for _ in range(rounds):
            rng.choice(ops)(vm, driver, rng)

    return build_execution_spec(lambda: prof.make_vm(), workload).spec


@pytest.mark.parametrize("device_name", ("sdhci", "scsi"))
def test_merged_real_specs_accept_union_traffic(device_name):
    prof = PROFILES[device_name]
    heavy = train_slice(prof, prof.common_ops[:2])     # block I/O ops
    light = train_slice(prof, prof.common_ops)          # everything
    merged = merge_specs(heavy, light)

    vm, device = prof.make_vm()
    attachment = deploy(vm, device, merged, mode=Mode.PROTECTION)
    driver = prof.make_driver(vm)
    rng = random.Random(5)
    prof.prepare(vm, driver)
    for _ in range(25):
        rng.choice(prof.common_ops)(vm, driver, rng)
    assert not attachment.halts
    assert not attachment.warnings


def test_merge_preserves_exploit_detection():
    """Union of benign corpora must not launder an exploit."""
    from repro.exploits import exploit_by_cve, run_exploit
    from repro.workloads import train_device_spec

    exploit = exploit_by_cve("CVE-2021-3409")
    prof = PROFILES["sdhci"]
    spec_a = train_device_spec("sdhci", qemu_version="5.2.0", seed=1).spec
    spec_b = train_device_spec("sdhci", qemu_version="5.2.0", seed=2).spec
    merged = merge_specs(spec_a, spec_b)

    vm, device = prof.make_vm("5.2.0")
    deploy(vm, device, merged, mode=Mode.PROTECTION)
    outcome = run_exploit(vm, device, exploit)
    assert outcome.detected
