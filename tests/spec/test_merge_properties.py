"""Hypothesis properties for spec merging (lifecycle safety).

Training facts are monotone sets, so merging must behave like set
union: idempotent, order-insensitive, and strictly non-destructive —
the merged spec's object graph must share nothing mutable with its
inputs, or a later merge (or a checker mutating its own tables) would
silently rewrite a candidate some other chain still references.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.ir import Switch
from repro.spec import (
    merge_all, merge_specs, spec_from_json, spec_to_json,
)

from tests.checker.test_escheck import BENIGN, build_toy_spec

#: canonical JSON per workload slice; every example re-materializes its
#: specs from here, so no example can see another's mutations
_SLICE_JSON = {}


def slice_spec(indices):
    key = tuple(sorted(set(indices)))
    if key not in _SLICE_JSON:
        workload = [BENIGN[i] for i in key]
        _SLICE_JSON[key] = spec_to_json(
            build_toy_spec(workload=workload))
    return spec_from_json(_SLICE_JSON[key])


def slices():
    return st.lists(st.integers(0, len(BENIGN) - 1),
                    min_size=1, max_size=len(BENIGN), unique=True)


def vandalize(spec):
    """Mutate every mutable container reachable from *spec*."""
    for func in spec.functions.values():
        for block in func.blocks.values():
            block.dsod.clear()
            if isinstance(block.nbtd, Switch):
                block.nbtd.table.clear()
    spec.visited_blocks.clear()
    for observed in spec.branch_observed.values():
        observed.clear()
    for targets in spec.switch_targets.values():
        targets.clear()
    for targets in spec.icall_targets.values():
        targets.clear()
    for addresses in spec.cmd_access.table.values():
        addresses.clear()
    spec.entry_handlers.clear()


class TestMergeProperties:
    @settings(max_examples=25, deadline=None)
    @given(slices())
    def test_merge_is_idempotent(self, idx):
        a, b = slice_spec(idx), slice_spec(idx)
        merged = merge_specs(a, b)
        assert merged.training_facts() == a.training_facts()
        assert merged.observed_edges() == a.observed_edges()

    @settings(max_examples=25, deadline=None)
    @given(slices(), slices(), slices())
    def test_merge_all_is_an_order_insensitive_union(self, i, j, k):
        specs = [slice_spec(i), slice_spec(j), slice_spec(k)]
        merged = merge_all(specs)
        facts = merged.training_facts()
        for name in facts:
            union = frozenset().union(
                *(s.training_facts()[name] for s in specs))
            assert facts[name] == union, name
        permuted = merge_all(
            [slice_spec(k), slice_spec(i), slice_spec(j)])
        assert permuted.training_facts() == facts
        assert permuted.observed_edges() == merged.observed_edges()

    @settings(max_examples=25, deadline=None)
    @given(slices(), slices())
    def test_merge_never_mutates_its_inputs(self, i, j):
        a, b = slice_spec(i), slice_spec(j)
        before = (spec_to_json(a), spec_to_json(b))
        merged = merge_specs(a, b)
        assert (spec_to_json(a), spec_to_json(b)) == before
        # Object-graph independence: wrecking the merged spec must not
        # reach back into either input through a shared container.
        vandalize(merged)
        assert (spec_to_json(a), spec_to_json(b)) == before


class TestAdoptionAliasingRegression:
    """Regression for the block-adoption aliasing bug: adopted blocks
    (and rebuilt Switch terminators) used to be shared with the donor
    spec, so mutating the merged spec corrupted the donor in place."""

    def test_adopted_blocks_are_deep_copies(self):
        narrow = build_toy_spec(
            workload=[op for op in BENIGN if op[0] == "pmio:write:1"])
        full = build_toy_spec()
        donor_json = spec_to_json(full)
        merged = merge_specs(narrow, full)

        adopted = [f for f in merged.functions
                   if f not in narrow.functions]
        assert adopted, "expected the narrow spec to adopt functions"
        for name in merged.functions:
            ours = merged.functions[name]
            for label, block in ours.blocks.items():
                for source in (narrow, full):
                    theirs = source.functions.get(name)
                    if theirs is None or label not in theirs.blocks:
                        continue
                    assert block is not theirs.blocks[label]
                    assert block.dsod is not theirs.blocks[label].dsod
                    if isinstance(block.nbtd, Switch):
                        assert (block.nbtd.table
                                is not theirs.blocks[label].nbtd.table)
        vandalize(merged)
        assert spec_to_json(full) == donor_json

    def test_merge_inputs_snapshot_roundtrip(self):
        """The exact scenario from the bug report: snapshot both input
        specs as JSON, merge, and require byte-identical snapshots."""
        sums = build_toy_spec(workload=[("pmio:write:1", (1,)),
                                        ("pmio:write:0", (3,))])
        resets = build_toy_spec(workload=[("pmio:write:0", (0,))])
        snap_sums = json.loads(spec_to_json(sums))
        snap_resets = json.loads(spec_to_json(resets))
        merge_specs(sums, resets)
        merge_specs(resets, sums)
        assert json.loads(spec_to_json(sums)) == snap_sums
        assert json.loads(spec_to_json(resets)) == snap_resets

    def test_merged_from_counts_both_sides(self):
        a = build_toy_spec(workload=BENIGN[:3])
        b = build_toy_spec(workload=BENIGN[3:6])
        c = build_toy_spec(workload=BENIGN[6:])
        ab = merge_specs(a, b)
        assert ab.stats["merged_from"] == 2
        abc = merge_specs(ab, c)
        assert abc.stats["merged_from"] == 3
        # ... and symmetrically when the pre-merged spec is on the right.
        cab = merge_specs(c, ab)
        assert cab.stats["merged_from"] == 3
