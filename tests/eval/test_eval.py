"""Tests for the evaluation harnesses (small-scale configurations)."""

import pytest

from repro.checker import Strategy
from repro.eval import (
    compare_baselines, defended, generate_network_figure,
    generate_storage_figures, generate_table1, pct, render_table,
    strategy_matrix, undefended,
)
from repro.eval.ablation import (
    reduction_ablation, strategy_cost_ablation, training_volume_ablation,
)
from repro.exploits import exploit_by_cve
from repro.workloads import train_device_spec


@pytest.fixture(scope="module")
def spec_cache():
    return {}


class TestReport:
    def test_render_table_aligns(self):
        text = render_table(("A", "Blah"), [("x", 1), ("longer", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_pct(self):
        assert pct(0.123456) == "12.35%"


class TestTable1:
    def test_all_devices_all_categories(self):
        table = generate_table1()
        rows = table.rows()
        assert len(rows) == 5 * 4
        assert "data_pos" in table.render()

    def test_paper_examples_present(self):
        """Table I's own example variables appear for the FDC."""
        table = generate_table1(device_names=("fdc",))
        text = table.render()
        for example in ("msr", "dor", "tdr", "fifo", "data_len",
                        "data_pos", "irq"):
            assert example in text


class TestSecurityEval:
    def test_fdc_venom_matrix_row(self, spec_cache):
        exploit = exploit_by_cve("CVE-2015-3456")
        rows = strategy_matrix(exploits=(exploit,), cache=spec_cache)
        assert rows[0].matches_paper
        assert Strategy.PARAMETER in rows[0].detected_by

    def test_defended_vs_undefended(self, spec_cache):
        exploit = exploit_by_cve("CVE-2021-3409")
        protected = defended(exploit, cache=spec_cache)
        unprotected = undefended(exploit)
        assert protected.halted
        assert protected.device_survived
        assert unprotected.device_faulted or \
            not unprotected.detected

    def test_miss_case_row_renders(self, spec_cache):
        exploit = exploit_by_cve("CVE-2016-1568")
        rows = strategy_matrix(exploits=(exploit,), cache=spec_cache)
        assert rows[0].expected_miss
        assert rows[0].matches_paper
        assert "miss" in rows[0].row()[4]


class TestFigures:
    def test_storage_figures_within_bounds(self):
        specs = {name: train_device_spec(name).spec
                 for name in ("sdhci", "scsi")}
        import repro.eval.figures as figures_mod
        original = figures_mod.STORAGE_DEVICES
        figures_mod.STORAGE_DEVICES = ("sdhci", "scsi")
        try:
            fig3, fig4 = generate_storage_figures(
                specs, record_sizes=(512, 1024), records_per_size=1)
        finally:
            figures_mod.STORAGE_DEVICES = original
        assert fig3.max_overhead_percent() < 5.0     # the paper's claim
        assert fig4.max_overhead_percent() < 5.0
        assert "sdhci" in fig3.render()

    def test_network_figure_within_bounds(self):
        fig5 = generate_network_figure(frames=8, ping_count=6)
        assert fig5.max_bandwidth_overhead() < 8.0   # the paper's claim
        assert fig5.ping_overhead_percent < 10.0
        assert "ping" in fig5.render()


class TestBaselineComparison:
    def test_single_cve_comparison(self, spec_cache):
        comparison = compare_baselines(cves=("CVE-2016-1568",),
                                       spec_cache=spec_cache)
        row = comparison.rows[0]
        assert not row.sedspec      # the documented miss
        assert row.nioh             # Nioh's manual model catches it


class TestAblations:
    def test_reduction_saves_blocks_and_cycles(self):
        row = reduction_ablation("sdhci", ops=12)
        assert row.blocks_reduced <= row.blocks_unreduced
        assert row.checker_cycles_reduced <= row.checker_cycles_unreduced
        assert row.block_savings >= 0

    def test_strategy_cost_ordering(self):
        rows = {r.strategy: r.checker_cycles
                for r in strategy_cost_ablation("sdhci", ops=12)}
        assert rows["all"] >= rows["none"] or rows["all"] > 0

    def test_training_volume_monotonicity(self):
        rows = training_volume_ablation("sdhci", repeat_choices=(1, 4),
                                        hours=1, rare_case_rate=0.6)
        # The extended corpus includes the rare commands: FPs drop.
        assert rows[-1].false_positives <= rows[0].false_positives
        assert rows[-1].spec_blocks >= rows[0].spec_blocks
