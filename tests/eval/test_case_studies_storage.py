"""Tests for the case-study harness and trace persistence."""

import os

import pytest

from repro.errors import TraceError
from repro.eval import render_case_studies, study
from repro.exploits import exploit_by_cve
from repro.ipt import Decoder, IPTTracer, TraceFile
from repro.workloads.profiles import PROFILES


@pytest.fixture(scope="module")
def cache():
    return {}


class TestCaseStudies:
    def test_detected_case(self, cache):
        cs = study(exploit_by_cve("CVE-2021-3409"), spec_cache=cache)
        assert cs.detected
        assert cs.device_protected
        assert cs.anomalies
        assert "trans_remain" in cs.narrative()

    def test_miss_case(self, cache):
        cs = study(exploit_by_cve("CVE-2016-1568"), spec_cache=cache)
        assert not cs.detected
        assert "documented miss" in cs.narrative()

    def test_unprotected_impact_recorded(self, cache):
        cs = study(exploit_by_cve("CVE-2015-3456"), spec_cache=cache)
        assert "crashed" in cs.unprotected_impact

    def test_render_joins_narratives(self, cache):
        studies = [study(exploit_by_cve(cve), spec_cache=cache)
                   for cve in ("CVE-2021-3409", "CVE-2016-1568")]
        text = render_case_studies(studies)
        assert "CVE-2021-3409" in text and "CVE-2016-1568" in text


class TestTraceFile:
    def capture(self):
        prof = PROFILES["fdc"]
        vm, device = prof.make_vm()
        tracer = device.machine.add_sink(IPTTracer())
        driver = prof.make_driver(vm)
        prof.prepare(vm, driver)
        driver.read_lba(0)
        return device, TraceFile("fdc", device.program.code_range(),
                                 tracer.packets, "99.0.0")

    def test_save_load_roundtrip(self, tmp_path):
        device, trace = self.capture()
        path = str(tmp_path / "t.sedt")
        trace.save(path)
        loaded = TraceFile.load(path)
        assert loaded.packets == trace.packets
        assert loaded.device == "fdc"
        assert loaded.qemu_version == "99.0.0"

    def test_loaded_trace_decodes(self, tmp_path):
        device, trace = self.capture()
        path = str(tmp_path / "t.sedt")
        trace.save(path)
        loaded = TraceFile.load(path)
        rounds = Decoder(device.program).decode_stream(loaded.packets)
        assert rounds

    def test_wrong_magic_rejected(self, tmp_path):
        path = str(tmp_path / "bad.sedt")
        with open(path, "wb") as handle:
            handle.write(b"NOPE" + b"\x00" * 32)
        with pytest.raises(TraceError, match="not a SEDSpec"):
            TraceFile.load(path)

    def test_build_mismatch_rejected(self, tmp_path):
        device, trace = self.capture()
        wrong = TraceFile("fdc", (0x1000, 0x2000), trace.packets)
        with pytest.raises(TraceError, match="different build"):
            wrong.check_compatible(device.program)

    def test_truncated_payload_rejected(self, tmp_path):
        device, trace = self.capture()
        path = str(tmp_path / "t.sedt")
        trace.save(path)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[:-10])
        with pytest.raises(TraceError):
            TraceFile.load(path)
