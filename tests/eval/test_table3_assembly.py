"""Tests for Table3 assembly/rendering (without the heavy sub-runs)."""

from repro.checker import Strategy
from repro.eval.security import CveResult
from repro.eval.table3 import Table3


def make_table():
    rows = [
        CveResult("CVE-2015-3456", "fdc", "2.3.0",
                  detected_by=frozenset({Strategy.PARAMETER,
                                         Strategy.CONDITIONAL_JUMP}),
                  expected=frozenset({Strategy.PARAMETER,
                                      Strategy.CONDITIONAL_JUMP})),
        CveResult("CVE-2016-1568", "fdc", "2.5.0",
                  detected_by=frozenset(), expected=frozenset(),
                  expected_miss=True),
        CveResult("CVE-2021-3409", "sdhci", "5.2.0",
                  detected_by=frozenset(),
                  expected=frozenset({Strategy.PARAMETER})),
    ]
    return Table3(cve_rows=rows,
                  fpr={"fdc": 0.0014, "sdhci": 0.0009},
                  fp_counts={"fdc": {10: 1, 20: 2, 30: 5}},
                  coverage={"fdc": 0.959, "sdhci": 0.935})


class TestTable3:
    def test_render_contains_everything(self):
        text = make_table().render()
        assert "CVE-2015-3456" in text
        assert "0.14%" in text
        assert "95.9%" in text
        assert "(expected miss)" in text

    def test_match_detection(self):
        table = make_table()
        rows = {r.cve: r for r in table.cve_rows}
        assert rows["CVE-2015-3456"].matches_paper
        assert rows["CVE-2016-1568"].matches_paper    # miss expected
        assert not rows["CVE-2021-3409"].matches_paper  # missed wrongly
        assert not table.all_match_paper

    def test_superset_detection_still_matches(self):
        row = CveResult("X", "fdc", "1.0",
                        detected_by=frozenset(Strategy),
                        expected=frozenset({Strategy.PARAMETER}))
        assert row.matches_paper

    def test_row_marks(self):
        row = make_table().cve_rows[0].row()
        assert row[3] == "Y//Y"     # param yes, indirect no, cond yes
