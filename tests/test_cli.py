"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_devices_listing(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        for name in ("fdc", "pcnet", "ehci", "sdhci", "scsi"):
            assert name in out
        assert "CVE-2015-3456" in out

    def test_devices_active_at_old_version(self, capsys):
        main(["devices", "--qemu-version", "2.3.0"])
        out = capsys.readouterr().out
        assert "CVE-2015-3456" in out

    def test_train_writes_spec(self, tmp_path, capsys):
        out_file = tmp_path / "fdc.spec.json"
        assert main(["train", "--device", "fdc",
                     "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["device"] == "FDCtrl"
        assert "execution specification" in capsys.readouterr().out

    def test_inspect_and_dot(self, tmp_path, capsys):
        spec_file = tmp_path / "s.json"
        main(["train", "--device", "sdhci", "--out", str(spec_file)])
        capsys.readouterr()
        dot_file = tmp_path / "s.dot"
        assert main(["inspect", "--spec", str(spec_file),
                     "--dot", str(dot_file)]) == 0
        assert dot_file.read_text().startswith("digraph")

    def test_exploit_unprotected(self, capsys):
        assert main(["exploit", "--cve", "CVE-2021-3409"]) == 0
        out = capsys.readouterr().out
        assert "detected:  False" in out

    def test_exploit_protected(self, capsys):
        assert main(["exploit", "--cve", "CVE-2021-3409",
                     "--protect"]) == 0
        out = capsys.readouterr().out
        assert "detected:  True" in out
        assert "parameter" in out

    def test_exploit_reference_backend(self, capsys):
        assert main(["exploit", "--cve", "CVE-2021-3409", "--protect",
                     "--backend", "reference"]) == 0
        assert "detected:  True" in capsys.readouterr().out

    def test_train_reference_backend(self, tmp_path, capsys):
        out_file = tmp_path / "fdc.spec.json"
        assert main(["train", "--device", "fdc", "--backend",
                     "reference", "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["device"] == "FDCtrl"

    def test_tables_1(self, capsys):
        assert main(["tables", "--which", "1"]) == 0
        assert "Variable category" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestServe:
    def test_serve_inline_benign(self, capsys):
        assert main(["serve", "--inline", "--devices", "fdc",
                     "--tenants", "2", "--batches", "2",
                     "--ops", "2"]) == 0
        out = capsys.readouterr().out
        assert "Tenant" in out
        assert "0 lost" in out

    def test_serve_inline_detects_injected_cve(self, capsys):
        assert main(["serve", "--inline", "--devices", "fdc",
                     "--tenants", "2", "--batches", "3", "--ops", "2",
                     "--inject", "CVE-2015-3456",
                     "--min-detections", "1"]) == 0
        out = capsys.readouterr().out
        assert "detections=1" in out

    def test_serve_min_detections_enforced(self, capsys):
        assert main(["serve", "--inline", "--devices", "fdc",
                     "--tenants", "1", "--batches", "1", "--ops", "1",
                     "--min-detections", "1"]) == 1
        assert "ERROR" in capsys.readouterr().out


class TestStats:
    def test_stats_prints_strategy_and_latency_tables(self, tmp_path,
                                                      capsys):
        jsonl = tmp_path / "stats.jsonl"
        prom = tmp_path / "stats.prom"
        assert main(["stats", "--device", "fdc", "--rounds", "40",
                     "--json-out", str(jsonl),
                     "--prom-out", str(prom)]) == 0
        out = capsys.readouterr().out
        assert "checked I/O rounds" in out
        for strategy in ("parameter", "indirect_jump",
                         "conditional_jump"):
            assert strategy in out
        assert "checker.round_ns" in out
        assert "blocks executed" in out
        # Both exporters produced parseable, non-empty files.
        lines = jsonl.read_text().splitlines()
        assert lines
        assert all(json.loads(line)["name"] for line in lines)
        assert "# TYPE checker_checks counter" in prom.read_text()

    def test_stats_reference_backend(self, capsys):
        assert main(["stats", "--device", "fdc", "--rounds", "20",
                     "--backend", "reference"]) == 0
        assert "backend reference" in capsys.readouterr().out


class TestSpecDiff:
    def test_diff_and_merge(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        merged = tmp_path / "m.json"
        main(["train", "--device", "sdhci", "--seed", "1",
              "--repeats", "1", "--out", str(a)])
        main(["train", "--device", "sdhci", "--seed", "2",
              "--repeats", "2", "--out", str(b)])
        capsys.readouterr()
        assert main(["spec-diff", "--base", str(a), "--other", str(b),
                     "--out", str(merged)]) == 0
        out = capsys.readouterr().out
        assert "coverage gain" in out
        assert merged.exists()
