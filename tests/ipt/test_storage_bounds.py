"""TraceFile.load bounds checks: every truncation point is typed.

A trace file cut short at any framing boundary must raise
:class:`TruncatedTraceError` carrying the offset where the missing
bytes were expected — never an ``IndexError``/``struct.error`` leaking
out of the parser, and never a silently short packet stream.
"""

import json
import struct

import pytest

from repro.errors import TraceError, TruncatedTraceError
from repro.ipt import TraceFile
from repro.ipt.storage import MAGIC, VERSION, _HEADER_FRAME_END


def _well_formed_blob() -> bytes:
    header = json.dumps({"device": "toy", "code_range": [0, 64],
                         "qemu_version": "9.9.9"}).encode()
    payload = b""
    return (MAGIC + struct.pack("<HI", VERSION, len(header)) + header
            + struct.pack("<I", len(payload)) + payload)


def _write(tmp_path, blob: bytes) -> str:
    path = str(tmp_path / "t.sedt")
    with open(path, "wb") as handle:
        handle.write(blob)
    return path


class TestLoadBounds:
    def test_well_formed_blob_loads(self, tmp_path):
        trace = TraceFile.load(_write(tmp_path, _well_formed_blob()))
        assert trace.device == "toy"
        assert trace.code_range == (0, 64)
        assert trace.packets == []

    def test_truncated_inside_magic(self, tmp_path):
        path = _write(tmp_path, MAGIC[:2])
        with pytest.raises(TraceError):
            TraceFile.load(path)

    def test_truncated_inside_version_framing(self, tmp_path):
        for cut in range(len(MAGIC), _HEADER_FRAME_END):
            path = _write(tmp_path, _well_formed_blob()[:cut])
            with pytest.raises(TruncatedTraceError) as err:
                TraceFile.load(path)
            assert err.value.offset == cut
            assert f"(offset {cut})" in str(err.value)

    def test_truncated_inside_header(self, tmp_path):
        cut = _HEADER_FRAME_END + 3
        path = _write(tmp_path, _well_formed_blob()[:cut])
        with pytest.raises(TruncatedTraceError) as err:
            TraceFile.load(path)
        assert err.value.offset == cut

    def test_truncated_inside_payload_length(self, tmp_path):
        blob = _well_formed_blob()
        cut = len(blob) - 2     # inside the 4-byte payload length
        path = _write(tmp_path, blob[:cut])
        with pytest.raises(TruncatedTraceError) as err:
            TraceFile.load(path)
        assert err.value.offset == cut

    def test_payload_shorter_than_claimed(self, tmp_path):
        header = json.dumps({"device": "toy",
                             "code_range": [0, 64]}).encode()
        blob = (MAGIC + struct.pack("<HI", VERSION, len(header))
                + header + struct.pack("<I", 100) + b"\x01\x02")
        path = _write(tmp_path, blob)
        with pytest.raises(TruncatedTraceError) as err:
            TraceFile.load(path)
        assert err.value.offset == len(blob)
        assert "claims 100 bytes" in str(err.value)

    def test_header_length_overruns_file(self, tmp_path):
        blob = MAGIC + struct.pack("<HI", VERSION, 1 << 20) + b"{}"
        path = _write(tmp_path, blob)
        with pytest.raises(TruncatedTraceError) as err:
            TraceFile.load(path)
        assert err.value.offset == len(blob)

    def test_garbage_header_is_a_trace_error(self, tmp_path):
        header = b"\xff\xfe not json"
        blob = (MAGIC + struct.pack("<HI", VERSION, len(header))
                + header + struct.pack("<I", 0))
        with pytest.raises(TraceError, match="corrupt trace header"):
            TraceFile.load(_write(tmp_path, blob))

    def test_unsupported_version_rejected(self, tmp_path):
        blob = _well_formed_blob()
        blob = MAGIC + struct.pack("<H", VERSION + 9) + blob[6:]
        with pytest.raises(TraceError, match="unsupported"):
            TraceFile.load(_write(tmp_path, blob))

    def test_truncated_error_is_a_trace_error(self):
        err = TruncatedTraceError("cut short", offset=17)
        assert isinstance(err, TraceError)
        assert err.offset == 17
