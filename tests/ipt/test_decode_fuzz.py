"""Property-based differential fuzz of the byte-level decoder.

``tests/ipt/test_decode_bytes.py`` checks equivalence of the single-pass
byte decoder against the two-phase reference (``decode_resilient`` +
``decode_stream``) exhaustively but only for *single* faults — one
flipped byte, one truncation point.  This module drives the same oracle
with Hypothesis over compound fault patterns the exhaustive sweep cannot
reach: stacked corruptions, mid-round PSB resync points, truncated final
rounds, spliced garbage runs, and fully synthetic packet streams
(nested/stray/overflowing rounds) — both paths must agree on every
reconstructed round, every ``TraceGap`` span and reason, and on the
exact ``TraceError`` message when the stream is structurally bad.
"""

from hypothesis import given, settings, strategies as st

from repro.compiler import compile_device
from repro.errors import TraceError
from repro.ipt import Decoder
from repro.ipt.packets import (
    PSB, PSB_PATTERN, Fup, Ovf, Tip, TipPgd, TipPge, Tnt, decode_resilient,
    encode,
)

from tests.toydev import ToyLogic
from tests.ipt.test_decode_bytes import _traced_session

PROGRAM, BASE_TRACE = _traced_session(ops=3)
#: Real block addresses so synthetic rounds actually walk the program,
#: plus a couple of wild ones to hit the hijack/raise paths.
ADDRESSES = tuple(PROGRAM.addr_to_block) + (0xDEAD, 0)
#: Tight block budget keeps pathological synthetic walks cheap; both
#: paths share it, so the runaway TraceError stays symmetric.
MAX_BLOCKS = 5_000


def _assert_equivalent(data):
    try:
        parsed = decode_resilient(data)
        ref_rounds = Decoder(
            PROGRAM, max_blocks=MAX_BLOCKS).decode_stream(parsed.packets)
        ref_err = None
    except TraceError as exc:
        ref_err = str(exc)
    try:
        raw_rounds, raw_result = Decoder(
            PROGRAM, max_blocks=MAX_BLOCKS).decode_bytes(data)
        raw_err = None
    except TraceError as exc:
        raw_err = str(exc)
    assert raw_err == ref_err
    if ref_err is None:
        assert raw_rounds == ref_rounds
        assert raw_result.gaps == parsed.gaps


def _streaming_matches_materialized(data):
    """The generator path yields the same rounds the wrapper collects,
    and its incrementally-filled report converges to the same state."""
    from repro.ipt.packets import DecodeResult

    try:
        ref_rounds, ref_result = Decoder(
            PROGRAM, max_blocks=MAX_BLOCKS).decode_bytes(data)
    except TraceError:
        return          # raise symmetry is covered by _assert_equivalent
    streamed = []
    result = DecodeResult()
    gap_counts = []
    for round_ in Decoder(PROGRAM, max_blocks=MAX_BLOCKS).iter_decode_bytes(
            data, result):
        streamed.append(round_)
        # The report only ever grows while the generator advances.
        gap_counts.append(len(result.gaps))
    assert streamed == ref_rounds
    assert result.gaps == ref_result.gaps
    assert result.packets == ref_result.packets
    assert gap_counts == sorted(gap_counts)


# -- strategies -----------------------------------------------------------

_corruptions = st.lists(
    st.tuples(st.integers(min_value=0, max_value=len(BASE_TRACE) - 1),
              st.integers(min_value=1, max_value=255)),
    min_size=1, max_size=4)

_splices = st.lists(
    st.tuples(st.integers(min_value=0, max_value=len(BASE_TRACE)),
              st.one_of(st.just(PSB_PATTERN),          # mid-round resync
                        st.just(bytes([0x07])),        # on-the-wire OVF
                        st.binary(min_size=1, max_size=12))),
    min_size=0, max_size=3)


@st.composite
def mutated_traces(draw):
    """A real trace with stacked corruptions, splices and a truncation."""
    data = bytearray(BASE_TRACE)
    for pos, mask in draw(_corruptions):
        data[pos] ^= mask
    for pos, blob in sorted(draw(_splices), reverse=True):
        data[pos:pos] = blob
    cut = draw(st.integers(min_value=0, max_value=len(data)))
    if draw(st.booleans()):
        data = data[:cut]        # truncated final round
    return bytes(data)


_addresses = st.sampled_from(ADDRESSES)
_packets = st.one_of(
    st.builds(TipPge, _addresses),
    st.builds(TipPgd, _addresses),
    st.builds(Tip, _addresses),
    st.builds(Fup, _addresses),
    st.just(Ovf()),
    st.just(PSB()),
    st.builds(Tnt, st.lists(st.booleans(), min_size=1,
                            max_size=6).map(tuple)),
)


@st.composite
def synthetic_streams(draw):
    """Arbitrary packet soup: stray packets outside rounds, rounds that
    never close, PSBs and OVFs in the middle of rounds."""
    stream = draw(st.lists(_packets, max_size=30))
    data = encode(stream)
    if draw(st.booleans()):
        cut = draw(st.integers(min_value=0, max_value=len(data)))
        data = data[:cut]
    return data


# -- properties -----------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(mutated_traces())
def test_mutated_real_traces_decode_identically(data):
    _assert_equivalent(data)


@settings(max_examples=200, deadline=None)
@given(synthetic_streams())
def test_synthetic_packet_soup_decodes_identically(data):
    _assert_equivalent(data)


@settings(max_examples=100, deadline=None)
@given(mutated_traces())
def test_streaming_generator_matches_wrapper(data):
    _streaming_matches_materialized(data)


@settings(max_examples=100, deadline=None)
@given(synthetic_streams())
def test_streaming_generator_matches_wrapper_synthetic(data):
    _streaming_matches_materialized(data)
