"""Integration tests: trace execution, decode packets, compare to ground truth."""

import pytest

from repro.compiler import compile_device
from repro.errors import DeviceFault
from repro.interp import Machine, TraceSink
from repro.ipt import Decoder, FilterConfig, IPTTracer, Tip, TipPge, Tnt

from tests.toydev import ToyLogic


class _BlockRecorder(TraceSink):
    """Ground-truth block address log (what the decoder must reproduce)."""

    def __init__(self):
        self.rounds = []
        self._cur = None

    def on_io_enter(self, key, args):
        self._cur = []

    def on_block(self, func, block):
        if self._cur is not None:
            self._cur.append(block.address)

    def on_io_exit(self, key, result):
        self.rounds.append(self._cur)
        self._cur = None


def make_traced_machine(vuln=False):
    overrides = {"VULN_UNCHECKED_PUSH": 1} if vuln else None
    program = compile_device(ToyLogic, const_overrides=overrides)
    machine = Machine(program)
    machine.bind_extern("host_log", lambda m, level: None)
    machine.set_funcptr("irq", "on_irq")
    tracer = machine.add_sink(IPTTracer())
    truth = machine.add_sink(_BlockRecorder())
    return machine, tracer, truth


class TestTraceDecodeRoundTrip:
    def test_simple_write_reconstructed_exactly(self):
        m, tracer, truth = make_traced_machine()
        m.run_entry("pmio:write:1", (7,))
        rounds = Decoder(m.program).decode_stream(tracer.packets)
        assert len(rounds) == 1
        assert rounds[0].block_addresses == truth.rounds[0]

    def test_multi_round_session(self):
        m, tracer, truth = make_traced_machine()
        for byte in (1, 2, 3):
            m.run_entry("pmio:write:1", (byte,))
        m.run_entry("pmio:write:0", (ToyLogic.CONSTS["CMD_SUM"],))
        m.run_entry("pmio:read:1")
        rounds = Decoder(m.program).decode_stream(tracer.packets)
        assert len(rounds) == 5
        for decoded, expected in zip(rounds, truth.rounds):
            assert decoded.block_addresses == expected

    def test_icall_target_recorded(self):
        m, tracer, truth = make_traced_machine()
        m.run_entry("pmio:write:0", (ToyLogic.CONSTS["CMD_SUM"],))
        rounds = Decoder(m.program).decode_stream(tracer.packets)
        icalls = [e for e in rounds[0].indirect_edges if e[2] == "icall"]
        assert len(icalls) == 1
        assert icalls[0][1] == m.program.func_addr["on_irq"]

    def test_loop_iterations_visible_in_tnt(self):
        """Summing N queued bytes produces N+1 loop-branch outcomes."""
        m, tracer, truth = make_traced_machine()
        for byte in (5, 5, 5, 5):
            m.run_entry("pmio:write:1", (byte,))
        tracer.clear()
        m.run_entry("pmio:write:0", (ToyLogic.CONSTS["CMD_SUM"],))
        bits = [b for p in tracer.packets if isinstance(p, Tnt)
                for b in p.bits]
        assert bits.count(True) >= 4

    def test_filter_drops_out_of_range(self):
        m, _, _ = make_traced_machine()
        lo, hi = m.program.code_range()
        narrow = FilterConfig(code_ranges=[(lo, lo + 1)])
        tracer = m.add_sink(IPTTracer(narrow))
        # attach() must not overwrite an explicit filter
        assert tracer.config.code_ranges == [(lo, lo + 1)]
        m.run_entry("pmio:write:1", (1,))
        assert not any(isinstance(p, (Tnt, Tip)) for p in tracer.packets)

    def test_fault_round_marked(self):
        m, tracer, _ = make_traced_machine(vuln=True)
        # Fill well past the fifo to reach the segfault analogue.
        with pytest.raises(DeviceFault):
            for i in range(64):
                try:
                    m.run_entry("pmio:write:1", (i,))
                except DeviceFault:
                    tracer.fault(0xBAD)
                    raise
        rounds = Decoder(m.program).decode_stream(tracer.packets)
        assert rounds[-1].faulted

    def test_decoder_edges_are_consecutive(self):
        m, tracer, _ = make_traced_machine()
        m.run_entry("pmio:write:1", (1,))
        round_ = Decoder(m.program).decode_stream(tracer.packets)[0]
        assert round_.edges() == list(
            zip(round_.block_addresses, round_.block_addresses[1:]))

    def test_pge_carries_entry_block(self):
        m, tracer, _ = make_traced_machine()
        m.run_entry("pmio:read:1")
        pge = next(p for p in tracer.packets if isinstance(p, TipPge))
        entry_func = m.program.entry_for("pmio:read:1")
        assert pge.ip == entry_func.block(entry_func.entry).address
