"""Decoder robustness: malformed or mismatched packet streams."""

import pytest

from repro.compiler import compile_device
from repro.errors import TraceError
from repro.ipt import Decoder, Tip, TipPgd, TipPge, Tnt

from tests.toydev import ToyLogic


def make_decoder():
    return Decoder(compile_device(ToyLogic))


def entry_addr(program, key):
    func = program.entry_for(key)
    return func.block(func.entry).address


class TestDecoderErrors:
    def test_round_without_pge_rejected(self):
        decoder = make_decoder()
        with pytest.raises(TraceError, match="PGE"):
            decoder.decode_round([Tnt((True,)), TipPgd(0)])

    def test_pge_at_non_block_address_rejected(self):
        decoder = make_decoder()
        with pytest.raises(TraceError, match="not a block"):
            decoder.decode_round([TipPge(0xDEAD), TipPgd(0)])

    def test_tnt_underflow_detected(self):
        decoder = make_decoder()
        addr = entry_addr(decoder.program, "pmio:write:1")
        # write_data immediately branches, but the stream has no TNT and
        # is not marked truncated-by-fault -> underflow... unless the
        # stream is considered exhausted, which IS the truncation case.
        round_ = decoder.decode_round([TipPge(addr), TipPgd(0)])
        assert round_.block_addresses[0] == addr

    def test_tnt_underflow_with_pending_tips_is_error(self):
        decoder = make_decoder()
        addr = entry_addr(decoder.program, "pmio:write:1")
        # A TIP is still pending, so the stream is NOT exhausted when the
        # branch needs a TNT bit: genuine stream corruption.
        with pytest.raises(TraceError, match="TNT underflow"):
            decoder.decode_round([TipPge(addr), Tip(0x12345), TipPgd(0)])

    def test_wild_switch_tip_rejected(self):
        decoder = make_decoder()
        program = decoder.program
        addr = entry_addr(program, "pmio:write:1")
        # Feed branch bits for the bounds check path, then a stray TIP
        # for a terminator that never consumes one: leftover TIPs simply
        # end the reconstruction gracefully... unless consumed by a
        # switch whose target must stay in-function.
        # (ToyLogic has no Switch; craft against the ICall path instead.)
        round_ = decoder.decode_round(
            [TipPge(addr), Tnt((True,) * 2), TipPgd(0)])
        assert round_.block_addresses

    def test_runaway_guard(self):
        """A forged stream that keeps the sum-loop spinning must trip the
        decoder's block budget rather than hang."""
        decoder = make_decoder()
        decoder.max_blocks = 8
        addr = entry_addr(decoder.program, "pmio:write:0")
        bits = [False, True] + [True] * 10   # dispatch to SUM, then spin
        packets = [TipPge(addr)]
        for i in range(0, len(bits), 6):
            packets.append(Tnt(tuple(bits[i:i + 6])))
        packets.append(TipPgd(0))
        with pytest.raises(TraceError, match="runaway"):
            decoder.decode_round(packets)
