"""PSB resynchronization and the single-byte corruption property.

The load-bearing decoder guarantee: corruption may cost a *bounded,
reported* region of the stream, but it must never silently change what
was decoded outside that region.  Packets parsed from bytes before the
corruption are exact; packets after the next PSB sync pattern are exact;
everything in between is declared as a :class:`TraceGap`.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import DecodeError
from repro.ipt import (
    Ovf, PSB, PSB_PATTERN, Tip, TipPgd, TipPge, Tnt, decode,
    decode_resilient, encode, resync_offset,
)

# Addresses whose encoded bytes never exceed 0x7f: the PSB pattern
# (which needs 0x82 bytes) then cannot occur by accident, and a single
# byte flip cannot forge one, so resync points are exactly the real PSBs.
ips = st.integers(0, 2 ** 31 - 1).map(lambda v: v & 0x7F7F7F7F)

packet = st.one_of(
    st.just(PSB()),
    ips.map(TipPge),
    ips.map(TipPgd),
    ips.map(Tip),
    st.lists(st.booleans(), min_size=1, max_size=6)
      .map(lambda bits: Tnt(tuple(bits))),
)

streams = st.lists(packet, min_size=1, max_size=40)


def boundaries(packets):
    """Byte offset where each packet's encoding ends."""
    ends, total = [], 0
    for pkt in packets:
        total += len(encode([pkt]))
        ends.append(total)
    return ends


@given(streams, st.data())
@settings(max_examples=150, deadline=None)
def test_single_byte_corruption_never_silently_rewrites_the_stream(
        packets, data):
    clean = encode(packets)
    pos = data.draw(st.integers(0, len(clean) - 1), label="corrupt_at")
    flip = data.draw(st.integers(1, 255), label="xor")
    dirty = bytes(clean[:pos] + bytes([clean[pos] ^ flip])
                  + clean[pos + 1:])
    intact = sum(1 for end in boundaries(packets) if end <= pos)

    # Strict decode: correct prefix, then DecodeError — never garbage.
    try:
        strict = decode(dirty)
    except DecodeError as exc:
        assert exc.offset >= 0
        assert exc.packets[:intact] == packets[:intact]
    else:
        assert strict[:intact] == packets[:intact]

    # Resilient decode never raises, reports every lost byte, and
    # round-trips the suffix beyond the next sync point exactly.
    result = decode_resilient(dirty)
    assert result.packets[:intact] == packets[:intact]
    for gap in result.gaps:
        assert 0 <= gap.start < gap.end <= len(dirty)
    if result.gaps:
        sync = resync_offset(dirty, result.gaps[-1].end - 1)
        if sync >= 0 and sync > pos:
            tail = decode(clean[sync:])
            assert result.packets[-len(tail):] == tail


class TestResilientDecode:
    def test_clean_stream_round_trips_without_gaps(self):
        packets = [PSB(), TipPge(0x10), Tnt((True, False)), Tip(0x20),
                   TipPgd(0)]
        result = decode_resilient(encode(packets))
        assert result.ok
        assert result.packets == packets
        assert result.lost_bytes() == 0

    def test_ovf_packet_round_trips(self):
        packets = [PSB(), Ovf(), PSB(), TipPge(0x10), TipPgd(0)]
        assert decode(encode(packets)) == packets

    def test_corruption_resumes_at_next_psb(self):
        head = [PSB(), TipPge(0x10), TipPgd(0)]
        tail = [PSB(), TipPge(0x30), TipPgd(0)]
        data = bytearray(encode(head + tail))
        data[len(PSB_PATTERN) + 2] = 0xFF      # wreck the PGE address..
        data[len(PSB_PATTERN)] = 0xEE          # ..and its magic byte
        result = decode_resilient(bytes(data))
        assert len(result.gaps) == 1
        gap = result.gaps[0]
        assert gap.start == len(PSB_PATTERN)
        assert gap.end == len(encode(head))    # resynced at the PSB
        assert gap.reason == "corruption"
        # The lost region is bracketed by an explicit OVF marker.
        assert result.packets == [PSB(), Ovf()] + tail

    def test_corruption_with_no_sync_point_reports_tail_gap(self):
        data = bytearray(encode([PSB(), TipPge(0x10), TipPgd(0)]))
        data[len(PSB_PATTERN)] = 0xEE
        result = decode_resilient(bytes(data))
        assert len(result.gaps) == 1
        assert result.gaps[0].end == len(data)
        assert result.lost_bytes() == len(data) - len(PSB_PATTERN)

    def test_strict_decode_error_carries_offset_and_partials(self):
        good = [PSB(), TipPge(0x10)]
        data = encode(good) + b"\xEE"
        try:
            decode(data)
        except DecodeError as exc:
            assert exc.offset == len(encode(good))
            assert exc.packets == good
            assert "offset" in str(exc)
        else:
            raise AssertionError("bad magic byte must raise")

    def test_truncated_address_packet_is_a_truncation_gap(self):
        data = encode([PSB(), TipPge(0x10)])[:-4]
        result = decode_resilient(data)
        assert result.gaps[0].reason == "truncated"
        assert result.packets[0] == PSB()
