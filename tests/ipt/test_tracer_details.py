"""Detailed tests of the IPT tracer's filtering and packetization."""

from repro.compiler import compile_device
from repro.interp import Machine
from repro.ipt import (
    PSB, PSB_PERIOD, FilterConfig, Fup, IPTTracer, TipPgd, TipPge, Tnt,
)

from tests.toydev import ToyLogic


def make_machine():
    program = compile_device(ToyLogic)
    machine = Machine(program)
    machine.bind_extern("host_log", lambda m, level: None)
    machine.set_funcptr("irq", "on_irq")
    return machine


class TestFilterConfig:
    def test_empty_ranges_allow_everything(self):
        assert FilterConfig().allows(0xDEADBEEF)

    def test_ranges_are_half_open(self):
        config = FilterConfig(code_ranges=[(0x100, 0x200)])
        assert config.allows(0x100)
        assert config.allows(0x1FF)
        assert not config.allows(0x200)
        assert not config.allows(0xFF)

    def test_multiple_ranges(self):
        config = FilterConfig(code_ranges=[(0, 10), (100, 110)])
        assert config.allows(5) and config.allows(105)
        assert not config.allows(50)

    def test_attach_fills_default_range_from_program(self):
        machine = make_machine()
        tracer = machine.add_sink(IPTTracer())
        assert tracer.config.code_ranges == [machine.program.code_range()]


class TestPacketization:
    def test_every_round_bracketed_by_pge_pgd(self):
        machine = make_machine()
        tracer = machine.add_sink(IPTTracer())
        for i in range(5):
            machine.run_entry("pmio:write:1", (i,))
        pges = [p for p in tracer.packets if isinstance(p, TipPge)]
        pgds = [p for p in tracer.packets if isinstance(p, TipPgd)]
        assert len(pges) == 5 and len(pgds) == 5

    def test_psb_opens_every_round(self):
        machine = make_machine()
        tracer = machine.add_sink(IPTTracer())
        machine.run_entry("pmio:read:1", ())
        assert isinstance(tracer.packets[0], PSB)

    def test_tnt_bits_capped_per_packet(self):
        machine = make_machine()
        tracer = machine.add_sink(IPTTracer())
        for i in range(6):
            machine.run_entry("pmio:write:1", (i,))
        machine.run_entry("pmio:write:0", (ToyLogic.CONSTS["CMD_SUM"],))
        for packet in tracer.packets:
            if isinstance(packet, Tnt):
                assert 1 <= len(packet.bits) <= 6

    def test_fault_emits_fup_then_pgd(self):
        machine = make_machine()
        tracer = machine.add_sink(IPTTracer())
        machine.run_entry("pmio:write:1", (1,))
        tracer.fault(0xBAD0)
        kinds = [type(p).__name__ for p in tracer.packets[-2:]]
        assert kinds == ["Fup", "TipPgd"]

    def test_clear_resets_buffer(self):
        machine = make_machine()
        tracer = machine.add_sink(IPTTracer())
        machine.run_entry("pmio:read:1", ())
        tracer.clear()
        assert tracer.packet_count() == 0

    def test_long_sessions_insert_periodic_psb(self):
        machine = make_machine()
        tracer = machine.add_sink(IPTTracer())
        for i in range(600):
            machine.run_entry("pmio:read:4" if False else "pmio:read:1",
                              ())
        psb_count = sum(1 for p in tracer.packets if isinstance(p, PSB))
        # At least the per-round PSBs; periodic insertion adds more once
        # the stream passes PSB_PERIOD packets.
        assert psb_count >= 600
        assert tracer.packet_count() > PSB_PERIOD
