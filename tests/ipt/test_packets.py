"""Unit tests for IPT packet encode/decode."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TraceError
from repro.ipt import (
    PSB, Fup, Tip, TipPgd, TipPge, Tnt, decode, encode, iter_rounds,
)


def packet_strategy():
    addresses = st.integers(min_value=0, max_value=2**64 - 1)
    return st.one_of(
        st.just(PSB()),
        st.builds(TipPge, addresses),
        st.builds(TipPgd, addresses),
        st.builds(Tip, addresses),
        st.builds(Fup, addresses),
        st.builds(Tnt, st.lists(st.booleans(), min_size=1, max_size=6)
                  .map(tuple)),
    )


class TestRoundTrip:
    @given(st.lists(packet_strategy(), max_size=50))
    def test_encode_decode_roundtrip(self, packets):
        assert decode(encode(packets)) == packets

    def test_empty_stream(self):
        assert decode(b"") == []

    def test_bad_magic_rejected(self):
        with pytest.raises(TraceError, match="magic"):
            decode(b"\xff")

    def test_truncated_tip_rejected(self):
        data = encode([Tip(0x1234)])
        with pytest.raises(TraceError, match="truncated"):
            decode(data[:-1])

    def test_truncated_tnt_rejected(self):
        data = encode([Tnt((True,))])
        with pytest.raises(TraceError, match="truncated"):
            decode(data[:-1])

    def test_tnt_capacity_enforced(self):
        with pytest.raises(TraceError):
            Tnt(tuple([True] * 7))
        with pytest.raises(TraceError):
            Tnt(())


class TestIterRounds:
    def test_splits_on_pge_pgd(self):
        stream = [
            PSB(), TipPge(1), Tnt((True,)), TipPgd(0),
            PSB(), TipPge(2), Tip(99), TipPgd(0),
        ]
        rounds = list(iter_rounds(stream))
        assert len(rounds) == 2
        assert rounds[0][0] == TipPge(1)
        assert rounds[1][1] == Tip(99)

    def test_partial_trailing_round_kept(self):
        stream = [TipPge(1), Tnt((False,)), Fup(5)]
        rounds = list(iter_rounds(stream))
        assert len(rounds) == 1
        assert rounds[0][-1] == Fup(5)

    def test_packets_outside_rounds_dropped(self):
        stream = [Tnt((True,)), PSB(), TipPge(1), TipPgd(0)]
        rounds = list(iter_rounds(stream))
        assert len(rounds) == 1
        assert rounds[0] == [TipPge(1), TipPgd(0)]
