"""Differential tests for the single-pass byte-level decoder.

``Decoder.decode_bytes`` walks the raw wire bytes with one index cursor
instead of parsing a packet list first.  Its contract is equivalence
with the two-phase reference (``decode_resilient`` + ``decode_stream``)
on every observable: the reconstructed rounds (addresses, indirect
edges, fault/gap flags) and the trace gaps — on clean streams, under
byte corruption at every offset, and under truncation at every length.
"""

import pytest

from repro.compiler import compile_device
from repro.ipt import Decoder, IPTTracer
from repro.ipt.packets import Fup, Ovf, decode_resilient

from tests.toydev import ToyLogic


def _traced_session(ops=8):
    """A real multi-round trace from the toy device, as raw bytes."""
    program = compile_device(ToyLogic)
    from repro.interp import Machine

    machine = Machine(program)
    machine.bind_extern("host_log", lambda m, level: None)
    machine.set_funcptr("irq", "on_irq")
    tracer = machine.add_sink(IPTTracer())
    for byte in range(ops):
        machine.run_entry("pmio:write:1", (byte,))
    machine.run_entry("pmio:write:0", (ToyLogic.CONSTS["CMD_SUM"],))
    machine.run_entry("pmio:read:1")
    return program, tracer.raw()


def _reference(program, data):
    """The two-phase pipeline the byte-level path must match."""
    parsed = decode_resilient(data)
    return Decoder(program).decode_stream(parsed.packets), parsed


def _assert_equivalent(program, data):
    """Rounds and gaps match; a raise (corrupt ip that still parses,
    e.g. a flipped PGE address) must match message-for-message."""
    from repro.errors import TraceError

    try:
        ref_rounds, ref_parsed = _reference(program, data)
        ref_err = None
    except TraceError as exc:
        ref_err = str(exc)
    try:
        raw_rounds, raw_result = Decoder(program).decode_bytes(data)
        raw_err = None
    except TraceError as exc:
        raw_err = str(exc)
    assert raw_err == ref_err
    if ref_err is None:
        assert raw_rounds == ref_rounds
        assert raw_result.gaps == ref_parsed.gaps


class TestCleanStream:
    def test_rounds_identical_to_reference(self):
        program, data = _traced_session()
        _assert_equivalent(program, data)

    def test_no_anomaly_packets_on_clean_stream(self):
        program, data = _traced_session()
        _, result = Decoder(program).decode_bytes(data)
        assert result.ok
        assert result.packets == []

    def test_memoryview_input_accepted(self):
        program, data = _traced_session()
        rounds, _ = Decoder(program).decode_bytes(data)
        assert len(rounds) == 10


class TestCorruption:
    def test_single_byte_flip_at_every_offset(self):
        """Exhaustive: whatever one flipped byte does to the reference
        path (shrugged off, gap, resync), the raw path does too."""
        program, data = _traced_session(ops=3)
        for pos in range(len(data)):
            dirty = bytearray(data)
            dirty[pos] ^= 0xFF
            _assert_equivalent(program, bytes(dirty))

    def test_truncation_at_every_length(self):
        program, data = _traced_session(ops=3)
        for cut in range(len(data)):
            _assert_equivalent(program, data[:cut])

    def test_garbage_prefix_resyncs(self):
        program, data = _traced_session(ops=2)
        _assert_equivalent(program, b"\xff\xfe\xfd" + data)

    def test_gap_round_flagged(self):
        program, data = _traced_session(ops=4)
        # Corrupt a byte in the middle; at least the struck round must
        # carry trace_gap (unless the flip landed between rounds).
        dirty = bytearray(data)
        dirty[len(data) // 2] = 0xEE
        rounds, result = Decoder(program).decode_bytes(bytes(dirty))
        assert result.gaps
        assert any(isinstance(p, Ovf) for p in result.packets)


class TestFaultAnomalies:
    def test_fup_reported_and_round_faulted(self):
        program, data = _traced_session(ops=2)
        from repro.ipt.packets import TipPge, TipPgd, encode

        # Entry address of the first real block, then a synthetic fault.
        entry = next(iter(program.addr_to_block))
        tail = encode([TipPge(entry), Fup(entry), TipPgd(entry)])
        blob = data + tail
        _assert_equivalent(program, blob)
        rounds, result = Decoder(program).decode_bytes(blob)
        assert rounds[-1].faulted
        assert any(isinstance(p, Fup) for p in result.packets)


class TestTelemetry:
    def test_round_counters_match_stream_path(self):
        from repro.telemetry import Recorder

        program, data = _traced_session(ops=3)
        rec_raw, rec_ref = Recorder(), Recorder()
        Decoder(program, recorder=rec_raw).decode_bytes(data)
        parsed = decode_resilient(data)
        Decoder(program, recorder=rec_ref).decode_stream(parsed.packets)
        assert (rec_raw.snapshot().counters
                == rec_ref.snapshot().counters)
