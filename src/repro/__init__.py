"""SEDSpec reproduction: securing emulated devices by enforcing execution
specifications (Chen et al., DSN 2024).

Public API tour:

* ``repro.core``     — the three-phase pipeline facade (train -> deploy)
* ``repro.devices``  — the five emulated QEMU devices with seeded CVEs
* ``repro.vm``       — the guest VM substrate and guest drivers
* ``repro.spec``     — execution specifications (ES-CFG)
* ``repro.checker``  — the ES-Checker runtime proxy and check strategies
* ``repro.exploits`` — proof-of-concept I/O streams per CVE
* ``repro.eval``     — harnesses regenerating every table/figure
"""

__version__ = "1.0.0"
