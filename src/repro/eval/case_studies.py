"""Per-CVE case-study narratives (Section VII-B.2's prose, regenerated).

For each exploit: run it unprotected (what breaks), run it protected
(what fires, where), and assemble the analysis the paper gives in text —
which variable was abused, which strategy caught it, at which point of
the execution specification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.checker import Anomaly, Mode, Strategy
from repro.core import deploy
from repro.errors import DeviceFault
from repro.exploits import EXPLOITS, Exploit, run_exploit
from repro.workloads.profiles import PROFILES
from repro.workloads import train_device_spec

#: The paper's stated root-cause variable per CVE (our models use the
#: same names), used to annotate the narratives.
ROOT_CAUSES: Dict[str, str] = {
    "CVE-2015-3456": "data_pos incremented without reset; fifo overrun",
    "CVE-2020-14364": "setup_len stored unvalidated; data_buf indexed by "
                      "attacker-steered setup_index",
    "CVE-2015-7504": "temporary FCS cursor writes 4 bytes past buffer, "
                     "onto irq",
    "CVE-2015-7512": "xmit_pos > 4092 lets the copy overrun buffer",
    "CVE-2016-7909": "zero-length rx ring makes the descriptor scan spin",
    "CVE-2021-3409": "blksize changed mid-transfer; blksize - data_count "
                     "underflows",
    "CVE-2015-5158": "vendor-group CDB length parsed as huge",
    "CVE-2016-4439": "DMA SELECT length unchecked against TI_BUFSZ",
    "CVE-2016-1568": "completion callback not re-initialized on abort "
                     "(fires outside any checked I/O round)",
}


@dataclass
class CaseStudy:
    cve: str
    device: str
    qemu_version: str
    root_cause: str
    #: what the attack does to an unprotected device
    unprotected_impact: str
    #: anomalies the protected deployment raised (empty for the miss)
    anomalies: List[Anomaly] = field(default_factory=list)
    detected: bool = False
    device_protected: bool = False

    def narrative(self) -> str:
        lines = [f"{self.cve} ({self.device}, QEMU {self.qemu_version})",
                 f"  root cause: {self.root_cause}",
                 f"  unprotected: {self.unprotected_impact}"]
        if self.anomalies:
            lines.append("  with SEDSpec:")
            for anomaly in self.anomalies:
                lines.append(f"    - {anomaly}")
        else:
            lines.append("  with SEDSpec: no anomaly raised "
                         "(the documented miss)")
        return "\n".join(lines)


def study(exploit: Exploit,
          spec_cache: Optional[Dict] = None) -> CaseStudy:
    """Run one CVE's before/after pair and assemble its narrative."""
    prof = PROFILES[exploit.device]

    # -- unprotected -------------------------------------------------------
    vm, device = prof.make_vm(exploit.qemu_version)
    outcome = run_exploit(vm, device, exploit)
    if outcome.device_faulted:
        impact = f"device crashed ({outcome.fault_kind})"
    else:
        impact = "device state silently corrupted / misbehaving"

    # -- protected ------------------------------------------------------------
    cache = spec_cache if spec_cache is not None else {}
    key = (exploit.device, exploit.qemu_version)
    if key not in cache:
        cache[key] = train_device_spec(
            exploit.device, qemu_version=exploit.qemu_version).spec
    vm, device = prof.make_vm(exploit.qemu_version)
    attachment = deploy(vm, device, cache[key], mode=Mode.PROTECTION)
    protected_outcome = run_exploit(vm, device, exploit)

    anomalies: List[Anomaly] = []
    for report in attachment.halts + attachment.warnings:
        anomalies.extend(report.anomalies)
    return CaseStudy(
        cve=exploit.cve, device=exploit.device,
        qemu_version=exploit.qemu_version,
        root_cause=ROOT_CAUSES.get(exploit.cve, ""),
        unprotected_impact=impact,
        anomalies=anomalies,
        detected=protected_outcome.detected,
        device_protected=not device.halted)


def all_case_studies(spec_cache: Optional[Dict] = None) -> List[CaseStudy]:
    cache = spec_cache if spec_cache is not None else {}
    return [study(exploit, cache) for exploit in EXPLOITS]


def render_case_studies(studies: List[CaseStudy]) -> str:
    return "\n\n".join(s.narrative() for s in studies)
