"""SEDSpec vs Nioh vs VMDec on the Nioh case-study CVEs (Section VII-B.2).

Reproduces the paper's comparison narrative: Nioh (manual FSM) detects
all five of its CVEs including CVE-2016-1568; SEDSpec detects four and —
by construction — misses the UAF; VMDec's I/O-statistics view catches the
exploits whose port traffic looks unusual and misses those that look like
ordinary data streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines import IOSequenceRecorder, VMDecDetector, attach_nioh
from repro.errors import DeviceFault
from repro.eval.report import render_table
from repro.eval.security import defended
from repro.exploits import exploit_by_cve
from repro.workloads.profiles import PROFILES

NIOH_CVES = ("CVE-2015-3456", "CVE-2015-5158", "CVE-2016-4439",
             "CVE-2016-7909", "CVE-2016-1568")


@dataclass
class ComparisonRow:
    cve: str
    sedspec: bool
    nioh: bool
    vmdec: bool


@dataclass
class Comparison:
    rows: List[ComparisonRow] = field(default_factory=list)

    def render(self) -> str:
        def mark(b: bool) -> str:
            return "detected" if b else "missed"
        return render_table(
            ("CVE", "SEDSpec", "Nioh", "VMDec"),
            [(r.cve, mark(r.sedspec), mark(r.nioh), mark(r.vmdec))
             for r in self.rows])

    def matches_paper(self) -> bool:
        """SEDSpec detects all but CVE-2016-1568; Nioh detects all."""
        for row in self.rows:
            if row.cve == "CVE-2016-1568":
                if row.sedspec or not row.nioh:
                    return False
            elif not row.sedspec or not row.nioh:
                return False
        return True


def _nioh_detects(cve: str) -> bool:
    exploit = exploit_by_cve(cve)
    prof = PROFILES[exploit.device]
    vm, device = prof.make_vm(exploit.qemu_version)
    monitor = attach_nioh(device)
    try:
        exploit.run(vm, device)
    except DeviceFault:
        pass
    return monitor.detected


def _train_vmdec(device_name: str, qemu_version: str,
                 sequences: int = 30, seed: int = 17) -> VMDecDetector:
    prof = PROFILES[device_name]
    detector = VMDecDetector()
    rng = random.Random(seed)
    corpus: List[List[str]] = []
    for _ in range(sequences):
        vm, device = prof.make_vm(qemu_version)
        recorder = IOSequenceRecorder(vm)
        driver = prof.make_driver(vm)
        prof.prepare(vm, driver)
        for _ in range(rng.randint(3, 9)):
            rng.choice(prof.common_ops)(vm, driver, rng)
        corpus.append(list(recorder.sequence))
    detector.train_sequences(corpus)
    return detector


def _vmdec_detects(cve: str) -> bool:
    exploit = exploit_by_cve(cve)
    detector = _train_vmdec(exploit.device, exploit.qemu_version)
    prof = PROFILES[exploit.device]
    vm, device = prof.make_vm(exploit.qemu_version)
    recorder = IOSequenceRecorder(vm)
    try:
        exploit.run(vm, device)
    except DeviceFault:
        pass
    return detector.is_anomalous(list(recorder.sequence))


def compare_baselines(cves=NIOH_CVES,
                      spec_cache: Optional[Dict] = None) -> Comparison:
    comparison = Comparison()
    for cve in cves:
        exploit = exploit_by_cve(cve)
        sed = defended(exploit, cache=spec_cache or {})
        comparison.rows.append(ComparisonRow(
            cve=cve,
            sedspec=sed.halted,
            nioh=_nioh_detects(cve),
            vmdec=_vmdec_detects(cve)))
    return comparison
