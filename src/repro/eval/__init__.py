"""Evaluation harnesses: one per table/figure of the paper, plus ablations."""

from repro.eval.report import pct, render_table
from repro.eval.table1 import Table1, generate_table1
from repro.eval.security import (
    CveResult, DefenseResult, defended, strategy_matrix, undefended,
)
from repro.eval.table3 import Table3, generate_table3
from repro.eval.figures import (
    NetworkFigure, StorageFigure, generate_network_figure,
    generate_storage_figures,
)
from repro.eval.baseline_compare import (
    NIOH_CVES, Comparison, ComparisonRow, compare_baselines,
)
from repro.eval.case_studies import (
    CaseStudy, all_case_studies, render_case_studies, study,
)
from repro.eval.ablation import (
    ReductionAblation, StrategyCostRow, TrainingVolumeRow,
    reduction_ablation, render_reduction, strategy_cost_ablation,
    training_volume_ablation,
)

__all__ = [
    "pct", "render_table",
    "Table1", "generate_table1",
    "CveResult", "DefenseResult", "defended", "strategy_matrix",
    "undefended",
    "Table3", "generate_table3",
    "NetworkFigure", "StorageFigure", "generate_network_figure",
    "generate_storage_figures",
    "NIOH_CVES", "Comparison", "ComparisonRow", "compare_baselines",
    "CaseStudy", "all_case_studies", "render_case_studies", "study",
    "ReductionAblation", "StrategyCostRow", "TrainingVolumeRow",
    "reduction_ablation", "render_reduction", "strategy_cost_ablation",
    "training_volume_ablation",
]
