"""Security evaluation harnesses (Section VII-B).

* :func:`strategy_matrix` — the check-strategy ✓-matrix of Table III: for
  each CVE, deploy the spec with *one* strategy enabled at a time (as the
  paper does) and record which strategies detect the exploitation.
* :func:`defended` — protection-mode end-to-end: does the deployment stop
  the exploit before the device is compromised?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.checker import Mode, Strategy
from repro.core import deploy
from repro.exploits.pocs import (
    EXPLOITS, AttackOutcome, Exploit, run_exploit,
)
from repro.spec import ExecutionSpec
from repro.workloads.profiles import PROFILES, train_device_spec


@dataclass
class CveResult:
    """One row of Table III's strategy columns."""

    cve: str
    device: str
    qemu_version: str
    detected_by: FrozenSet[Strategy] = frozenset()
    expected: FrozenSet[Strategy] = frozenset()
    expected_miss: bool = False

    @property
    def matches_paper(self) -> bool:
        if self.expected_miss:
            return not self.detected_by
        return self.expected <= self.detected_by

    def row(self) -> Tuple[str, str, str, str, str]:
        def mark(strategy: Strategy) -> str:
            return "Y" if strategy in self.detected_by else ""
        return (self.device, self.cve, self.qemu_version,
                mark(Strategy.PARAMETER) + "/"
                + mark(Strategy.INDIRECT_JUMP) + "/"
                + mark(Strategy.CONDITIONAL_JUMP),
                "miss(expected)" if self.expected_miss
                and not self.detected_by else "")


def _spec_for(exploit: Exploit,
              cache: Dict[Tuple[str, str], ExecutionSpec]) -> ExecutionSpec:
    key = (exploit.device, exploit.qemu_version)
    if key not in cache:
        cache[key] = train_device_spec(
            exploit.device, qemu_version=exploit.qemu_version).spec
    return cache[key]


def strategy_matrix(exploits: Tuple[Exploit, ...] = EXPLOITS,
                    cache: Optional[Dict] = None) -> List[CveResult]:
    """Run every exploit under each single-strategy deployment."""
    cache = cache if cache is not None else {}
    results: List[CveResult] = []
    for exploit in exploits:
        spec = _spec_for(exploit, cache)
        detected: set = set()
        for strategy in Strategy:
            prof = PROFILES[exploit.device]
            vm, device = prof.make_vm(exploit.qemu_version)
            deploy(vm, device, spec, mode=Mode.PROTECTION,
                   strategies=frozenset({strategy}))
            outcome = run_exploit(vm, device, exploit)
            if outcome.detected and strategy in outcome.anomaly_strategies:
                detected.add(strategy)
        results.append(CveResult(
            cve=exploit.cve, device=exploit.device,
            qemu_version=exploit.qemu_version,
            detected_by=frozenset(detected),
            expected=exploit.expected_strategies,
            expected_miss=exploit.expected_miss))
    return results


@dataclass
class DefenseResult:
    cve: str
    halted: bool
    device_survived: bool
    outcome: AttackOutcome


def defended(exploit: Exploit,
             cache: Optional[Dict] = None) -> DefenseResult:
    """Protection mode, all strategies: is the device still standing?"""
    cache = cache if cache is not None else {}
    spec = _spec_for(exploit, cache)
    prof = PROFILES[exploit.device]
    vm, device = prof.make_vm(exploit.qemu_version)
    deploy(vm, device, spec, mode=Mode.PROTECTION)
    outcome = run_exploit(vm, device, exploit)
    return DefenseResult(
        cve=exploit.cve, halted=outcome.detected,
        device_survived=not device.halted, outcome=outcome)


def undefended(exploit: Exploit) -> AttackOutcome:
    """Baseline: the same exploit with no SEDSpec attached."""
    prof = PROFILES[exploit.device]
    vm, device = prof.make_vm(exploit.qemu_version)
    return run_exploit(vm, device, exploit)
