"""Plain-text rendering helpers shared by the evaluation harnesses."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width ASCII table, the benches' printable output."""
    materialized: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i])
                          for i, cell in enumerate(row))
    lines = [fmt(headers), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def pct(value: float, digits: int = 2) -> str:
    return f"{100 * value:.{digits}f}%"
