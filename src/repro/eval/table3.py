"""Table III: the main SEDSpec result — CVE detection matrix, false
positive rate, and effective coverage per device.

Assembled from three sub-experiments:

* the per-strategy detection matrix (``repro.eval.security``),
* the false-positive experiment (``repro.workloads.interaction``),
* the fuzz-approximated effective coverage (``repro.workloads.fuzz``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.checker import Strategy
from repro.eval.report import pct, render_table
from repro.eval.security import CveResult, strategy_matrix
from repro.spec import ExecutionSpec
from repro.workloads import (
    FalsePositiveTable, false_positive_experiment,
    measure_effective_coverage, train_device_spec,
)

DEVICES = ("fdc", "ehci", "pcnet", "sdhci", "scsi")


@dataclass
class Table3:
    cve_rows: List[CveResult]
    fpr: Dict[str, float]
    fp_counts: Dict[str, Dict[int, int]]
    coverage: Dict[str, float]

    def render(self) -> str:
        rows = []
        for r in self.cve_rows:
            rows.append((
                r.device, r.cve, r.qemu_version,
                "Y" if Strategy.PARAMETER in r.detected_by else "",
                "Y" if Strategy.INDIRECT_JUMP in r.detected_by else "",
                "Y" if Strategy.CONDITIONAL_JUMP in r.detected_by else "",
                pct(self.fpr.get(r.device, 0.0)),
                f"{100 * self.coverage.get(r.device, 0.0):.1f}%",
                "(expected miss)" if r.expected_miss else ""))
        return render_table(
            ("Device", "CVE", "QEMU", "Param", "IndJmp", "CondJmp",
             "FPR", "Coverage", "Note"), rows)

    @property
    def all_match_paper(self) -> bool:
        return all(r.matches_paper for r in self.cve_rows)


def generate_table3(
        specs: Optional[Dict[str, ExecutionSpec]] = None,
        fp_hours: Tuple[int, ...] = (10, 20, 30),
        fuzz_iterations: int = 400,
        cases_per_hour: int = 12) -> Table3:
    """Run the three sub-experiments and assemble the table.

    *specs* (patched-build specs for the FPR/coverage runs) are trained
    on demand when not supplied.
    """
    if specs is None:
        specs = {name: train_device_spec(name).spec for name in DEVICES}

    cve_rows = strategy_matrix()
    fp_table: FalsePositiveTable = false_positive_experiment(
        specs, hours_list=fp_hours, cases_per_hour=cases_per_hour)
    coverage = {
        name: measure_effective_coverage(
            name, iterations=fuzz_iterations).ratio
        for name in specs}
    return Table3(cve_rows=cve_rows, fpr=fp_table.fpr,
                  fp_counts=fp_table.per_device, coverage=coverage)
