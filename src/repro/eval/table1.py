"""Table I: selection of device state parameters, per rule/category.

The paper's Table I illustrates the two selection rules with example
variables; this harness regenerates it from the actual analysis of every
device, grouping selected parameters by category.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis import ParamSelection, select_parameters
from repro.devices import create_device
from repro.eval.report import render_table


@dataclass
class Table1:
    selections: Dict[str, ParamSelection]

    def rows(self) -> List[Tuple[str, str, str]]:
        out: List[Tuple[str, str, str]] = []
        for device, selection in sorted(self.selections.items()):
            for category, names in selection.table_rows():
                out.append((device, category, names))
        return out

    def render(self) -> str:
        return render_table(("Device", "Variable category", "Selected"),
                            self.rows())


def generate_table1(device_names: Tuple[str, ...] = (
        "fdc", "ehci", "pcnet", "sdhci", "scsi")) -> Table1:
    selections = {}
    for name in device_names:
        device = create_device(name)
        selections[name] = select_parameters(device.program)
    return Table1(selections)
