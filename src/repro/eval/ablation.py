"""Ablation studies for the design choices DESIGN.md calls out.

Not in the paper's evaluation, but they quantify the choices the paper
motivates qualitatively:

* **Control-flow reduction** (Section V-C): ES-CFG size and checker work
  with and without reduction.
* **Per-strategy cost**: checker cycles with each strategy enabled alone.
* **Training volume**: how spec coverage and false positives respond to
  the number of training passes (the paper's remedy discussion: more
  test cases -> fewer FPs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.checker import ALL_STRATEGIES, Mode, Strategy
from repro.core import build_execution_spec, deploy
from repro.eval.report import render_table
from repro.spec import ExecutionSpec
from repro.workloads import (
    InteractionMode, run_interaction, train_device_spec,
)
from repro.workloads.profiles import PROFILES


@dataclass
class ReductionAblation:
    device: str
    blocks_reduced: int
    blocks_unreduced: int
    checker_cycles_reduced: int
    checker_cycles_unreduced: int

    @property
    def block_savings(self) -> float:
        if self.blocks_unreduced == 0:
            return 0.0
        return 1 - self.blocks_reduced / self.blocks_unreduced

    @property
    def cycle_savings(self) -> float:
        if self.checker_cycles_unreduced == 0:
            return 0.0
        return 1 - self.checker_cycles_reduced \
            / self.checker_cycles_unreduced


def _checker_cycles(device_name: str, spec: ExecutionSpec,
                    ops: int = 30, seed: int = 3) -> int:
    prof = PROFILES[device_name]
    vm, device = prof.make_vm()
    deploy(vm, device, spec, mode=Mode.ENHANCEMENT)
    driver = prof.make_driver(vm)
    prof.prepare(vm, driver)
    rng = random.Random(seed)
    for _ in range(ops):
        rng.choice(prof.common_ops)(vm, driver, rng)
    return vm.stats.checker_cycles


def reduction_ablation(device_name: str, ops: int = 30
                       ) -> ReductionAblation:
    prof = PROFILES[device_name]

    def workload(vm, device):
        rng = random.Random(7)
        for _ in range(2):
            prof.training(vm, device, rng)

    reduced = build_execution_spec(
        lambda: prof.make_vm(), workload, reduce_cfg=True).spec
    unreduced = build_execution_spec(
        lambda: prof.make_vm(), workload, reduce_cfg=False).spec
    return ReductionAblation(
        device=device_name,
        blocks_reduced=reduced.block_count(),
        blocks_unreduced=unreduced.block_count(),
        checker_cycles_reduced=_checker_cycles(device_name, reduced,
                                               ops=ops),
        checker_cycles_unreduced=_checker_cycles(device_name, unreduced,
                                                 ops=ops))


@dataclass
class StrategyCostRow:
    strategy: str
    checker_cycles: int


def strategy_cost_ablation(device_name: str, ops: int = 30
                           ) -> List[StrategyCostRow]:
    """Checker cost with each strategy alone, plus all and none."""
    spec = train_device_spec(device_name).spec
    rows: List[StrategyCostRow] = []
    configs = [("all", ALL_STRATEGIES),
               ("none", frozenset())]
    configs += [(s.value, frozenset({s})) for s in Strategy]
    for label, strategies in configs:
        prof = PROFILES[device_name]
        vm, device = prof.make_vm()
        deploy(vm, device, spec, mode=Mode.ENHANCEMENT,
               strategies=strategies)
        driver = prof.make_driver(vm)
        prof.prepare(vm, driver)
        rng = random.Random(3)
        for _ in range(ops):
            rng.choice(prof.common_ops)(vm, driver, rng)
        rows.append(StrategyCostRow(label, vm.stats.checker_cycles))
    return rows


@dataclass
class TrainingVolumeRow:
    repeats: int
    spec_blocks: int
    false_positives: int
    cases: int

    @property
    def fpr(self) -> float:
        return self.false_positives / self.cases if self.cases else 0.0


def training_volume_ablation(device_name: str,
                             repeat_choices: Tuple[int, ...] = (1, 2, 4),
                             hours: int = 5,
                             rare_case_rate: float = 0.05
                             ) -> List[TrainingVolumeRow]:
    """More training -> bigger spec -> fewer rare-command FPs.

    The rare rate is cranked up so the effect is measurable in a short
    run; with more repeats the training corpus includes progressively
    more of the rare-op set (we fold rare ops into training here).
    """
    prof = PROFILES[device_name]
    rows: List[TrainingVolumeRow] = []
    for repeats in repeat_choices:
        def workload(vm, device, repeats=repeats):
            rng = random.Random(7)
            for i in range(repeats):
                prof.training(vm, device, rng)
                # Extended corpora start covering rarer commands.
                if i >= 2:
                    driver = prof.make_driver(vm)
                    for rare in prof.rare_ops:
                        rare(vm, driver, rng)

        spec = build_execution_spec(
            lambda: prof.make_vm(), workload).spec
        report = run_interaction(
            spec, device_name, InteractionMode.RANDOM, hours=hours,
            rare_case_rate=rare_case_rate)
        rows.append(TrainingVolumeRow(
            repeats=repeats, spec_blocks=spec.block_count(),
            false_positives=report.false_positives,
            cases=report.total_cases))
    return rows


def render_reduction(rows: List[ReductionAblation]) -> str:
    return render_table(
        ("Device", "Blocks (red.)", "Blocks (unred.)",
         "Checker cycles (red.)", "Checker cycles (unred.)",
         "Cycle savings"),
        [(r.device, r.blocks_reduced, r.blocks_unreduced,
          r.checker_cycles_reduced, r.checker_cycles_unreduced,
          f"{100 * r.cycle_savings:.1f}%") for r in rows])
