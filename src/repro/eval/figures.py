"""Figures 3-5: the performance evaluation (Section VII-C).

* Figure 3 — normalized storage *throughput* per record size (read and
  write), SEDSpec vs baseline, for EHCI/SDHCI/SCSI/FDC.  The paper's
  claim: less than 5% loss.
* Figure 4 — normalized storage *latency*, same sweep: less than 5%.
* Figure 5 — PCNet bandwidth for TCP/UDP x up/down (5.7-7.3% loss) and
  ping latency (+9.2%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.checker import Mode
from repro.core import deploy
from repro.eval.report import render_table
from repro.spec import ExecutionSpec
from repro.workloads import (
    DEFAULT_RECORD_SIZES, IozoneResult, Measurement, PROFILES, iozone,
    iperf, normalized, overhead_percent, ping, train_device_spec,
)

STORAGE_DEVICES = ("fdc", "ehci", "sdhci", "scsi")

#: The FDC's 1.44/2.88MB media caps its sweep (as the paper notes).
FDC_MAX_RECORD = 8192


def _measured_pair(device_name: str, spec: ExecutionSpec,
                   record_sizes: Tuple[int, ...],
                   records_per_size: int) -> Tuple[IozoneResult,
                                                   IozoneResult]:
    prof = PROFILES[device_name]
    vm, _ = prof.make_vm()
    driver = prof.make_driver(vm)
    prof.prepare(vm, driver)
    base = iozone(device_name, vm, driver, record_sizes=record_sizes,
                  records_per_size=records_per_size)

    vm2, device2 = prof.make_vm()
    deploy(vm2, device2, spec, mode=Mode.ENHANCEMENT)
    driver2 = prof.make_driver(vm2)
    prof.prepare(vm2, driver2)
    treated = iozone(device_name, vm2, driver2,
                     record_sizes=record_sizes,
                     records_per_size=records_per_size)
    return base, treated


@dataclass
class StorageFigure:
    """Data behind Figure 3 (metric="throughput") or 4 ("latency")."""

    metric: str
    #: device -> record size -> (normalized write, normalized read)
    series: Dict[str, Dict[int, Tuple[float, float]]] = field(
        default_factory=dict)

    def max_overhead_percent(self) -> float:
        worst = 0.0
        for sizes in self.series.values():
            for write_n, read_n in sizes.values():
                for value in (write_n, read_n):
                    over = (1 - value if self.metric == "throughput"
                            else value - 1)
                    worst = max(worst, 100 * over)
        return worst

    def render(self) -> str:
        rows = []
        for device in sorted(self.series):
            for size, (write_n, read_n) in sorted(
                    self.series[device].items()):
                rows.append((device, size, f"{write_n:.3f}",
                             f"{read_n:.3f}"))
        return render_table(
            ("Device", "Record", f"write ({self.metric}, norm.)",
             f"read ({self.metric}, norm.)"), rows)


def generate_storage_figures(
        specs: Optional[Dict[str, ExecutionSpec]] = None,
        record_sizes: Tuple[int, ...] = DEFAULT_RECORD_SIZES,
        records_per_size: int = 2
        ) -> Tuple[StorageFigure, StorageFigure]:
    """Figures 3 and 4 in one sweep (shared measurements)."""
    if specs is None:
        specs = {name: train_device_spec(name).spec
                 for name in STORAGE_DEVICES}
    fig3 = StorageFigure("throughput")
    fig4 = StorageFigure("latency")
    for device_name in STORAGE_DEVICES:
        sizes = tuple(s for s in record_sizes
                      if device_name != "fdc" or s <= FDC_MAX_RECORD)
        base, treated = _measured_pair(
            device_name, specs[device_name], sizes, records_per_size)
        fig3.series[device_name] = {}
        fig4.series[device_name] = {}
        for size in sizes:
            fig3.series[device_name][size] = (
                normalized(base.write[size], treated.write[size],
                           "throughput"),
                normalized(base.read[size], treated.read[size],
                           "throughput"))
            fig4.series[device_name][size] = (
                normalized(base.write[size], treated.write[size],
                           "latency"),
                normalized(base.read[size], treated.read[size],
                           "latency"))
    return fig3, fig4


@dataclass
class NetworkFigure:
    """Data behind Figure 5: PCNet bandwidth bars + ping latency."""

    #: (proto, direction) -> bandwidth overhead percent
    bandwidth_overhead: Dict[Tuple[str, str], float] = field(
        default_factory=dict)
    ping_overhead_percent: float = 0.0
    ping_base: Optional[Measurement] = None
    ping_treated: Optional[Measurement] = None

    def render(self) -> str:
        rows = [(f"{proto.upper()} {direction}stream",
                 f"{self.bandwidth_overhead[(proto, direction)]:.1f}%")
                for proto in ("tcp", "udp")
                for direction in ("up", "down")]
        rows.append(("ping latency", f"{self.ping_overhead_percent:.1f}%"))
        return render_table(("PCNet benchmark", "SEDSpec overhead"), rows)

    def max_bandwidth_overhead(self) -> float:
        return max(self.bandwidth_overhead.values())


def generate_network_figure(
        spec: Optional[ExecutionSpec] = None,
        frames: int = 24, ping_count: int = 20) -> NetworkFigure:
    if spec is None:
        spec = train_device_spec("pcnet").spec
    prof = PROFILES["pcnet"]

    vm, _ = prof.make_vm()
    driver = prof.make_driver(vm)
    prof.prepare(vm, driver)
    base_bw = iperf(vm, driver, frames=frames)
    base_ping = ping(vm, driver, count=ping_count)

    vm2, device2 = prof.make_vm()
    deploy(vm2, device2, spec, mode=Mode.ENHANCEMENT)
    driver2 = prof.make_driver(vm2)
    prof.prepare(vm2, driver2)
    treated_bw = iperf(vm2, driver2, frames=frames)
    treated_ping = ping(vm2, driver2, count=ping_count)

    figure = NetworkFigure(ping_base=base_ping, ping_treated=treated_ping)
    for key in base_bw.bandwidth:
        figure.bandwidth_overhead[key] = overhead_percent(
            base_bw.bandwidth[key], treated_bw.bandwidth[key],
            "bandwidth")
    figure.ping_overhead_percent = overhead_percent(
        base_ping, treated_ping, "latency")
    return figure
