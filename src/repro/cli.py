"""Command-line interface to the SEDSpec reproduction.

::

    python -m repro train   --device fdc --out fdc.spec.json
    python -m repro inspect --spec fdc.spec.json [--dot out.dot]
    python -m repro exploit --cve CVE-2015-3456 [--protect]
    python -m repro exploit --family oob-write [--device virtio-net]
    python -m repro corpus  [--seed 11] [--out CORPUS.json]
    python -m repro tables  [--which 1|3]
    python -m repro devices
    python -m repro serve   --workers 2 --tenants 4 [--inject CVE-...]
    python -m repro serve   --gateway --shards 2 --tenants 1000 \
                            --arrival bursty [--rebalance-at 0.5]
    python -m repro bench-fleet [--workers 1,2,4,8] [--gateway] \
                            [--out BENCH_fleet.json]
    python -m repro stats   --device fdc --rounds 200 [--chaos-seed 101]
    python -m repro bench-telemetry [--quick] [--max-overhead-pct 5]
    python -m repro chaos   --seeds 101,102 [--policy fail-closed] [--out R.json]
    python -m repro spec generations --cache DIR --device fdc
    python -m repro spec promote --cache DIR --device fdc --candidate c.spec.json
    python -m repro spec reload  --cache DIR --device fdc [--digest PREFIX]
    python -m repro spec smoke   [--quick] [--out SMOKE_lifecycle.json]
    python -m repro policy show   [--file policy.json] [--tenant T]
    python -m repro policy apply  --file policy.json --cache DIR
    python -m repro policy reload --file policy.json [--tenants 4]
    python -m repro migrate [--backends reference,compiled,bytecode] \
                            [--out MIGRATION.json]
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_devices(args: argparse.Namespace) -> int:
    from repro.devices import create_device, device_names
    from repro.eval.report import render_table

    rows = []
    for name in device_names():
        device = create_device(name, qemu_version=args.qemu_version)
        cves = ", ".join(g.cve for g in device.CVES) or "-"
        active = ", ".join(device.active_cves()) or "-"
        rows.append((name, device.LOGIC.STRUCT,
                     device.program.block_count(), cves, active))
    print(render_table(
        ("Device", "Struct", "Blocks", "Seeded CVEs",
         f"Active @ {args.qemu_version}"), rows))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.spec import spec_to_json
    from repro.workloads import train_device_spec

    artifacts = train_device_spec(args.device,
                                  qemu_version=args.qemu_version,
                                  seed=args.seed,
                                  repeats=args.repeats,
                                  backend=args.backend)
    print(artifacts.spec.describe())
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(spec_to_json(artifacts.spec))
        print(f"wrote {args.out}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.spec import spec_from_json
    from repro.spec.dot import spec_to_dot

    with open(args.spec) as handle:
        spec = spec_from_json(handle.read())
    print(spec.describe())
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(spec_to_dot(spec, function=args.function))
        print(f"wrote {args.dot}")
    return 0


def _cmd_exploit(args: argparse.Namespace) -> int:
    from repro.checker import Mode
    from repro.core import deploy
    from repro.exploits import exploit_by_cve, run_exploit
    from repro.workloads import train_device_spec
    from repro.workloads.profiles import PROFILES

    if bool(args.cve) == bool(args.family):
        print("exploit: need exactly one of --cve / --family",
              file=sys.stderr)
        return 2
    if args.family:
        return _run_family(args)
    if args.cve.startswith("SYN:"):
        from repro.exploits.corpus import resolve_attack
        exploit = resolve_attack(args.cve)
    else:
        exploit = exploit_by_cve(args.cve)
    prof = PROFILES[exploit.device]
    vm, device = prof.make_vm(exploit.qemu_version,
                              backend=args.backend)
    if args.protect:
        spec = train_device_spec(
            exploit.device, qemu_version=exploit.qemu_version,
            backend=args.backend).spec
        deploy(vm, device, spec, mode=Mode.PROTECTION,
               backend=args.backend)
    outcome = run_exploit(vm, device, exploit)
    print(f"{exploit.cve} against {exploit.device} "
          f"(qemu {exploit.qemu_version}): {exploit.description}")
    print(f"  protected: {args.protect}")
    print(f"  detected:  {outcome.detected} "
          f"{sorted(s.value for s in outcome.anomaly_strategies)}")
    print(f"  device fault: {outcome.device_faulted} "
          f"({outcome.fault_kind or '-'})")
    return 0 if (outcome.detected == args.protect
                 or exploit.expected_miss) else 1


def _run_family(args: argparse.Namespace) -> int:
    """``exploit --family``: replay every corpus PoC of one vulnerability
    family (optionally narrowed to one device), protected."""
    from repro.exploits.corpus import (
        FAMILIES, generate_corpus, poc_detected, run_corpus_poc,
    )

    if args.family not in FAMILIES:
        print(f"unknown family {args.family!r} "
              f"(choose from {', '.join(FAMILIES)})", file=sys.stderr)
        return 2
    devices = [args.device] if args.device else None
    pocs = generate_corpus(seed=args.seed, devices=devices,
                           families=[args.family])
    failures = 0
    for poc in pocs:
        outcome = run_corpus_poc(poc, backend=args.backend)
        ok = poc_detected(poc, outcome)
        failures += not ok
        strategies = sorted(s.value for s in outcome.anomaly_strategies)
        print(f"{poc.poc_id}: detected={outcome.detected} "
              f"{strategies} {'ok' if ok else 'MISS'}")
    print(f"{len(pocs) - failures}/{len(pocs)} detected "
          f"with the labeled strategy")
    return 1 if failures else 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    """Generate the synthetic corpus and certify it: every PoC detected
    on every backend with its ground-truth strategy, zero benign false
    positives on multi-device mixes."""
    import json

    from repro.exploits.corpus import (
        benign_mix_false_positives, corpus_summary, generate_corpus,
        poc_detected, sweep_corpus,
    )

    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    mixes = args.benign_mix or ["virtio-net+virtio-blk"]
    pocs = generate_corpus(seed=args.seed)
    summary = corpus_summary(pocs)
    print(f"corpus: {summary['total']} PoCs at seed {args.seed} "
          f"({len(summary['by_device'])} devices, "
          f"{len(summary['by_family'])} families)")
    missed = []
    for poc, backend, outcome in sweep_corpus(pocs, backends):
        if not poc_detected(poc, outcome):
            missed.append((poc.poc_id, backend))
            print(f"  MISS {poc.poc_id} on {backend}: "
                  f"detected={outcome.detected}")
    print(f"detection matrix: "
          f"{len(pocs) * len(backends) - len(missed)}/"
          f"{len(pocs) * len(backends)} cells detected")
    false_positives = {}
    for mix in mixes:
        for backend in backends:
            false_positives[(mix, backend)] = benign_mix_false_positives(
                device=mix, ops=args.benign_ops, backend=backend)
    flagged = sum(false_positives.values())
    print(f"benign mixes: {flagged} false positive(s) over "
          f"{len(false_positives)} (mix, backend) runs")
    if args.out:
        payload = {
            "seed": args.seed,
            "backends": backends,
            "summary": summary,
            "missed": [f"{p}@{b}" for p, b in missed],
            "benign_false_positives": {
                f"{mix}@{backend}": count
                for (mix, backend), count in false_positives.items()},
        }
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    return 1 if (missed or flagged) else 0


def _cmd_spec_diff(args: argparse.Namespace) -> int:
    from repro.spec import coverage_gain, merge_specs, spec_from_json

    with open(args.base) as handle:
        base = spec_from_json(handle.read())
    with open(args.other) as handle:
        other = spec_from_json(handle.read())
    merged = merge_specs(base, other)
    new_blocks = merged.visited_blocks - base.visited_blocks
    new_cmds = set(merged.cmd_access.table) - set(base.cmd_access.table)
    print(f"device: {base.device}")
    print(f"base: {base.block_count()} blocks, "
          f"{len(base.cmd_access.table)} commands")
    print(f"other adds: {len(new_blocks)} blocks, "
          f"{len(new_cmds)} commands "
          f"({sorted(hex(c) for c in new_cmds)})")
    print(f"coverage gain: {coverage_gain(base, merged):.1%}")
    if args.out:
        from repro.spec import spec_to_json
        with open(args.out, "w") as handle:
            handle.write(spec_to_json(merged))
        print(f"wrote merged spec to {args.out}")
    return 0


def _serve_gateway(args: argparse.Namespace) -> int:
    """``repro serve --gateway``: open-loop arrivals through the
    admission gateway into a sharded fleet.  Exit code certifies the
    conservation + security invariants, so CI can smoke it directly."""
    from repro.checker import Mode
    from repro.eval.report import render_table
    from repro.fleet.loadgen import plan_tenants
    from repro.gateway import (
        AdmissionConfig, ArrivalSpec, Gateway, GatewayConfig,
        PolicyReloadAction, RebalanceAction,
    )
    from repro.telemetry.stats import gateway_rows

    policies = None
    if args.policy:
        policies = _load_policies(args.policy)
        if policies is None:
            return 2
    devices = args.devices.split(",")
    plans = plan_tenants(devices, args.tenants, inject_cves=args.inject,
                         inject_fraction=args.inject_fraction,
                         qemu_version=args.qemu_version, seed=args.seed)
    arrival = ArrivalSpec(pattern=args.arrival, rate_per_sec=args.rate,
                          horizon_s=args.horizon_ms * 1e-3)
    cache_dir = args.spec_cache
    owned_tmp = None
    if cache_dir is None and not args.inline:
        import tempfile
        owned_tmp = tempfile.TemporaryDirectory(prefix="sedspec-gw-")
        cache_dir = owned_tmp.name
    config = GatewayConfig(
        shards=args.shards, workers_per_shard=args.workers,
        coalesce_max=args.coalesce_max, slo_ms=args.slo_ms,
        seed=args.seed,
        admission=AdmissionConfig(quota_rate_per_sec=args.quota_rate,
                                  quota_burst=args.quota_burst,
                                  queue_cap=args.queue_cap),
        arrival=arrival, inline=args.inline, backend=args.backend,
        batch_rounds=args.batch_rounds,
        mode=Mode(args.mode), cache_dir=cache_dir, policies=policies)
    rebalances = []
    if args.rebalance_at is not None:
        rebalances.append(RebalanceAction(
            at_cycle=int(args.rebalance_at * arrival.horizon_cycles),
            add=(args.shards,)))
    policy_reloads = []
    if args.policy_reload_at is not None:
        reload_file = args.policy_reload or args.policy
        if reload_file is None:
            print("serve: --policy-reload-at needs --policy-reload "
                  "(or --policy) naming the document to hot-load",
                  file=sys.stderr)
            return 2
        reloaded = _load_policies(reload_file)
        if reloaded is None:
            return 2
        policy_reloads.append(PolicyReloadAction(
            at_cycle=int(args.policy_reload_at * arrival.horizon_cycles),
            policies=reloaded))
    try:
        result = Gateway(config).run(plans, rebalances=rebalances,
                                     policy_reloads=policy_reloads)
    finally:
        if owned_tmp is not None:
            owned_tmp.cleanup()

    # At four-digit tenant counts a full per-tenant table is noise:
    # show the tenants where something happened, summarize the rest.
    interesting = [s for s in result.tenants.values()
                   if s.attacked or s.quarantined or s.detections
                   or s.rejected]
    rows = [(s.tenant, s.device, "yes" if s.attacked else "-",
             f"{s.completed}/{s.submitted}", s.rejected, s.detections,
             s.quarantine_reason if s.quarantined else "-")
            for s in interesting[:args.show_tenants]]
    if rows:
        print(render_table(("Tenant", "Device", "Attacked", "Served",
                            "Rejected", "Detections", "Quarantine"),
                           rows))
        hidden = len(interesting) - len(rows)
        if hidden > 0:
            print(f"(+{hidden} more flagged tenants)")
    print(f"({len(result.tenants) - len(interesting)} benign tenants "
          f"served without incident)")
    print()
    print(result.stats.describe())
    print(result.fleet.describe())
    print()
    print(render_table(("Gateway counter", "Total"),
                       gateway_rows(result.telemetry)))
    if result.moves:
        print(f"rebalance moved {len(result.moves)} tenants "
              f"across shards")

    failures = result.safety_failures()
    if result.fleet.lost:
        failures.append(f"{result.fleet.lost} requests lost")
    if result.fleet.detections < args.min_detections:
        failures.append(f"expected >= {args.min_detections} detections, "
                        f"saw {result.fleet.detections}")
    if args.rebalance_at is not None and not result.moves:
        failures.append("rebalance requested but no tenant moved")
    if (args.policy_reload_at is not None
            and result.stats.policy_reload_events == 0):
        failures.append("policy reload requested but never fired")
    for failure in failures:
        print(f"ERROR: {failure}")
    return 1 if failures else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.checker import Mode
    from repro.eval.report import render_table
    from repro.fleet import (
        FleetConfig, FleetSupervisor, build_load,
    )

    if args.gateway:
        return _serve_gateway(args)
    policies = None
    if args.policy:
        policies = _load_policies(args.policy)
        if policies is None:
            return 2
    devices = args.devices.split(",")
    plans, schedule = build_load(
        devices, args.tenants, args.batches, args.ops,
        inject_cves=args.inject, inject_fraction=args.inject_fraction,
        qemu_version=args.qemu_version, seed=args.seed)
    cache_dir = args.spec_cache
    owned_tmp = None
    if cache_dir is None and not args.inline:
        import tempfile
        owned_tmp = tempfile.TemporaryDirectory(prefix="sedspec-serve-")
        cache_dir = owned_tmp.name
    config = FleetConfig(workers=args.workers, inline=args.inline,
                         queue_depth=args.queue_depth,
                         mode=Mode(args.mode), backend=args.backend,
                         batch_rounds=args.batch_rounds,
                         cache_dir=cache_dir, policies=policies)
    try:
        result = FleetSupervisor(config).run(schedule, plans)
    finally:
        if owned_tmp is not None:
            owned_tmp.cleanup()
    rows = [(s.tenant, s.device, "yes" if s.attacked else "-",
             f"{s.completed}/{s.submitted}", s.rejected, s.detections,
             s.quarantine_reason if s.quarantined else "-")
            for s in result.tenants.values()]
    print(render_table(("Tenant", "Device", "Attacked", "Served",
                        "Rejected", "Detections", "Quarantine"), rows))
    print(result.stats.describe())
    if result.stats.lost:
        print(f"ERROR: {result.stats.lost} requests lost")
        return 1
    if result.stats.detections < args.min_detections:
        print(f"ERROR: expected >= {args.min_detections} detections, "
              f"saw {result.stats.detections}")
        return 1
    return 0


def _cmd_bench_fleet(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.fleet import run_fleet_bench

    worker_counts = tuple(int(w) for w in args.workers.split(","))
    kwargs = dict(worker_counts=worker_counts,
                  devices=tuple(args.devices.split(",")),
                  tenants=args.tenants, batches=args.batches,
                  ops=args.ops, backend=args.backend,
                  inline=args.inline, cache_dir=args.spec_cache,
                  seed=args.seed)
    if args.quick:
        kwargs.update(batches=2, ops=3)
    if args.migration_provenance:
        with open(args.migration_provenance) as handle:
            kwargs["migration"] = json_mod.load(handle)
    payload = run_fleet_bench(**kwargs)
    if args.gateway:
        from repro.gateway.bench import run_gateway_bench
        payload["gateway"] = run_gateway_bench(
            backend=args.backend, cache_dir=args.spec_cache,
            seed=args.seed, quick=args.quick)
    with open(args.out, "w") as handle:
        json_mod.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for workers, point in sorted(payload["scaling"].items(),
                                 key=lambda kv: int(kv[0])):
        print(f"{workers} worker(s): "
              f"{point['rounds_per_sec']:,.0f} rounds/s (simulated), "
              f"p95 {point['p95_request_ms']:.3f} ms, "
              f"wall {point['wall_s']:.2f}s")
    sec = payload["security"]
    print(f"security: attacked={sec['attacked']} "
          f"quarantined={sec['quarantined']} "
          f"detections={sec['detections']} lost={sec['lost']}")
    ok = sec["ok"]
    if "migration" in payload:
        mig = payload["migration"]
        print(f"migration provenance: "
              f"{mig.get('total_migrations', 0)} migrations, "
              f"all_certified={mig.get('all_certified')}")
        ok = ok and bool(mig.get("all_certified"))
    if args.gateway:
        gw = payload["gateway"]
        for pattern, points in sorted(gw["scaling"].items()):
            for tenants, point in sorted(points.items(),
                                         key=lambda kv: int(kv[0])):
                print(f"gateway[{pattern}] {tenants} tenants / "
                      f"{point['shards']} shards: "
                      f"p50 {point['p50_latency_ms']:.3f} ms, "
                      f"p99 {point['p99_latency_ms']:.3f} ms, "
                      f"SLO violations {point['slo_violations']} "
                      f"({100 * point['slo_violation_rate']:.1f}%), "
                      f"wall {point['wall_s']:.2f}s")
        reb = gw["rebalance"]
        print(f"gateway rebalance: moved={reb['moved_tenants']} "
              f"lost={reb['lost']} duplicates={reb['duplicates']} "
              f"detections={reb['detections']}/{reb['attacked']} "
              f"ok={reb['ok']}")
        ok = ok and gw["ok"]
    print(f"wrote {args.out}")
    return 0 if ok else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.checker import Mode
    from repro.eval.report import render_table
    from repro.telemetry import prometheus_text, write_jsonl
    from repro.telemetry.stats import (
        degradation_rows, interp_summary, latency_rows, policy_rows,
        run_stats, strategy_rows,
    )

    run = run_stats(device=args.device, rounds=args.rounds,
                    backend=args.backend, qemu_version=args.qemu_version,
                    mode=Mode(args.mode), seed=args.seed,
                    chaos_seed=args.chaos_seed)
    print(f"device {run.device} ({args.qemu_version}), "
          f"backend {run.backend}, mode {args.mode}: "
          f"{run.rounds} checked I/O rounds")
    print()
    print(render_table(("Strategy", "Checks", "Violations"),
                       strategy_rows(run.snapshot)))
    print()
    print(render_table(
        ("Histogram", "Count", "Mean", "p50", "p95", "p99", "Max"),
        latency_rows(run.snapshot)))
    interp = interp_summary(run.snapshot)
    print()
    print(f"interp: {interp['io_rounds']} I/O rounds, "
          f"{interp['blocks']} blocks executed, "
          f"{interp['faults']} faults")
    print()
    print(render_table(("Degradation / faults", "Total"),
                       degradation_rows(run.snapshot)))
    print()
    print(render_table(("Policy lifecycle", "Total"),
                       policy_rows(run.snapshot)))
    if args.json_out:
        lines = write_jsonl(run.snapshot, args.json_out)
        print(f"wrote {lines} metric lines to {args.json_out}")
    if args.prom_out:
        with open(args.prom_out, "w") as handle:
            handle.write(prometheus_text(run.snapshot))
        print(f"wrote {args.prom_out}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import (
        CampaignConfig, decoder_recovery_experiment, run_campaign,
        write_report,
    )

    config = CampaignConfig(
        seeds=tuple(int(s) for s in args.seeds.split(",")),
        policy=args.policy, max_retries=args.max_retries,
        devices=tuple(args.devices.split(",")),
        tenants=args.tenants, batches_per_tenant=args.batches,
        ops_per_batch=args.ops, workers=args.workers,
        inline=not args.pool)
    report = run_campaign(config)
    print(report.describe())
    if args.recovery_runs:
        recovery = decoder_recovery_experiment(runs=args.recovery_runs)
        print(f"decoder recovery: "
              f"{int(recovery['recovered'])}/{int(recovery['runs'])} "
              f"({recovery['recovery_rate']:.1%}; "
              f"{int(recovery['tail_loss'])} tail losses)")
    if args.out:
        write_report(report, args.out)
        print(f"wrote {args.out}")
    if not report.passed:
        print("ERROR: safety invariant violated (see outcomes above); "
              "replay with the same --seeds to reproduce")
        return 1
    return 0


def _cmd_bench_telemetry(args: argparse.Namespace) -> int:
    import datetime
    import json as json_mod
    import platform

    from repro.telemetry.bench import measure_overhead

    kwargs = dict(device=args.device, backend=args.backend,
                  qemu_version=args.qemu_version, seed=args.seed)
    if args.quick:
        kwargs.update(passes=5, reps=1, ops=10)
    payload = measure_overhead(**kwargs)
    payload["generated"] = datetime.datetime.now(
        datetime.timezone.utc).isoformat(timespec="seconds")
    payload["machine"] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    with open(args.out, "w") as handle:
        json_mod.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    off = payload["telemetry_off"]
    record = payload["record_path_ns_per_round"]
    print(f"{payload['device']} [{payload['backend']}] "
          f"{payload['io_rounds_per_pass']} guarded rounds/pass: "
          f"round {off['ns_per_round']:.0f} ns, telemetry "
          f"{payload['overhead_ns_per_round']:.0f} ns/round "
          f"(checker {record['checker']:.0f} + "
          f"machine {record['machine']:.0f}) "
          f"= {payload['overhead_pct']:.2f}% overhead")
    print(f"wrote {args.out}")
    if (args.max_overhead_pct is not None
            and payload["overhead_pct"] > args.max_overhead_pct):
        print(f"ERROR: telemetry overhead {payload['overhead_pct']:.2f}% "
              f"exceeds the {args.max_overhead_pct:.2f}% budget")
        return 1
    return 0


def _cmd_spec_generations(args: argparse.Namespace) -> int:
    from repro.eval.report import render_table
    from repro.fleet import SpecRegistry

    registry = SpecRegistry(cache_dir=args.cache)
    chain = registry.generations(args.device, args.qemu_version)
    if not chain:
        print(f"no generation chain for ({args.device}, "
              f"{args.qemu_version}) in {args.cache}")
        return 1
    active = registry.active_generation(args.device, args.qemu_version)
    rows = [(g.generation,
             "*" if active and g.digest == active.digest else "",
             g.digest[:16], g.block_count, g.edge_count,
             f"{g.coverage_gain:.4f}", g.edge_gain, g.merged_from,
             len(g.parents), g.provenance or "-") for g in chain]
    print(render_table(
        ("Gen", "Act", "Digest", "Blocks", "Edges", "CovGain",
         "EdgeGain", "Merged", "Parents", "Provenance"), rows))
    return 0


def _cmd_spec_promote(args: argparse.Namespace) -> int:
    from repro.fleet import SpecRegistry
    from repro.spec import PromotionConfig, promote, spec_from_json

    registry = SpecRegistry(cache_dir=args.cache)
    candidates = []
    for path in args.candidate:
        with open(path) as handle:
            candidates.append(spec_from_json(handle.read()))
    config = PromotionConfig(
        min_coverage_gain=args.min_coverage_gain,
        min_edge_gain=args.min_edge_gain,
        benign_rounds=args.benign_rounds, backend=args.backend,
        cves=tuple(args.cve), activate=not args.no_activate)
    report = promote(registry, args.device, args.qemu_version,
                     candidates, config,
                     provenance=args.provenance or "cli:promote")
    print(report.describe())
    return 0 if report.promoted else 1


def _cmd_spec_reload(args: argparse.Namespace) -> int:
    from repro.fleet import (
        FleetConfig, FleetSupervisor, SpecRegistry, build_load,
    )

    registry = SpecRegistry(cache_dir=args.cache)
    chain = registry.generations(args.device, args.qemu_version)
    if not chain:
        print(f"no generation chain for ({args.device}, "
              f"{args.qemu_version}); promote something first")
        return 1
    if args.digest:
        gen = next((g for g in chain
                    if g.digest.startswith(args.digest)), None)
        if gen is None:
            print(f"no generation matches digest {args.digest!r}")
            return 1
    else:
        gen = chain[-1]
    plans, schedule = build_load(
        [args.device], args.tenants, args.batches, args.ops,
        qemu_version=args.qemu_version, seed=args.seed)
    at_seq = (args.batches // 2) * len(plans)
    supervisor = FleetSupervisor(
        FleetConfig(workers=args.workers, inline=args.inline,
                    cache_dir=args.cache), registry)
    supervisor.reload_spec(args.device, gen.digest, at_seq=at_seq)
    result = supervisor.run(schedule, plans)
    print(f"hot reload to gen {gen.generation} ({gen.digest[:16]}) "
          f"at seq {at_seq}:")
    print(result.stats.describe())
    stats = result.stats
    ok = (stats.lost == 0 and stats.duplicate_results == 0
          and stats.spec_reloads == len(plans)
          and not result.quarantined_tenants())
    if not ok:
        print("ERROR: reload run lost traffic or quarantined a benign "
              "tenant; generation NOT activated")
        return 1
    if args.activate:
        registry.activate(args.device, args.qemu_version, gen.digest)
        print(f"activated gen {gen.generation} as the default")
    return 0


def _cmd_spec_smoke(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.fleet import run_lifecycle_smoke

    kwargs = dict(devices=tuple(args.devices.split(",")),
                  tenants=args.tenants, attacked=args.attacked,
                  batches=args.batches, ops=args.ops,
                  workers=args.workers, backend=args.backend,
                  cache_dir=args.cache, seed=args.seed)
    if args.quick:
        kwargs.update(devices=("fdc", "sdhci"), tenants=3, attacked=2)
    payload = run_lifecycle_smoke(**kwargs)
    for device, p in payload["promotions"].items():
        verdict = (f"gen {p['generation']}" if p["promoted"]
                   else f"REFUSED: {p['reason']}")
        print(f"{device}: {verdict} cov_gain={p['coverage_gain']} "
              f"edge_gain={p['edge_gain']} "
              f"removed_fps={p['removed_false_positives']} "
              f"cves={p['cve_results']}")
    fleet = payload["fleet"]
    print(f"fleet: {fleet['tenants']} tenants, reload at seq "
          f"{fleet['reload_at_seq']}, spec_reloads="
          f"{fleet['spec_reloads']}, detections="
          f"{fleet['detections']}/{fleet['expected_detections']}, "
          f"lost={fleet['lost']}, parity_ok={fleet['parity']['ok']}")
    print(f"ok: {payload['ok']}")
    if args.out:
        with open(args.out, "w") as handle:
            json_mod.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0 if payload["ok"] else 1


#: Per-policy knob columns shown by ``repro policy show``.
_POLICY_FIELDS = ("policy_id", "degradation", "max_retries", "rate_quota",
                  "respawn_budget", "throttle_after", "circuit_cooldown",
                  "restore_after", "quarantine_after")


def _load_policies(path: str):
    """Load + validate a policy file, or exit-worthy None on error."""
    from repro.errors import PolicyError
    from repro.policy.model import load_policy_file

    try:
        return load_policy_file(path)
    except PolicyError as exc:
        print(f"policy: {exc}", file=sys.stderr)
        return None


def _cmd_policy_show(args: argparse.Namespace) -> int:
    from repro.eval.report import render_table
    from repro.policy.model import DEFAULT_POLICY, PolicySet

    if args.file:
        policies = _load_policies(args.file)
        if policies is None:
            return 2
    else:
        policies = PolicySet(default=DEFAULT_POLICY)
    print(f"policy set {policies.digest[:16]}: default + "
          f"{len(policies.tenants)} tenant override(s)")
    scopes = [("(default)", policies.default)]
    scopes += sorted(policies.tenants.items())
    for tenant in args.tenant or ():
        scopes.append((f"{tenant} (resolved)", policies.resolve(tenant)))
    rows = [(scope,) + tuple(getattr(pol, f) for f in _POLICY_FIELDS)
            for scope, pol in scopes]
    print(render_table(("Scope",) + _POLICY_FIELDS, rows))
    return 0


def _cmd_policy_apply(args: argparse.Namespace) -> int:
    from repro.policy.model import PolicyStore

    policies = _load_policies(args.file)
    if policies is None:
        return 1
    store = PolicyStore(cache_dir=args.cache)
    digest = store.put(policies)
    print(f"validated and stored policy set {digest[:16]} "
          f"at {store.path(digest)}")
    return 0


def _cmd_policy_reload(args: argparse.Namespace) -> int:
    """Mid-schedule fleet-wide policy hot reload (the policy twin of
    ``spec reload``): malformed input fails before the fleet starts;
    a well-formed one swaps per tenant at the halfway batch boundary
    with nothing lost or duplicated."""
    from repro.fleet import FleetConfig, FleetSupervisor, build_load

    policies = _load_policies(args.file)
    if policies is None:
        return 1
    cache_dir = args.spec_cache
    owned_tmp = None
    if cache_dir is None and not args.inline:
        import tempfile
        owned_tmp = tempfile.TemporaryDirectory(prefix="sedspec-pol-")
        cache_dir = owned_tmp.name
    plans, schedule = build_load(
        args.devices.split(","), args.tenants, args.batches, args.ops,
        seed=args.seed)
    at_seq = (args.batches // 2) * len(plans)
    supervisor = FleetSupervisor(
        FleetConfig(workers=args.workers, inline=args.inline,
                    cache_dir=cache_dir))
    digest = supervisor.reload_policy(policies, at_seq=at_seq)
    try:
        result = supervisor.run(schedule, plans)
    finally:
        if owned_tmp is not None:
            owned_tmp.cleanup()
    print(f"hot policy reload to {digest[:16]} at seq {at_seq}:")
    print(result.stats.describe())
    stats = result.stats
    ok = (stats.lost == 0 and stats.duplicate_results == 0
          and stats.policy_reloads == len(plans)
          and not result.quarantined_tenants())
    if not ok:
        print("ERROR: policy reload lost traffic, duplicated results, "
              "quarantined a benign tenant, or missed a tenant swap "
              f"(policy_reloads={stats.policy_reloads}, "
              f"expected {len(plans)})")
        return 1
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    """Live-migration certification across checker backends: the same
    load served with and without migrating every tenant mid-stream must
    produce byte-identical per-tenant verdicts with op conservation."""
    import json as json_mod

    from repro.fleet import (
        migration_provenance, run_migration_certification,
    )

    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    certs = []
    for backend in backends:
        cert = run_migration_certification(
            devices=tuple(args.devices.split(",")), tenants=args.tenants,
            batches_per_tenant=args.batches, ops_per_batch=args.ops,
            backend=backend, inject_fraction=args.inject_fraction,
            migrate_after_batch=args.migrate_after,
            workers=args.workers, seed=args.seed)
        print(cert.describe())
        certs.append(cert)
    provenance = migration_provenance(certs)
    print(f"total migrations: {provenance['total_migrations']} across "
          f"{len(backends)} backend(s); "
          f"all_certified={provenance['all_certified']}")
    if args.out:
        with open(args.out, "w") as handle:
            json_mod.dump(provenance, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0 if provenance["all_certified"] else 1


def _cmd_tables(args: argparse.Namespace) -> int:
    if args.which in ("1", "all"):
        from repro.eval import generate_table1
        print(generate_table1().render())
    if args.which in ("3", "all"):
        from repro.checker import Strategy
        from repro.eval import render_table, strategy_matrix
        rows = strategy_matrix()
        print(render_table(
            ("Device", "CVE", "Param", "IndJmp", "CondJmp", "match"),
            [(r.device, r.cve,
              "Y" if Strategy.PARAMETER in r.detected_by else "",
              "Y" if Strategy.INDIRECT_JUMP in r.detected_by else "",
              "Y" if Strategy.CONDITIONAL_JUMP in r.detected_by else "",
              "ok" if r.matches_paper else "MISMATCH") for r in rows]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SEDSpec reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("devices", help="list devices and seeded CVEs")
    p.add_argument("--qemu-version", default="99.0.0")
    p.set_defaults(fn=_cmd_devices)

    p = sub.add_parser("train", help="train an execution specification")
    p.add_argument("--device", required=True)
    p.add_argument("--qemu-version", default="99.0.0")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--repeats", type=int, default=2)
    p.add_argument("--backend", choices=("compiled", "reference", "bytecode"),
                   default="compiled",
                   help="execution backend for the training device")
    p.add_argument("--out", help="write the spec JSON here")
    p.set_defaults(fn=_cmd_train)

    p = sub.add_parser("inspect", help="describe / visualize a spec")
    p.add_argument("--spec", required=True)
    p.add_argument("--dot", help="write a Graphviz rendering here")
    p.add_argument("--function", help="restrict the DOT to one function")
    p.set_defaults(fn=_cmd_inspect)

    p = sub.add_parser("exploit", help="run a CVE proof-of-concept or a "
                                       "corpus vulnerability family")
    p.add_argument("--cve", help="a seeded CVE or a SYN: corpus PoC id")
    p.add_argument("--family",
                   help="replay every corpus PoC of this family "
                        "(oob-write, reentrancy, descriptor-loop, "
                        "state-confusion) instead of one CVE")
    p.add_argument("--device",
                   help="with --family: restrict to one device")
    p.add_argument("--seed", type=int, default=11,
                   help="with --family: corpus generation seed")
    p.add_argument("--protect", action="store_true",
                   help="deploy SEDSpec (protection mode) first")
    p.add_argument("--backend", choices=("compiled", "reference", "bytecode"),
                   default="compiled",
                   help="execution backend for device and checker")
    p.set_defaults(fn=_cmd_exploit)

    p = sub.add_parser(
        "corpus", help="generate the synthetic vulnerability corpus and "
                       "certify detection / zero benign false positives")
    p.add_argument("--seed", type=int, default=11,
                   help="corpus generation seed")
    p.add_argument("--backends", default="reference,compiled,bytecode",
                   help="comma-separated checker backends to sweep")
    p.add_argument("--benign-mix", action="append", default=None,
                   metavar="DEVICES",
                   help="composite device name to drive benign "
                        "(repeatable; default virtio-net+virtio-blk)")
    p.add_argument("--benign-ops", type=int, default=40,
                   help="benign requests per mix")
    p.add_argument("--out", help="write a JSON certification report here")
    p.set_defaults(fn=_cmd_corpus)

    p = sub.add_parser(
        "serve", help="run the fleet enforcement service over a "
                      "generated workload")
    p.add_argument("--devices", default="fdc,sdhci",
                   help="comma-separated device mix")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--tenants", type=int, default=4)
    p.add_argument("--batches", type=int, default=4,
                   help="batches per tenant")
    p.add_argument("--ops", type=int, default=4,
                   help="requests per batch")
    p.add_argument("--inject", action="append", default=[],
                   metavar="CVE", help="attack one tenant with this CVE "
                                       "PoC (repeatable)")
    p.add_argument("--inject-fraction", type=float, default=0.0,
                   help="fraction of tenants to attack with CVE PoCs")
    p.add_argument("--qemu-version", default="99.0.0")
    p.add_argument("--mode", choices=("protection", "enhancement"),
                   default="protection")
    p.add_argument("--backend", choices=("compiled", "reference", "bytecode"),
                   default="compiled")
    p.add_argument("--batch-rounds", type=int, default=0,
                   help="credit-batch size: strict-key I/O rounds "
                        "execute on credit and are vetted in one "
                        "batched checker invocation per flush "
                        "(0 = per-round vets)")
    p.add_argument("--inline", action="store_true",
                   help="in-process worker pool (no multiprocessing)")
    p.add_argument("--queue-depth", type=int, default=4,
                   help="outstanding batches per worker (backpressure)")
    p.add_argument("--spec-cache", default=None,
                   help="spec cache dir (required for multiprocessing "
                        "unless --inline)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--min-detections", type=int, default=0,
                   help="exit nonzero unless at least this many "
                        "detections were recorded")
    p.add_argument("--policy", default=None, metavar="FILE",
                   help="tenant-policy document (JSON) the fleet boots "
                        "under; malformed input is rejected before any "
                        "worker starts")
    gw = p.add_argument_group(
        "gateway", "open-loop admission gateway over sharded "
                   "supervisors (--workers becomes lanes per shard; "
                   "--batches/--ops are ignored, arrivals drive load)")
    gw.add_argument("--gateway", action="store_true",
                    help="serve through the admission gateway")
    gw.add_argument("--shards", type=int, default=2,
                    help="supervisor shards behind the gateway")
    gw.add_argument("--arrival",
                    choices=("poisson", "bursty", "diurnal"),
                    default="poisson", help="per-tenant arrival process")
    gw.add_argument("--rate", type=float, default=200.0,
                    help="mean arrivals per tenant per simulated second")
    gw.add_argument("--horizon-ms", type=float, default=20.0,
                    help="simulated arrival horizon")
    gw.add_argument("--quota-rate", type=float, default=2000.0,
                    help="token-bucket refill per tenant per second")
    gw.add_argument("--quota-burst", type=int, default=16,
                    help="token-bucket capacity")
    gw.add_argument("--queue-cap", type=int, default=64,
                    help="max queued ops per tenant before shedding")
    gw.add_argument("--coalesce-max", type=int, default=8,
                    help="max queued ops folded into one dispatch")
    gw.add_argument("--slo-ms", type=float, default=2.0,
                    help="arrival-to-completion latency objective")
    gw.add_argument("--rebalance-at", type=float, default=None,
                    metavar="FRACTION",
                    help="add a shard at this fraction of the horizon "
                         "and require tenants to move cleanly")
    gw.add_argument("--policy-reload-at", type=float, default=None,
                    metavar="FRACTION",
                    help="hot-reload the tenant policy fleet-wide at "
                         "this fraction of the horizon")
    gw.add_argument("--policy-reload", default=None, metavar="FILE",
                    help="policy document for --policy-reload-at "
                         "(default: re-fire --policy)")
    gw.add_argument("--show-tenants", type=int, default=16,
                    help="max flagged-tenant rows to print")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "bench-fleet", help="fleet throughput scaling + security run; "
                            "writes BENCH_fleet.json")
    p.add_argument("--workers", default="1,2,4,8",
                   help="comma-separated worker counts")
    p.add_argument("--devices", default="fdc,sdhci,scsi,ehci")
    p.add_argument("--tenants", type=int, default=8)
    p.add_argument("--batches", type=int, default=4)
    p.add_argument("--ops", type=int, default=4)
    p.add_argument("--backend", choices=("compiled", "reference", "bytecode"),
                   default="compiled")
    p.add_argument("--inline", action="store_true",
                   help="in-process worker pool (no multiprocessing)")
    p.add_argument("--spec-cache", default=None,
                   help="persistent spec cache dir (default: temp dir)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--quick", action="store_true",
                   help="smaller workload for CI smoke")
    p.add_argument("--gateway", action="store_true",
                   help="also run the gateway benchmark (four-digit "
                        "simulated-tenant scaling across shards) and "
                        "add it to the payload")
    p.add_argument("--migration-provenance", default=None,
                   metavar="FILE",
                   help="merge a `repro migrate --out` certification "
                        "summary into the payload (and gate the exit "
                        "code on all_certified)")
    p.add_argument("--out", default="BENCH_fleet.json")
    p.set_defaults(fn=_cmd_bench_fleet)

    p = sub.add_parser(
        "stats", help="run an instrumented benign workload and print "
                      "the per-strategy telemetry breakdown")
    p.add_argument("--device", default="fdc")
    p.add_argument("--rounds", type=int, default=200,
                   help="checked I/O rounds to drive (at least)")
    p.add_argument("--backend", choices=("compiled", "reference", "bytecode"),
                   default="compiled")
    p.add_argument("--qemu-version", default="99.0.0")
    p.add_argument("--mode", choices=("protection", "enhancement"),
                   default="enhancement")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--chaos-seed", type=int, default=None,
                   help="also run a small fault-injection trial with "
                        "this seed so the degradation counters populate")
    p.add_argument("--json-out",
                   help="also export the snapshot as JSON lines")
    p.add_argument("--prom-out",
                   help="also export Prometheus-style text")
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser(
        "chaos", help="run a seeded fault-injection campaign over the "
                      "fleet and check the safety invariants")
    p.add_argument("--seeds", default="101,102,103,104,105",
                   help="comma-separated campaign seeds")
    p.add_argument("--policy",
                   choices=("fail-closed", "fail-open", "retry"),
                   default="fail-closed")
    p.add_argument("--max-retries", type=int, default=2,
                   help="replay attempts under the retry policy")
    p.add_argument("--devices", default="fdc,sdhci,scsi,ehci,pcnet")
    p.add_argument("--tenants", type=int, default=10)
    p.add_argument("--batches", type=int, default=4,
                   help="batches per tenant")
    p.add_argument("--ops", type=int, default=3,
                   help="requests per batch")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--pool", action="store_true",
                   help="multiprocessing workers instead of the "
                        "reproducible inline fallback")
    p.add_argument("--recovery-runs", type=int, default=0,
                   help="also run this many decoder PSB-resync trials")
    p.add_argument("--out", help="write the replayable campaign "
                                 "report (JSON) here")
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser(
        "bench-telemetry",
        help="measure telemetry-on vs -off pipeline overhead; writes "
             "BENCH_telemetry.json")
    p.add_argument("--device", default="fdc")
    p.add_argument("--backend", choices=("compiled", "reference", "bytecode"),
                   default="compiled")
    p.add_argument("--qemu-version", default="99.0.0")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--quick", action="store_true",
                   help="fewer, shorter passes for CI smoke")
    p.add_argument("--max-overhead-pct", type=float, default=None,
                   help="exit nonzero if overhead exceeds this")
    p.add_argument("--out", default="BENCH_telemetry.json")
    p.set_defaults(fn=_cmd_bench_telemetry)

    p = sub.add_parser("spec-diff",
                       help="compare/merge two trained specs")
    p.add_argument("--base", required=True)
    p.add_argument("--other", required=True)
    p.add_argument("--out", help="write the merged spec here")
    p.set_defaults(fn=_cmd_spec_diff)

    p = sub.add_parser(
        "spec", help="spec lifecycle: generation chains, gated "
                     "promotion, fleet hot reload")
    spec_sub = p.add_subparsers(dest="spec_command", required=True)

    sp = spec_sub.add_parser(
        "generations", help="show a device's generation chain")
    sp.add_argument("--cache", required=True,
                    help="spec cache dir holding the chains")
    sp.add_argument("--device", required=True)
    sp.add_argument("--qemu-version", default="99.0.0")
    sp.set_defaults(fn=_cmd_spec_generations)

    sp = spec_sub.add_parser(
        "promote", help="merge candidate specs into the active "
                        "generation through the coverage and "
                        "differential-replay gates")
    sp.add_argument("--cache", required=True)
    sp.add_argument("--device", required=True)
    sp.add_argument("--qemu-version", default="99.0.0")
    sp.add_argument("--candidate", action="append", required=True,
                    metavar="SPEC_JSON",
                    help="candidate spec file (repeatable)")
    sp.add_argument("--min-coverage-gain", type=float, default=0.0)
    sp.add_argument("--min-edge-gain", type=int, default=0)
    sp.add_argument("--benign-rounds", type=int, default=30)
    sp.add_argument("--cve", action="append", default=[],
                    help="CVE to difference against (default: the "
                         "device's seeded CVE)")
    sp.add_argument("--backend", choices=("compiled", "reference", "bytecode"),
                    default="compiled")
    sp.add_argument("--no-activate", action="store_true",
                    help="publish without activating (staged rollout: "
                         "a later hot reload names the digest)")
    sp.add_argument("--provenance", default="")
    sp.set_defaults(fn=_cmd_spec_promote)

    sp = spec_sub.add_parser(
        "reload", help="hot-reload a published generation into a "
                       "running fleet mid-schedule")
    sp.add_argument("--cache", required=True)
    sp.add_argument("--device", required=True)
    sp.add_argument("--qemu-version", default="99.0.0")
    sp.add_argument("--digest", default="",
                    help="generation digest (prefix ok; default: "
                         "newest published)")
    sp.add_argument("--tenants", type=int, default=4)
    sp.add_argument("--batches", type=int, default=4)
    sp.add_argument("--ops", type=int, default=4)
    sp.add_argument("--workers", type=int, default=2)
    sp.add_argument("--inline", action="store_true",
                    help="in-process worker pool (no multiprocessing)")
    sp.add_argument("--seed", type=int, default=7)
    sp.add_argument("--activate", action="store_true",
                    help="activate the generation once the reload run "
                         "completes cleanly")
    sp.set_defaults(fn=_cmd_spec_reload)

    sp = spec_sub.add_parser(
        "smoke", help="end-to-end lifecycle smoke: train partial "
                      "specs, promote the merge, hot-reload a running "
                      "fleet, verify every seeded CVE is still caught")
    sp.add_argument("--devices", default="fdc,ehci,pcnet,sdhci,scsi")
    sp.add_argument("--tenants", type=int, default=6,
                    help="tenants per device")
    sp.add_argument("--attacked", type=int, default=5,
                    help="seeded-CVE tenants per device")
    sp.add_argument("--batches", type=int, default=4)
    sp.add_argument("--ops", type=int, default=4)
    sp.add_argument("--workers", type=int, default=2)
    sp.add_argument("--backend", choices=("compiled", "reference", "bytecode"),
                    default="compiled")
    sp.add_argument("--cache", default=None,
                    help="spec cache dir (default: temp dir)")
    sp.add_argument("--seed", type=int, default=23)
    sp.add_argument("--quick", action="store_true",
                    help="two devices, three tenants each (CI smoke)")
    sp.add_argument("--out", help="write the JSON payload here")
    sp.set_defaults(fn=_cmd_spec_smoke)

    p = sub.add_parser(
        "policy", help="tenant resilience policy: show resolved knobs, "
                       "validate + store documents, fleet hot reload")
    policy_sub = p.add_subparsers(dest="policy_command", required=True)

    pp = policy_sub.add_parser(
        "show", help="print a policy set's resolved per-tenant knobs")
    pp.add_argument("--file", default=None,
                    help="policy document (default: the built-in "
                         "fleet default)")
    pp.add_argument("--tenant", action="append", default=[],
                    help="also show this tenant's resolved policy "
                         "(repeatable)")
    pp.set_defaults(fn=_cmd_policy_show)

    pp = policy_sub.add_parser(
        "apply", help="validate a policy document and store it "
                      "content-addressed in a cache dir")
    pp.add_argument("--file", required=True)
    pp.add_argument("--cache", required=True,
                    help="policy cache dir (shared with pool workers)")
    pp.set_defaults(fn=_cmd_policy_apply)

    pp = policy_sub.add_parser(
        "reload", help="hot-reload a policy document into a running "
                       "fleet mid-schedule (epoch-consistent, nothing "
                       "lost)")
    pp.add_argument("--file", required=True)
    pp.add_argument("--devices", default="fdc,sdhci")
    pp.add_argument("--tenants", type=int, default=4)
    pp.add_argument("--batches", type=int, default=4)
    pp.add_argument("--ops", type=int, default=4)
    pp.add_argument("--workers", type=int, default=2)
    pp.add_argument("--inline", action="store_true",
                    help="in-process worker pool (no multiprocessing)")
    pp.add_argument("--spec-cache", default=None,
                    help="spec cache dir (default: temp dir)")
    pp.add_argument("--seed", type=int, default=7)
    pp.set_defaults(fn=_cmd_policy_reload)

    p = sub.add_parser(
        "migrate", help="certify live tenant migration: byte-identical "
                        "verdicts and zero lost/duplicated ops vs a "
                        "never-migrated baseline, per backend")
    p.add_argument("--backends", default="reference,compiled,bytecode",
                   help="comma-separated checker backends to certify")
    p.add_argument("--devices", default="fdc")
    p.add_argument("--tenants", type=int, default=4)
    p.add_argument("--batches", type=int, default=4,
                   help="batches per tenant")
    p.add_argument("--ops", type=int, default=6,
                   help="requests per batch")
    p.add_argument("--inject-fraction", type=float, default=0.5,
                   help="fraction of tenants attacked with CVE PoCs "
                        "(fired after the migration point)")
    p.add_argument("--migrate-after", type=int, default=1,
                   help="migrate each tenant after this many batches")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--out", help="write the provenance summary (JSON) "
                                 "for bench-fleet --migration-provenance")
    p.set_defaults(fn=_cmd_migrate)

    p = sub.add_parser("tables", help="regenerate paper tables")
    p.add_argument("--which", choices=("1", "3", "all"), default="all")
    p.set_defaults(fn=_cmd_tables)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
