"""Command-line interface to the SEDSpec reproduction.

::

    python -m repro train   --device fdc --out fdc.spec.json
    python -m repro inspect --spec fdc.spec.json [--dot out.dot]
    python -m repro exploit --cve CVE-2015-3456 [--protect]
    python -m repro tables  [--which 1|3]
    python -m repro devices
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_devices(args: argparse.Namespace) -> int:
    from repro.devices import create_device, device_names
    from repro.eval.report import render_table

    rows = []
    for name in device_names():
        device = create_device(name, qemu_version=args.qemu_version)
        cves = ", ".join(g.cve for g in device.CVES) or "-"
        active = ", ".join(device.active_cves()) or "-"
        rows.append((name, device.LOGIC.STRUCT,
                     device.program.block_count(), cves, active))
    print(render_table(
        ("Device", "Struct", "Blocks", "Seeded CVEs",
         f"Active @ {args.qemu_version}"), rows))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.spec import spec_to_json
    from repro.workloads import train_device_spec

    artifacts = train_device_spec(args.device,
                                  qemu_version=args.qemu_version,
                                  seed=args.seed,
                                  repeats=args.repeats)
    print(artifacts.spec.describe())
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(spec_to_json(artifacts.spec))
        print(f"wrote {args.out}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.spec import spec_from_json
    from repro.spec.dot import spec_to_dot

    with open(args.spec) as handle:
        spec = spec_from_json(handle.read())
    print(spec.describe())
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(spec_to_dot(spec, function=args.function))
        print(f"wrote {args.dot}")
    return 0


def _cmd_exploit(args: argparse.Namespace) -> int:
    from repro.checker import Mode
    from repro.core import deploy
    from repro.exploits import exploit_by_cve, run_exploit
    from repro.workloads import train_device_spec
    from repro.workloads.profiles import PROFILES

    exploit = exploit_by_cve(args.cve)
    prof = PROFILES[exploit.device]
    vm, device = prof.make_vm(exploit.qemu_version)
    if args.protect:
        spec = train_device_spec(
            exploit.device, qemu_version=exploit.qemu_version).spec
        deploy(vm, device, spec, mode=Mode.PROTECTION)
    outcome = run_exploit(vm, device, exploit)
    print(f"{exploit.cve} against {exploit.device} "
          f"(qemu {exploit.qemu_version}): {exploit.description}")
    print(f"  protected: {args.protect}")
    print(f"  detected:  {outcome.detected} "
          f"{sorted(s.value for s in outcome.anomaly_strategies)}")
    print(f"  device fault: {outcome.device_faulted} "
          f"({outcome.fault_kind or '-'})")
    return 0 if (outcome.detected == args.protect
                 or exploit.expected_miss) else 1


def _cmd_spec_diff(args: argparse.Namespace) -> int:
    from repro.spec import coverage_gain, merge_specs, spec_from_json

    with open(args.base) as handle:
        base = spec_from_json(handle.read())
    with open(args.other) as handle:
        other = spec_from_json(handle.read())
    merged = merge_specs(base, other)
    new_blocks = merged.visited_blocks - base.visited_blocks
    new_cmds = set(merged.cmd_access.table) - set(base.cmd_access.table)
    print(f"device: {base.device}")
    print(f"base: {base.block_count()} blocks, "
          f"{len(base.cmd_access.table)} commands")
    print(f"other adds: {len(new_blocks)} blocks, "
          f"{len(new_cmds)} commands "
          f"({sorted(hex(c) for c in new_cmds)})")
    print(f"coverage gain: {coverage_gain(base, merged):.1%}")
    if args.out:
        from repro.spec import spec_to_json
        with open(args.out, "w") as handle:
            handle.write(spec_to_json(merged))
        print(f"wrote merged spec to {args.out}")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    if args.which in ("1", "all"):
        from repro.eval import generate_table1
        print(generate_table1().render())
    if args.which in ("3", "all"):
        from repro.checker import Strategy
        from repro.eval import render_table, strategy_matrix
        rows = strategy_matrix()
        print(render_table(
            ("Device", "CVE", "Param", "IndJmp", "CondJmp", "match"),
            [(r.device, r.cve,
              "Y" if Strategy.PARAMETER in r.detected_by else "",
              "Y" if Strategy.INDIRECT_JUMP in r.detected_by else "",
              "Y" if Strategy.CONDITIONAL_JUMP in r.detected_by else "",
              "ok" if r.matches_paper else "MISMATCH") for r in rows]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SEDSpec reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("devices", help="list devices and seeded CVEs")
    p.add_argument("--qemu-version", default="99.0.0")
    p.set_defaults(fn=_cmd_devices)

    p = sub.add_parser("train", help="train an execution specification")
    p.add_argument("--device", required=True)
    p.add_argument("--qemu-version", default="99.0.0")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--repeats", type=int, default=2)
    p.add_argument("--out", help="write the spec JSON here")
    p.set_defaults(fn=_cmd_train)

    p = sub.add_parser("inspect", help="describe / visualize a spec")
    p.add_argument("--spec", required=True)
    p.add_argument("--dot", help="write a Graphviz rendering here")
    p.add_argument("--function", help="restrict the DOT to one function")
    p.set_defaults(fn=_cmd_inspect)

    p = sub.add_parser("exploit", help="run a CVE proof-of-concept")
    p.add_argument("--cve", required=True)
    p.add_argument("--protect", action="store_true",
                   help="deploy SEDSpec (protection mode) first")
    p.set_defaults(fn=_cmd_exploit)

    p = sub.add_parser("spec-diff",
                       help="compare/merge two trained specs")
    p.add_argument("--base", required=True)
    p.add_argument("--other", required=True)
    p.add_argument("--out", help="write the merged spec here")
    p.set_defaults(fn=_cmd_spec_diff)

    p = sub.add_parser("tables", help="regenerate paper tables")
    p.add_argument("--which", choices=("1", "3", "all"), default="all")
    p.set_defaults(fn=_cmd_tables)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
