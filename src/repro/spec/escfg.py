"""ES-CFG data structures (Section V-A).

An execution specification is a control-flow graph whose basic blocks carry
only what SEDSpec needs to *re-execute device behaviour over the shadow
device state*:

* **DSOD** (Device State Operation Data) — the sliced statements that
  manipulate device-state parameters (plus the local computations feeding
  them);
* **NBTD** (Next Block Transition Data) — the terminator steering to the
  next block, with conditions rewritten over device state / I/O data /
  sync variables.

Block types: entry, exit, conditional, command decision, command end —
plus the structural kinds (call/icall/switch) the checker walks through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import SpecError
from repro.ir import Expr, StateLayout, Stmt, Terminator
from repro.spec.state import BufferInfo, DeviceState, FieldInfo


@dataclass
class ESBlock:
    """One basic block of the ES-CFG."""

    address: int
    func: str
    label: str
    dsod: List[Stmt] = field(default_factory=list)
    nbtd: Optional[Terminator] = None
    kind: str = "plain"   # plain|cond|switch|call|icall|ret
    is_entry: bool = False
    is_exit: bool = False
    is_cmd_decision: bool = False
    is_cmd_end: bool = False
    #: expression yielding the current command at a decision block
    cmd_expr: Optional[Expr] = None

    def __str__(self) -> str:
        tags = [self.kind]
        if self.is_entry:
            tags.append("entry")
        if self.is_exit:
            tags.append("exit")
        if self.is_cmd_decision:
            tags.append("cmd-dec")
        if self.is_cmd_end:
            tags.append("cmd-end")
        body = "\n".join(f"    {s}" for s in self.dsod)
        sep = "\n" if body else ""
        return (f"  {self.label} @{self.address:#x} [{','.join(tags)}]\n"
                f"{body}{sep}    NBTD: {self.nbtd}")


@dataclass
class ESFunction:
    """ES blocks of one device routine, preserving its CFG shape."""

    name: str
    entry: str
    params: Tuple[str, ...]
    blocks: Dict[str, ESBlock] = field(default_factory=dict)

    def block(self, label: str) -> ESBlock:
        try:
            return self.blocks[label]
        except KeyError:
            raise SpecError(
                f"ES function {self.name} has no block {label!r} "
                f"(path left the execution specification)") from None

    def has_block(self, label: str) -> bool:
        return label in self.blocks


@dataclass
class CommandAccessTable:
    """Device command -> bitmap of accessible block addresses (Alg. 1)."""

    table: Dict[int, Set[int]] = field(default_factory=dict)

    def record(self, command: int, address: int) -> None:
        self.table.setdefault(command, set()).add(address)

    def knows(self, command: int) -> bool:
        return command in self.table

    def allows(self, command: int, address: int) -> bool:
        return address in self.table.get(command, set())

    def commands(self) -> List[int]:
        return sorted(self.table)

    def known_commands(self) -> FrozenSet[int]:
        """All commands any training run decided on (frozen for the
        compiled checker backend's per-site tables)."""
        return frozenset(self.table)

    def commands_allowing(self, address: int) -> FrozenSet[int]:
        """Inverted row: the commands under which *address* is reachable.

        This is the compiled backend's per-block access row — resolved
        once at spec-compile time so the per-round gate is a single
        ``cmd in row`` test instead of two dict lookups per block.
        """
        return frozenset(cmd for cmd, addrs in self.table.items()
                         if address in addrs)


@dataclass
class ExecutionSpec:
    """The complete execution specification for one emulated device."""

    device: str
    functions: Dict[str, ESFunction] = field(default_factory=dict)
    entry_handlers: Dict[str, str] = field(default_factory=dict)

    #: device-state parameter metadata + the control-structure layout the
    #: shadow state clones
    field_info: Dict[str, FieldInfo] = field(default_factory=dict)
    buffer_info: Dict[str, BufferInfo] = field(default_factory=dict)
    layout: Optional[StateLayout] = None

    #: training observations feeding the check strategies
    branch_observed: Dict[int, Set[bool]] = field(default_factory=dict)
    switch_targets: Dict[int, Set[int]] = field(default_factory=dict)
    icall_targets: Dict[int, Set[int]] = field(default_factory=dict)
    visited_blocks: Set[int] = field(default_factory=set)
    cmd_access: CommandAccessTable = field(
        default_factory=CommandAccessTable)

    #: program address maps needed to resolve indirect targets
    func_addr: Dict[str, int] = field(default_factory=dict)
    addr_to_func: Dict[int, str] = field(default_factory=dict)
    addr_to_block: Dict[int, Tuple[str, str]] = field(default_factory=dict)

    #: sync locals per function (data dependency recovery escape hatches)
    sync_locals: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    #: reduction statistics (for the ablation benchmarks)
    stats: Dict[str, int] = field(default_factory=dict)

    # -- structure queries ----------------------------------------------------

    def function(self, name: str) -> ESFunction:
        try:
            return self.functions[name]
        except KeyError:
            raise SpecError(
                f"function {name!r} is not part of the execution "
                f"specification (never executed in training)") from None

    def has_function(self, name: str) -> bool:
        return name in self.functions

    def entry_for(self, io_key: str) -> ESFunction:
        name = self.entry_handlers.get(io_key)
        if name is None:
            raise SpecError(f"no entry handler for I/O key {io_key!r}")
        return self.function(name)

    def knows_io_key(self, io_key: str) -> bool:
        return io_key in self.entry_handlers

    def block_count(self) -> int:
        return sum(len(f.blocks) for f in self.functions.values())

    def dsod_stmt_count(self) -> int:
        return sum(len(b.dsod) for f in self.functions.values()
                   for b in f.blocks.values())

    # -- check-strategy support -------------------------------------------------

    def make_device_state(self) -> DeviceState:
        if self.layout is None:
            raise SpecError("specification carries no layout")
        return DeviceState(self.layout, set(self.field_info),
                           set(self.buffer_info))

    def branch_is_one_sided(self, address: int) -> Optional[bool]:
        """If only one outcome was observed at this site, return it."""
        outcomes = self.branch_observed.get(address, set())
        if len(outcomes) == 1:
            return next(iter(outcomes))
        return None

    def legit_icall_targets(self, address: int) -> Set[int]:
        return self.icall_targets.get(address, set())

    def legit_switch_targets(self, address: int) -> Set[int]:
        return self.switch_targets.get(address, set())

    def frozen_icall_targets(self, address: int) -> FrozenSet[int]:
        """Immutable per-site legit-target row (compiled-backend table)."""
        return frozenset(self.icall_targets.get(address, ()))

    def frozen_switch_targets(self, address: int) -> FrozenSet[int]:
        """Immutable per-site legit-arm row (compiled-backend table)."""
        return frozenset(self.switch_targets.get(address, ()))

    # -- lifecycle support ----------------------------------------------------

    def training_facts(self) -> Dict[str, object]:
        """Canonical immutable snapshot of the training observations.

        Merging unions these monotone sets; the snapshot lets lifecycle
        code (and the merge property tests) compare what two specs *know*
        independently of structural details such as block reduction.
        """
        return {
            "visited_blocks": frozenset(self.visited_blocks),
            "branch_observed": frozenset(
                (addr, outcome)
                for addr, outcomes in self.branch_observed.items()
                for outcome in outcomes),
            "switch_targets": frozenset(
                (addr, target)
                for addr, targets in self.switch_targets.items()
                for target in targets),
            "icall_targets": frozenset(
                (addr, target)
                for addr, targets in self.icall_targets.items()
                for target in targets),
            "cmd_access": frozenset(
                (cmd, addr)
                for cmd, addrs in self.cmd_access.table.items()
                for addr in addrs),
            "sync_locals": frozenset(
                (name, local)
                for name, locals_ in self.sync_locals.items()
                for local in locals_),
            "entry_handlers": frozenset(self.entry_handlers.items()),
        }

    def observed_edges(self) -> Set[Tuple[int, int]]:
        """ITC-CFG edges the training runs exercised, as address pairs.

        Reconstructed from the NBTD terminators of visited blocks: a
        Goto contributes its one edge, a Branch contributes the observed
        outcome(s) at its site, Switch/ICall contribute the legitimised
        target addresses, and a Call contributes the callee-entry edge.
        Feeds ``cfg.coverage.effective_coverage`` for the promotion gate.
        """
        from repro.ir import Branch, Call, Goto, ICall, Switch
        edges: Set[Tuple[int, int]] = set()

        def block_addr(es_func: ESFunction, label: Optional[str]
                       ) -> Optional[int]:
            if label is None or label not in es_func.blocks:
                return None
            return es_func.blocks[label].address

        for es_func in self.functions.values():
            for block in es_func.blocks.values():
                if block.address not in self.visited_blocks:
                    continue
                nbtd = block.nbtd
                if isinstance(nbtd, Goto):
                    dst = block_addr(es_func, nbtd.target)
                    if dst is not None:
                        edges.add((block.address, dst))
                elif isinstance(nbtd, Branch):
                    outcomes = self.branch_observed.get(block.address, set())
                    for outcome in outcomes:
                        label = nbtd.taken if outcome else nbtd.not_taken
                        dst = block_addr(es_func, label)
                        if dst is not None:
                            edges.add((block.address, dst))
                elif isinstance(nbtd, Switch):
                    for dst in self.switch_targets.get(block.address, ()):
                        edges.add((block.address, dst))
                elif isinstance(nbtd, ICall):
                    for dst in self.icall_targets.get(block.address, ()):
                        edges.add((block.address, dst))
                elif isinstance(nbtd, Call):
                    dst = self.func_addr.get(nbtd.func)
                    if dst is not None:
                        edges.add((block.address, dst))
        return edges

    def describe(self) -> str:
        lines = [f"execution specification for {self.device}",
                 f"  functions: {len(self.functions)}",
                 f"  blocks: {self.block_count()}",
                 f"  DSOD statements: {self.dsod_stmt_count()}",
                 f"  commands known: {len(self.cmd_access.table)}",
                 f"  state parameters: {sorted(self.field_info)}",
                 f"  state buffers: {sorted(self.buffer_info)}"]
        for key, value in sorted(self.stats.items()):
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)
