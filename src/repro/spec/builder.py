"""ES-CFG construction (Section V-B, Algorithm 1) plus the refinements:
control-flow reduction (V-C) and data-dependency recovery (V-D).

Inputs: the compiled device program, the device state change log collected
under benign training samples, the parameter selection, and the taint
result (command block identification).  Output: an
:class:`~repro.spec.escfg.ExecutionSpec` ready for the ES-Checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.dataflow import SliceResult, slice_function
from repro.analysis.obslog import DeviceStateChangeLog
from repro.analysis.params import ParamSelection
from repro.analysis.taint import TaintResult, analyze_taint
from repro.errors import SpecError
from repro.ir import (
    Assign, BinOp, Branch, BufLen, BufLoad, BufStore, Call, Const, Expr,
    ExternCall, Goto, ICall, Intrinsic, Local, Param, Program, Return,
    StateRef, StateStore, Stmt, Switch, SyncVar, Terminator, UnOp,
)
from repro.spec.escfg import (
    CommandAccessTable, ESBlock, ESFunction, ExecutionSpec,
)
from repro.spec.state import DeviceState


# --------------------------------------------------------------------------
# Data dependency recovery: expression / statement rewriting
# --------------------------------------------------------------------------

def substitute_expr(expr: Expr, func_name: str,
                    sync_locals: FrozenSet[str],
                    param_fields: Set[str],
                    param_buffers: Set[str]) -> Expr:
    """Rewrite *expr* into the checker-evaluable form.

    * reads of control-structure fields outside the device state ->
      ``sync(field:name)`` (resolved from the live structure pre-I/O),
    * everything else passes through structurally.

    Locals backed by extern-call results stay plain locals: the spec
    constructor materializes one ``local = sync(extern:func:name)``
    assignment at the extern call's *definition* site instead (see
    ``build_spec``), so the walk pops exactly one speculated value per
    device read.  Rewriting every *use* into its own sync var — the
    obvious alternative — desynchronizes the harvest FIFO as soon as a
    handler branches on the same extern byte twice (virtio descriptor
    flags feed both the indirect-route and the chain-continuation
    tests), halting benign rounds with spurious sync failures.
    """
    if isinstance(expr, Local):
        return expr
    if isinstance(expr, StateRef):
        if expr.field not in param_fields:
            return SyncVar(f"field:{expr.field}")
        return expr
    if isinstance(expr, BufLoad):
        index = substitute_expr(expr.index, func_name, sync_locals,
                                param_fields, param_buffers)
        if expr.buf not in param_buffers:
            # All accessed buffers are selected by Rule 2; this is a
            # belt-and-braces path for hand-built selections.
            return SyncVar(f"field:{expr.buf}")
        return BufLoad(expr.buf, index)
    if isinstance(expr, BinOp):
        return BinOp(expr.op,
                     substitute_expr(expr.left, func_name, sync_locals,
                                     param_fields, param_buffers),
                     substitute_expr(expr.right, func_name, sync_locals,
                                     param_fields, param_buffers))
    if isinstance(expr, UnOp):
        return UnOp(expr.op,
                    substitute_expr(expr.operand, func_name, sync_locals,
                                    param_fields, param_buffers))
    return expr   # Const, Param, BufLen, SyncVar


def _subst_stmt(stmt: Stmt, func_name: str, sync_locals: FrozenSet[str],
                param_fields: Set[str], param_buffers: Set[str]
                ) -> Optional[Stmt]:
    sub = lambda e: substitute_expr(  # noqa: E731 - tight local helper
        e, func_name, sync_locals, param_fields, param_buffers)
    if isinstance(stmt, Assign):
        return Assign(stmt.target, sub(stmt.value), lineno=stmt.lineno)
    if isinstance(stmt, StateStore):
        return StateStore(stmt.field, sub(stmt.value), lineno=stmt.lineno)
    if isinstance(stmt, BufStore):
        return BufStore(stmt.buf, sub(stmt.index), sub(stmt.value),
                        lineno=stmt.lineno)
    if isinstance(stmt, Intrinsic):
        return Intrinsic(stmt.kind, tuple(sub(a) for a in stmt.args),
                         lineno=stmt.lineno)
    if isinstance(stmt, ExternCall):
        return None   # dropped: results arrive via sync vars
    return stmt


def _subst_terminator(term: Terminator, func_name: str,
                      sync_locals: FrozenSet[str], param_fields: Set[str],
                      param_buffers: Set[str]) -> Terminator:
    sub = lambda e: substitute_expr(  # noqa: E731
        e, func_name, sync_locals, param_fields, param_buffers)
    if isinstance(term, Branch):
        return Branch(sub(term.cond), term.taken, term.not_taken,
                      lineno=term.lineno)
    if isinstance(term, Switch):
        return Switch(sub(term.scrutinee), dict(term.table), term.default,
                      lineno=term.lineno)
    if isinstance(term, Call):
        return Call(term.func, tuple(sub(a) for a in term.args), term.dest,
                    term.cont, lineno=term.lineno)
    if isinstance(term, ICall):
        return ICall(term.ptr_field, tuple(sub(a) for a in term.args),
                     term.dest, term.cont, lineno=term.lineno)
    if isinstance(term, Return):
        value = sub(term.value) if term.value is not None else None
        return Return(value, lineno=term.lineno)
    return term


# --------------------------------------------------------------------------
# Algorithm 1: initial construction from the device state change log
# --------------------------------------------------------------------------

@dataclass
class _TrainingFacts:
    visited: Set[int]
    branch_observed: Dict[int, Set[bool]]
    switch_targets: Dict[int, Set[int]]
    icall_targets: Dict[int, Set[int]]
    cmd_access: CommandAccessTable


def _digest_log(log: DeviceStateChangeLog) -> _TrainingFacts:
    """RestoreRuntimeCFG + the per-log loop of Algorithm 1, condensed.

    Faulted rounds are excluded: only *legitimate* executions define the
    specification.
    """
    facts = _TrainingFacts(set(), {}, {}, {}, CommandAccessTable())
    for round_ in log.rounds:
        if round_.faulted:
            continue
        current_cmd: Optional[int] = None
        for event in round_.events:
            if event.kind == "block":
                facts.visited.add(event.block)
                if current_cmd is not None:
                    facts.cmd_access.record(current_cmd, event.block)
            elif event.kind == "branch":
                facts.branch_observed.setdefault(event.block, set()) \
                    .add(bool(event.data["taken"]))
            elif event.kind == "tip":
                target = int(event.data["target"])
                if event.data["how"] == "icall":
                    facts.icall_targets.setdefault(event.block, set()) \
                        .add(target)
                else:
                    facts.switch_targets.setdefault(event.block, set()) \
                        .add(target)
            elif event.kind == "cmd_decision":
                current_cmd = int(event.data["value"])
                facts.cmd_access.record(current_cmd, event.block)
            elif event.kind == "cmd_end":
                current_cmd = None
    return facts


def build_spec(program: Program, log: DeviceStateChangeLog,
               selection: ParamSelection,
               taint: Optional[TaintResult] = None,
               reduce_cfg: bool = True) -> ExecutionSpec:
    """Construct the execution specification for one device."""
    if taint is None:
        taint = analyze_taint(program)
    param_fields = selection.scalar_params | selection.funcptrs
    param_buffers = set(selection.buffers)
    # The ES-CFG must re-execute every store feeding an NBTD condition:
    # control-flow-influencing scalars are *tracked* in the shadow state
    # even when the Table-I rules don't select them as checked parameters
    # (a live sync read would be stale for write-then-branch rounds).
    tracked_fields = set(param_fields)
    for name in selection.influencing:
        if program.layout.has_field(name):
            decl = program.layout.field(name)
            if not decl.is_buffer:
                tracked_fields.add(name)

    facts = _digest_log(log)
    if not facts.visited:
        raise SpecError("training log contains no successful rounds")

    spec = ExecutionSpec(device=program.name)
    spec.entry_handlers = dict(program.entry_handlers)
    spec.branch_observed = facts.branch_observed
    spec.switch_targets = facts.switch_targets
    spec.icall_targets = facts.icall_targets
    spec.visited_blocks = facts.visited
    spec.cmd_access = facts.cmd_access
    spec.func_addr = dict(program.func_addr)
    spec.addr_to_func = dict(program.addr_to_func)
    spec.addr_to_block = dict(program.addr_to_block)

    shadow = DeviceState.from_layout(program.layout, param_fields,
                                     param_buffers)
    spec.field_info = shadow.fields
    spec.buffer_info = shadow.buffers
    spec.layout = program.layout

    entry_funcs = set(program.entry_handlers.values())
    blocks_before = stmts_before = 0

    for func in program.functions.values():
        visited_labels = {b.label for b in func.iter_blocks()
                          if b.address in facts.visited}
        if not visited_labels:
            continue
        slice_ = slice_function(func, tracked_fields, param_buffers)
        spec.sync_locals[func.name] = frozenset(slice_.sync_locals)
        es_func = ESFunction(func.name, func.entry, func.params)
        for block in func.iter_blocks():
            if block.label not in visited_labels:
                continue
            blocks_before += 1
            stmts_before += len(block.stmts)
            dsod: List[Stmt] = []
            for idx, stmt in enumerate(block.stmts):
                if isinstance(stmt, ExternCall):
                    target = stmt.defined_local()
                    if target in slice_.sync_locals:
                        # Data-dependency recovery (V-D): bind the
                        # speculated extern result once, where the
                        # device performs the read, so the sync
                        # oracle's FIFO stays aligned however many
                        # downstream sites use the local.
                        dsod.append(Assign(
                            target,
                            SyncVar(f"extern:{func.name}:{target}"),
                            lineno=stmt.lineno))
                    continue
                if not slice_.keeps(block.label, idx):
                    continue
                rewritten = _subst_stmt(
                    stmt, func.name, spec.sync_locals[func.name],
                    tracked_fields, param_buffers)
                if rewritten is not None:
                    dsod.append(rewritten)
            nbtd = _subst_terminator(
                block.terminator, func.name, spec.sync_locals[func.name],
                tracked_fields, param_buffers)
            es_block = ESBlock(
                address=block.address, func=func.name, label=block.label,
                dsod=dsod, nbtd=nbtd,
                kind=_kind_of(block.terminator),
                is_entry=(func.name in entry_funcs
                          and block.label == func.entry),
                is_exit=(func.name in entry_funcs
                         and isinstance(block.terminator, Return)),
                is_cmd_decision=(block.address
                                 in taint.command_decision_blocks),
                is_cmd_end=block.address in taint.command_end_blocks)
            if es_block.is_cmd_decision:
                es_block.cmd_expr = _command_expr(
                    block, func.name, spec.sync_locals[func.name],
                    tracked_fields, param_buffers)
            es_func.blocks[block.label] = es_block
        spec.functions[func.name] = es_func

    spec.stats["blocks_before_reduction"] = blocks_before
    spec.stats["stmts_before_slicing"] = stmts_before
    spec.stats["dsod_stmts"] = spec.dsod_stmt_count()
    if reduce_cfg:
        reduce_spec(spec)
    spec.stats["blocks_after_reduction"] = spec.block_count()
    spec.stats["sync_vars_used"] = len(used_sync_vars(spec))
    return spec


def handler_needs_sync(spec: ExecutionSpec, io_key: str) -> bool:
    """Whether checking *io_key* may demand ``extern:`` sync values.

    Computed by reachability over the ES call graph (direct calls plus
    legitimised indirect targets).  Handlers that need none are checked
    strictly *before* the device executes; the rest co-execute with the
    device per the paper's sync-point scheme (Section V-D).
    """
    name = spec.entry_handlers.get(io_key)
    if name is None or not spec.has_function(name):
        return False
    seen: Set[str] = set()
    stack = [name]
    while stack:
        func_name = stack.pop()
        if func_name in seen or not spec.has_function(func_name):
            continue
        seen.add(func_name)
        es_func = spec.function(func_name)
        for block in es_func.blocks.values():
            for stmt in block.dsod:
                for expr in stmt.exprs():
                    if any(s.startswith("extern:")
                           for s in expr.sync_refs()):
                        return True
            nbtd = block.nbtd
            if nbtd is not None:
                for expr in nbtd.exprs():
                    if any(s.startswith("extern:")
                           for s in expr.sync_refs()):
                        return True
                from repro.ir import Call as _Call, ICall as _ICall
                if isinstance(nbtd, _Call):
                    stack.append(nbtd.func)
                elif isinstance(nbtd, _ICall):
                    for addr in spec.legit_icall_targets(block.address):
                        callee = spec.addr_to_func.get(addr)
                        if callee:
                            stack.append(callee)
    return False


def used_sync_vars(spec: ExecutionSpec) -> Set[str]:
    """Sync variables actually referenced by the final spec.

    The runtime attachment only pays for speculation when an
    ``extern:...`` sync var can actually be demanded by a walk.
    """
    names: Set[str] = set()
    for es_func in spec.functions.values():
        for block in es_func.blocks.values():
            for stmt in block.dsod:
                for expr in stmt.exprs():
                    names |= expr.sync_refs()
            if block.nbtd is not None:
                for expr in block.nbtd.exprs():
                    names |= expr.sync_refs()
            if block.cmd_expr is not None:
                names |= block.cmd_expr.sync_refs()
    return names


def _kind_of(term: Terminator) -> str:
    if isinstance(term, Branch):
        return "cond"
    if isinstance(term, Switch):
        return "switch"
    if isinstance(term, Call):
        return "call"
    if isinstance(term, ICall):
        return "icall"
    if isinstance(term, Return):
        return "ret"
    return "plain"


def _command_expr(block, func_name, sync_locals, param_fields,
                  param_buffers) -> Optional[Expr]:
    """The expression naming the current command at a decision block."""
    for stmt in block.stmts:
        if isinstance(stmt, Intrinsic) and stmt.kind == "command_decision" \
                and stmt.args:
            return substitute_expr(stmt.args[0], func_name, sync_locals,
                                   param_fields, param_buffers)
    term = block.terminator
    if isinstance(term, Switch):
        return substitute_expr(term.scrutinee, func_name, sync_locals,
                               param_fields, param_buffers)
    return None


# --------------------------------------------------------------------------
# Control flow reduction (Section V-C)
# --------------------------------------------------------------------------

def reduce_spec(spec: ExecutionSpec) -> ExecutionSpec:
    """Delete/merge redundant ES blocks.

    1. *Bypass*: a plain block with empty DSOD and a Goto NBTD carries no
       information; edges through it are short-circuited and it is removed.
    2. *Cond merge* (the paper's explicit case): when both sides of a
       conditional reach the same retained block — because slicing removed
       everything that differed — the NBTD is dropped and the branch
       becomes a direct transition.
    """
    addr_remap: Dict[int, int] = {}
    for es_func in spec.functions.values():
        remap: Dict[str, str] = {}
        for label, block in es_func.blocks.items():
            if (not block.dsod and isinstance(block.nbtd, Goto)
                    and label != es_func.entry
                    and not (block.is_entry or block.is_exit
                             or block.is_cmd_decision or block.is_cmd_end)):
                remap[label] = block.nbtd.target

        def resolve(label: str) -> str:
            seen = set()
            while label in remap and label not in seen:
                seen.add(label)
                label = remap[label]
            return label

        for block in es_func.blocks.values():
            nbtd = block.nbtd
            if isinstance(nbtd, Goto):
                block.nbtd = Goto(resolve(nbtd.target), lineno=nbtd.lineno)
            elif isinstance(nbtd, Branch):
                taken = resolve(nbtd.taken)
                not_taken = resolve(nbtd.not_taken)
                if taken == not_taken:
                    # Both sides merged: drop the NBTD (paper's merge).
                    block.nbtd = Goto(taken, lineno=nbtd.lineno)
                    block.kind = "plain"
                else:
                    block.nbtd = Branch(nbtd.cond, taken, not_taken,
                                        lineno=nbtd.lineno)
            elif isinstance(nbtd, Switch):
                block.nbtd = Switch(
                    nbtd.scrutinee,
                    {k: resolve(v) for k, v in nbtd.table.items()},
                    resolve(nbtd.default) if nbtd.default else "",
                    lineno=nbtd.lineno)
            elif isinstance(nbtd, Call):
                block.nbtd = Call(nbtd.func, nbtd.args, nbtd.dest,
                                  resolve(nbtd.cont), lineno=nbtd.lineno)
            elif isinstance(nbtd, ICall):
                block.nbtd = ICall(nbtd.ptr_field, nbtd.args, nbtd.dest,
                                   resolve(nbtd.cont), lineno=nbtd.lineno)

        for label in remap:
            old_addr = es_func.blocks[label].address
            new_label = resolve(label)
            if new_label in es_func.blocks:
                addr_remap[old_addr] = es_func.blocks[new_label].address
        for label in list(es_func.blocks):
            if label in remap:
                del es_func.blocks[label]

    # Training observations recorded the *original* block addresses; any
    # bypassed block's address must now stand for its merge target, or the
    # switch/command checks would reject arms that merely got slimmer.
    def translate(addr: int) -> int:
        seen = set()
        while addr in addr_remap and addr not in seen:
            seen.add(addr)
            addr = addr_remap[addr]
        return addr

    spec.switch_targets = {
        site: {translate(t) for t in targets}
        for site, targets in spec.switch_targets.items()}
    spec.cmd_access.table = {
        cmd: {translate(a) for a in addrs}
        for cmd, addrs in spec.cmd_access.table.items()}
    return spec
