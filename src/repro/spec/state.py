"""The *device state* of an execution specification (Section V-A.1).

A separate data structure from the emulated device's control structure: it
is initialized from the control structure when the device boots, and from
then on SEDSpec evolves it using only I/O data and the ES-CFG.

The shadow is a byte-exact, flat-layout clone of the control structure.
That choice is load-bearing: when the ES-Checker simulates a DSOD store
through an out-of-range index, the shadow corrupts the *same neighbouring
field* the real device would — so a function pointer clobbered by a buffer
overflow is already wrong in the shadow when the indirect-jump check
inspects it, one step before the real device would have made the call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.errors import SpecError
from repro.ir import BufType, FuncPtrType, IntType, StateLayout, StateMemory


@dataclass
class FieldInfo:
    """Type metadata for one device-state parameter (the LLVM-IR-metadata
    analogue that the parameter check strategy reads)."""

    name: str
    bits: int
    signed: bool
    is_funcptr: bool = False

    @property
    def int_type(self) -> IntType:
        return IntType(self.bits, self.signed)


@dataclass
class BufferInfo:
    """Declared geometry of one device-state buffer."""

    name: str
    elem_bits: int
    length: int


class DeviceState:
    """SEDSpec's shadow of the device control structure."""

    def __init__(self, layout: StateLayout, param_fields: Set[str],
                 param_buffers: Set[str],
                 memory: Optional[StateMemory] = None):
        self.layout = layout
        self.param_fields = set(param_fields)
        self.param_buffers = set(param_buffers)
        self.memory = memory if memory is not None else StateMemory(layout)
        self.fields: Dict[str, FieldInfo] = {}
        self.buffers: Dict[str, BufferInfo] = {}
        for name in param_fields:
            decl = layout.field(name)
            if isinstance(decl.type, FuncPtrType):
                self.fields[name] = FieldInfo(name, 64, False,
                                              is_funcptr=True)
            elif isinstance(decl.type, IntType):
                self.fields[name] = FieldInfo(name, decl.type.bits,
                                              decl.type.signed)
            else:
                raise SpecError(
                    f"{name} is a buffer; list it in param_buffers")
        for name in param_buffers:
            decl = layout.field(name)
            if not isinstance(decl.type, BufType):
                raise SpecError(f"{name} is not a buffer")
            self.buffers[name] = BufferInfo(name, decl.type.elem.bits,
                                            decl.type.length)

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def from_layout(cls, layout: StateLayout, param_fields: Set[str],
                    param_buffers: Set[str]) -> "DeviceState":
        return cls(layout, param_fields, param_buffers)

    def sync_from(self, memory: StateMemory) -> None:
        """Boot-time initialization from the real control structure."""
        self.memory.data[:] = memory.data

    def clone(self) -> "DeviceState":
        """Checker hot path: one clone per I/O round.  The type metadata
        is immutable after construction, so share it and copy only the
        backing memory instead of re-deriving everything via __init__."""
        twin = DeviceState.__new__(DeviceState)
        twin.layout = self.layout
        twin.param_fields = self.param_fields
        twin.param_buffers = self.param_buffers
        twin.memory = self.memory.snapshot()
        twin.fields = self.fields
        twin.buffers = self.buffers
        return twin

    # -- access (range checks are the ES-Checker's job) ------------------------

    def read_field(self, name: str) -> int:
        return self.memory.read_field(name)

    def write_field(self, name: str, value: int) -> None:
        """Store with C wrap semantics (overflow was checked *before*)."""
        self.memory.write_field(name, value)

    def in_range(self, name: str, value: int) -> bool:
        """Would *value* fit the declared type without wrapping?"""
        decl = self.layout.field(name)
        if isinstance(decl.type, FuncPtrType):
            return 0 <= value < (1 << 64)
        if isinstance(decl.type, IntType):
            return decl.type.contains(value)
        raise SpecError(f"{name} is not a scalar field")

    def buffer_length(self, name: str) -> int:
        decl = self.layout.field(name)
        if not isinstance(decl.type, BufType):
            raise SpecError(f"{name!r} is not a buffer")
        return decl.type.length

    def index_in_bounds(self, name: str, index: int) -> bool:
        return 0 <= index < self.buffer_length(name)

    def read_buf(self, name: str, index: int) -> int:
        """Flat-layout read: an OOB index reads the neighbouring field,
        exactly as the device would (may raise DeviceFault far OOB)."""
        return self.memory.read_buf(name, index)

    def write_buf(self, name: str, index: int, value: int) -> None:
        """Flat-layout write: simulated corruption lands where real
        corruption would (may raise DeviceFault far OOB)."""
        self.memory.write_buf(name, index, value)

    def dump(self) -> Dict[str, int]:
        """Scalar parameter values (for reports and tests)."""
        return {name: self.memory.read_field(name)
                for name in sorted(self.fields)}
