"""Graphviz DOT export of execution specifications.

Not required by the pipeline, but invaluable for inspecting what a spec
actually learned: block types are colour-coded, one-sided branches and
indirect call sites (the check strategies' anchors) are highlighted.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir import Branch, Call, Goto, ICall, Return, Switch
from repro.spec.escfg import ExecutionSpec

_KIND_COLOURS = {
    "cond": "lightyellow",
    "switch": "lightsalmon",
    "icall": "lightcoral",
    "call": "lightblue",
    "ret": "lightgrey",
    "plain": "white",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\l")


def spec_to_dot(spec: ExecutionSpec, function: Optional[str] = None,
                include_dsod: bool = True) -> str:
    """Render the spec (or one of its functions) as a DOT digraph."""
    names = [function] if function else sorted(spec.functions)
    lines: List[str] = [
        f'digraph "{spec.device}" {{',
        "  graph [rankdir=TB, fontname=monospace];",
        "  node [shape=box, fontname=monospace, fontsize=9];",
    ]
    for name in names:
        es_func = spec.function(name)
        lines.append(f'  subgraph "cluster_{name}" {{')
        lines.append(f'    label="{name}";')
        for label, block in es_func.blocks.items():
            node_id = f"{name}__{label}"
            title = f"{label} @{block.address:#x}"
            tags = []
            if block.is_entry:
                tags.append("ENTRY")
            if block.is_exit:
                tags.append("EXIT")
            if block.is_cmd_decision:
                tags.append("CMD-DEC")
            if block.is_cmd_end:
                tags.append("CMD-END")
            one_sided = spec.branch_is_one_sided(block.address)
            if one_sided is not None:
                tags.append("ONE-SIDED")
            body = [title + ((" [" + ",".join(tags) + "]") if tags else "")]
            if include_dsod:
                body.extend(str(stmt) for stmt in block.dsod)
            colour = _KIND_COLOURS.get(block.kind, "white")
            border = ("red" if block.kind == "icall"
                      else "orange" if one_sided is not None else "black")
            lines.append(
                f'    "{node_id}" [label="{_escape(chr(10).join(body))}\\l",'
                f' style=filled, fillcolor={colour}, color={border}];')
        for label, block in es_func.blocks.items():
            node_id = f"{name}__{label}"
            nbtd = block.nbtd
            if isinstance(nbtd, Goto):
                _edge(lines, name, node_id, nbtd.target, "")
            elif isinstance(nbtd, Branch):
                _edge(lines, name, node_id, nbtd.taken, "T")
                _edge(lines, name, node_id, nbtd.not_taken, "F")
            elif isinstance(nbtd, Switch):
                for value, target in sorted(nbtd.table.items()):
                    _edge(lines, name, node_id, target, f"={value}")
                if nbtd.default:
                    _edge(lines, name, node_id, nbtd.default, "default")
            elif isinstance(nbtd, (Call, ICall)):
                callee = (nbtd.func if isinstance(nbtd, Call)
                          else f"*{nbtd.ptr_field}")
                _edge(lines, name, node_id, nbtd.cont, f"call {callee}")
            elif isinstance(nbtd, Return):
                pass
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def _edge(lines: List[str], func: str, src: str, target_label: str,
          edge_label: str) -> None:
    dst = f"{func}__{target_label}"
    label_attr = f' [label="{_escape(edge_label)}"]' if edge_label else ""
    lines.append(f'    "{src}" -> "{dst}"{label_attr};')
