"""Execution specification: device state, ES-CFG, builder, serialization."""

from repro.spec.state import BufferInfo, DeviceState, FieldInfo
from repro.spec.escfg import (
    CommandAccessTable, ESBlock, ESFunction, ExecutionSpec,
)
from repro.spec.builder import build_spec, reduce_spec, substitute_expr
from repro.spec.serialize import spec_from_json, spec_to_json
from repro.spec.merge import coverage_gain, merge_all, merge_specs
from repro.spec.dot import spec_to_dot
from repro.spec.lifecycle import (
    PromotionConfig, PromotionReport, RetrainQueue, RetrainRecord,
    candidate_from_records, promote,
)

__all__ = [
    "BufferInfo", "DeviceState", "FieldInfo",
    "CommandAccessTable", "ESBlock", "ESFunction", "ExecutionSpec",
    "build_spec", "reduce_spec", "substitute_expr",
    "spec_from_json", "spec_to_json",
    "coverage_gain", "merge_all", "merge_specs", "spec_to_dot",
    "PromotionConfig", "PromotionReport", "RetrainQueue",
    "RetrainRecord", "candidate_from_records", "promote",
]
