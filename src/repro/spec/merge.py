"""Merging execution specifications (the paper's false-positive remedy).

Section VIII proposes distributing SEDSpec among device developers and
testers so their extensive test cases refine the specification.  That
needs specs trained on different corpora — possibly on different hosts —
to be *combined*.  Training observations are monotone (sets of visited
blocks, observed branch outcomes, legitimised targets, command bitmaps),
so merging is a union provided both specs describe the same build.

The union is taken over the *training facts*; structure (DSOD/NBTD of
blocks only one side visited) is adopted from whichever side has it.
Merged specs must come from the same program build — address maps are the
compatibility witness.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import SpecError
from repro.ir import Branch, Call, Goto, ICall, Switch
from repro.spec.escfg import ESFunction, ExecutionSpec


def _layout_witness(spec: ExecutionSpec):
    """The full field layout (names, offsets, widths, kinds, order) as a
    comparable object.  Offsets are implied by declaration order + sizes,
    so structural equality of this object is offset equality too."""
    from repro.spec.serialize import layout_to_obj
    return None if spec.layout is None else layout_to_obj(spec.layout)


def _check_compatible(a: ExecutionSpec, b: ExecutionSpec) -> None:
    if a.device != b.device:
        raise SpecError(
            f"cannot merge specs of different devices: "
            f"{a.device!r} vs {b.device!r}")
    if a.func_addr != b.func_addr:
        raise SpecError(
            "cannot merge: the specs were trained on different builds "
            "(function address maps differ)")
    if (a.layout is None) != (b.layout is None):
        raise SpecError(
            "cannot merge: one spec carries a control structure layout "
            "and the other does not")
    if _layout_witness(a) != _layout_witness(b):
        # Coinciding sizes are not enough: two builds can pack different
        # fields into the same number of bytes, and a merged spec would
        # then check the wrong parameters.
        raise SpecError(
            "cannot merge: control structure layouts differ "
            "(field names/offsets/widths are the compatibility witness)")


def merge_specs(base: ExecutionSpec, other: ExecutionSpec
                ) -> ExecutionSpec:
    """Union *other*'s training observations into a copy of *base*.

    Returns a new spec; neither input is modified.
    """
    _check_compatible(base, other)
    from repro.spec.serialize import spec_from_json, spec_to_json
    merged = spec_from_json(spec_to_json(base))   # deep copy via wire fmt

    # Structure: adopt functions/blocks only the other spec visited.
    # Adopted blocks are deep copies — the merged spec must share no
    # mutable structure with *other*, or reconciliation (and any later
    # mutation of the merger) would corrupt the input spec.
    from repro.spec.serialize import copy_block
    for name, es_func in other.functions.items():
        if name not in merged.functions:
            merged.functions[name] = _copy_function(es_func)
            continue
        mine = merged.functions[name]
        for label, block in es_func.blocks.items():
            if label not in mine.blocks:
                mine.blocks[label] = copy_block(block)

    # Training facts: unions.
    merged.visited_blocks |= other.visited_blocks
    for addr, outcomes in other.branch_observed.items():
        merged.branch_observed.setdefault(addr, set()).update(outcomes)
    for addr, targets in other.switch_targets.items():
        merged.switch_targets.setdefault(addr, set()).update(targets)
    for addr, targets in other.icall_targets.items():
        merged.icall_targets.setdefault(addr, set()).update(targets)
    for cmd, blocks in other.cmd_access.table.items():
        merged.cmd_access.table.setdefault(cmd, set()).update(blocks)
    for func_name, locals_ in other.sync_locals.items():
        merged.sync_locals[func_name] = \
            merged.sync_locals.get(func_name, frozenset()) | locals_
    merged.entry_handlers.update(other.entry_handlers)
    _reconcile_targets(merged, other)
    # Each side may itself be a merger: sum both sides' site counts so
    # merge_all over N sites reports N, not the fold depth.
    merged.stats["merged_from"] = (merged.stats.get("merged_from", 1)
                                   + other.stats.get("merged_from", 1))
    return merged


def _reconcile_targets(merged: ExecutionSpec,
                       other: ExecutionSpec) -> None:
    """Fix up NBTD targets that dangle after the union.

    Control-flow reduction is *training-dependent*: a block one site
    reduced away (empty DSOD under its slice) may have been kept — or
    remapped elsewhere — by the other site.  Where the merged structure
    inherited a target label that no side retained, adopt the other
    side's (already-resolved) target when it exists in the merger.
    """
    for name, es_func in merged.functions.items():
        if name not in other.functions:
            continue
        other_func = other.functions[name]
        for label, block in es_func.blocks.items():
            other_block = other_func.blocks.get(label)
            if other_block is None:
                continue
            nbtd, theirs = block.nbtd, other_block.nbtd
            if isinstance(nbtd, Switch) and isinstance(theirs, Switch):
                # Rebuild rather than patch the table in place: the node
                # (and its dict) may be shared with an input spec.
                table = dict(nbtd.table)
                for value, target in nbtd.table.items():
                    alt = theirs.table.get(value)
                    if (target not in es_func.blocks and alt
                            and alt in es_func.blocks):
                        table[value] = alt
                default = nbtd.default
                if (default and default not in es_func.blocks
                        and theirs.default in es_func.blocks):
                    default = theirs.default
                if table != nbtd.table or default != nbtd.default:
                    block.nbtd = Switch(nbtd.scrutinee, table, default)
            elif isinstance(nbtd, Branch) and isinstance(theirs, Branch):
                taken, not_taken = nbtd.taken, nbtd.not_taken
                if taken not in es_func.blocks \
                        and theirs.taken in es_func.blocks:
                    taken = theirs.taken
                if not_taken not in es_func.blocks \
                        and theirs.not_taken in es_func.blocks:
                    not_taken = theirs.not_taken
                if (taken, not_taken) != (nbtd.taken, nbtd.not_taken):
                    block.nbtd = Branch(nbtd.cond, taken, not_taken)
            elif isinstance(nbtd, Goto) and isinstance(theirs, Goto):
                if nbtd.target not in es_func.blocks \
                        and theirs.target in es_func.blocks:
                    block.nbtd = Goto(theirs.target)
            elif isinstance(nbtd, Call) and isinstance(theirs, Call):
                if nbtd.cont not in es_func.blocks \
                        and theirs.cont in es_func.blocks:
                    block.nbtd = Call(nbtd.func, nbtd.args, nbtd.dest,
                                      theirs.cont)
            elif isinstance(nbtd, ICall) and isinstance(theirs, ICall):
                if nbtd.cont not in es_func.blocks \
                        and theirs.cont in es_func.blocks:
                    block.nbtd = ICall(nbtd.ptr_field, nbtd.args,
                                       nbtd.dest, theirs.cont)


def merge_all(specs: Iterable[ExecutionSpec]) -> ExecutionSpec:
    """Fold a corpus of specs (e.g. one per test site) into one."""
    iterator = iter(specs)
    try:
        merged = next(iterator)
    except StopIteration:
        raise SpecError("merge_all needs at least one spec") from None
    for spec in iterator:
        merged = merge_specs(merged, spec)
    return merged


def _copy_function(es_func: ESFunction) -> ESFunction:
    from repro.spec.serialize import copy_block
    copy = ESFunction(es_func.name, es_func.entry, es_func.params)
    copy.blocks = {label: copy_block(block)
                   for label, block in es_func.blocks.items()}
    return copy


def coverage_gain(base: ExecutionSpec, merged: ExecutionSpec) -> float:
    """Fraction of merged visited blocks that base was missing."""
    if not merged.visited_blocks:
        return 0.0
    new = merged.visited_blocks - base.visited_blocks
    return len(new) / len(merged.visited_blocks)
