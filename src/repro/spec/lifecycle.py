"""Spec lifecycle: candidate merging, gated promotion, retraining queue.

The paper's §VIII remedy for false positives is *distribution*: device
developers and testers each train SEDSpec against their own corpora, and
the resulting partial specifications are folded back together.  This
module is the control loop around that fold:

* **promotion** — :func:`promote` merges candidate specs into the active
  generation via :func:`~repro.spec.merge.merge_all`, measures what the
  merge bought (block-coverage gain plus the ITC-CFG edge delta), and
  only publishes/activates the result when the gain clears a threshold
  *and* a differential replay shows the merged spec neither lets a
  seeded CVE escape nor flags benign traffic the active spec allowed;
* **retraining queue** — rounds the enforcement fleet could not vouch
  for (trace gaps) or that look like unseen-legitimate behaviour
  (near-miss control-flow anomalies, incomplete walks) are queued as
  :class:`RetrainRecord`\\ s, and :func:`candidate_from_records` replays
  them as a training workload to mint the next candidate.

Promotion refusals are first-class results (:class:`PromotionReport`),
not exceptions: a refused candidate is a normal, expected outcome of the
loop.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SpecError
from repro.spec.escfg import ExecutionSpec
from repro.spec.merge import coverage_gain, merge_all


# -- retraining queue --------------------------------------------------------

@dataclass(frozen=True)
class RetrainRecord:
    """One enforcement round worth re-observing in training.

    Plain picklable data: workers produce these, the supervisor
    aggregates them, and :func:`candidate_from_records` replays them.
    The op is named the same way :class:`~repro.fleet.loadgen.OpRequest`
    names it — kind + index into the device profile's op list + seed —
    so the replay regenerates the exact guest interaction.
    """

    tenant: str
    device: str
    qemu_version: str
    reason: str                 # trace-gap | incomplete-walk | near-miss
    io_key: str
    seq: int                    # batch seq the round arrived in
    kind: str                   # OpRequest.kind
    index: int = 0
    seed: int = 0

    def to_obj(self) -> Dict[str, object]:
        return {"tenant": self.tenant, "device": self.device,
                "qemu_version": self.qemu_version, "reason": self.reason,
                "io_key": self.io_key, "seq": self.seq, "kind": self.kind,
                "index": self.index, "seed": self.seed}

    @classmethod
    def from_obj(cls, obj: Dict[str, object]) -> "RetrainRecord":
        return cls(tenant=str(obj["tenant"]), device=str(obj["device"]),
                   qemu_version=str(obj["qemu_version"]),
                   reason=str(obj["reason"]), io_key=str(obj["io_key"]),
                   seq=int(obj["seq"]), kind=str(obj["kind"]),
                   index=int(obj.get("index", 0)),
                   seed=int(obj.get("seed", 0)))


class RetrainQueue:
    """Candidate training traces, optionally persisted as JSON lines.

    With a *path* the queue appends each record durably (one JSON object
    per line) and reloads the backlog on construction, so the feedback
    loop survives supervisor restarts.  Deduplicates on (device,
    qemu_version, kind, index, seed) — the replay identity — so a noisy
    tenant cannot flood the queue with the same round.
    """

    def __init__(self, path: Optional[str] = None,
                 max_records: int = 10_000):
        self.path = path
        self.max_records = max_records
        self.dropped = 0
        self._records: List[RetrainRecord] = []
        self._seen: set = set()
        if path is not None and os.path.exists(path):
            with open(path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        self._admit(RetrainRecord.from_obj(
                            json.loads(line)))
                    except (ValueError, KeyError, TypeError):
                        continue    # torn tail line: skip, keep the rest

    def _key(self, record: RetrainRecord) -> Tuple:
        return (record.device, record.qemu_version, record.kind,
                record.index, record.seed)

    def _admit(self, record: RetrainRecord) -> bool:
        key = self._key(record)
        if key in self._seen or len(self._records) >= self.max_records:
            self.dropped += 1
            return False
        self._seen.add(key)
        self._records.append(record)
        return True

    def add(self, record: RetrainRecord) -> bool:
        admitted = self._admit(record)
        if admitted and self.path is not None:
            with open(self.path, "a") as handle:
                handle.write(json.dumps(record.to_obj()) + "\n")
        return admitted

    def extend(self, records: Sequence[RetrainRecord]) -> int:
        return sum(1 for r in records if self.add(r))

    def records(self, device: Optional[str] = None,
                qemu_version: Optional[str] = None
                ) -> List[RetrainRecord]:
        return [r for r in self._records
                if (device is None or r.device == device)
                and (qemu_version is None
                     or r.qemu_version == qemu_version)]

    def __len__(self) -> int:
        return len(self._records)


def candidate_from_records(device: str, qemu_version: str,
                           records: Sequence[RetrainRecord],
                           backend: str = "compiled") -> ExecutionSpec:
    """Replay queued rounds as a training workload; returns the spec.

    Only benign-shaped rounds are replayed: exploit records are refused
    outright — a flagged CVE round must never become training data, no
    matter how it got queued.
    """
    from repro.core import build_execution_spec
    from repro.errors import DeviceFault
    from repro.workloads.profiles import PROFILES

    prof = PROFILES[device]
    rounds = [r for r in records
              if r.device == device and r.kind in ("common", "rare")]
    if not rounds:
        raise SpecError(
            f"no replayable retrain records for device {device!r}")

    def workload(vm, _device) -> None:
        driver = prof.make_driver(vm)
        prof.prepare(vm, driver)
        for record in rounds:
            ops = (prof.common_ops if record.kind == "common"
                   else prof.rare_ops)
            fn = ops[record.index % len(ops)]
            try:
                fn(vm, driver, random.Random(record.seed))
            except DeviceFault:
                # The round crashed the device in enforcement too; the
                # trace up to the fault is still training signal.
                continue

    artifacts = build_execution_spec(
        lambda: prof.make_vm(qemu_version, backend=backend), workload)
    return artifacts.spec


# -- promotion ---------------------------------------------------------------

@dataclass(frozen=True)
class PromotionConfig:
    #: minimum fraction of merged visited blocks that must be new
    min_coverage_gain: float = 0.0
    #: minimum count of new ITC-CFG edges the merge must contribute
    min_edge_gain: int = 0
    #: differential benign corpus: rounds replayed under both specs
    benign_rounds: int = 30
    benign_seed: int = 1234
    #: fraction of benign rounds drawn from the profile's rare ops (the
    #: false-positive-prone traffic the lifecycle exists to legitimize)
    rare_fraction: float = 0.25
    #: CVE PoCs both specs must be differenced against; () means the
    #: device's seeded CVE
    cves: Tuple[str, ...] = ()
    backend: str = "compiled"
    #: activate on promotion (registry.get serves it immediately).  A
    #: staged rollout sets this False: the generation is published but
    #: the fleet keeps its current spec until a hot reload names the new
    #: digest — and only then is it activated as the default.
    activate: bool = True


@dataclass
class PromotionReport:
    """What :func:`promote` decided, and the evidence."""

    device: str
    qemu_version: str
    promoted: bool = False
    reason: str = ""
    digest: str = ""                 # merged candidate's content address
    base_digest: str = ""
    generation: int = 0              # chain position when promoted
    candidate_count: int = 0
    merged_sites: int = 0
    coverage_gain: float = 0.0
    edge_gain: int = 0
    benign_rounds: int = 0
    #: benign rounds the merged spec flags that the base allowed
    new_false_positives: int = 0
    #: benign rounds the base flagged that the merged spec allows (the
    #: §VIII remedy working: unseen-legitimate traffic legitimized)
    removed_false_positives: int = 0
    #: cve -> (detected under base, detected under merged)
    cve_results: Dict[str, Tuple[bool, bool]] = field(default_factory=dict)
    #: CVEs the base detected but the merged spec let run — any entry
    #: here refuses promotion
    escapes: List[str] = field(default_factory=list)

    def describe(self) -> str:
        verdict = (f"PROMOTED gen {self.generation} "
                   f"({self.digest[:16]})" if self.promoted
                   else f"REFUSED: {self.reason}")
        cves = ", ".join(
            f"{cve}={'/'.join('hit' if d else 'miss' for d in pair)}"
            for cve, pair in sorted(self.cve_results.items())) or "-"
        return (f"promotion [{self.device} @ {self.qemu_version}] "
                f"{verdict}\n"
                f"  candidates={self.candidate_count} "
                f"sites={self.merged_sites} "
                f"coverage_gain={self.coverage_gain:.4f} "
                f"edge_gain={self.edge_gain}\n"
                f"  benign differential over {self.benign_rounds} rounds:"
                f" new_fps={self.new_false_positives} "
                f"removed_fps={self.removed_false_positives}\n"
                f"  cve differential (base/merged): {cves}")


def _benign_ops(prof, config: PromotionConfig
                ) -> List[Tuple[str, int, int]]:
    """The shared benign corpus, as (kind, index, seed) triples."""
    rng = random.Random(config.benign_seed)
    ops: List[Tuple[str, int, int]] = []
    for _ in range(config.benign_rounds):
        if prof.rare_ops and rng.random() < config.rare_fraction:
            ops.append(("rare", rng.randrange(len(prof.rare_ops)),
                        rng.randrange(1 << 31)))
        else:
            index = rng.choices(range(len(prof.common_ops)),
                                weights=prof.op_weights)[0]
            ops.append(("common", index, rng.randrange(1 << 31)))
    return ops


def _replay_outcomes(spec: ExecutionSpec, device: str, qemu_version: str,
                     ops: Sequence[Tuple[str, int, int]],
                     backend: str) -> List[str]:
    """Replay the corpus under *spec* in PROTECTION mode.

    Returns one outcome per round: "ok", "halt", or "fault".  After a
    halt the guarded VM is rebuilt so every round is judged from a clean
    instance — outcomes stay per-round comparable across specs.
    """
    from repro.checker import Mode
    from repro.core import deploy
    from repro.errors import DeviceFault
    from repro.vm.machine import SEDSpecHalt
    from repro.workloads.profiles import PROFILES

    prof = PROFILES[device]

    def fresh():
        vm, dev = prof.make_vm(qemu_version, backend=backend)
        deploy(vm, dev, spec, mode=Mode.PROTECTION, backend=backend)
        driver = prof.make_driver(vm)
        prof.prepare(vm, driver)
        return vm, driver

    vm, driver = fresh()
    outcomes: List[str] = []
    for kind, index, seed in ops:
        fns = prof.common_ops if kind == "common" else prof.rare_ops
        fn = fns[index % len(fns)]
        try:
            fn(vm, driver, random.Random(seed))
            outcomes.append("ok")
        except SEDSpecHalt:
            outcomes.append("halt")
            vm, driver = fresh()
        except DeviceFault:
            outcomes.append("fault")
    return outcomes


def _default_cves(device: str) -> Tuple[str, ...]:
    """The device's *seeded* CVE: its first detectable PoC.

    One per device, matching the five-device seeded-CVE matrix the
    acceptance experiments replay.  Callers wanting more set
    ``PromotionConfig.cves`` explicitly.
    """
    from repro.exploits import EXPLOITS
    for exploit in EXPLOITS:
        if exploit.device == device and not exploit.expected_miss:
            return (exploit.cve,)
    return ()


def _cve_detected(spec: ExecutionSpec, cve: str,
                  backend: str) -> bool:
    """Run one PoC against a fresh VM guarded by *spec*.

    The device is built at the CVE's vulnerable ``qemu_version`` —
    running a PoC against a patched build proves nothing.
    """
    from repro.checker import Mode
    from repro.core import deploy
    from repro.exploits import exploit_by_cve, run_exploit
    from repro.workloads.profiles import PROFILES

    exploit = exploit_by_cve(cve)
    prof = PROFILES[exploit.device]
    vm, dev = prof.make_vm(exploit.qemu_version, backend=backend)
    deploy(vm, dev, spec, mode=Mode.PROTECTION, backend=backend)
    return run_exploit(vm, dev, exploit).detected


def promote(registry, device: str, qemu_version: str,
            candidates: Sequence[ExecutionSpec],
            config: Optional[PromotionConfig] = None,
            provenance: str = "") -> PromotionReport:
    """Merge *candidates* into the active generation; promote if safe.

    *registry* is a :class:`~repro.fleet.registry.SpecRegistry`.  On
    success the merged spec is published as the next generation of the
    (device, qemu_version) chain — parents recorded, coverage stats
    attached — and activated, so subsequent ``registry.get`` traffic and
    fleet hot reloads serve it.  On refusal nothing is published and the
    report says why.
    """
    from repro.fleet.registry import spec_digest

    config = config or PromotionConfig()
    report = PromotionReport(device=device, qemu_version=qemu_version,
                             candidate_count=len(candidates))
    if not candidates:
        report.reason = "no candidate specs"
        return report

    base_gen = registry.ensure_base_generation(device, qemu_version)
    base = registry.spec_by_digest(base_gen.digest)
    report.base_digest = base_gen.digest

    try:
        merged = merge_all([base, *candidates])
    except SpecError as exc:
        report.reason = f"incompatible candidates: {exc}"
        return report
    report.merged_sites = int(merged.stats.get("merged_from", 1))
    report.digest = spec_digest(merged)

    # Gate 1: the merge must actually buy coverage.
    report.coverage_gain = coverage_gain(base, merged)
    base_edges = base.observed_edges()
    report.edge_gain = len(merged.observed_edges() - base_edges)
    if report.coverage_gain < config.min_coverage_gain:
        report.reason = (f"coverage gain {report.coverage_gain:.4f} "
                         f"below threshold {config.min_coverage_gain}")
        return report
    if report.edge_gain < config.min_edge_gain:
        report.reason = (f"edge gain {report.edge_gain} below threshold "
                         f"{config.min_edge_gain}")
        return report

    # Gate 2: differential benign replay — the merged spec must not flag
    # a round the active spec allowed (no new false positives).
    from repro.workloads.profiles import PROFILES
    ops = _benign_ops(PROFILES[device], config)
    report.benign_rounds = len(ops)
    base_outcomes = _replay_outcomes(base, device, qemu_version, ops,
                                     config.backend)
    merged_outcomes = _replay_outcomes(merged, device, qemu_version, ops,
                                       config.backend)
    for before, after in zip(base_outcomes, merged_outcomes):
        if after == "halt" and before != "halt":
            report.new_false_positives += 1
        elif before == "halt" and after != "halt":
            report.removed_false_positives += 1
    if report.new_false_positives:
        report.reason = (f"{report.new_false_positives} new false "
                         f"positive(s) in benign differential replay")
        return report

    # Gate 3: differential CVE replay — no detection the active spec
    # makes may be lost (no new escapes).
    cves = config.cves or _default_cves(device)
    for cve in cves:
        detected_base = _cve_detected(base, cve, config.backend)
        detected_merged = _cve_detected(merged, cve, config.backend)
        report.cve_results[cve] = (detected_base, detected_merged)
        if detected_base and not detected_merged:
            report.escapes.append(cve)
    if report.escapes:
        report.reason = ("candidate launders seeded CVE(s): "
                         + ", ".join(report.escapes))
        return report

    gen = registry.publish(
        device, qemu_version, merged,
        provenance=provenance or f"promote:{len(candidates)} candidates",
        parents=(base_gen.digest,
                 *(spec_digest(c) for c in candidates)),
        coverage_gain=report.coverage_gain,
        edge_gain=report.edge_gain)
    if config.activate:
        registry.activate(device, qemu_version, gen.digest)
    report.promoted = True
    report.generation = gen.generation
    report.reason = "all gates passed"
    return report
