"""Execution specification (de)serialization.

Specs are built once (offline, from training runs) and then *deployed* into
hypervisors; this module gives them a stable JSON wire format, including
the DSOD/NBTD expression trees.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.errors import SpecError
from repro.ir import (
    Assign, BinOp, Branch, BufLen, BufLoad, BufStore, BufType, Call, Const,
    Expr, FuncPtrType, Goto, ICall, IntType, Intrinsic, Local, Param,
    Return, StateLayout, StateRef, StateStore, Stmt, Switch, SyncVar,
    Terminator, UnOp,
)
from repro.spec.escfg import (
    CommandAccessTable, ESBlock, ESFunction, ExecutionSpec,
)
from repro.spec.state import BufferInfo, FieldInfo


# -- expressions -------------------------------------------------------------

def expr_to_obj(expr: Optional[Expr]) -> Any:
    if expr is None:
        return None
    if isinstance(expr, Const):
        return ["const", expr.value]
    if isinstance(expr, Local):
        return ["local", expr.name]
    if isinstance(expr, Param):
        return ["param", expr.name]
    if isinstance(expr, StateRef):
        return ["state", expr.field]
    if isinstance(expr, BufLoad):
        return ["bufload", expr.buf, expr_to_obj(expr.index)]
    if isinstance(expr, BufLen):
        return ["buflen", expr.buf, expr.length]
    if isinstance(expr, SyncVar):
        return ["sync", expr.name]
    if isinstance(expr, BinOp):
        return ["bin", expr.op, expr_to_obj(expr.left),
                expr_to_obj(expr.right)]
    if isinstance(expr, UnOp):
        return ["un", expr.op, expr_to_obj(expr.operand)]
    raise SpecError(f"cannot serialize expression {type(expr).__name__}")


def expr_from_obj(obj: Any) -> Optional[Expr]:
    if obj is None:
        return None
    tag = obj[0]
    if tag == "const":
        return Const(obj[1])
    if tag == "local":
        return Local(obj[1])
    if tag == "param":
        return Param(obj[1])
    if tag == "state":
        return StateRef(obj[1])
    if tag == "bufload":
        return BufLoad(obj[1], expr_from_obj(obj[2]))
    if tag == "buflen":
        return BufLen(obj[1], obj[2])
    if tag == "sync":
        return SyncVar(obj[1])
    if tag == "bin":
        return BinOp(obj[1], expr_from_obj(obj[2]), expr_from_obj(obj[3]))
    if tag == "un":
        return UnOp(obj[1], expr_from_obj(obj[2]))
    raise SpecError(f"cannot deserialize expression tag {tag!r}")


# -- statements ----------------------------------------------------------------

def stmt_to_obj(stmt: Stmt) -> Any:
    if isinstance(stmt, Assign):
        return ["assign", stmt.target, expr_to_obj(stmt.value)]
    if isinstance(stmt, StateStore):
        return ["store", stmt.field, expr_to_obj(stmt.value)]
    if isinstance(stmt, BufStore):
        return ["bufstore", stmt.buf, expr_to_obj(stmt.index),
                expr_to_obj(stmt.value)]
    if isinstance(stmt, Intrinsic):
        return ["intrinsic", stmt.kind,
                [expr_to_obj(a) for a in stmt.args]]
    raise SpecError(f"cannot serialize statement {type(stmt).__name__}")


def stmt_from_obj(obj: Any) -> Stmt:
    tag = obj[0]
    if tag == "assign":
        return Assign(obj[1], expr_from_obj(obj[2]))
    if tag == "store":
        return StateStore(obj[1], expr_from_obj(obj[2]))
    if tag == "bufstore":
        return BufStore(obj[1], expr_from_obj(obj[2]), expr_from_obj(obj[3]))
    if tag == "intrinsic":
        return Intrinsic(obj[1], tuple(expr_from_obj(a) for a in obj[2]))
    raise SpecError(f"cannot deserialize statement tag {tag!r}")


# -- terminators ------------------------------------------------------------------

def term_to_obj(term: Optional[Terminator]) -> Any:
    if term is None:
        return None
    if isinstance(term, Goto):
        return ["goto", term.target]
    if isinstance(term, Branch):
        return ["branch", expr_to_obj(term.cond), term.taken,
                term.not_taken]
    if isinstance(term, Switch):
        return ["switch", expr_to_obj(term.scrutinee),
                {str(k): v for k, v in term.table.items()}, term.default]
    if isinstance(term, Call):
        return ["call", term.func, [expr_to_obj(a) for a in term.args],
                term.dest, term.cont]
    if isinstance(term, ICall):
        return ["icall", term.ptr_field,
                [expr_to_obj(a) for a in term.args], term.dest, term.cont]
    if isinstance(term, Return):
        return ["ret", expr_to_obj(term.value)]
    raise SpecError(f"cannot serialize terminator {type(term).__name__}")


def term_from_obj(obj: Any) -> Optional[Terminator]:
    if obj is None:
        return None
    tag = obj[0]
    if tag == "goto":
        return Goto(obj[1])
    if tag == "branch":
        return Branch(expr_from_obj(obj[1]), obj[2], obj[3])
    if tag == "switch":
        return Switch(expr_from_obj(obj[1]),
                      {int(k): v for k, v in obj[2].items()}, obj[3])
    if tag == "call":
        return Call(obj[1], tuple(expr_from_obj(a) for a in obj[2]),
                    obj[3], obj[4])
    if tag == "icall":
        return ICall(obj[1], tuple(expr_from_obj(a) for a in obj[2]),
                     obj[3], obj[4])
    if tag == "ret":
        return Return(expr_from_obj(obj[1]))
    raise SpecError(f"cannot deserialize terminator tag {tag!r}")


# -- state layout -----------------------------------------------------------------

def layout_to_obj(layout: StateLayout) -> Any:
    fields = []
    for decl in layout.fields:
        if isinstance(decl.type, BufType):
            fields.append(["buf", decl.name, decl.type.elem.bits,
                           int(decl.type.elem.signed), decl.type.length,
                           int(decl.register)])
        elif isinstance(decl.type, FuncPtrType):
            fields.append(["ptr", decl.name, int(decl.register)])
        else:
            fields.append(["int", decl.name, decl.type.bits,
                           int(decl.type.signed), int(decl.register)])
    return {"struct": layout.struct_name, "fields": fields}


def layout_from_obj(obj: Any) -> StateLayout:
    layout = StateLayout(obj["struct"])
    for entry in obj["fields"]:
        tag = entry[0]
        if tag == "buf":
            _, name, bits, signed, length, register = entry
            layout.add(name, BufType(IntType(bits, bool(signed)), length),
                       register=bool(register))
        elif tag == "ptr":
            _, name, register = entry
            layout.add(name, FuncPtrType(), register=bool(register))
        else:
            _, name, bits, signed, register = entry
            layout.add(name, IntType(bits, bool(signed)),
                       register=bool(register))
    return layout


# -- blocks ----------------------------------------------------------------------

def block_to_obj(block: ESBlock) -> Any:
    return {
        "address": block.address,
        "dsod": [stmt_to_obj(s) for s in block.dsod],
        "nbtd": term_to_obj(block.nbtd),
        "kind": block.kind,
        "flags": [block.is_entry, block.is_exit, block.is_cmd_decision,
                  block.is_cmd_end],
        "cmd_expr": expr_to_obj(block.cmd_expr),
    }


def block_from_obj(func: str, label: str, obj: Any) -> ESBlock:
    flags = obj["flags"]
    return ESBlock(
        address=obj["address"], func=func, label=label,
        dsod=[stmt_from_obj(s) for s in obj["dsod"]],
        nbtd=term_from_obj(obj["nbtd"]), kind=obj["kind"],
        is_entry=flags[0], is_exit=flags[1],
        is_cmd_decision=flags[2], is_cmd_end=flags[3],
        cmd_expr=expr_from_obj(obj["cmd_expr"]))


def copy_block(block: ESBlock) -> ESBlock:
    """Deep copy through the wire encoding: the copy shares no mutable
    structure (dsod list, terminator, switch table) with the original."""
    return block_from_obj(block.func, block.label, block_to_obj(block))


# -- whole specification --------------------------------------------------------------

def spec_to_json(spec: ExecutionSpec) -> str:
    functions = {}
    for name, es_func in spec.functions.items():
        functions[name] = {
            "entry": es_func.entry,
            "params": list(es_func.params),
            "blocks": {label: block_to_obj(b)
                       for label, b in es_func.blocks.items()},
        }
    payload = {
        "device": spec.device,
        "functions": functions,
        "entry_handlers": spec.entry_handlers,
        "field_info": {n: [f.bits, f.signed, f.is_funcptr]
                       for n, f in spec.field_info.items()},
        "buffer_info": {n: [b.elem_bits, b.length]
                        for n, b in spec.buffer_info.items()},
        "layout": layout_to_obj(spec.layout) if spec.layout else None,
        "branch_observed": {str(k): sorted(v)
                            for k, v in spec.branch_observed.items()},
        "switch_targets": {str(k): sorted(v)
                           for k, v in spec.switch_targets.items()},
        "icall_targets": {str(k): sorted(v)
                          for k, v in spec.icall_targets.items()},
        "visited_blocks": sorted(spec.visited_blocks),
        "cmd_access": {str(k): sorted(v)
                       for k, v in spec.cmd_access.table.items()},
        "func_addr": spec.func_addr,
        "addr_to_block": {str(k): list(v)
                          for k, v in spec.addr_to_block.items()},
        "sync_locals": {k: sorted(v) for k, v in spec.sync_locals.items()},
        "stats": spec.stats,
    }
    return json.dumps(payload)


def spec_from_json(text: str) -> ExecutionSpec:
    raw = json.loads(text)
    spec = ExecutionSpec(device=raw["device"])
    for name, fobj in raw["functions"].items():
        es_func = ESFunction(name, fobj["entry"], tuple(fobj["params"]))
        for label, bobj in fobj["blocks"].items():
            es_func.blocks[label] = block_from_obj(name, label, bobj)
        spec.functions[name] = es_func
    spec.entry_handlers = dict(raw["entry_handlers"])
    spec.field_info = {
        n: FieldInfo(n, v[0], v[1], v[2])
        for n, v in raw["field_info"].items()}
    spec.buffer_info = {
        n: BufferInfo(n, v[0], v[1]) for n, v in raw["buffer_info"].items()}
    spec.layout = (layout_from_obj(raw["layout"])
                   if raw.get("layout") else None)
    spec.branch_observed = {
        int(k): {bool(x) for x in v}
        for k, v in raw["branch_observed"].items()}
    spec.switch_targets = {
        int(k): set(v) for k, v in raw["switch_targets"].items()}
    spec.icall_targets = {
        int(k): set(v) for k, v in raw["icall_targets"].items()}
    spec.visited_blocks = set(raw["visited_blocks"])
    spec.cmd_access = CommandAccessTable(
        {int(k): set(v) for k, v in raw["cmd_access"].items()})
    spec.func_addr = {k: int(v) for k, v in raw["func_addr"].items()}
    spec.addr_to_func = {v: k for k, v in spec.func_addr.items()}
    spec.addr_to_block = {
        int(k): (v[0], v[1]) for k, v in raw["addr_to_block"].items()}
    spec.sync_locals = {
        k: frozenset(v) for k, v in raw["sync_locals"].items()}
    spec.stats = dict(raw["stats"])
    return spec
