"""The Recorder: the explicit, threaded handle all instrumentation uses.

Design rule (see DESIGN.md §5): there is **no global metrics state**.  A
component is observable iff a :class:`Recorder` was handed to it — the
checker via ``ESChecker(recorder=...)``, the device machine via
``Machine.set_recorder``, the fleet via ``FleetSupervisor(recorder=...)``.
With no recorder attached every instrumentation point is a single
``is None`` test, so telemetry is default-off and free.

Hot paths never pay label hashing per event: they resolve a
:class:`~repro.telemetry.metrics.Counter`/:class:`Histogram` handle once
(at deploy/attach time) and call ``inc``/``observe`` directly.  The
``inc``/``observe``/``span`` convenience methods on the recorder itself
are for cold paths and tests.

Span timers take their clock from the recorder.  The default clock is
``time.perf_counter_ns`` (wall); pass a simulated clock (e.g. a lambda
reading the substrate's cycle counters) to get deterministic spans —
cycles *are* nanoseconds at the nominal 1 GHz simulated rate.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from repro.telemetry.metrics import (
    DEFAULT_NS_BUCKETS, Counter, Histogram, HistogramSnapshot, MetricKey,
    TelemetrySnapshot, labels_key,
)

Clock = Callable[[], int]


class Span:
    """Context manager timing one region into a histogram."""

    __slots__ = ("_hist", "_clock", "_start")

    def __init__(self, hist: Histogram, clock: Clock):
        self._hist = hist
        self._clock = clock
        self._start = 0

    def __enter__(self) -> "Span":
        self._start = self._clock()
        return self

    def __exit__(self, *exc) -> None:
        self._hist.observe(self._clock() - self._start)


class Recorder:
    """One named bag of metrics, explicitly threaded — never global."""

    __slots__ = ("name", "clock", "_counters", "_histograms", "_flushes")

    def __init__(self, name: str = "", clock: Optional[Clock] = None):
        self.name = name
        self.clock: Clock = clock if clock is not None \
            else time.perf_counter_ns
        self._counters: Dict[MetricKey, Counter] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}
        #: Instrument bundles that stage events locally (plain int adds
        #: and list appends beat Counter/Histogram updates on hot paths)
        #: register a callback here; ``snapshot`` drains them first.
        self._flushes: list = []

    # -- handle resolution (cold path; call once, keep the handle) ---------

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, labels_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter(name, key[1])
        return counter

    def histogram(self, name: str,
                  bounds: Tuple[int, ...] = DEFAULT_NS_BUCKETS,
                  **labels: object) -> Histogram:
        key = (name, labels_key(labels))
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram(name, key[1], bounds)
        return hist

    # -- cold-path conveniences ---------------------------------------------

    def inc(self, name: str, n: int = 1, **labels: object) -> None:
        self.counter(name, **labels).inc(n)

    def observe(self, name: str, value: int, **labels: object) -> None:
        self.histogram(name, **labels).observe(value)

    def span(self, name: str,
             bounds: Tuple[int, ...] = DEFAULT_NS_BUCKETS,
             **labels: object) -> Span:
        return Span(self.histogram(name, bounds, **labels), self.clock)

    # -- snapshots -----------------------------------------------------------

    def add_flush(self, callback: Callable[[], None]) -> None:
        """Register a staging-drain callback, run before every snapshot."""
        if callback not in self._flushes:
            self._flushes.append(callback)

    def flush(self) -> None:
        """Drain all staged instrument state into the live metrics."""
        for callback in self._flushes:
            callback()

    def snapshot(self) -> TelemetrySnapshot:
        """Freeze current values; later recording never mutates it."""
        self.flush()
        counters = {key: c.value for key, c in self._counters.items()}
        histograms: Dict[MetricKey, HistogramSnapshot] = {
            key: h.snapshot() for key, h in self._histograms.items()}
        return TelemetrySnapshot(counters=counters, histograms=histograms)
