"""Telemetry primitives: counters, fixed-bucket histograms, snapshots.

Zero dependencies, no global mutable state.  Live metrics (:class:`Counter`,
:class:`Histogram`) are cheap mutable cells owned by a
:class:`~repro.telemetry.recorder.Recorder`; :meth:`Recorder.snapshot`
freezes them into immutable value objects that survive later recording
untouched and merge associatively:

    merge_snapshots(r1.snapshot(), r2.snapshot())
        == snapshot of one recorder that saw all of r1's and r2's events

Histograms use *fixed* bucket boundaries (``le`` semantics, like
Prometheus): a value lands in the first bucket whose upper bound is >= the
value, with one implicit +Inf overflow bucket.  Fixed boundaries are what
make snapshots mergeable without resampling; percentiles are nearest-rank
over the cumulative bucket counts and answer with the bucket's upper bound
(the overflow bucket answers with the observed maximum).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import ReproError


class TelemetryError(ReproError):
    """Misused telemetry API (mismatched buckets, bad boundaries)."""


#: A metric identity: name plus its label set, order-independent.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]

#: Default span boundaries in nanoseconds: 250ns .. 1s, roughly 1-2.5-5
#: per decade — wide enough for a compiled checker round (~tens of us)
#: and a reference-backend round (~hundreds of us) to land mid-range.
DEFAULT_NS_BUCKETS: Tuple[int, ...] = (
    250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
    100_000_000, 1_000_000_000,
)

#: Default boundaries for simulated-clock spans (cycles).  At the
#: substrate's nominal 1 GHz a cycle is one simulated nanosecond, so
#: these cover a single vmexit (~300 cycles) up to a long DMA command.
DEFAULT_CYCLE_BUCKETS: Tuple[int, ...] = (
    500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    250_000, 500_000, 1_000_000, 2_500_000, 10_000_000,
)

#: Small-integer boundaries (queue depths, retry counts).
DEFAULT_DEPTH_BUCKETS: Tuple[int, ...] = (0, 1, 2, 4, 8, 16, 32, 64)


def labels_key(labels: Mapping[str, object]) -> Tuple[Tuple[str, str], ...]:
    """Canonical, hashable form of a label mapping."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count.  ``inc`` is the hot path: one
    attribute add, no locks (recorders are process-local and the
    substrate is single-threaded per recorder)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str,
                 labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Histogram:
    """Fixed-boundary histogram with ``le`` bucket semantics."""

    __slots__ = ("name", "labels", "bounds", "counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str,
                 labels: Tuple[Tuple[str, str], ...] = (),
                 bounds: Tuple[int, ...] = DEFAULT_NS_BUCKETS):
        bounds = tuple(bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise TelemetryError(
                f"histogram {name!r} needs strictly increasing, non-empty "
                f"bucket boundaries")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        #: one slot per boundary plus the +Inf overflow slot
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, value: int) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_many(self, values) -> None:
        """Batch observe — the drain path for staged sample buffers."""
        if not values:
            return
        counts = self.counts
        bounds = self.bounds
        index = bisect_left
        total = 0
        for value in values:
            counts[index(bounds, value)] += 1
            total += value
        self.count += len(values)
        self.total += total
        lo = min(values)
        hi = max(values)
        if self.min is None or lo < self.min:
            self.min = lo
        if self.max is None or hi > self.max:
            self.max = hi

    def snapshot(self) -> "HistogramSnapshot":
        return HistogramSnapshot(
            name=self.name, labels=self.labels, bounds=self.bounds,
            counts=tuple(self.counts), count=self.count, total=self.total,
            min=self.min, max=self.max)


def _percentile(bounds: Tuple[int, ...], counts: Tuple[int, ...],
                count: int, observed_max: Optional[int],
                q: float) -> float:
    """Nearest-rank percentile over cumulative bucket counts."""
    if count == 0:
        return 0.0
    rank = max(1, -(-int(q * count * 1_000_000) // 1_000_000))  # ceil
    if rank > count:
        rank = count
    cumulative = 0
    for i, c in enumerate(counts):
        cumulative += c
        if cumulative >= rank:
            if i < len(bounds):
                return float(bounds[i])
            return float(observed_max if observed_max is not None else 0)
    return float(observed_max if observed_max is not None else 0)


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable view of one histogram at snapshot time."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    bounds: Tuple[int, ...]
    counts: Tuple[int, ...]
    count: int
    total: int
    min: Optional[int]
    max: Optional[int]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile observation."""
        return _percentile(self.bounds, self.counts, self.count, self.max,
                           q)


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Everything one recorder (or a merge of several) had counted.

    The mappings are plain dicts for ergonomic lookup but are owned
    exclusively by the snapshot — recorders copy on snapshot, mergers
    build fresh dicts — so treat them as frozen.
    """

    counters: Mapping[MetricKey, int]
    histograms: Mapping[MetricKey, HistogramSnapshot]

    def counter(self, name: str, **labels: object) -> int:
        return self.counters.get((name, labels_key(labels)), 0)

    def histogram(self, name: str,
                  **labels: object) -> Optional[HistogramSnapshot]:
        return self.histograms.get((name, labels_key(labels)))

    def counters_named(self, name: str) -> Dict[MetricKey, int]:
        """All label variants of one counter name."""
        return {k: v for k, v in self.counters.items() if k[0] == name}

    def label_values(self, name: str, label: str) -> Dict[str, int]:
        """Sum of a counter grouped by one label's values."""
        grouped: Dict[str, int] = {}
        for (metric, labels), value in self.counters.items():
            if metric != name:
                continue
            for key, val in labels:
                if key == label:
                    grouped[val] = grouped.get(val, 0) + value
        return grouped

    @property
    def empty(self) -> bool:
        return not self.counters and not self.histograms


EMPTY_SNAPSHOT = TelemetrySnapshot(counters={}, histograms={})


def _merge_histograms(a: HistogramSnapshot,
                      b: HistogramSnapshot) -> HistogramSnapshot:
    if a.bounds != b.bounds:
        raise TelemetryError(
            f"cannot merge histogram {a.name!r}: bucket boundaries differ")
    mins = [m for m in (a.min, b.min) if m is not None]
    maxs = [m for m in (a.max, b.max) if m is not None]
    return HistogramSnapshot(
        name=a.name, labels=a.labels, bounds=a.bounds,
        counts=tuple(x + y for x, y in zip(a.counts, b.counts)),
        count=a.count + b.count, total=a.total + b.total,
        min=min(mins) if mins else None,
        max=max(maxs) if maxs else None)


def merge_snapshots(snapshots: Iterable[TelemetrySnapshot]
                    ) -> TelemetrySnapshot:
    """Associative, order-independent merge: summed counters, summed
    histogram buckets (boundaries must agree per metric)."""
    counters: Dict[MetricKey, int] = {}
    histograms: Dict[MetricKey, HistogramSnapshot] = {}
    for snap in snapshots:
        for key, value in snap.counters.items():
            counters[key] = counters.get(key, 0) + value
        for key, hist in snap.histograms.items():
            existing = histograms.get(key)
            histograms[key] = (hist if existing is None
                               else _merge_histograms(existing, hist))
    return TelemetrySnapshot(counters=counters, histograms=histograms)
