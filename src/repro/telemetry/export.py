"""Snapshot exporters: JSON-lines files and Prometheus-style text.

Both operate on immutable :class:`TelemetrySnapshot` values, so an export
is always a consistent point-in-time view regardless of what the live
recorders do meanwhile.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, Tuple

from repro.telemetry.metrics import HistogramSnapshot, TelemetrySnapshot


def _labels_dict(labels: Tuple[Tuple[str, str], ...]) -> Dict[str, str]:
    return dict(labels)


def iter_jsonl(snapshot: TelemetrySnapshot) -> Iterator[str]:
    """One JSON object per line per metric, counters then histograms,
    sorted by (name, labels) so exports diff cleanly."""
    for (name, labels), value in sorted(snapshot.counters.items()):
        yield json.dumps({
            "type": "counter", "name": name,
            "labels": _labels_dict(labels), "value": value,
        }, sort_keys=True)
    for (name, labels), hist in sorted(snapshot.histograms.items()):
        yield json.dumps({
            "type": "histogram", "name": name,
            "labels": _labels_dict(labels),
            "bounds": list(hist.bounds), "counts": list(hist.counts),
            "count": hist.count, "sum": hist.total,
            "min": hist.min, "max": hist.max,
            "p50": hist.percentile(0.50), "p95": hist.percentile(0.95),
            "p99": hist.percentile(0.99),
        }, sort_keys=True)


def write_jsonl(snapshot: TelemetrySnapshot, path: str) -> int:
    """Write the snapshot as JSON-lines; returns the line count."""
    lines = list(iter_jsonl(snapshot))
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


# -- Prometheus-style text exposition ---------------------------------------

def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{_prom_name(k)}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_histogram(name: str, labels: Tuple[Tuple[str, str], ...],
                    hist: HistogramSnapshot) -> Iterator[str]:
    cumulative = 0
    for bound, count in zip(hist.bounds, hist.counts):
        cumulative += count
        le = 'le="{}"'.format(bound)
        yield f"{name}_bucket{_prom_labels(labels, le)} {cumulative}"
    inf = 'le="+Inf"'
    yield f"{name}_bucket{_prom_labels(labels, inf)} {hist.count}"
    yield f"{name}_sum{_prom_labels(labels)} {hist.total}"
    yield f"{name}_count{_prom_labels(labels)} {hist.count}"
    # Precomputed quantiles (summary-style companion series): dashboards
    # watching an SLO want p99 directly, without a PromQL
    # histogram_quantile over bucket series.
    for q, label in ((0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")):
        quantile = f'quantile="{label}"'
        yield (f"{name}_quantile{_prom_labels(labels, quantile)} "
               f"{hist.percentile(q)}")


def prometheus_text(snapshot: TelemetrySnapshot) -> str:
    """Prometheus exposition-format dump of the snapshot."""
    lines = []
    seen_types = set()
    for (name, labels), value in sorted(snapshot.counters.items()):
        prom = _prom_name(name)
        if prom not in seen_types:
            seen_types.add(prom)
            lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom}{_prom_labels(labels)} {value}")
    for (name, labels), hist in sorted(snapshot.histograms.items()):
        prom = _prom_name(name)
        if prom not in seen_types:
            seen_types.add(prom)
            lines.append(f"# TYPE {prom} histogram")
        lines.extend(_prom_histogram(prom, labels, hist))
    return "\n".join(lines) + ("\n" if lines else "")
