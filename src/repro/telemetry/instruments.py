"""Instrument bundles: pre-resolved metric handles per subsystem.

Hot paths must not pay label hashing per event, so each instrumented
component builds one of these bundles when a recorder is attached and
afterwards touches only plain ``Counter``/``Histogram`` handles (attribute
adds).  With no recorder the component holds ``None`` and every
instrumentation point is a single identity test.

Deliberately no top-level imports from the instrumented packages — the
checker/interp/fleet modules import *this* module (lazily, at attach
time), so anything they own is imported inside the bundle constructors.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.telemetry.metrics import (
    DEFAULT_CYCLE_BUCKETS, DEFAULT_DEPTH_BUCKETS, DEFAULT_NS_BUCKETS,
)
from repro.telemetry.recorder import Recorder


#: Drain staged histogram samples after this many rounds so buffers stay
#: bounded even if nobody snapshots for millions of rounds.
_DRAIN_EVERY = 4096


class CheckerTelemetry:
    """Per-checker handles: strategy check counts, violation causes,
    ns-per-round and ns-per-check histograms.

    ``record_round`` consumes the finished :class:`CheckReport` (whose
    per-strategy check counters both backends maintain identically), so
    the enabled-telemetry cost is O(1) per I/O round regardless of how
    many blocks the walk visited.  The common all-clear round touches
    only plain slot ints and two list appends; everything is drained
    into the recorder's Counter/Histogram objects by ``flush`` — which
    the recorder runs before every snapshot — or every ``_DRAIN_EVERY``
    rounds, whichever comes first.
    """

    __slots__ = ("_recorder", "_labels", "rounds", "incomplete", "checks",
                 "actions", "round_ns", "ns_per_check", "_anomalies",
                 "_allow_action", "_allow", "n_rounds", "n_param",
                 "n_indirect", "n_cond", "n_nonallow", "_elapsed",
                 "_nchecks")

    def __init__(self, recorder: Recorder, device: str, backend: str):
        from repro.checker.anomalies import Action, Strategy

        self._recorder = recorder
        self._labels = {"device": device, "backend": backend}
        labels = self._labels
        self.rounds = recorder.counter("checker.rounds", **labels)
        self.incomplete = recorder.counter("checker.incomplete_walks",
                                           **labels)
        self.checks = {
            s: recorder.counter("checker.checks", strategy=s.value,
                                **labels)
            for s in Strategy
        }
        self.actions = {
            a: recorder.counter("checker.actions", action=a.value,
                                **labels)
            for a in Action
        }
        self.round_ns = recorder.histogram("checker.round_ns",
                                           DEFAULT_NS_BUCKETS, **labels)
        self.ns_per_check = recorder.histogram(
            "checker.ns_per_check", DEFAULT_NS_BUCKETS, **labels)
        #: (strategy value, kind) -> Counter, resolved lazily: anomaly
        #: kinds are open-ended and rare.
        self._anomalies: Dict[Tuple[str, str], object] = {}
        self._allow_action = Action.ALLOW
        self._allow = self.actions[Action.ALLOW]
        # Staged per-round state, drained by flush().
        self.n_rounds = 0
        self.n_param = 0
        self.n_indirect = 0
        self.n_cond = 0
        self.n_nonallow = 0
        self._elapsed: list = []
        self._nchecks: list = []
        recorder.add_flush(self.flush)

    def record_round(self, report, elapsed_ns: int) -> None:
        p = report.param_checks
        i = report.indirect_checks
        c = report.conditional_checks
        self.n_rounds += 1
        self.n_param += p
        self.n_indirect += i
        self.n_cond += c
        elapsed = self._elapsed
        elapsed.append(elapsed_ns)
        self._nchecks.append(p + i + c)
        if (report.action is not self._allow_action or report.anomalies
                or report.incomplete):
            self._record_rare(report)
        if len(elapsed) >= _DRAIN_EVERY:
            self._drain()

    def flush(self) -> None:
        """Fold staged state into the recorder-owned metrics."""
        from repro.checker.anomalies import Strategy

        self._drain()
        n = self.n_rounds
        if not n:
            return
        self.rounds.value += n
        self.checks[Strategy.PARAMETER].value += self.n_param
        self.checks[Strategy.INDIRECT_JUMP].value += self.n_indirect
        self.checks[Strategy.CONDITIONAL_JUMP].value += self.n_cond
        self._allow.value += n - self.n_nonallow
        self.n_rounds = 0
        self.n_param = self.n_indirect = self.n_cond = 0
        self.n_nonallow = 0

    def _drain(self) -> None:
        elapsed = self._elapsed
        if not elapsed:
            return
        self.round_ns.observe_many(elapsed)
        per_check = [e // n for e, n in zip(elapsed, self._nchecks) if n]
        self.ns_per_check.observe_many(per_check)
        elapsed.clear()
        self._nchecks.clear()

    def _record_rare(self, report) -> None:
        if report.action is not self._allow_action:
            self.n_nonallow += 1
            self.actions[report.action].value += 1
        if report.incomplete:
            self.incomplete.value += 1
        for anomaly in report.anomalies:
            key = (anomaly.strategy.value, anomaly.kind)
            counter = self._anomalies.get(key)
            if counter is None:
                counter = self._recorder.counter(
                    "checker.anomalies", strategy=key[0], kind=key[1],
                    **self._labels)
                self._anomalies[key] = counter
            counter.inc()


class MachineTelemetry:
    """Per-device-machine handles: I/O rounds, blocks executed, faults.

    Stages into plain slot ints like :class:`CheckerTelemetry`; the
    registered ``flush`` folds them into the recorder's counters.
    """

    __slots__ = ("_recorder", "_labels", "io_rounds", "blocks", "_faults",
                 "n_rounds", "n_blocks")

    def __init__(self, recorder: Recorder, device: str):
        self._recorder = recorder
        self._labels = {"device": device}
        self.io_rounds = recorder.counter("interp.io_rounds",
                                          **self._labels)
        self.blocks = recorder.counter("interp.blocks", **self._labels)
        self._faults: Dict[str, object] = {}
        self.n_rounds = 0
        self.n_blocks = 0
        recorder.add_flush(self.flush)

    def record_round(self, steps: int) -> None:
        self.n_rounds += 1
        self.n_blocks += steps

    def record_fault(self, kind: str, steps: int) -> None:
        self.n_rounds += 1
        self.n_blocks += steps
        counter = self._faults.get(kind)
        if counter is None:
            counter = self._recorder.counter("interp.faults", kind=kind,
                                             **self._labels)
            self._faults[kind] = counter
        counter.inc()

    def flush(self) -> None:
        if self.n_rounds:
            self.io_rounds.value += self.n_rounds
            self.blocks.value += self.n_blocks
            self.n_rounds = 0
            self.n_blocks = 0


class PacketTelemetry:
    """IPT packet accounting, shared by the tracer (``dir=emitted``) and
    the decoder (``dir=decoded``)."""

    __slots__ = ("_recorder", "_dir", "_kinds", "rounds", "faulted")

    def __init__(self, recorder: Recorder, direction: str):
        self._recorder = recorder
        self._dir = direction
        self._kinds: Dict[str, object] = {}
        self.rounds = recorder.counter("ipt.rounds", dir=direction)
        self.faulted = recorder.counter("ipt.rounds_faulted",
                                        dir=direction)

    def count(self, packet) -> None:
        self.count_kind(type(packet).__name__)

    def count_kind(self, kind: str) -> None:
        """Count by kind name directly — the raw byte-level decoder never
        materializes packet objects for the common path."""
        counter = self._kinds.get(kind)
        if counter is None:
            counter = self._recorder.counter("ipt.packets", kind=kind,
                                             dir=self._dir)
            self._kinds[kind] = counter
        counter.inc()


class FleetTelemetry:
    """Supervisor-side fleet handles: per-tenant/per-worker latency,
    queue depth, quarantines, respawns, detections by strategy."""

    __slots__ = ("_recorder", "_depth", "_request_cycles", "_requests",
                 "_worker_cycles", "_detections", "_quarantines",
                 "_policy_responses",
                 "worker_respawns", "instance_respawns", "lost",
                 "duplicates", "trace_gaps", "infra_failures", "shed",
                 "circuit_opens", "watchdog_kills", "spec_reloads",
                 "retrain_enqueued", "promotions", "promotion_refusals",
                 "policy_reloads", "migrations")

    def __init__(self, recorder: Recorder):
        self._recorder = recorder
        self._depth: Dict[int, object] = {}
        self._request_cycles: Dict[str, object] = {}
        self._requests: Dict[Tuple[str, str], object] = {}
        self._worker_cycles: Dict[int, object] = {}
        self._detections: Dict[Tuple[str, str], object] = {}
        self._quarantines: Dict[str, object] = {}
        self.worker_respawns = recorder.counter("fleet.worker_respawns")
        self.instance_respawns = recorder.counter(
            "fleet.instance_respawns")
        self.lost = recorder.counter("fleet.lost_requests")
        self.duplicates = recorder.counter("fleet.duplicate_results")
        # Degradation counters: infrastructure outcomes, kept separate
        # from the security counters above by name.
        self.trace_gaps = recorder.counter("fleet.trace_gaps")
        self.infra_failures = recorder.counter("fleet.infra_failures")
        self.shed = recorder.counter("fleet.shed_requests")
        self.circuit_opens = recorder.counter("fleet.circuit_opens")
        self.watchdog_kills = recorder.counter("fleet.watchdog_kills")
        # Spec lifecycle: generation swaps and the feedback loop back
        # into training.
        self.spec_reloads = recorder.counter("fleet.spec_reloads")
        self.retrain_enqueued = recorder.counter(
            "fleet.retrain_enqueued")
        self.promotions = recorder.counter("fleet.spec_promotions")
        self.promotion_refusals = recorder.counter(
            "fleet.spec_promotion_refusals")
        # Tenant-policy lifecycle: hot swaps, graduated-ladder responses
        # (labeled per policy id), and live migrations.
        self._policy_responses: Dict[Tuple[str, str], object] = {}
        self.policy_reloads = recorder.counter("fleet.policy_reloads")
        self.migrations = recorder.counter("fleet.migrations")

    def record_dispatch(self, worker_id: int, depth: int) -> None:
        hist = self._depth.get(worker_id)
        if hist is None:
            hist = self._recorder.histogram(
                "fleet.queue_depth", DEFAULT_DEPTH_BUCKETS,
                worker=worker_id)
            self._depth[worker_id] = hist
        hist.observe(depth)

    def record_result(self, result) -> None:
        """One BatchResult's worth of per-tenant/per-worker accounting.
        ``result.op_cycles`` carries simulated cycles per completed
        request — at the nominal 1 GHz clock, cycles are nanoseconds."""
        tenant = result.tenant
        for outcome, n in (("completed", result.completed),
                           ("rejected", result.rejected),
                           ("fault", result.faults),
                           ("detected", result.detections)):
            if not n:
                continue
            key = (tenant, outcome)
            counter = self._requests.get(key)
            if counter is None:
                counter = self._recorder.counter(
                    "fleet.requests", tenant=tenant, outcome=outcome)
                self._requests[key] = counter
            counter.inc(n)
        hist = self._request_cycles.get(tenant)
        if hist is None:
            hist = self._recorder.histogram(
                "fleet.request_cycles", DEFAULT_CYCLE_BUCKETS,
                tenant=tenant)
            self._request_cycles[tenant] = hist
        for cycles in result.op_cycles:
            hist.observe(cycles)
        counter = self._worker_cycles.get(result.worker_id)
        if counter is None:
            counter = self._recorder.counter("fleet.worker_cycles",
                                             worker=result.worker_id)
            self._worker_cycles[result.worker_id] = counter
        counter.inc(result.cycles)
        if result.instance_respawns:
            self.instance_respawns.inc(result.instance_respawns)
        if result.trace_gaps:
            self.trace_gaps.inc(result.trace_gaps)
        if result.infra_failures:
            self.infra_failures.inc(result.infra_failures)
        if result.shed:
            self.shed.inc(result.shed)
        if result.circuit_opens:
            self.circuit_opens.inc(result.circuit_opens)

    def record_policy(self, result) -> None:
        """One BatchResult's graduated-ladder responses, labeled by the
        resolved policy id — the per-policy breakdown ``repro stats``
        surfaces (throttles/restores/fences per policy, mirroring the
        per-strategy detection labels)."""
        policy_id = result.policy_id
        if not policy_id:
            return
        for response, n in (("throttle", result.policy_throttles),
                            ("restore", result.policy_restores),
                            ("fence", result.policy_fences)):
            if not n:
                continue
            key = (policy_id, response)
            counter = self._policy_responses.get(key)
            if counter is None:
                counter = self._recorder.counter(
                    "fleet.policy_responses", policy=policy_id,
                    response=response)
                self._policy_responses[key] = counter
            counter.inc(n)

    def record_report(self, tenant: str, report) -> None:
        for strategy in {a.strategy for a in report.anomalies}:
            key = (tenant, strategy.value)
            counter = self._detections.get(key)
            if counter is None:
                counter = self._recorder.counter(
                    "fleet.detections", tenant=tenant,
                    strategy=strategy.value)
                self._detections[key] = counter
            counter.inc()

    def record_quarantine(self, tenant: str) -> None:
        counter = self._quarantines.get(tenant)
        if counter is None:
            counter = self._recorder.counter("fleet.quarantines",
                                             tenant=tenant)
            self._quarantines[tenant] = counter
        counter.inc()


class FaultTelemetry:
    """Injected-fault accounting: one ``faults.injected`` counter per
    site a :class:`~repro.faults.plan.FaultInjector` fires at."""

    __slots__ = ("_recorder", "_sites")

    def __init__(self, recorder: Recorder):
        self._recorder = recorder
        self._sites: Dict[str, object] = {}

    def record(self, site: str) -> None:
        counter = self._sites.get(site)
        if counter is None:
            counter = self._recorder.counter("faults.injected", site=site)
            self._sites[site] = counter
        counter.inc()
