"""Process-local registry: names recorders, aggregates their snapshots.

The registry is a *container*, not an ambient global: whoever runs a
workload creates one, vends recorders from it, threads them into the
components it wants observed, and reads the merged snapshot back.  Two
registries never share state, so tests and fleet workers cannot bleed
metrics into each other.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.telemetry.metrics import (
    EMPTY_SNAPSHOT, TelemetrySnapshot, merge_snapshots,
)
from repro.telemetry.recorder import Clock, Recorder


class TelemetryRegistry:
    """Vends named recorders; merges their snapshots on demand."""

    def __init__(self) -> None:
        self._recorders: Dict[str, Recorder] = {}

    def recorder(self, name: str,
                 clock: Optional[Clock] = None) -> Recorder:
        rec = self._recorders.get(name)
        if rec is None:
            rec = self._recorders[name] = Recorder(name, clock=clock)
        return rec

    def names(self):
        return sorted(self._recorders)

    def snapshots(self) -> Dict[str, TelemetrySnapshot]:
        return {name: rec.snapshot()
                for name, rec in self._recorders.items()}

    def snapshot(self) -> TelemetrySnapshot:
        """One merged view across every recorder in the registry."""
        if not self._recorders:
            return EMPTY_SNAPSHOT
        return merge_snapshots(rec.snapshot()
                               for rec in self._recorders.values())
