"""The workload driver behind ``repro stats``.

Trains a spec, deploys it on a fresh VM with telemetry recorders
threaded into the checker and the device machine, drives benign traffic
until the requested number of checked I/O rounds, and returns the
merged snapshot plus rendering helpers for the CLI's breakdown tables.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.checker import Mode
from repro.telemetry.metrics import TelemetrySnapshot
from repro.telemetry.registry import TelemetryRegistry

#: Display order of the three check strategies.
STRATEGY_ORDER = ("parameter", "indirect_jump", "conditional_jump")


@dataclass
class StatsRun:
    """One instrumented benign session's results."""

    device: str
    backend: str
    rounds: int
    snapshot: TelemetrySnapshot
    per_recorder: Dict[str, TelemetrySnapshot]


def run_stats(device: str = "fdc", rounds: int = 200,
              backend: str = "compiled", qemu_version: str = "99.0.0",
              mode: Mode = Mode.ENHANCEMENT, seed: int = 7,
              chaos_seed: int = None) -> StatsRun:
    """Run an instrumented benign workload of ~*rounds* checked rounds.

    With *chaos_seed* set, a small single-seed chaos trial (see
    :mod:`repro.faults`) runs afterwards against the same telemetry
    registry, so the fault-injection and degradation counters come out
    populated instead of all-zero.
    """
    from repro.core import deploy
    from repro.workloads.profiles import PROFILES, train_device_spec

    registry = TelemetryRegistry()
    spec = train_device_spec(device, qemu_version=qemu_version,
                             backend=backend).spec
    prof = PROFILES[device]
    vm, dev = prof.make_vm(qemu_version, backend=backend)
    deploy(vm, dev, spec, mode=mode, backend=backend,
           recorder=registry.recorder("checker"))
    dev.machine.set_recorder(registry.recorder("interp"))
    attachment = vm.attachments[dev.NAME]
    driver = prof.make_driver(vm)
    rng = random.Random(seed)
    prof.prepare(vm, driver)
    ops = prof.common_ops
    weights = prof.op_weights
    while attachment.checked_rounds < rounds:
        if weights:
            op = rng.choices(ops, weights=weights, k=1)[0]
        else:
            op = rng.choice(ops)
        op(vm, driver, rng)
    if chaos_seed is not None:
        from repro.faults import CampaignConfig, run_seed
        run_seed(CampaignConfig(seeds=(chaos_seed,), devices=(device,),
                                tenants=2, batches_per_tenant=2,
                                ops_per_batch=3),
                 chaos_seed, recorder=registry.recorder("fleet"))
    return StatsRun(device=device, backend=backend,
                    rounds=attachment.checked_rounds,
                    snapshot=registry.snapshot(),
                    per_recorder=registry.snapshots())


# -- table helpers (shared by the CLI and the tests) -------------------------

def strategy_rows(snapshot: TelemetrySnapshot) -> List[Tuple]:
    """Per-strategy (checks performed, violations flagged) rows."""
    checks = snapshot.label_values("checker.checks", "strategy")
    violations = snapshot.label_values("checker.anomalies", "strategy")
    return [(strategy, checks.get(strategy, 0),
             violations.get(strategy, 0))
            for strategy in STRATEGY_ORDER]


def latency_rows(snapshot: TelemetrySnapshot) -> List[Tuple]:
    """Latency percentile rows for every recorded histogram."""
    rows = []
    for (name, labels), hist in sorted(snapshot.histograms.items()):
        if hist.count == 0:
            continue
        rows.append((name, hist.count, int(hist.mean),
                     int(hist.percentile(0.50)),
                     int(hist.percentile(0.95)),
                     int(hist.percentile(0.99)),
                     hist.max if hist.max is not None else 0))
    return rows


#: Fleet-level degradation counters surfaced by ``repro stats``.
DEGRADATION_COUNTERS = (
    "fleet.trace_gaps", "fleet.infra_failures", "fleet.shed_requests",
    "fleet.circuit_opens", "fleet.watchdog_kills",
)


def degradation_rows(snapshot: TelemetrySnapshot) -> List[Tuple]:
    """(counter, total) rows for the degradation pipeline, followed by
    per-site ``faults.injected`` rows.  All-zero in a benign run; the
    chaos arms (``repro stats --chaos-seed`` / ``repro chaos``) fill
    them in."""
    rows = [(name, sum(snapshot.counters_named(name).values()))
            for name in DEGRADATION_COUNTERS]
    injected = snapshot.label_values("faults.injected", "site")
    for site in sorted(injected):
        rows.append((f"faults.injected[{site}]", injected[site]))
    return rows


#: Tenant-policy lifecycle counters surfaced by ``repro stats``.
POLICY_COUNTERS = (
    "fleet.policy_reloads", "fleet.migrations", "fleet.quarantines",
)

#: Graduated-ladder responses, in firing order.
POLICY_RESPONSE_ORDER = ("throttle", "restore", "fence")


def policy_rows(snapshot: TelemetrySnapshot) -> List[Tuple]:
    """(counter, total) rows for the tenant-policy lifecycle, followed
    by a per-policy breakdown of graduated-ladder responses
    (``fleet.policy_responses[<policy>.<response>]``), mirroring how the
    degradation table appends per-site fault rows."""
    rows = [(name, sum(snapshot.counters_named(name).values()))
            for name in POLICY_COUNTERS]
    by_labels: Dict[Tuple[str, str], int] = {}
    for (_, labels), value in snapshot.counters_named(
            "fleet.policy_responses").items():
        pairs = dict(labels)
        key = (pairs.get("policy", ""), pairs.get("response", ""))
        by_labels[key] = by_labels.get(key, 0) + value
    for policy in sorted({policy for policy, _ in by_labels}):
        for response in POLICY_RESPONSE_ORDER:
            value = by_labels.get((policy, response))
            if value:
                rows.append(
                    (f"fleet.policy_responses[{policy}.{response}]",
                     value))
    return rows


#: Admission / SLO counters recorded by the gateway's stats plane.
GATEWAY_COUNTERS = (
    "gateway.admitted", "gateway.quota_rejected", "gateway.queue_shed",
    "gateway.dispatches", "gateway.slo_violations",
    "gateway.tenant_moves",
)


def gateway_rows(snapshot: TelemetrySnapshot) -> List[Tuple]:
    """(counter, total) rows for the admission gateway, summed across
    arrival-pattern labels.  Empty histogram-only snapshots still get
    the zero rows, so the table shape is stable."""
    return [(name, sum(snapshot.counters_named(name).values()))
            for name in GATEWAY_COUNTERS]


def interp_summary(snapshot: TelemetrySnapshot) -> Dict[str, int]:
    """Interpreter-side totals (across label variants)."""
    return {
        "io_rounds": sum(
            snapshot.counters_named("interp.io_rounds").values()),
        "blocks": sum(snapshot.counters_named("interp.blocks").values()),
        "faults": sum(snapshot.counters_named("interp.faults").values()),
    }
