"""Telemetry overhead measurement: the <2% acceptance gate.

Replays a captured benign I/O sequence through the full enforcement
pipeline (``vm._io`` with a deployed ES-Checker) on ONE session.  The
full pipeline is the honest denominator: telemetry rides on rounds that
already pay guest exit + device interpretation + checking, which is
exactly what a production deployment pays.

Measuring the numerator needs care.  The per-round record-path cost is
~1 microsecond against a ~90 microsecond round, and shared hosts show a
multi-percent wall-clock noise floor — an A-vs-A null experiment with
this harness's own pass sizes measured +-2.7% — so directly differencing
off/on pass times cannot resolve a ~1% effect.  Instead the harness
*amplifies* the instrumentation: an ``_Amplified`` shim invokes the real
record path (its own clock pair plus ``record_round``) ``amplify`` times
per round, lifting the signal to ~10% where drift-cancelling ABBA quads
(off, amplified, amplified, off) measure it reliably; dividing the
paired median by the amplification factor recovers the per-round cost.
The interpreter-side cost (two staged slot adds per round) is far below
even the amplified resolution and is measured with a tight loop.
"""

from __future__ import annotations

import random
import statistics
import time
from typing import Tuple


def capture_sequence(device: str = "fdc", qemu_version: str = "99.0.0",
                     backend: str = "compiled", ops: int = 24,
                     seed: int = 7) -> Tuple[tuple, tuple]:
    """Record the (io_key, args) rounds of device bring-up plus *ops*
    benign driver operations, via a spy on ``vm._io``.  Driver
    operations are complete command cycles that return to the idle
    state, so the captured command sequence replays repeatably."""
    from repro.workloads.profiles import PROFILES

    prof = PROFILES[device]
    vm, dev = prof.make_vm(qemu_version, backend=backend)
    driver = prof.make_driver(vm)
    seq = []
    orig = vm._io

    def spy(target, key, args):
        seq.append((key, args))
        return orig(target, key, args)

    vm._io = spy
    prof.prepare(vm, driver)
    prepare_seq = tuple(seq)
    seq.clear()
    rng = random.Random(seed)
    ops_list = prof.common_ops
    weights = prof.op_weights
    for _ in range(ops):
        if weights:
            op = rng.choices(ops_list, weights=weights, k=1)[0]
        else:
            op = rng.choice(ops_list)
        op(vm, driver, rng)
    vm._io = orig
    return prepare_seq, tuple(seq)


class _Amplified:
    """Bench-only shim standing in for a CheckerTelemetry bundle: runs
    the real record path (clock pair + ``record_round``) *factor* times
    per round so its cost rises above the host's noise floor."""

    __slots__ = ("bundle", "clock", "factor")

    def __init__(self, bundle, clock, factor: int):
        self.bundle = bundle
        self.clock = clock
        self.factor = factor

    def record_round(self, report, elapsed_ns) -> None:
        bundle = self.bundle
        clock = self.clock
        for _ in range(self.factor):
            start = clock()
            bundle.record_round(report, clock() - start + elapsed_ns)


def _machine_record_ns(recorder, name: str, rounds: int = 200_000) -> float:
    """Tight-loop cost of the interpreter's inlined staged adds."""
    from repro.telemetry.instruments import MachineTelemetry

    telemetry = MachineTelemetry(recorder, name)
    clock = time.perf_counter_ns
    start = clock()
    for _ in range(rounds):
        telemetry.n_rounds += 1
        telemetry.n_blocks += 55
    return (clock() - start) / rounds


def measure_overhead(device: str = "fdc", backend: str = "compiled",
                     qemu_version: str = "99.0.0", passes: int = 8,
                     reps: int = 3, ops: int = 24, seed: int = 7,
                     amplify: int = 8, spec=None) -> dict:
    """Per-round telemetry cost over the full guarded I/O pipeline,
    via the amplified-differential method (see module docstring).
    Returns the BENCH_telemetry payload body."""
    from repro.checker import Mode
    from repro.core import deploy
    from repro.telemetry.recorder import Recorder
    from repro.telemetry.registry import TelemetryRegistry
    from repro.workloads.profiles import PROFILES, train_device_spec

    if spec is None:
        spec = train_device_spec(device, qemu_version=qemu_version,
                                 backend=backend).spec
    prepare_seq, command_seq = capture_sequence(
        device, qemu_version=qemu_version, backend=backend, ops=ops,
        seed=seed)
    prof = PROFILES[device]
    vm, dev = prof.make_vm(qemu_version, backend=backend)
    deploy(vm, dev, spec, mode=Mode.ENHANCEMENT, backend=backend)
    checker = vm.attachments[dev.NAME].checker
    io = vm._io
    for key, args in prepare_seq:
        io(dev, key, args)

    def replay(times: int = 1) -> int:
        # History is cleared so list growth can't skew later passes.
        checker.history.clear()
        start = time.perf_counter_ns()
        for _ in range(times):
            for key, args in command_seq:
                io(dev, key, args)
        return time.perf_counter_ns() - start

    # Pass 1: a clean instrumented replay for the workload's own stats
    # (per-strategy check counts, round-latency percentiles) — this also
    # warms the telemetry-on path.
    registry = TelemetryRegistry()
    checker.set_recorder(registry.recorder("checker"))
    dev.machine.set_recorder(registry.recorder("interp"))
    replay(reps)
    snapshot = registry.snapshot()
    dev.machine.set_recorder(None)

    # Pass 2: the amplified differential.  A scratch recorder keeps the
    # inflated counts out of the reported snapshot.
    scratch = Recorder("scratch")
    checker.set_recorder(scratch)
    amplified = _Amplified(checker._telemetry, time.perf_counter_ns,
                           amplify)

    def one_pass(on: bool) -> int:
        checker._telemetry = amplified if on else None
        return replay(reps)

    for on in (False, True, False, True):   # warm both paths
        one_pass(on)
    off_ns = []
    delta_ns = []
    for _ in range(passes):     # ABBA quad: linear drift cancels
        a = one_pass(False)
        b = one_pass(True)
        c = one_pass(True)
        d = one_pass(False)
        off_ns.append((a + d) / 2)
        delta_ns.append(((b + c) - (a + d)) / 2)
    checker.set_recorder(None)

    rounds_per_pass = len(command_seq) * reps
    med_off = statistics.median(off_ns)
    off_per_round = med_off / rounds_per_pass
    checker_ns = max(
        0.0, statistics.median(delta_ns) / rounds_per_pass / amplify)
    machine_ns = _machine_record_ns(scratch, dev.NAME)
    overhead_ns = checker_ns + machine_ns
    overhead_pct = overhead_ns / off_per_round * 100.0

    round_hist = None
    for (name, _labels), hist in snapshot.histograms.items():
        if name == "checker.round_ns":
            round_hist = hist
            break
    payload = {
        "device": device,
        "backend": backend,
        "qemu_version": qemu_version,
        "mode": Mode.ENHANCEMENT.value,
        "method": "amplified-differential",
        "amplify": amplify,
        "passes": passes,
        "reps_per_pass": reps,
        "io_rounds_per_pass": rounds_per_pass,
        "telemetry_off": {
            "median_ns": int(med_off),
            "mean_ns": int(statistics.mean(off_ns)),
            "stddev_ns": int(statistics.pstdev(off_ns)),
            "ns_per_round": round(off_per_round, 1),
        },
        "record_path_ns_per_round": {
            "checker": round(checker_ns, 1),
            "machine": round(machine_ns, 1),
        },
        "overhead_ns_per_round": round(overhead_ns, 1),
        "overhead_pct": round(overhead_pct, 3),
        "checks_per_strategy": snapshot.label_values(
            "checker.checks", "strategy"),
    }
    if round_hist is not None and round_hist.count:
        payload["check_round_ns"] = {
            "count": round_hist.count,
            "mean": int(round_hist.mean),
            "p50": round_hist.percentile(0.50),
            "p95": round_hist.percentile(0.95),
            "p99": round_hist.percentile(0.99),
        }
    return payload
