"""repro.telemetry — enforcement-pipeline observability.

Zero-dependency counters/histograms/span timers with explicit
:class:`Recorder` threading (no ambient globals), immutable mergeable
snapshots, and JSON-lines / Prometheus-style exporters.  See DESIGN.md's
telemetry section for the architecture rationale.
"""

from repro.telemetry.metrics import (
    DEFAULT_CYCLE_BUCKETS, DEFAULT_DEPTH_BUCKETS, DEFAULT_NS_BUCKETS,
    EMPTY_SNAPSHOT, Counter, Histogram, HistogramSnapshot, MetricKey,
    TelemetryError, TelemetrySnapshot, labels_key, merge_snapshots,
)
from repro.telemetry.recorder import Clock, Recorder, Span
from repro.telemetry.registry import TelemetryRegistry
from repro.telemetry.export import (
    iter_jsonl, prometheus_text, write_jsonl,
)

__all__ = [
    "Clock",
    "Counter",
    "DEFAULT_CYCLE_BUCKETS",
    "DEFAULT_DEPTH_BUCKETS",
    "DEFAULT_NS_BUCKETS",
    "EMPTY_SNAPSHOT",
    "Histogram",
    "HistogramSnapshot",
    "MetricKey",
    "Recorder",
    "Span",
    "TelemetryError",
    "TelemetryRegistry",
    "TelemetrySnapshot",
    "iter_jsonl",
    "labels_key",
    "merge_snapshots",
    "prometheus_text",
    "write_jsonl",
]
