"""CFG layer: ITC-CFG construction (FlowGuard-style) and coverage."""

from repro.cfg.itc import (
    ITCCFG, ITCNode, build_itc_cfg, build_static, connect_rounds,
)
from repro.cfg.coverage import CoverageReport, edge_union, effective_coverage

__all__ = [
    "ITCCFG", "ITCNode", "build_itc_cfg", "build_static", "connect_rounds",
    "CoverageReport", "edge_union", "effective_coverage",
]
