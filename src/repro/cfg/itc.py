"""ITC-CFG: Indirect-Targets-Connected control-flow graph.

FlowGuard's construction: take the static CFG (precise for direct edges,
but with holes at indirect transfers) and *connect* the holes using the
indirect targets observed in the PT trace.  The result is the graph the CFG
analyzer works on — it knows exactly which conditional and indirect jumps
exist and which targets they legitimately reached during training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.ir import (
    Branch, Call, Goto, ICall, Program, Return, Switch,
)
from repro.ipt.decoder import DecodedRound


@dataclass
class ITCNode:
    """One basic block of the ITC-CFG."""

    address: int
    func: str
    label: str
    kind: str = "plain"   # plain | cond | switch | icall | call | ret
    executed: bool = False


@dataclass
class ITCCFG:
    """The connected graph plus execution (training) annotations."""

    nodes: Dict[int, ITCNode] = field(default_factory=dict)
    #: static direct edges + runtime-connected indirect edges
    edges: Set[Tuple[int, int]] = field(default_factory=set)
    #: edges actually traversed by training samples
    executed_edges: Set[Tuple[int, int]] = field(default_factory=set)
    #: indirect site -> set of observed target addresses
    indirect_targets: Dict[int, Set[int]] = field(default_factory=dict)
    #: conditional site -> set of observed outcomes (True/False)
    branch_outcomes: Dict[int, Set[bool]] = field(default_factory=dict)

    def successors(self, address: int) -> List[int]:
        return sorted(dst for src, dst in self.edges if src == address)

    def executed_nodes(self) -> Set[int]:
        return {a for a, n in self.nodes.items() if n.executed}

    def cond_sites(self) -> List[int]:
        return sorted(a for a, n in self.nodes.items() if n.kind == "cond")

    def indirect_sites(self) -> List[int]:
        return sorted(a for a, n in self.nodes.items()
                      if n.kind in ("switch", "icall"))

    def one_sided_branches(self) -> List[Tuple[int, bool]]:
        """Conditional sites where training saw only one outcome.

        These become the teeth of the conditional-jump check strategy: the
        unobserved side is flagged at runtime.  Returns (address, the
        outcome that was *never* observed).
        """
        result = []
        for addr, outcomes in self.branch_outcomes.items():
            if len(outcomes) == 1:
                seen = next(iter(outcomes))
                result.append((addr, not seen))
        return sorted(result)


def build_static(program: Program) -> ITCCFG:
    """Static CFG skeleton: every block, direct edges, typed nodes."""
    graph = ITCCFG()
    for func in program.functions.values():
        for block in func.iter_blocks():
            term = block.terminator
            if isinstance(term, Branch):
                kind = "cond"
            elif isinstance(term, Switch):
                kind = "switch"
            elif isinstance(term, ICall):
                kind = "icall"
            elif isinstance(term, Call):
                kind = "call"
            elif isinstance(term, Return):
                kind = "ret"
            else:
                kind = "plain"
            graph.nodes[block.address] = ITCNode(
                block.address, func.name, block.label, kind)
    for func in program.functions.values():
        for block in func.iter_blocks():
            term = block.terminator
            for succ_label in term.successors():
                succ = func.block(succ_label)
                graph.edges.add((block.address, succ.address))
            if isinstance(term, Call):
                callee = program.function(term.func)
                entry = callee.block(callee.entry)
                graph.edges.add((block.address, entry.address))
    return graph


def connect_rounds(graph: ITCCFG, program: Program,
                   rounds: Iterable[DecodedRound]) -> ITCCFG:
    """Fold decoded training rounds into the graph (the "connect" step).

    Marks executed nodes/edges, records observed indirect targets, and
    records conditional outcomes (needed for one-sided-branch detection).
    """
    for round_ in rounds:
        prev: Optional[int] = None
        for addr in round_.block_addresses:
            node = graph.nodes.get(addr)
            if node is not None:
                node.executed = True
            if prev is not None:
                graph.executed_edges.add((prev, addr))
                if (prev, addr) not in graph.edges:
                    graph.edges.add((prev, addr))
                prev_node = graph.nodes.get(prev)
                if prev_node is not None and prev_node.kind == "cond":
                    outcome = _branch_outcome(program, prev, addr)
                    if outcome is not None:
                        graph.branch_outcomes.setdefault(
                            prev, set()).add(outcome)
            prev = addr
        for src, target, _kind in round_.indirect_edges:
            graph.indirect_targets.setdefault(src, set()).add(target)
    return graph


def _branch_outcome(program: Program, src_addr: int,
                    dst_addr: int) -> Optional[bool]:
    """Was the src->dst hop the taken or the not-taken side of the branch?"""
    loc = program.addr_to_block.get(src_addr)
    if loc is None:
        return None
    func = program.function(loc[0])
    block = func.block(loc[1])
    term = block.terminator
    if not isinstance(term, Branch):
        return None
    if func.block(term.taken).address == dst_addr:
        return True
    if func.block(term.not_taken).address == dst_addr:
        return False
    return None


def build_itc_cfg(program: Program,
                  rounds: Iterable[DecodedRound]) -> ITCCFG:
    """Full FlowGuard-style pipeline: static skeleton + runtime connection."""
    return connect_rounds(build_static(program), program, rounds)
