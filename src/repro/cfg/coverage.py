"""Path/edge coverage accounting over CFGs.

Used for the paper's *effective coverage* metric (Table III): the ratio of
code paths covered by the execution specification's training set relative
to the paths representing all legitimate behaviours, which the paper
approximates with a one-hour fuzzing run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set, Tuple

Edge = Tuple[int, int]


@dataclass
class CoverageReport:
    """Edge-level coverage of one set relative to a reference set."""

    covered: int
    reference: int

    @property
    def ratio(self) -> float:
        if self.reference == 0:
            return 1.0
        return self.covered / self.reference

    @property
    def percent(self) -> float:
        return 100.0 * self.ratio

    def __str__(self) -> str:
        return f"{self.covered}/{self.reference} edges ({self.percent:.1f}%)"


def effective_coverage(training_edges: Iterable[Edge],
                       legitimate_edges: Iterable[Edge]) -> CoverageReport:
    """Coverage of the training set against the legitimate-behaviour set.

    *legitimate_edges* is the fuzzing-derived approximation of "all paths
    representing legitimate behaviours"; the report says what fraction the
    execution specification's training samples reached.
    """
    legit: Set[Edge] = set(legitimate_edges)
    train: Set[Edge] = set(training_edges)
    return CoverageReport(covered=len(train & legit), reference=len(legit))


def edge_union(*edge_sets: Iterable[Edge]) -> Set[Edge]:
    out: Set[Edge] = set()
    for edges in edge_sets:
        out |= set(edges)
    return out
