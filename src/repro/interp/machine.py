"""IR interpreter: executes compiled device programs.

The machine owns the device's control structure (:class:`StateMemory`),
dispatches extern calls into host helpers, notifies trace sinks, counts
cycles for the performance model, and maintains the flag register whose
overflow bit the parameter check strategy reads.

Two execution backends share this front door:

* ``backend="compiled"`` (default) — each block is lowered once into a
  pre-dispatched closure chain (:mod:`repro.interp.compile`); the
  per-round loop runs direct calls with zero ``isinstance`` tests, and
  sink fan-out is elided entirely while no sinks are attached;
* ``backend="reference"`` — the original tree walker, kept as the oracle
  the differential test suite compares the compiled backend against;
* ``backend="bytecode"`` — functions lowered to a flat array-encoded
  bytecode and assembled into single dispatch-loop frames
  (:mod:`repro.interp.bytecode`); the fastest backend.  When trace
  sinks are attached it borrows the compiled backend's traced block
  bodies for the round, so sink event streams stay identical.

A watchdog (``max_steps``) converts runaway loops — the CVE-2016-7909
failure mode — into a :class:`DeviceFault`, the analogue of a hung QEMU
worker being reaped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import DeviceFault, InterpError
from repro.ir import (
    Assign, BasicBlock, BinOp, Branch, BufLen, BufLoad, BufStore, Call,
    Const, ExternCall, Expr, Function, Goto, ICall, Intrinsic, Local, Param,
    Program, Return, StateMemory, StateRef, StateStore, Switch, SyncVar,
    UnOp,
)
from repro.interp.ops import (
    DEFAULT_EXTERN_COST, STMT_COST, TERM_COST, eval_binop, eval_unop,
)
from repro.interp.sinks import TraceSink

ExternFn = Callable[..., Optional[int]]

BACKENDS = ("compiled", "reference", "bytecode")


@dataclass
class Flags:
    """Minimal flag register: what the parameter check strategy consumes."""

    overflow: bool = False
    last_store_field: str = ""


@dataclass
class _Frame:
    func: Function
    env: Dict[str, int] = field(default_factory=dict)
    params: Dict[str, int] = field(default_factory=dict)


class Machine:
    """Executes one device's IR program against its control structure."""

    def __init__(self, program: Program,
                 state: Optional[StateMemory] = None,
                 max_steps: int = 200_000,
                 max_depth: int = 64,
                 backend: str = "compiled"):
        if not program.frozen:
            raise InterpError("program must be frozen before execution")
        if backend not in BACKENDS:
            raise InterpError(
                f"unknown backend {backend!r}; choose from {BACKENDS}")
        self.program = program
        self.state = state if state is not None else StateMemory(program.layout)
        self.max_steps = max_steps
        self.max_depth = max_depth
        self.backend = backend
        self.flags = Flags()
        self.cycles = 0
        self.steps = 0
        self._sinks: List[TraceSink] = []
        self._externs: Dict[str, ExternFn] = {}
        self._extern_cost: Dict[str, int] = {}
        self._depth = 0
        self._telemetry = None
        self._telemetry_cache = None
        self._fault_hook = None
        if backend == "compiled":
            from repro.interp.compile import compiled_program_for
            self._compiled = compiled_program_for(program)
            self._bytecode = None
        elif backend == "bytecode":
            # Traced rounds run the bytecode artifact's traced runners
            # (sink events emitted inline); the closure artifact is not
            # needed at all.
            from repro.interp.bytecode import bytecode_program_for
            self._bytecode = bytecode_program_for(program)
            self._compiled = None
        else:
            self._compiled = None
            self._bytecode = None

    # -- configuration -----------------------------------------------------

    def add_sink(self, sink: TraceSink) -> TraceSink:
        self._sinks.append(sink)
        sink.attach(self)
        return sink

    def remove_sink(self, sink: TraceSink) -> None:
        self._sinks.remove(sink)

    def bind_extern(self, name: str, fn: ExternFn,
                    cost: int = DEFAULT_EXTERN_COST) -> None:
        self._externs[name] = fn
        self._extern_cost[name] = cost

    def set_funcptr(self, field_name: str, func_name: str) -> None:
        """Point a function-pointer field at a compiled function."""
        self.state.write_field(field_name, self.program.func_addr[func_name])

    def set_recorder(self, recorder) -> None:
        """Opt into telemetry (``None`` detaches).  Recording happens per
        I/O round, not per block, so the interpreter hot loop is
        untouched either way."""
        if recorder is None:
            self._telemetry = None
            return
        cached = self._telemetry_cache
        if cached is not None and cached[0] is recorder:
            self._telemetry = cached[1]
            return
        from repro.telemetry.instruments import MachineTelemetry
        self._telemetry = MachineTelemetry(recorder, self.program.name)
        self._telemetry_cache = (recorder, self._telemetry)

    def set_fault_hook(self, hook) -> None:
        """Install a per-round fault hook (``None`` removes it).

        The hook is called as ``hook(key)`` at the top of each I/O round
        — before any sink opens the round — and may raise an
        infrastructure exception (transient step fault, stall past
        deadline).  Keeping the hook at round granularity leaves the
        compiled per-block hot loop untouched.
        """
        self._fault_hook = hook

    # -- entry points --------------------------------------------------------

    def run_entry(self, key: str, args: Tuple[int, ...] = ()) -> Optional[int]:
        """Run the entry handler for I/O interface *key* (one I/O round)."""
        hook = self._fault_hook
        if hook is not None:
            hook(key)
        func = self.program.entry_for(key)
        for sink in self._sinks:
            sink.on_io_enter(key, args)
        self.steps = 0
        telemetry = self._telemetry
        if telemetry is None:
            result = self._call(func, args)
        else:
            try:
                result = self._call(func, args)
            except DeviceFault as fault:
                telemetry.record_fault(fault.kind, self.steps)
                raise
            # Inlined MachineTelemetry.record_round: staged slot adds.
            telemetry.n_rounds += 1
            telemetry.n_blocks += self.steps
        for sink in self._sinks:
            sink.on_io_exit(key, result)
        return result

    def run_function(self, name: str,
                     args: Tuple[int, ...] = ()) -> Optional[int]:
        """Run an arbitrary compiled function (init routines, tests)."""
        self.steps = 0
        return self._call(self.program.function(name), args)

    # -- core loop -------------------------------------------------------------

    def _call(self, func: Function, args: Tuple[int, ...]) -> Optional[int]:
        if len(args) != len(func.params):
            raise InterpError(
                f"{func.name} expects {len(func.params)} args, got {len(args)}")
        self._depth += 1
        if self._depth > self.max_depth:
            self._depth -= 1
            raise DeviceFault("call stack exhausted",
                              device=self.program.name, kind="stack-overflow")
        try:
            if self._bytecode is not None:
                if self._sinks:
                    return self._bytecode.traced_runners[func.name](
                        self, args)
                return self._bytecode.runners[func.name](self, args)
            if self._compiled is not None:
                return self._exec_blocks_compiled(
                    self._compiled.funcs[func.name],
                    dict(zip(func.params, args)))
            return self._exec_blocks(
                _Frame(func, params=dict(zip(func.params, args))))
        finally:
            self._depth -= 1

    def _exec_blocks_compiled(self, cfunc,
                              params: Dict[str, int]) -> Optional[int]:
        """Compiled-backend driver: direct calls, no isinstance dispatch.

        Sink presence is re-checked per block so sinks attached or removed
        between rounds (tracers, harvest sinks) always see a full round.
        """
        env: Dict[str, int] = {}
        blocks = cfunc.blocks
        label = cfunc.entry
        max_steps = self.max_steps
        while True:
            cblock = blocks[label]
            self.steps += 1
            if self.steps > max_steps:
                raise DeviceFault(
                    f"watchdog: {max_steps} blocks without completing "
                    f"the I/O round (infinite loop?)",
                    device=self.program.name, kind="watchdog")
            if self._sinks:
                for sink in self._sinks:
                    sink.on_block(cblock.func, cblock.block)
                label = cblock.traced(self, env, params)
            else:
                label = cblock.fast(self, env, params)
            if label is None:
                return env.get("__retval__")

    def _exec_blocks(self, frame: _Frame) -> Optional[int]:
        label = frame.func.entry
        while True:
            block = frame.func.block(label)
            self.steps += 1
            if self.steps > self.max_steps:
                raise DeviceFault(
                    f"watchdog: {self.max_steps} blocks without completing "
                    f"the I/O round (infinite loop?)",
                    device=self.program.name, kind="watchdog")
            for sink in self._sinks:
                sink.on_block(frame.func, block)
            for stmt in block.stmts:
                self._exec_stmt(frame, stmt)
            next_label = self._exec_terminator(frame, block)
            if next_label is None:
                return frame.env.get("__retval__")
            label = next_label

    # -- statements ----------------------------------------------------------

    def _exec_stmt(self, frame: _Frame, stmt) -> None:
        self.cycles += STMT_COST
        if isinstance(stmt, Assign):
            frame.env[stmt.target] = self._eval(frame, stmt.value)
        elif isinstance(stmt, StateStore):
            value = self._eval(frame, stmt.value)
            overflowed = self.state.write_field(stmt.field, value)
            self.flags.overflow = overflowed
            self.flags.last_store_field = stmt.field
            for sink in self._sinks:
                sink.on_state_store(stmt.field,
                                    self.state.read_field(stmt.field),
                                    overflowed)
        elif isinstance(stmt, BufStore):
            index = self._eval(frame, stmt.index)
            value = self._eval(frame, stmt.value)
            self.state.write_buf(stmt.buf, index, value)
            for sink in self._sinks:
                sink.on_buf_store(stmt.buf, index, value)
        elif isinstance(stmt, ExternCall):
            fn = self._externs.get(stmt.func)
            if fn is None:
                raise InterpError(f"extern {stmt.func!r} is not bound")
            self.cycles += self._extern_cost.get(stmt.func,
                                                 DEFAULT_EXTERN_COST)
            args = [self._eval(frame, a) for a in stmt.args]
            result = fn(self, *args)
            value = int(result or 0)
            for sink in self._sinks:
                sink.on_extern(frame.func.name, stmt.func, stmt.dest,
                               tuple(args), value)
            if stmt.dest is not None:
                frame.env[stmt.dest] = value
        elif isinstance(stmt, Intrinsic):
            values = tuple(self._eval(frame, a) for a in stmt.args)
            for sink in self._sinks:
                sink.on_intrinsic(stmt.kind, values)
        else:
            raise InterpError(f"unknown statement {type(stmt).__name__}")

    # -- terminators -------------------------------------------------------------

    def _exec_terminator(self, frame: _Frame,
                         block: BasicBlock) -> Optional[str]:
        term = block.terminator
        self.cycles += TERM_COST.get(type(term).__name__, 1)
        if isinstance(term, Goto):
            return term.target
        if isinstance(term, Branch):
            taken = bool(self._eval(frame, term.cond))
            for sink in self._sinks:
                sink.on_branch(block, taken)
            return term.taken if taken else term.not_taken
        if isinstance(term, Switch):
            value = self._eval(frame, term.scrutinee)
            target = term.table.get(value, term.default)
            if not target:
                raise InterpError(
                    f"switch in {frame.func.name}:{block.label} has no arm "
                    f"for {value} and no default")
            target_addr = frame.func.block(target).address
            for sink in self._sinks:
                sink.on_tip(block, target_addr, "switch")
                sink.on_switch(block, value, target_addr)
            return target
        if isinstance(term, Call):
            callee = self.program.function(term.func)
            args = tuple(self._eval(frame, a) for a in term.args)
            for sink in self._sinks:
                sink.on_call(frame.func, callee)
            result = self._call(callee, args)
            if term.dest is not None:
                frame.env[term.dest] = int(result or 0)
            return term.cont
        if isinstance(term, ICall):
            addr = self.state.read_field(term.ptr_field)
            func_name = self.program.addr_to_func.get(addr)
            for sink in self._sinks:
                sink.on_tip(block, addr, "icall")
            if func_name is None:
                raise DeviceFault(
                    f"indirect call through dev.{term.ptr_field} to "
                    f"non-code address {addr:#x}",
                    device=self.program.name, kind="wild-jump")
            callee = self.program.function(func_name)
            args = tuple(self._eval(frame, a) for a in term.args)
            result = self._call(callee, args)
            if term.dest is not None:
                frame.env[term.dest] = int(result or 0)
            return term.cont
        if isinstance(term, Return):
            value = (self._eval(frame, term.value)
                     if term.value is not None else None)
            for sink in self._sinks:
                sink.on_return(frame.func)
            if value is not None:
                frame.env["__retval__"] = value
            return None
        raise InterpError(f"unknown terminator {type(term).__name__}")

    # -- expression evaluation --------------------------------------------------

    def _eval(self, frame: _Frame, expr: Expr) -> int:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Param):
            try:
                return frame.params[expr.name]
            except KeyError:
                raise InterpError(
                    f"{frame.func.name}: unknown parameter {expr.name!r}"
                ) from None
        if isinstance(expr, Local):
            try:
                return frame.env[expr.name]
            except KeyError:
                raise InterpError(
                    f"{frame.func.name}: local {expr.name!r} read before "
                    f"assignment") from None
        if isinstance(expr, StateRef):
            return self.state.read_field(expr.field)
        if isinstance(expr, BufLoad):
            return self.state.read_buf(expr.buf,
                                       self._eval(frame, expr.index))
        if isinstance(expr, BufLen):
            return expr.length
        if isinstance(expr, BinOp):
            return eval_binop(expr.op, self._eval(frame, expr.left),
                              self._eval(frame, expr.right))
        if isinstance(expr, UnOp):
            return eval_unop(expr.op, self._eval(frame, expr.operand))
        if isinstance(expr, SyncVar):
            raise InterpError(
                f"SyncVar {expr.name!r} in a device program (sync vars "
                f"belong to execution specifications)")
        raise InterpError(f"unknown expression {type(expr).__name__}")
