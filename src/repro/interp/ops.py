"""Shared operator semantics and cost model constants.

One module owns the exact integer semantics of every IR operator so the
reference interpreter, the ES-Checker's shadow walk, the constant folder,
and the closure compilers all agree bit-for-bit: division and modulo by
zero raise :class:`DeviceFault` (the device crashes, exactly like the C
it models), shift counts are masked to 6 bits (x86 ``shl/shr`` on 64-bit
operands), and comparisons/logicals return 0/1 ints.

The tables map operator spellings to plain functions, so a compiler can
pre-resolve the operator once instead of re-running an if-chain per
evaluation.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import DeviceFault, InterpError

#: Per-operation cycle costs of the performance model.  Extern costs are
#: configurable per helper (DMA is far more expensive than a register poke).
STMT_COST = 1
TERM_COST = {
    "Goto": 1, "Branch": 2, "Switch": 3, "Call": 4, "ICall": 6, "Return": 2,
}
DEFAULT_EXTERN_COST = 8


def _floordiv(a: int, b: int) -> int:
    if b == 0:
        raise DeviceFault("division by zero", kind="div0")
    return a // b


def _mod(a: int, b: int) -> int:
    if b == 0:
        raise DeviceFault("modulo by zero", kind="div0")
    return a % b


def _shl(a: int, b: int) -> int:
    return a << (b & 63)


def _shr(a: int, b: int) -> int:
    return a >> (b & 63)


#: Binary operator table shared by every execution backend.
BINOP_FUNCS: Dict[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": _floordiv,
    "%": _mod,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": _shl,
    ">>": _shr,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "and": lambda a, b: int(bool(a) and bool(b)),
    "or": lambda a, b: int(bool(a) or bool(b)),
}

#: Unary operator table shared by every execution backend.
UNOP_FUNCS: Dict[str, Callable[[int], int]] = {
    "-": lambda a: -a,
    "~": lambda a: ~a,
    "not": lambda a: int(not a),
}


def binop_fn(op: str) -> Callable[[int, int], int]:
    """Resolve *op* once (compile time) instead of per evaluation."""
    try:
        return BINOP_FUNCS[op]
    except KeyError:
        raise InterpError(f"unknown operator {op!r}") from None


def unop_fn(op: str) -> Callable[[int], int]:
    try:
        return UNOP_FUNCS[op]
    except KeyError:
        raise InterpError(f"unknown unary operator {op!r}") from None


def eval_binop(op: str, a: int, b: int) -> int:
    """Exact integer semantics shared by interpreter, folder, and checker."""
    try:
        fn = BINOP_FUNCS[op]
    except KeyError:
        raise InterpError(f"unknown operator {op!r}") from None
    return fn(a, b)


def eval_unop(op: str, a: int) -> int:
    try:
        fn = UNOP_FUNCS[op]
    except KeyError:
        raise InterpError(f"unknown unary operator {op!r}") from None
    return fn(a)
