"""Flat bytecode backend for device programs (the third interpreter
backend).

The closure backend (:mod:`repro.interp.compile`) already removed the
per-node ``isinstance`` dispatch, but its shape is still a tree of nested
Python frames: one closure call per statement, per operand chain, per
block.  This module lowers each function once more, into a *flat*
array-encoded bytecode:

* ``code``  — a flat ``int`` opcode stream (expressions in stack form,
  statements and terminators as fixed-operand instructions);
* ``pool``  — a constant pool holding field geometry, messages, switch
  tables, and call targets (by name, so the artifact serializes);
* jump targets resolved to dense block indices at lowering time, with
  ``Switch`` terminators compiled to dense tables when the key range is
  compact and to binary-search key/value arrays otherwise.

Execution happens in a **single dispatch loop per function**: the
assembler translates the opcode stream into one Python frame — a
``while`` loop dispatching on the block index through a binary
jump-target tree, with every statement body inlined (no per-statement
calls, counters kept in locals and reconciled on every exit path).  The
int stream is the canonical, serializable artifact
(:func:`to_payload`/:func:`from_payload`, cacheable in the
content-addressed registry); the assembled frame is a deterministic
function of it.

Semantics replicate the closure backend bit-for-bit: cycle/step
accounting (costs charged *before* evaluation), flag updates, fault
kinds and messages, and return-value coercion.  The differential suite
(``tests/interp/test_compile.py``) holds all three backends to that.
Every function is assembled twice — a fast runner (counters in locals,
reconciled on exit) and a traced runner that emits the sink event
stream inline (``on_block``/``on_branch``/``on_tip``/... in the exact
order the closure backend's traced bodies produce them), so traced
rounds stay in the dispatch-loop frame too.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import DeviceFault, InterpError
from repro.ir import (
    Assign, BinOp, Branch, BufLen, BufLoad, BufStore, Call, Const,
    ExternCall, Expr, FuncPtrType, Function, Goto, ICall, Intrinsic,
    IntType, Local, Param, Program, Return, StateRef, StateStore, Stmt,
    Switch, SyncVar, UnOp,
)
from repro.interp.ops import _floordiv, _mod

BYTECODE_FORMAT = 1

# -- opcodes ----------------------------------------------------------------
# Expressions (stack form; operands follow the opcode in the stream)
OP_CONST = 1          # ci              push pool[ci] (an int)
OP_PARAM = 2          # pos             push positional parameter
OP_PARAM_MISSING = 3  # mi              raise InterpError(pool[mi])
OP_LOCAL = 4          # ni              push local pool[ni]
OP_STATE = 5          # ii              scalar state load, pool[ii] geometry
OP_BUFLEN = 6         # v               push literal length
OP_BUFLOAD = 7        # ii              pops index; pool[ii] geometry
OP_BINOP = 8          # oi              pops rhs, lhs; _OPSYMS[oi]
OP_UNOP = 9           # oi              pops operand
OP_SYNCVAR = 10       # mi              raise InterpError(pool[mi])
OP_STATE_REF = 11     # ni              malformed fallback: read_field(name)
# Statements
OP_TICK = 18          # n               cycles += n (cost charged up front)
OP_ASSIGN = 20        # ni              pops value into local pool[ni]
OP_STORE = 21         # ii              pops value; pool[ii] store geometry
OP_BUFSTORE = 22      # ii              pops value, index
OP_EXTERN_PRE = 23    # ni mi           bind extern + add its cost
OP_EXTERN_CALL = 24   # nargs di        pops args; result into local di
OP_INTRIN = 25        # nargs ki        pops args; pool[ki] is the kind
OP_ICALL_PRE = 26     # ii              resolve funcptr target (may fault)
# Terminators
OP_GOTO = 30          # bi              jump to block index bi
OP_BR = 31            # bt bn           pops cond
OP_SWITCH = 32        # ii              pops scrutinee; pool[ii] jump table
OP_CALL = 33          # ni nargs di bi  direct call, resume at block bi
OP_ICALL_CALL = 34    # nargs di bi     call target of last ICALL_PRE
OP_RET = 35           #                 return None
OP_RETV = 36          #                 pops return value
OP_BLOCK = 40         #                 block prologue (step + watchdog)

#: operator index space shared by lowering and assembly
_OPSYMS = ("+", "-", "*", "//", "%", "&", "|", "^", "<<", ">>",
           "==", "!=", "<", "<=", ">", ">=", "and", "or")
_UNSYMS = ("-", "~", "not")

#: inline spellings for fault-free binary operators (a, b pre-evaluated)
_BIN_INLINE = {
    "+": "({a} + {b})", "-": "({a} - {b})", "*": "({a} * {b})",
    "&": "({a} & {b})", "|": "({a} | {b})", "^": "({a} ^ {b})",
    "<<": "({a} << ({b} & 63))", ">>": "({a} >> ({b} & 63))",
    "==": "(1 if {a} == {b} else 0)", "!=": "(1 if {a} != {b} else 0)",
    "<": "(1 if {a} < {b} else 0)", "<=": "(1 if {a} <= {b} else 0)",
    ">": "(1 if {a} > {b} else 0)", ">=": "(1 if {a} >= {b} else 0)",
    "and": "(1 if ({a} and {b}) else 0)",
    "or": "(1 if ({a} or {b}) else 0)",
}
_UN_INLINE = {"-": "(-({a}))", "~": "(~({a}))",
              "not": "(0 if {a} else 1)"}


# ---------------------------------------------------------------------------
# Lowering: IR -> flat arrays
# ---------------------------------------------------------------------------

class _FuncLowerer:
    """Lowers one function's CFG into code/pool arrays."""

    def __init__(self, func: Function, program: Program):
        self.func = func
        self.program = program
        self.code: List[int] = []
        self.pool: List[Any] = []
        self._pool_index: Dict[Any, int] = {}
        # Entry block first so the assembled loop starts at index 0.
        labels = [func.entry] + [l for l in func.blocks if l != func.entry]
        self.block_index = {label: i for i, label in enumerate(labels)}
        self.labels = tuple(labels)

    def ref(self, value: Any) -> int:
        """Intern *value* in the constant pool."""
        key = (type(value).__name__, repr(value))
        idx = self._pool_index.get(key)
        if idx is None:
            idx = len(self.pool)
            self.pool.append(value)
            self._pool_index[key] = idx
        return idx

    def emit(self, *ops: int) -> None:
        self.code.extend(ops)

    def lower(self) -> "BytecodeFunction":
        for label in self.labels:
            block = self.func.blocks[label]
            self.emit(OP_BLOCK)
            for stmt in block.stmts:
                self.lower_stmt(stmt)
            self.lower_terminator(block.terminator, label)
        return BytecodeFunction(
            name=self.func.name, params=tuple(self.func.params),
            labels=self.labels, code=tuple(self.code),
            pool=tuple(self.pool))

    # -- expressions ---------------------------------------------------------

    def lower_expr(self, expr: Expr) -> None:
        func_name = self.func.name
        if isinstance(expr, Const):
            self.emit(OP_CONST, self.ref(expr.value))
        elif isinstance(expr, Param):
            if expr.name in self.func.params:
                self.emit(OP_PARAM, self.func.params.index(expr.name))
            else:
                msg = f"{func_name}: unknown parameter {expr.name!r}"
                self.emit(OP_PARAM_MISSING, self.ref(msg))
        elif isinstance(expr, Local):
            self.emit(OP_LOCAL, self.ref(expr.name))
        elif isinstance(expr, StateRef):
            decl = self.program.layout.field(expr.field)
            if decl.is_buffer:
                self.emit(OP_STATE_REF, self.ref(expr.field))
            else:
                signed = (isinstance(decl.type, IntType)
                          and decl.type.signed)
                bits = decl.type.bits if signed else 0
                self.emit(OP_STATE, self.ref(
                    (decl.offset, decl.end, int(signed), bits)))
        elif isinstance(expr, BufLoad):
            self.lower_expr(expr.index)
            decl = self.program.layout.field(expr.buf)
            if not decl.is_buffer:
                self.emit(OP_BUFLOAD, self.ref((expr.buf, 0, 0, 0, 0, 0)))
            else:
                elem = decl.type.elem
                self.emit(OP_BUFLOAD, self.ref(
                    (expr.buf, 1, decl.offset, elem.size,
                     int(elem.signed), elem.bits)))
        elif isinstance(expr, BufLen):
            self.emit(OP_BUFLEN, expr.length)
        elif isinstance(expr, BinOp):
            if isinstance(expr.left, Const) and isinstance(expr.right, Const):
                # Constant folding, matching the closure compiler: div0
                # must stay a runtime fault.
                from repro.interp.ops import binop_fn
                try:
                    folded = binop_fn(expr.op)(expr.left.value,
                                               expr.right.value)
                except DeviceFault:
                    pass
                else:
                    self.emit(OP_CONST, self.ref(folded))
                    return
            self.lower_expr(expr.left)
            self.lower_expr(expr.right)
            self.emit(OP_BINOP, _OPSYMS.index(expr.op))
        elif isinstance(expr, UnOp):
            self.lower_expr(expr.operand)
            self.emit(OP_UNOP, _UNSYMS.index(expr.op))
        elif isinstance(expr, SyncVar):
            msg = (f"SyncVar {expr.name!r} in a device program (sync vars "
                   f"belong to execution specifications)")
            self.emit(OP_SYNCVAR, self.ref(msg))
        else:
            raise InterpError(f"unknown expression {type(expr).__name__}")

    # -- statements ----------------------------------------------------------

    def lower_stmt(self, stmt: Stmt) -> None:
        layout = self.program.layout
        if isinstance(stmt, Assign):
            self.emit(OP_TICK, 1)
            self.lower_expr(stmt.value)
            self.emit(OP_ASSIGN, self.ref(stmt.target))
        elif isinstance(stmt, StateStore):
            self.emit(OP_TICK, 1)
            self.lower_expr(stmt.value)
            decl = layout.field(stmt.field)
            if decl.is_buffer or not isinstance(decl.type,
                                                (IntType, FuncPtrType)):
                self.emit(OP_STORE, self.ref((stmt.field, "malformed",
                                              0, 0, 0, 0, 0, 0)))
            elif isinstance(decl.type, FuncPtrType):
                mask = (1 << (decl.size * 8)) - 1
                self.emit(OP_STORE, self.ref(
                    (stmt.field, "fp", decl.offset, decl.end, decl.size,
                     mask, 0, 0)))
            else:
                mask = (1 << (decl.size * 8)) - 1
                self.emit(OP_STORE, self.ref(
                    (stmt.field, "int", decl.offset, decl.end, decl.size,
                     mask, decl.type.min_value, decl.type.max_value)))
        elif isinstance(stmt, BufStore):
            self.emit(OP_TICK, 1)
            self.lower_expr(stmt.index)
            self.lower_expr(stmt.value)
            decl = layout.field(stmt.buf)
            if decl.is_buffer:
                esize = decl.type.elem.size
                emask = (1 << (esize * 8)) - 1
                self.emit(OP_BUFSTORE, self.ref(
                    (stmt.buf, 1, decl.offset, esize, emask)))
            else:
                self.emit(OP_BUFSTORE, self.ref((stmt.buf, 0, 0, 0, 0)))
        elif isinstance(stmt, ExternCall):
            self.emit(OP_TICK, 1)
            msg = f"extern {stmt.func!r} is not bound"
            self.emit(OP_EXTERN_PRE, self.ref(stmt.func), self.ref(msg))
            for arg in stmt.args:
                self.lower_expr(arg)
            dest = self.ref(stmt.dest) if stmt.dest is not None else -1
            self.emit(OP_EXTERN_CALL, len(stmt.args), dest)
        elif isinstance(stmt, Intrinsic):
            self.emit(OP_TICK, 1)
            for arg in stmt.args:
                self.lower_expr(arg)
            self.emit(OP_INTRIN, len(stmt.args), self.ref(stmt.kind))
        else:
            raise InterpError(f"unknown statement {type(stmt).__name__}")

    # -- terminators ---------------------------------------------------------

    def lower_terminator(self, term, label: str) -> None:
        func_name = self.func.name
        if isinstance(term, Goto):
            self.emit(OP_TICK, 1)
            self.emit(OP_GOTO, self.block_index[term.target])
        elif isinstance(term, Branch):
            self.emit(OP_TICK, 2)
            self.lower_expr(term.cond)
            self.emit(OP_BR, self.block_index[term.taken],
                      self.block_index[term.not_taken])
        elif isinstance(term, Switch):
            self.emit(OP_TICK, 3)
            self.lower_expr(term.scrutinee)
            default = (self.block_index[term.default]
                       if term.default else -1)
            msg = (f"switch in {func_name}:{label} has no arm "
                   f"for %d and no default")
            table = {k: self.block_index[v] for k, v in term.table.items()}
            self.emit(OP_SWITCH, self.ref(_encode_switch(table, default,
                                                         msg)))
        elif isinstance(term, Call):
            # Resolve at lowering, like the closure compiler: a missing
            # callee is a compile-time error.
            self.program.function(term.func)
            self.emit(OP_TICK, 4)
            for arg in term.args:
                self.lower_expr(arg)
            dest = self.ref(term.dest) if term.dest is not None else -1
            self.emit(OP_CALL, self.ref(term.func), len(term.args), dest,
                      self.block_index[term.cont])
        elif isinstance(term, ICall):
            self.emit(OP_TICK, 6)
            decl = self.program.layout.field(term.ptr_field)
            signed = (not decl.is_buffer and isinstance(decl.type, IntType)
                      and decl.type.signed)
            msg = (f"indirect call through dev.{term.ptr_field} to "
                   f"non-code address %#x")
            self.emit(OP_ICALL_PRE, self.ref(
                (term.ptr_field, decl.offset, decl.end, int(signed),
                 decl.type.bits if signed else 0, msg)))
            for arg in term.args:
                self.lower_expr(arg)
            dest = self.ref(term.dest) if term.dest is not None else -1
            self.emit(OP_ICALL_CALL, len(term.args), dest,
                      self.block_index[term.cont])
        elif isinstance(term, Return):
            self.emit(OP_TICK, 2)
            if term.value is None:
                self.emit(OP_RET)
            else:
                self.lower_expr(term.value)
                self.emit(OP_RETV)
        else:
            raise InterpError(f"unknown terminator {type(term).__name__}")


def _encode_switch(table: Dict[int, int], default: int,
                   msg: str) -> Tuple[Any, ...]:
    """Dense jump table when the key range is compact, else sorted
    key/target arrays for binary search."""
    if table:
        lo, hi = min(table), max(table)
        span = hi - lo + 1
        if span <= max(16, 4 * len(table)):
            dense = tuple(table.get(lo + i, default) for i in range(span))
            return ("dense", lo, dense, default, msg)
    keys = tuple(sorted(table))
    vals = tuple(table[k] for k in keys)
    return ("bsearch", keys, vals, default, msg)


# ---------------------------------------------------------------------------
# The artifact
# ---------------------------------------------------------------------------

class BytecodeFunction:
    """One function's flat bytecode arrays (the serializable unit)."""

    __slots__ = ("name", "params", "labels", "code", "pool")

    def __init__(self, name: str, params: Tuple[str, ...],
                 labels: Tuple[str, ...], code: Tuple[int, ...],
                 pool: Tuple[Any, ...]):
        self.name = name
        self.params = params
        self.labels = labels
        self.code = code
        self.pool = pool


class BytecodeProgram:
    """All lowered functions of one program plus their assembled runners."""

    __slots__ = ("program_name", "funcs", "runners", "traced_runners")

    def __init__(self, program_name: str,
                 funcs: Dict[str, BytecodeFunction]):
        self.program_name = program_name
        self.funcs = funcs
        self.runners: Dict[str, Callable] = {}
        self.traced_runners: Dict[str, Callable] = {}

    def assemble(self, program: Program) -> "BytecodeProgram":
        for name, bfunc in self.funcs.items():
            self.runners[name] = _assemble_function(bfunc, program)
            self.traced_runners[name] = _assemble_function(
                bfunc, program, traced=True)
        return self

    # -- serialization -------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        return {
            "format": BYTECODE_FORMAT,
            "kind": "interp-bytecode",
            "program": self.program_name,
            "funcs": {
                name: {
                    "params": list(f.params),
                    "labels": list(f.labels),
                    "code": list(f.code),
                    "pool": [_tag_const(c) for c in f.pool],
                }
                for name, f in sorted(self.funcs.items())
            },
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "BytecodeProgram":
        if payload.get("format") != BYTECODE_FORMAT:
            raise InterpError(
                f"unsupported bytecode format {payload.get('format')!r}")
        if payload.get("kind") != "interp-bytecode":
            raise InterpError("payload is not an interpreter bytecode")
        funcs = {}
        for name, body in payload["funcs"].items():
            funcs[name] = BytecodeFunction(
                name=name, params=tuple(body["params"]),
                labels=tuple(body["labels"]),
                code=tuple(body["code"]),
                pool=tuple(_untag_const(c) for c in body["pool"]))
        return cls(payload["program"], funcs)

    def digest(self) -> str:
        blob = json.dumps(self.to_payload(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()


def _tag_const(value: Any) -> Any:
    """Constant-pool entry -> JSON-stable form (tuples tagged)."""
    if isinstance(value, tuple):
        return {"t": "tuple", "v": [_tag_const(v) for v in value]}
    if isinstance(value, frozenset):
        return {"t": "fset", "v": sorted(value)}
    if isinstance(value, dict):
        return {"t": "imap",
                "v": [[k, _tag_const(v)] for k, v in sorted(value.items())]}
    return value


def _untag_const(value: Any) -> Any:
    if isinstance(value, dict):
        tag = value.get("t")
        if tag == "tuple":
            return tuple(_untag_const(v) for v in value["v"])
        if tag == "fset":
            return frozenset(value["v"])
        if tag == "imap":
            return {k: _untag_const(v) for k, v in value["v"]}
        raise InterpError(f"unknown constant tag {tag!r}")
    return value


# ---------------------------------------------------------------------------
# Assembly: flat arrays -> one dispatch-loop frame
# ---------------------------------------------------------------------------

class _Asm:
    """Accumulates generated source with indentation tracking."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0
        self._temp = 0

    def w(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def temp(self) -> str:
        self._temp += 1
        return f"_t{self._temp}"


def _mangle_local(name: str) -> str:
    return "V_" + name


def _mangle_param(name: str) -> str:
    return "P_" + name


def _state_load_expr(off: int, end: int, signed: int, bits: int) -> str:
    raw = f'_ifb(_data[{off}:{end}], "little")'
    if signed:
        half, mod = 1 << (bits - 1), 1 << bits
        return f"((({raw} + {half}) % {mod}) - {half})"
    return raw


class _StackEntry:
    __slots__ = ("expr",)

    def __init__(self, expr: str):
        self.expr = expr


def _assemble_function(bfunc: BytecodeFunction, program: Program,
                       traced: bool = False) -> Callable:
    """Translate the opcode stream into one Python frame.

    The fast frame keeps cycle/step counts as local deltas and
    reconciles them with the machine on *every* exit path (return,
    nested call, extern, and any raise), so fault-time accounting is
    bit-identical to the closure backend's.

    The traced frame (``traced=True``) instead updates ``m.cycles`` /
    ``m.steps`` directly — the counters must be current at every sink
    call — and emits the sink events inline, replicating the closure
    backend's traced bodies event-for-event: ``on_block`` after the
    watchdog check, ``on_tip`` before a wild-jump fault, ``on_return``
    after the return value is evaluated, store events carrying the
    re-read stored value, and so on.
    """
    code, pool = bfunc.code, bfunc.pool
    consts: Dict[str, Any] = {
        "_ifb": int.from_bytes, "_fdiv": _floordiv, "_fmod": _mod,
        "InterpError": InterpError, "DeviceFault": DeviceFault,
    }
    const_n = 0
    func = program.function(bfunc.name)
    if traced:
        consts["_FN"] = func
        for i, label in enumerate(bfunc.labels):
            consts[f"_BLK{i}"] = func.blocks[label]
        consts["_BADDR"] = tuple(func.blocks[l].address
                                 for l in bfunc.labels)

    def bind(value: Any, prefix: str = "_K") -> str:
        nonlocal const_n
        const_n += 1
        name = f"{prefix}{const_n}"
        consts[name] = value
        return name

    asm = _Asm()
    stack: List[_StackEntry] = []
    device = program.name
    local_names: set = set()

    def push(expr: str) -> None:
        stack.append(_StackEntry(expr))

    def pop() -> str:
        return stack.pop().expr

    def spill_pending() -> None:
        """Materialize every pending stack entry as a temp, in push
        order, so a faulting instruction cannot reorder evaluation."""
        for entry in stack:
            if not entry.expr.startswith("_t"):
                t = asm.temp()
                asm.w(f"{t} = {entry.expr}")
                entry.expr = t

    def force_temp(expr: str) -> str:
        """Name an expression so it can be used more than once."""
        if expr.startswith("_t") and expr[2:].isdigit():
            return expr
        t = asm.temp()
        asm.w(f"{t} = {expr}")
        return t

    # Split the stream into per-block line groups.
    blocks: List[List[str]] = []
    blk = "_BLK0"    # const name of the block currently being assembled
    pc = 0
    n = len(code)
    while pc < n:
        op = code[pc]
        if op == OP_BLOCK:
            asm.lines = []
            blk = f"_BLK{len(blocks)}"
            blocks.append(asm.lines)
            if traced:
                asm.w("m.steps += 1")
                asm.w("if m.steps > _maxs:")
                asm.indent += 1
                asm.w('raise DeviceFault("watchdog: %d blocks without '
                      'completing the I/O round (infinite loop?)" '
                      f'% _maxs, device={device!r}, kind="watchdog")')
                asm.indent -= 1
                asm.w(f"for _s in m._sinks: _s.on_block(_FN, {blk})")
            else:
                asm.w("_st += 1")
                asm.w("if _st > _lim:")
                asm.indent += 1
                asm.w('raise DeviceFault("watchdog: %d blocks without '
                      'completing the I/O round (infinite loop?)" '
                      f'% m.max_steps, device={device!r}, kind="watchdog")')
                asm.indent -= 1
            pc += 1
        elif op == OP_TICK:
            if traced:
                asm.w(f"m.cycles += {code[pc + 1]}")
            else:
                asm.w(f"_cy += {code[pc + 1]}")
            pc += 2
        elif op == OP_CONST:
            push(repr(pool[code[pc + 1]]))
            pc += 2
        elif op == OP_PARAM:
            push(_mangle_param(bfunc.params[code[pc + 1]]))
            pc += 2
        elif op == OP_PARAM_MISSING:
            spill_pending()
            t = asm.temp()
            asm.w(f"{t} = _die({pool[code[pc + 1]]!r})")
            push(t)
            pc += 2
        elif op == OP_LOCAL:
            name = pool[code[pc + 1]]
            local_names.add(name)
            push(_mangle_local(name))
            pc += 2
        elif op == OP_STATE:
            off, end, signed, bits = pool[code[pc + 1]]
            push(_state_load_expr(off, end, signed, bits))
            pc += 2
        elif op == OP_STATE_REF:
            spill_pending()
            t = asm.temp()
            asm.w(f"{t} = _state.read_field({pool[code[pc + 1]]!r})")
            push(t)
            pc += 2
        elif op == OP_BUFLEN:
            push(repr(code[pc + 1]))
            pc += 2
        elif op == OP_BUFLOAD:
            buf, is_buffer, base, esize, signed, bits = pool[code[pc + 1]]
            index = pop()
            spill_pending()
            t = asm.temp()
            if not is_buffer:
                asm.w(f"{t} = _state.read_buf({buf!r}, {index})")
            else:
                o = asm.temp()
                asm.w(f"{o} = {base} + ({index}) * {esize}")
                asm.w(f"if 0 <= {o} and {o} + {esize} <= "
                      f"{program.layout.size}:")
                asm.indent += 1
                raw = f'_ifb(_data[{o}:{o} + {esize}], "little")'
                if signed:
                    half, mod = 1 << (bits - 1), 1 << bits
                    asm.w(f"{t} = ((({raw} + {half}) % {mod}) - {half})")
                else:
                    asm.w(f"{t} = {raw}")
                asm.indent -= 1
                asm.w("else:")
                asm.indent += 1
                asm.w(f"{t} = _state.read_buf({buf!r}, "
                      f"({o} - {base}) // {esize})")
                asm.indent -= 1
            push(t)
            pc += 2
        elif op == OP_BINOP:
            sym = _OPSYMS[code[pc + 1]]
            b, a = pop(), pop()
            if sym in ("//", "%"):
                spill_pending()
                t = asm.temp()
                fn = "_fdiv" if sym == "//" else "_fmod"
                asm.w(f"{t} = {fn}({a}, {b})")
                push(t)
            else:
                push(_BIN_INLINE[sym].format(a=a, b=b))
            pc += 2
        elif op == OP_UNOP:
            push(_UN_INLINE[_UNSYMS[code[pc + 1]]].format(a=pop()))
            pc += 2
        elif op == OP_SYNCVAR:
            spill_pending()
            t = asm.temp()
            asm.w(f"{t} = _die({pool[code[pc + 1]]!r})")
            push(t)
            pc += 2
        elif op == OP_ASSIGN:
            name = pool[code[pc + 1]]
            local_names.add(name)
            asm.w(f"{_mangle_local(name)} = {pop()}")
            pc += 2
        elif op == OP_STORE:
            field, kind, off, end, size, mask, lo, hi = pool[code[pc + 1]]
            value = pop()
            if traced:
                # Uniform traced body (matches traced_store): write via
                # the accessor, re-read the stored value for the event.
                v = force_temp(value)
                o = asm.temp()
                asm.w(f"{o} = _state.write_field({field!r}, {v})")
                asm.w(f"_flags.overflow = {o}")
                asm.w(f"_flags.last_store_field = {field!r}")
                s = asm.temp()
                asm.w(f"{s} = _state.read_field({field!r})")
                asm.w(f"for _s in m._sinks: "
                      f"_s.on_state_store({field!r}, {s}, {o})")
            elif kind == "malformed":
                v = force_temp(value)
                asm.w(f"_flags.overflow = _state.write_field({field!r}, "
                      f"{v})")
                asm.w(f"_flags.last_store_field = {field!r}")
            else:
                v = force_temp(value)
                if kind == "fp":
                    asm.w("_flags.overflow = False")
                else:
                    asm.w(f"_flags.overflow = not {lo} <= {v} <= {hi}")
                asm.w(f"_flags.last_store_field = {field!r}")
                asm.w(f"_data[{off}:{end}] = ({v} & {mask})"
                      f'.to_bytes({size}, "little")')
            pc += 2
        elif op == OP_BUFSTORE:
            buf, is_buffer, base, esize, emask = pool[code[pc + 1]]
            value, index = pop(), pop()
            if traced:
                i = force_temp(index)
                v = force_temp(value)
                asm.w(f"_state.write_buf({buf!r}, {i}, {v})")
                asm.w(f"for _s in m._sinks: "
                      f"_s.on_buf_store({buf!r}, {i}, {v})")
            elif not is_buffer:
                asm.w(f"_state.write_buf({buf!r}, {index}, {value})")
            else:
                o = asm.temp()
                asm.w(f"{o} = {base} + ({index}) * {esize}")
                v = force_temp(value)
                asm.w(f"if 0 <= {o} and {o} + {esize} <= "
                      f"{program.layout.size}:")
                asm.indent += 1
                asm.w(f"_data[{o}:{o} + {esize}] = ({v} & {emask})"
                      f'.to_bytes({esize}, "little")')
                asm.indent -= 1
                asm.w("else:")
                asm.indent += 1
                asm.w(f"_state.write_buf({buf!r}, "
                      f"({o} - {base}) // {esize}, {v})")
                asm.indent -= 1
            pc += 2
        elif op == OP_EXTERN_PRE:
            name, msg = pool[code[pc + 1]], pool[code[pc + 2]]
            last_extern = name    # consumed by the matching EXTERN_CALL
            f = asm.temp()
            asm.w(f"{f} = _ext.get({name!r})")
            asm.w(f"if {f} is None:")
            asm.indent += 1
            asm.w(f"raise InterpError({msg!r})")
            asm.indent -= 1
            if traced:
                asm.w(f"m.cycles += _ecost.get({name!r}, 8)")
            else:
                asm.w(f"_cy += _ecost.get({name!r}, 8)")
            push(f)    # carried under the args until EXTERN_CALL
            pc += 3
        elif op == OP_EXTERN_CALL:
            nargs, dest = code[pc + 1], code[pc + 2]
            args = [pop() for _ in range(nargs)][::-1]
            f = pop()
            spill_pending()
            if traced:
                args = [force_temp(a) for a in args]
            else:
                asm.w("m.cycles += _cy; _cy = 0")
                asm.w("m.steps += _st; _lim -= _st; _st = 0")
            call = ", ".join(["m"] + args)
            t = asm.temp()
            asm.w(f"{t} = int({f}({call}) or 0)")
            if traced:
                tup = f"({', '.join(args)}{',' if args else ''})"
                dname = pool[dest] if dest >= 0 else None
                asm.w(f"for _s in m._sinks: _s.on_extern("
                      f"{bfunc.name!r}, {last_extern!r}, {dname!r}, "
                      f"{tup}, {t})")
            if dest >= 0:
                name = pool[dest]
                local_names.add(name)
                asm.w(f"{_mangle_local(name)} = {t}")
            pc += 3
        elif op == OP_INTRIN:
            nargs, ki = code[pc + 1], code[pc + 2]
            args = [pop() for _ in range(nargs)][::-1]
            if traced:
                args = [force_temp(a) for a in args]
                tup = f"({', '.join(args)}{',' if args else ''})"
                asm.w(f"for _s in m._sinks: "
                      f"_s.on_intrinsic({pool[ki]!r}, {tup})")
            else:
                for a in args:
                    if not (a.startswith("_t") and a[2:].isdigit()):
                        asm.w(a)    # evaluate for effect (it can fault)
            pc += 3
        elif op == OP_ICALL_PRE:
            field, off, end, signed, bits, msg = pool[code[pc + 1]]
            a = asm.temp()
            asm.w(f"{a} = {_state_load_expr(off, end, signed, bits)}")
            f = asm.temp()
            asm.w(f"{f} = _A2F.get({a})")
            if traced:
                # The TIP event fires even for a wild jump (the tracer
                # must see the bogus target), so it precedes the fault.
                asm.w(f'for _s in m._sinks: '
                      f'_s.on_tip({blk}, {a}, "icall")')
            asm.w(f"if {f} is None:")
            asm.indent += 1
            asm.w(f"raise DeviceFault({msg!r} % {a}, "
                  f"device={device!r}, kind=\"wild-jump\")")
            asm.indent -= 1
            push(f)
            pc += 2
        elif op == OP_ICALL_CALL:
            nargs, dest, cont = code[pc + 1], code[pc + 2], code[pc + 3]
            args = [pop() for _ in range(nargs)][::-1]
            f = pop()
            spill_pending()
            if not traced:
                asm.w("m.cycles += _cy; _cy = 0")
                asm.w("m.steps += _st; _st = 0")
            t = asm.temp()
            asm.w(f"{t} = m._call({f}, ({', '.join(args)}"
                  f"{',' if args else ''}))")
            if not traced:
                asm.w("_lim = m.max_steps - m.steps")
            if dest >= 0:
                name = pool[dest]
                local_names.add(name)
                asm.w(f"{_mangle_local(name)} = int({t} or 0)")
            asm.w(f"_pc = {cont}")
            asm.w("continue")
            pc += 4
        elif op == OP_CALL:
            fname = pool[code[pc + 1]]
            nargs, dest, cont = code[pc + 2], code[pc + 3], code[pc + 4]
            args = [pop() for _ in range(nargs)][::-1]
            spill_pending()
            fref = bind(program.function(fname), "_F")
            t = asm.temp()
            if traced:
                # Args are evaluated before on_call, like traced_call.
                args = [force_temp(a) for a in args]
                asm.w(f"for _s in m._sinks: _s.on_call(_FN, {fref})")
            else:
                asm.w("m.cycles += _cy; _cy = 0")
                asm.w("m.steps += _st; _st = 0")
            asm.w(f"{t} = m._call({fref}, ({', '.join(args)}"
                  f"{',' if args else ''}))")
            if not traced:
                asm.w("_lim = m.max_steps - m.steps")
            if dest >= 0:
                name = pool[dest]
                local_names.add(name)
                asm.w(f"{_mangle_local(name)} = int({t} or 0)")
            asm.w(f"_pc = {cont}")
            asm.w("continue")
            pc += 5
        elif op == OP_GOTO:
            asm.w(f"_pc = {code[pc + 1]}")
            asm.w("continue")
            pc += 2
        elif op == OP_BR:
            bt, bn = code[pc + 1], code[pc + 2]
            if traced:
                o = asm.temp()
                asm.w(f"{o} = True if {pop()} else False")
                asm.w(f"for _s in m._sinks: _s.on_branch({blk}, {o})")
                asm.w(f"_pc = {bt} if {o} else {bn}")
            else:
                asm.w(f"_pc = {bt} if {pop()} else {bn}")
            asm.w("continue")
            pc += 3
        elif op == OP_SWITCH:
            info = pool[code[pc + 1]]
            v = force_temp(pop())
            if info[0] == "dense":
                _, base, dense, default, msg = info
                tref = bind(tuple(dense), "_T")
                i = asm.temp()
                asm.w(f"{i} = {v} - {base}")
                asm.w(f"_pc = {tref}[{i}] if 0 <= {i} < {len(dense)} "
                      f"else {default}")
            else:
                _, keys, vals, default, msg = info
                kref = bind(tuple(keys), "_T")
                vref = bind(tuple(vals), "_T")
                i = asm.temp()
                asm.w(f"{i} = _bisect({kref}, {v})")
                asm.w(f"_pc = {vref}[{i}] if {i} < {len(keys)} "
                      f"and {kref}[{i}] == {v} else {default}")
            asm.w("if _pc < 0:")
            asm.indent += 1
            asm.w(f"raise InterpError({msg!r} % {v})")
            asm.indent -= 1
            if traced:
                ta = asm.temp()
                asm.w(f"{ta} = _BADDR[_pc]")
                # Both events per sink before moving to the next sink,
                # matching traced_switch's single loop.
                asm.w("for _s in m._sinks:")
                asm.indent += 1
                asm.w(f'_s.on_tip({blk}, {ta}, "switch")')
                asm.w(f"_s.on_switch({blk}, {v}, {ta})")
                asm.indent -= 1
            asm.w("continue")
            pc += 2
        elif op == OP_RET:
            if traced:
                asm.w("for _s in m._sinks: _s.on_return(_FN)")
            else:
                asm.w("m.cycles += _cy; m.steps += _st")
            asm.w("return None")
            pc += 1
        elif op == OP_RETV:
            asm.w(f"_rv = {pop()}")
            if traced:
                asm.w("for _s in m._sinks: _s.on_return(_FN)")
            else:
                asm.w("m.cycles += _cy; m.steps += _st")
            asm.w("return _rv")
            pc += 1
        else:
            raise InterpError(f"bad opcode {op} at pc {pc}")

    if stack:
        raise InterpError(
            f"unbalanced expression stack lowering {bfunc.name}")

    # -- frame scaffolding ---------------------------------------------------
    out = _Asm()
    out.w(f"def _run(m, args):")
    out.indent += 1
    if bfunc.params:
        unpack = ", ".join(_mangle_param(p) for p in bfunc.params)
        out.w(f"{unpack}{',' if len(bfunc.params) == 1 else ''} = args")
    if traced:
        out.w("_state = m.state; _data = _state.data; _flags = m.flags")
        out.w("_ext = m._externs; _ecost = m._extern_cost")
        out.w("_maxs = m.max_steps")
    else:
        out.w("_st = 0; _cy = 0")
        out.w("_state = m.state; _data = _state.data; _flags = m.flags")
        out.w("_ext = m._externs; _ecost = m._extern_cost")
        out.w("_lim = m.max_steps - m.steps")
    out.w("_pc = 0")
    out.w("try:")
    out.indent += 1
    out.w("while True:")
    out.indent += 1
    _emit_dispatch(out, blocks, 0, len(blocks))
    out.indent -= 2
    out.w("except NameError as e:")
    out.indent += 1
    if not traced:
        out.w("m.cycles += _cy; m.steps += _st")
    out.w("_msg = _LMSG.get(getattr(e, 'name', None))")
    out.w("if _msg is not None:")
    out.indent += 1
    out.w("raise InterpError(_msg) from None")
    out.indent -= 1
    out.w("raise")
    out.indent -= 1
    if not traced:
        out.w("except BaseException:")
        out.indent += 1
        out.w("m.cycles += _cy; m.steps += _st")
        out.w("raise")
        out.indent -= 1
    out.indent -= 1

    consts["_LMSG"] = {
        _mangle_local(name): (f"{bfunc.name}: local {name!r} read "
                              f"before assignment")
        for name in local_names
    }
    consts["_A2F"] = {addr: program.functions[fname]
                      for addr, fname in program.addr_to_func.items()}
    from bisect import bisect_left
    consts["_bisect"] = bisect_left

    def _die(msg: str) -> int:
        raise InterpError(msg)
    consts["_die"] = _die

    source = "\n".join(out.lines) + "\n"
    namespace: Dict[str, Any] = dict(consts)
    exec(compile(source, f"<bytecode:{device}.{bfunc.name}>", "exec"),
         namespace)
    runner = namespace["_run"]
    runner._bytecode_source = source
    return runner


def _emit_dispatch(out: _Asm, blocks: List[List[str]],
                   lo: int, hi: int) -> None:
    """Binary jump-target tree over block indices."""
    if hi - lo == 1:
        if len(blocks) > 1:
            # Guard so the leaf is reachable only for its own index; the
            # tree makes other indices impossible, so no else needed.
            pass
        for line in blocks[lo]:
            out.w(line)
        return
    mid = (lo + hi) // 2
    out.w(f"if _pc < {mid}:")
    out.indent += 1
    _emit_dispatch(out, blocks, lo, mid)
    out.indent -= 1
    out.w("else:")
    out.indent += 1
    _emit_dispatch(out, blocks, mid, hi)
    out.indent -= 1


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def lower_program(program: Program) -> BytecodeProgram:
    """Lower every function of *program* to flat bytecode arrays."""
    if not program.frozen:
        raise InterpError("program must be frozen before lowering")
    funcs = {name: _FuncLowerer(func, program).lower()
             for name, func in program.functions.items()}
    return BytecodeProgram(program.name, funcs)


def bytecode_program_for(program: Program) -> BytecodeProgram:
    """Lower + assemble once per program; the artifact is shared by every
    machine, mirroring :func:`compiled_program_for`."""
    cached = getattr(program, "_bytecode_backend", None)
    if cached is None:
        cached = lower_program(program).assemble(program)
        program._bytecode_backend = cached
    return cached
