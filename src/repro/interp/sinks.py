"""Trace sink interface for the IR interpreter.

Sinks observe execution without influencing it: the IPT simulator, the
observation-point logger, and coverage collectors are all sinks.  Methods
default to no-ops so a sink implements only what it needs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:
    from repro.ir import BasicBlock, Function
    from repro.interp.machine import Machine


class TraceSink:
    """Base class: override the events you care about."""

    def attach(self, machine: "Machine") -> None:
        """Called once when the sink is added to a machine."""

    def on_io_enter(self, key: str, args: Tuple[int, ...]) -> None:
        """An I/O request entered the device (trace start / TIP.PGE)."""

    def on_io_exit(self, key: str, result: Optional[int]) -> None:
        """The I/O round completed (trace stop / TIP.PGD)."""

    def on_block(self, func: "Function", block: "BasicBlock") -> None:
        """A basic block began executing."""

    def on_branch(self, block: "BasicBlock", taken: bool) -> None:
        """A conditional branch resolved (source of TNT bits)."""

    def on_tip(self, block: "BasicBlock", target_addr: int,
               kind: str) -> None:
        """An indirect transfer resolved (source of TIP packets).

        *kind* is ``"switch"`` for jump-table dispatch or ``"icall"`` for a
        function-pointer call.
        """

    def on_switch(self, block: "BasicBlock", value: int,
                  target_addr: int) -> None:
        """A switch dispatch resolved, with its scrutinee value (the
        observation points use this to log command decisions)."""

    def on_call(self, caller: "Function", callee: "Function") -> None:
        """A direct call (no PT packet, but useful for logs/coverage)."""

    def on_return(self, func: "Function") -> None:
        """A function returned."""

    def on_intrinsic(self, kind: str, values: Tuple[int, ...]) -> None:
        """A SEDSpec intrinsic executed (command decision/end markers)."""

    def on_extern(self, caller: str, func: str, dest: Optional[str],
                  args: Tuple[int, ...], result: int) -> None:
        """An extern host helper ran (the sync oracle harvests these)."""

    def on_state_store(self, field: str, value: int,
                       overflowed: bool) -> None:
        """A control-structure scalar field was written."""

    def on_buf_store(self, buf: str, index: int, value: int) -> None:
        """A control-structure buffer element was written."""


class CoverageSink(TraceSink):
    """Collects executed blocks and CFG edges — used by the effective-
    coverage measurement (Table III) and by tests."""

    def __init__(self) -> None:
        self.blocks: set = set()
        self.edges: set = set()
        self._last_addr: Optional[int] = None

    def on_io_enter(self, key: str, args: Tuple[int, ...]) -> None:
        self._last_addr = None

    def on_block(self, func, block) -> None:
        self.blocks.add(block.address)
        if self._last_addr is not None:
            self.edges.add((self._last_addr, block.address))
        self._last_addr = block.address

    def merge(self, other: "CoverageSink") -> None:
        self.blocks |= other.blocks
        self.edges |= other.edges
