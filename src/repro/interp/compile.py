"""Closure compiler for device programs: the interpreter's fast backend.

The reference :class:`~repro.interp.machine.Machine` walks the IR tree per
statement per round, paying a chain of ``isinstance`` tests for every node
it touches.  This module lowers each expression, statement, and basic
block into a pre-dispatched Python closure *once*, so the per-round loop
is a chain of direct calls with zero type tests.

Design constraints (all load-bearing):

* Compiled code is shared across every :class:`Machine` running the same
  :class:`~repro.ir.program.Program` — closures take the machine as their
  first argument instead of capturing one, so speculative machines and
  training reboots reuse the same compiled artifact (cached on the
  program object).
* Each block compiles to **two** variants: a *fast* body used when no
  trace sinks are attached (the deployment hot path — sink fan-out is
  elided entirely) and a *traced* body that emits exactly the sink events
  of the reference interpreter, in the same order.
* Cycle/step accounting, flag updates, fault kinds, and error messages
  replicate the reference interpreter bit-for-bit; the differential test
  suite (``tests/interp/test_compile.py``) holds both backends to that.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import DeviceFault, InterpError
from repro.interp.ops import (
    DEFAULT_EXTERN_COST, STMT_COST, TERM_COST, binop_fn, unop_fn,
)
from repro.ir import (
    Assign, BasicBlock, BinOp, Branch, BufLen, BufLoad, BufStore, Call,
    Const, ExternCall, Expr, FuncPtrType, Function, Goto, ICall,
    Intrinsic, IntType, Local, Param, Program, Return, StateRef,
    StateStore, Stmt, Switch, SyncVar, Terminator, UnOp,
)

#: ``(machine, env, params) -> int`` — a compiled expression.
ExprFn = Callable[..., int]
#: ``(machine, env, params) -> None`` — a compiled statement.
StmtFn = Callable[..., None]
#: ``(machine, env, params) -> Optional[str]`` — next label, None = return.
TermFn = Callable[..., Optional[str]]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

def compile_expr(expr: Expr, func_name: str, program: Program) -> ExprFn:
    """Lower one expression tree into a closure chain."""
    if isinstance(expr, Const):
        value = expr.value
        return lambda m, env, params: value
    if isinstance(expr, Param):
        name = expr.name

        def run_param(m, env, params):
            try:
                return params[name]
            except KeyError:
                raise InterpError(
                    f"{func_name}: unknown parameter {name!r}") from None
        return run_param
    if isinstance(expr, Local):
        name = expr.name

        def run_local(m, env, params):
            try:
                return env[name]
            except KeyError:
                raise InterpError(
                    f"{func_name}: local {name!r} read before "
                    f"assignment") from None
        return run_local
    if isinstance(expr, StateRef):
        return _compile_state_read(expr.field, program)
    if isinstance(expr, BufLoad):
        return _compile_buf_load(expr, func_name, program)
    if isinstance(expr, BufLen):
        length = expr.length
        return lambda m, env, params: length
    if isinstance(expr, BinOp):
        fn = binop_fn(expr.op)
        left = compile_expr(expr.left, func_name, program)
        right = compile_expr(expr.right, func_name, program)
        if isinstance(expr.left, Const) and isinstance(expr.right, Const):
            try:
                folded = fn(expr.left.value, expr.right.value)
            except DeviceFault:
                pass    # div0 must stay a runtime fault
            else:
                return lambda m, env, params: folded
        return lambda m, env, params: fn(left(m, env, params),
                                         right(m, env, params))
    if isinstance(expr, UnOp):
        fn = unop_fn(expr.op)
        operand = compile_expr(expr.operand, func_name, program)
        return lambda m, env, params: fn(operand(m, env, params))
    if isinstance(expr, SyncVar):
        name = expr.name

        def run_sync(m, env, params):
            raise InterpError(
                f"SyncVar {name!r} in a device program (sync vars "
                f"belong to execution specifications)")
        return run_sync
    raise InterpError(f"unknown expression {type(expr).__name__}")


def _compile_state_read(field_name: str, program: Program) -> ExprFn:
    """Specialized scalar-field load: offsets resolved at compile time."""
    decl = program.layout.field(field_name)
    if decl.is_buffer:
        # Malformed IR; defer to the reference path's error.
        return lambda m, env, params: m.state.read_field(field_name)
    off, end = decl.offset, decl.end
    if isinstance(decl.type, IntType) and decl.type.signed:
        half = 1 << (decl.type.bits - 1)
        modulus = 1 << decl.type.bits

        def run_signed(m, env, params):
            raw = int.from_bytes(m.state.data[off:end], "little")
            return raw - modulus if raw >= half else raw
        return run_signed
    return lambda m, env, params: int.from_bytes(m.state.data[off:end],
                                                 "little")


def _compile_buf_load(expr: BufLoad, func_name: str,
                      program: Program) -> ExprFn:
    """Flat-layout buffer load with element geometry pre-resolved; the
    in-struct fast path reads bytes directly, anything else defers to
    the reference accessor so far-OOB faults stay byte-identical."""
    buf = expr.buf
    index_fn = compile_expr(expr.index, func_name, program)
    decl = program.layout.field(buf)
    if not decl.is_buffer:
        return lambda m, env, params: m.state.read_buf(
            buf, index_fn(m, env, params))
    base, esize = decl.offset, decl.type.elem.size
    struct_size = program.layout.size
    signed = decl.type.elem.signed
    half = 1 << (decl.type.elem.bits - 1)
    modulus = 1 << decl.type.elem.bits

    def run_bufload(m, env, params):
        off = base + index_fn(m, env, params) * esize
        if 0 <= off and off + esize <= struct_size:
            raw = int.from_bytes(m.state.data[off:off + esize], "little")
            if signed and raw >= half:
                return raw - modulus
            return raw
        # Far OOB: raise the reference path's DeviceFault verbatim.
        return m.state.read_buf(buf, (off - base) // esize)
    return run_bufload


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

def compile_stmt(stmt: Stmt, func_name: str,
                 program: Program) -> Tuple[StmtFn, StmtFn]:
    """Lower one statement; returns ``(fast, traced)`` variants."""
    if isinstance(stmt, Assign):
        target = stmt.target
        value_fn = compile_expr(stmt.value, func_name, program)

        def run_assign(m, env, params):
            m.cycles += STMT_COST
            env[target] = value_fn(m, env, params)
        return run_assign, run_assign

    if isinstance(stmt, StateStore):
        field_name = stmt.field
        value_fn = compile_expr(stmt.value, func_name, program)
        decl = program.layout.field(field_name)
        if decl.is_buffer or not isinstance(decl.type,
                                            (IntType, FuncPtrType)):
            # Malformed IR; defer to the reference accessor's error.
            def fast_store(m, env, params):
                m.cycles += STMT_COST
                flags = m.flags
                flags.overflow = m.state.write_field(
                    field_name, value_fn(m, env, params))
                flags.last_store_field = field_name
        else:
            # Stored bytes are value modulo 2**bits little-endian for
            # every scalar type; the overflow flag is the declared-range
            # test (funcptr stores never flag, as in the reference).
            off, end, size = decl.offset, decl.end, decl.size
            mask = (1 << (size * 8)) - 1
            if isinstance(decl.type, FuncPtrType):
                def fast_store(m, env, params):
                    m.cycles += STMT_COST
                    value = value_fn(m, env, params)
                    flags = m.flags
                    flags.overflow = False
                    flags.last_store_field = field_name
                    m.state.data[off:end] = (value & mask).to_bytes(
                        size, "little")
            else:
                lo, hi = decl.type.min_value, decl.type.max_value

                def fast_store(m, env, params):
                    m.cycles += STMT_COST
                    value = value_fn(m, env, params)
                    flags = m.flags
                    flags.overflow = not lo <= value <= hi
                    flags.last_store_field = field_name
                    m.state.data[off:end] = (value & mask).to_bytes(
                        size, "little")

        def traced_store(m, env, params):
            m.cycles += STMT_COST
            overflowed = m.state.write_field(field_name,
                                             value_fn(m, env, params))
            flags = m.flags
            flags.overflow = overflowed
            flags.last_store_field = field_name
            stored = m.state.read_field(field_name)
            for sink in m._sinks:
                sink.on_state_store(field_name, stored, overflowed)
        return fast_store, traced_store

    if isinstance(stmt, BufStore):
        buf = stmt.buf
        index_fn = compile_expr(stmt.index, func_name, program)
        value_fn = compile_expr(stmt.value, func_name, program)
        decl = program.layout.field(buf)
        if decl.is_buffer:
            base, esize = decl.offset, decl.type.elem.size
            struct_size = program.layout.size
            emask = (1 << (esize * 8)) - 1

            def fast_bufstore(m, env, params):
                m.cycles += STMT_COST
                off = base + index_fn(m, env, params) * esize
                value = value_fn(m, env, params)
                if 0 <= off and off + esize <= struct_size:
                    m.state.data[off:off + esize] = (
                        value & emask).to_bytes(esize, "little")
                else:
                    # Far OOB: the reference DeviceFault, verbatim.
                    m.state.write_buf(buf, (off - base) // esize, value)
        else:
            def fast_bufstore(m, env, params):
                m.cycles += STMT_COST
                m.state.write_buf(buf, index_fn(m, env, params),
                                  value_fn(m, env, params))

        def traced_bufstore(m, env, params):
            m.cycles += STMT_COST
            index = index_fn(m, env, params)
            value = value_fn(m, env, params)
            m.state.write_buf(buf, index, value)
            for sink in m._sinks:
                sink.on_buf_store(buf, index, value)
        return fast_bufstore, traced_bufstore

    if isinstance(stmt, ExternCall):
        extern_name = stmt.func
        arg_fns = tuple(compile_expr(a, func_name, program)
                        for a in stmt.args)
        dest = stmt.dest

        # Arity-specialized fast paths: DMA helpers run per byte, so the
        # per-call argument list allocation is worth eliding.
        if len(arg_fns) == 1:
            arg0 = arg_fns[0]

            def fast_extern(m, env, params):
                m.cycles += STMT_COST
                fn = m._externs.get(extern_name)
                if fn is None:
                    raise InterpError(
                        f"extern {extern_name!r} is not bound")
                m.cycles += m._extern_cost.get(extern_name,
                                               DEFAULT_EXTERN_COST)
                value = int(fn(m, arg0(m, env, params)) or 0)
                if dest is not None:
                    env[dest] = value
        elif len(arg_fns) == 2:
            arg0, arg1 = arg_fns

            def fast_extern(m, env, params):
                m.cycles += STMT_COST
                fn = m._externs.get(extern_name)
                if fn is None:
                    raise InterpError(
                        f"extern {extern_name!r} is not bound")
                m.cycles += m._extern_cost.get(extern_name,
                                               DEFAULT_EXTERN_COST)
                value = int(fn(m, arg0(m, env, params),
                               arg1(m, env, params)) or 0)
                if dest is not None:
                    env[dest] = value
        else:
            def fast_extern(m, env, params):
                m.cycles += STMT_COST
                fn = m._externs.get(extern_name)
                if fn is None:
                    raise InterpError(
                        f"extern {extern_name!r} is not bound")
                m.cycles += m._extern_cost.get(extern_name,
                                               DEFAULT_EXTERN_COST)
                args = [f(m, env, params) for f in arg_fns]
                value = int(fn(m, *args) or 0)
                if dest is not None:
                    env[dest] = value

        def traced_extern(m, env, params):
            m.cycles += STMT_COST
            fn = m._externs.get(extern_name)
            if fn is None:
                raise InterpError(f"extern {extern_name!r} is not bound")
            m.cycles += m._extern_cost.get(extern_name,
                                           DEFAULT_EXTERN_COST)
            args = [f(m, env, params) for f in arg_fns]
            value = int(fn(m, *args) or 0)
            for sink in m._sinks:
                sink.on_extern(func_name, extern_name, dest,
                               tuple(args), value)
            if dest is not None:
                env[dest] = value
        return fast_extern, traced_extern

    if isinstance(stmt, Intrinsic):
        kind = stmt.kind
        arg_fns = tuple(compile_expr(a, func_name, program)
                        for a in stmt.args)

        def fast_intrinsic(m, env, params):
            # Argument evaluation can fault (OOB load); keep it.
            m.cycles += STMT_COST
            for f in arg_fns:
                f(m, env, params)

        def traced_intrinsic(m, env, params):
            m.cycles += STMT_COST
            values = tuple(f(m, env, params) for f in arg_fns)
            for sink in m._sinks:
                sink.on_intrinsic(kind, values)
        return fast_intrinsic, traced_intrinsic

    raise InterpError(f"unknown statement {type(stmt).__name__}")


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------

def compile_terminator(block: BasicBlock, func: Function,
                       program: Program) -> Tuple[TermFn, TermFn]:
    """Lower one terminator; returns ``(fast, traced)`` variants."""
    term = block.terminator
    func_name = func.name
    cost = TERM_COST.get(type(term).__name__, 1)

    if isinstance(term, Goto):
        target = term.target

        def run_goto(m, env, params):
            m.cycles += 1
            return target
        return run_goto, run_goto

    if isinstance(term, Branch):
        cond_fn = compile_expr(term.cond, func_name, program)
        taken, not_taken = term.taken, term.not_taken

        def fast_branch(m, env, params):
            m.cycles += 2
            return taken if cond_fn(m, env, params) else not_taken

        def traced_branch(m, env, params):
            m.cycles += 2
            outcome = bool(cond_fn(m, env, params))
            for sink in m._sinks:
                sink.on_branch(block, outcome)
            return taken if outcome else not_taken
        return fast_branch, traced_branch

    if isinstance(term, Switch):
        scrut_fn = compile_expr(term.scrutinee, func_name, program)
        table = dict(term.table)
        default = term.default
        label = block.label
        #: label -> address, resolved once for the traced TIP payload
        addr_of = {lbl: b.address for lbl, b in func.blocks.items()}

        def fast_switch(m, env, params):
            m.cycles += 3
            value = scrut_fn(m, env, params)
            target = table.get(value, default)
            if not target:
                raise InterpError(
                    f"switch in {func_name}:{label} has no arm "
                    f"for {value} and no default")
            return target

        def traced_switch(m, env, params):
            m.cycles += 3
            value = scrut_fn(m, env, params)
            target = table.get(value, default)
            if not target:
                raise InterpError(
                    f"switch in {func_name}:{label} has no arm "
                    f"for {value} and no default")
            target_addr = addr_of[target]
            for sink in m._sinks:
                sink.on_tip(block, target_addr, "switch")
                sink.on_switch(block, value, target_addr)
            return target
        return fast_switch, traced_switch

    if isinstance(term, Call):
        callee = program.function(term.func)
        arg_fns = tuple(compile_expr(a, func_name, program)
                        for a in term.args)
        dest, cont = term.dest, term.cont

        def fast_call(m, env, params):
            m.cycles += 4
            args = tuple(f(m, env, params) for f in arg_fns)
            result = m._call(callee, args)
            if dest is not None:
                env[dest] = int(result or 0)
            return cont

        def traced_call(m, env, params):
            m.cycles += 4
            args = tuple(f(m, env, params) for f in arg_fns)
            for sink in m._sinks:
                sink.on_call(func, callee)
            result = m._call(callee, args)
            if dest is not None:
                env[dest] = int(result or 0)
            return cont
        return fast_call, traced_call

    if isinstance(term, ICall):
        ptr_field = term.ptr_field
        arg_fns = tuple(compile_expr(a, func_name, program)
                        for a in term.args)
        dest, cont = term.dest, term.cont
        addr_to_func = program.addr_to_func
        functions = program.functions
        device_name = program.name

        def fast_icall(m, env, params):
            m.cycles += 6
            addr = m.state.read_field(ptr_field)
            callee_name = addr_to_func.get(addr)
            if callee_name is None:
                raise DeviceFault(
                    f"indirect call through dev.{ptr_field} to "
                    f"non-code address {addr:#x}",
                    device=device_name, kind="wild-jump")
            args = tuple(f(m, env, params) for f in arg_fns)
            result = m._call(functions[callee_name], args)
            if dest is not None:
                env[dest] = int(result or 0)
            return cont

        def traced_icall(m, env, params):
            m.cycles += 6
            addr = m.state.read_field(ptr_field)
            callee_name = addr_to_func.get(addr)
            for sink in m._sinks:
                sink.on_tip(block, addr, "icall")
            if callee_name is None:
                raise DeviceFault(
                    f"indirect call through dev.{ptr_field} to "
                    f"non-code address {addr:#x}",
                    device=device_name, kind="wild-jump")
            args = tuple(f(m, env, params) for f in arg_fns)
            result = m._call(functions[callee_name], args)
            if dest is not None:
                env[dest] = int(result or 0)
            return cont
        return fast_icall, traced_icall

    if isinstance(term, Return):
        if term.value is None:
            def fast_ret_void(m, env, params):
                m.cycles += 2
                return None

            def traced_ret_void(m, env, params):
                m.cycles += 2
                for sink in m._sinks:
                    sink.on_return(func)
                return None
            return fast_ret_void, traced_ret_void

        value_fn = compile_expr(term.value, func_name, program)

        def fast_ret(m, env, params):
            m.cycles += 2
            env["__retval__"] = value_fn(m, env, params)
            return None

        def traced_ret(m, env, params):
            m.cycles += 2
            value = value_fn(m, env, params)
            for sink in m._sinks:
                sink.on_return(func)
            env["__retval__"] = value
            return None
        return fast_ret, traced_ret

    raise InterpError(f"unknown terminator {type(term).__name__}")


# ---------------------------------------------------------------------------
# Blocks / functions / programs
# ---------------------------------------------------------------------------

class CompiledBlock:
    """One block's pre-dispatched bodies plus the IR handles sinks need."""

    __slots__ = ("fast", "traced", "func", "block")

    def __init__(self, fast: TermFn, traced: TermFn,
                 func: Function, block: BasicBlock):
        self.fast = fast
        self.traced = traced
        self.func = func
        self.block = block


def _chain(stmt_fns: List[StmtFn], term_fn: TermFn) -> TermFn:
    """Fuse a block body into one closure: stmts then terminator.
    Short bodies (the common case) unroll into direct calls."""
    if not stmt_fns:
        return term_fn
    if len(stmt_fns) == 1:
        s0 = stmt_fns[0]

        def run1(m, env, params):
            s0(m, env, params)
            return term_fn(m, env, params)
        return run1
    if len(stmt_fns) == 2:
        s0, s1 = stmt_fns

        def run2(m, env, params):
            s0(m, env, params)
            s1(m, env, params)
            return term_fn(m, env, params)
        return run2
    fns = tuple(stmt_fns)

    def run(m, env, params):
        for fn in fns:
            fn(m, env, params)
        return term_fn(m, env, params)
    return run


class CompiledFunction:
    """Closure-compiled CFG of one device routine."""

    __slots__ = ("name", "params", "entry", "blocks")

    def __init__(self, func: Function, program: Program):
        self.name = func.name
        self.params = func.params
        self.entry = func.entry
        self.blocks: Dict[str, CompiledBlock] = {}
        for label, block in func.blocks.items():
            fast_stmts, traced_stmts = [], []
            for stmt in block.stmts:
                fast, traced = compile_stmt(stmt, func.name, program)
                fast_stmts.append(fast)
                traced_stmts.append(traced)
            fast_term, traced_term = compile_terminator(block, func,
                                                        program)
            self.blocks[label] = CompiledBlock(
                _chain(fast_stmts, fast_term),
                _chain(traced_stmts, traced_term), func, block)


class CompiledProgram:
    """All compiled functions of one program, keyed for `_call`."""

    __slots__ = ("funcs",)

    def __init__(self, program: Program):
        if not program.frozen:
            raise InterpError("program must be frozen before compilation")
        self.funcs: Dict[str, CompiledFunction] = {
            name: CompiledFunction(func, program)
            for name, func in program.functions.items()
        }


def compiled_program_for(program: Program) -> CompiledProgram:
    """Compile once per program; the artifact is shared by every machine
    (including the per-round speculative machines of co-execution)."""
    cached = getattr(program, "_compiled_backend", None)
    if cached is None:
        cached = CompiledProgram(program)
        program._compiled_backend = cached
    return cached
