"""IR interpreter, its execution backends, and trace sink interfaces."""

from repro.interp.machine import BACKENDS, Flags, Machine
from repro.interp.ops import (
    BINOP_FUNCS, DEFAULT_EXTERN_COST, STMT_COST, TERM_COST, UNOP_FUNCS,
    eval_binop, eval_unop,
)
from repro.interp.compile import CompiledProgram, compiled_program_for
from repro.interp.bytecode import BytecodeProgram, bytecode_program_for
from repro.interp.sinks import CoverageSink, TraceSink

__all__ = [
    "BACKENDS", "BINOP_FUNCS", "DEFAULT_EXTERN_COST", "STMT_COST",
    "TERM_COST", "UNOP_FUNCS", "Flags", "Machine", "CompiledProgram",
    "BytecodeProgram", "bytecode_program_for",
    "compiled_program_for", "eval_binop", "eval_unop", "CoverageSink",
    "TraceSink",
]
