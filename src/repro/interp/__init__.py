"""IR interpreter and trace sink interfaces."""

from repro.interp.machine import (
    DEFAULT_EXTERN_COST, STMT_COST, TERM_COST, Flags, Machine, eval_binop,
)
from repro.interp.sinks import CoverageSink, TraceSink

__all__ = [
    "DEFAULT_EXTERN_COST", "STMT_COST", "TERM_COST", "Flags", "Machine",
    "eval_binop", "CoverageSink", "TraceSink",
]
