"""Declaration helpers for device logic classes.

A device's I/O-facing logic is a :class:`DeviceLogic` subclass whose methods
are written in the restricted Python subset understood by
:mod:`repro.compiler.frontend`.  The class body declares:

* ``STRUCT``   — name of the control structure (e.g. ``"FDCtrl"``),
* ``FIELDS``   — ordered field declarations (``reg``/``fld``/``arr``/``ptr``),
  packed back to back exactly like the C struct they model,
* ``CONSTS``   — compile-time constants folded away by the front end
  (this is how ``qemu_version`` gates vulnerable vs patched code paths),
* ``EXTERNS``  — host helper functions callable from device code
  (DMA, IRQ line, byte I/O to backing media, …),
* ``ENTRIES``  — I/O interface keys mapped to entry-handler method names.

The class is never instantiated to *run*; it is a compilation unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

from repro.errors import CompileError
from repro.ir.types import BufType, FuncPtrType, IntType, type_by_name


@dataclass(frozen=True)
class FieldSpec:
    """One declared member of the control structure (pre-layout)."""

    name: str
    type: Union[IntType, BufType, FuncPtrType]
    register: bool = False
    doc: str = ""


def reg(name: str, type_name: str, doc: str = "") -> FieldSpec:
    """Declare a field mirroring a physical device register (Rule 1)."""
    typ = type_by_name(type_name)
    if isinstance(typ, FuncPtrType):
        raise CompileError(f"register field {name!r} cannot be a funcptr")
    return FieldSpec(name, typ, register=True, doc=doc)


def fld(name: str, type_name: str, doc: str = "") -> FieldSpec:
    """Declare a plain scalar field (counters, indices, lengths, flags)."""
    return FieldSpec(name, type_by_name(type_name), doc=doc)


def arr(name: str, elem_type_name: str, length: int, doc: str = "") -> FieldSpec:
    """Declare a fixed-length inline buffer (C array member)."""
    elem = type_by_name(elem_type_name)
    if not isinstance(elem, IntType):
        raise CompileError(f"buffer {name!r} element must be an integer type")
    return FieldSpec(name, BufType(elem, length), doc=doc)


def ptr(name: str, doc: str = "") -> FieldSpec:
    """Declare a function-pointer field (IRQ callbacks and the like)."""
    return FieldSpec(name, FuncPtrType(), doc=doc)


class DeviceLogic:
    """Base class for compilable device logic.  Subclass and declare."""

    STRUCT: str = ""
    FIELDS: Tuple[FieldSpec, ...] = ()
    CONSTS: Dict[str, int] = {}
    EXTERNS: Tuple[str, ...] = ()
    ENTRIES: Dict[str, str] = {}

    #: Methods never compiled (plain-Python helpers for tests/tooling).
    NOCOMPILE: Tuple[str, ...] = ()


#: Intrinsics understood by the front end: SEDSpec block-type annotations.
INTRINSICS = ("sed_command_decision", "sed_command_end")
