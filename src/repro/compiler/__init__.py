"""Restricted-Python front end: DeviceLogic declarations → IR programs."""

from repro.compiler.decl import (
    INTRINSICS, DeviceLogic, FieldSpec, arr, fld, ptr, reg,
)
from repro.compiler.frontend import compile_device

__all__ = [
    "INTRINSICS", "DeviceLogic", "FieldSpec", "arr", "fld", "ptr", "reg",
    "compile_device",
]
