"""Restricted-Python → IR front end.

Compiles the methods of a :class:`~repro.compiler.decl.DeviceLogic` subclass
into a :class:`~repro.ir.Program`.  The accepted subset mirrors the C that
QEMU devices are written in:

* integer locals, parameters, and control-structure fields (``self.x``),
* fixed buffers with *unchecked* indexing (``self.fifo[i]``),
* arithmetic / bitwise / comparison operators, ``and``/``or``/``not``,
* ``if``/``elif``/``else``, ``while``, ``for i in range(...)``,
  ``break``/``continue``/``return``,
* direct calls to sibling methods, indirect calls through function-pointer
  fields, extern calls to host helpers, and SEDSpec intrinsics,
* compile-time constants (``self.SOME_CONST``) with dead-branch elimination —
  this is how one source tree yields both the vulnerable and the patched
  build of a device, selected by ``qemu_version``.

Anything outside the subset raises :class:`~repro.errors.CompileError` with
the offending line number.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Dict, List, Optional, Tuple, Type

from repro.errors import CompileError
from repro.compiler.decl import INTRINSICS, DeviceLogic
from repro.ir import (
    Assign, BasicBlock, BinOp, Branch, BufLen, BufLoad, BufStore, Call,
    Const, ExternCall, Expr, Function, Goto, ICall, Intrinsic, Local, Param,
    Program, Return, StateLayout, StateRef, StateStore, Stmt, Switch,
    Terminator, UnOp,
)

_BIN_OPS = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.FloorDiv: "//",
    ast.Mod: "%", ast.BitAnd: "&", ast.BitOr: "|", ast.BitXor: "^",
    ast.LShift: "<<", ast.RShift: ">>",
}
_CMP_OPS = {
    ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<", ast.LtE: "<=",
    ast.Gt: ">", ast.GtE: ">=",
}
_UNARY_OPS = {ast.USub: "-", ast.Not: "not", ast.Invert: "~"}


class _ClassCtx:
    """Name-resolution context shared by all methods of one device class."""

    def __init__(self, cls: Type[DeviceLogic]):
        self.cls = cls
        self.scalars = set()
        self.buffers = set()
        self.funcptrs = set()
        for spec in cls.FIELDS:
            from repro.ir.types import BufType, FuncPtrType
            if isinstance(spec.type, BufType):
                self.buffers.add(spec.name)
            elif isinstance(spec.type, FuncPtrType):
                self.funcptrs.add(spec.name)
            else:
                self.scalars.add(spec.name)
        self.consts: Dict[str, int] = {
            k: int(v) for k, v in dict(cls.CONSTS).items()}
        self.externs = set(cls.EXTERNS)
        self.methods: set = set()


def _fold(expr: Expr) -> Expr:
    """Constant-fold an expression tree (exact integer arithmetic)."""
    if isinstance(expr, BinOp):
        left, right = _fold(expr.left), _fold(expr.right)
        if isinstance(left, Const) and isinstance(right, Const):
            return Const(_eval_const(expr.op, left.value, right.value))
        return BinOp(expr.op, left, right)
    if isinstance(expr, UnOp):
        operand = _fold(expr.operand)
        if isinstance(operand, Const):
            if expr.op == "-":
                return Const(-operand.value)
            if expr.op == "~":
                return Const(~operand.value)
            return Const(int(not operand.value))
        return UnOp(expr.op, operand)
    if isinstance(expr, BufLoad):
        return BufLoad(expr.buf, _fold(expr.index))
    return expr


def _eval_const(op: str, a: int, b: int) -> int:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "//":
        return a // b
    if op == "%":
        return a % b
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    if op == "<<":
        return a << b
    if op == ">>":
        return a >> b
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "<":
        return int(a < b)
    if op == "<=":
        return int(a <= b)
    if op == ">":
        return int(a > b)
    if op == ">=":
        return int(a >= b)
    if op == "and":
        return int(bool(a) and bool(b))
    if op == "or":
        return int(bool(a) or bool(b))
    raise CompileError(f"cannot fold operator {op!r}")


class _FuncCompiler:
    """Compiles one method body into an IR Function."""

    def __init__(self, ctx: _ClassCtx, name: str, params: Tuple[str, ...]):
        self.ctx = ctx
        self.name = name
        self.func = Function(name, params)
        self.params = set(params)
        self._label_counter = 0
        self._cur: Optional[BasicBlock] = None
        self._loop_stack: List[Tuple[str, str]] = []   # (continue, break)
        self._start_block(self.func.entry)

    # -- block plumbing ----------------------------------------------------

    def _new_label(self, hint: str = "b") -> str:
        self._label_counter += 1
        return f"{hint}{self._label_counter}"

    def _start_block(self, label: str, lineno: int = 0) -> BasicBlock:
        block = BasicBlock(label, lineno=lineno)
        self.func.add_block(block)
        self._cur = block
        return block

    def _emit(self, stmt: Stmt) -> None:
        if self._cur is None:
            # Unreachable code after return/break — keep compiling into a
            # dead block so line numbers still validate; pruned later.
            self._start_block(self._new_label("dead"))
        self._cur.stmts.append(stmt)

    def _terminate(self, term: Terminator) -> None:
        if self._cur is None:
            self._start_block(self._new_label("dead"))
        self._cur.terminator = term
        self._cur = None

    # -- expressions ---------------------------------------------------------

    def expr(self, node: ast.expr) -> Expr:
        result = self._expr(node)
        return _fold(result)

    def _expr(self, node: ast.expr) -> Expr:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return Const(int(node.value))
            if isinstance(node.value, int):
                return Const(node.value)
            raise self._err(node, f"unsupported literal {node.value!r}")
        if isinstance(node, ast.Name):
            return self._name(node)
        if isinstance(node, ast.Attribute):
            return self._attribute(node)
        if isinstance(node, ast.Subscript):
            return self._subscript_load(node)
        if isinstance(node, ast.BinOp):
            op = _BIN_OPS.get(type(node.op))
            if op is None:
                raise self._err(node, f"operator {type(node.op).__name__} "
                                      "not supported")
            return BinOp(op, self._expr(node.left), self._expr(node.right))
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise self._err(node, "chained comparisons not supported")
            op = _CMP_OPS.get(type(node.ops[0]))
            if op is None:
                raise self._err(node, "comparison operator not supported")
            return BinOp(op, self._expr(node.left),
                         self._expr(node.comparators[0]))
        if isinstance(node, ast.BoolOp):
            op = "and" if isinstance(node.op, ast.And) else "or"
            result = self._expr(node.values[0])
            for value in node.values[1:]:
                result = BinOp(op, result, self._expr(value))
            return result
        if isinstance(node, ast.UnaryOp):
            op = _UNARY_OPS.get(type(node.op))
            if op is None:
                raise self._err(node, "unary operator not supported")
            return UnOp(op, self._expr(node.operand))
        if isinstance(node, ast.Call):
            return self._len_call(node)
        raise self._err(node, f"expression {type(node).__name__} "
                              "not in the restricted subset")

    def _name(self, node: ast.Name) -> Expr:
        if node.id in self.params:
            return Param(node.id)
        return Local(node.id)

    def _attribute(self, node: ast.Attribute) -> Expr:
        if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
            raise self._err(node, "only self.<field> attribute access "
                                  "is supported")
        name = node.attr
        if name in self.ctx.consts:
            return Const(self.ctx.consts[name])
        if name in self.ctx.scalars or name in self.ctx.funcptrs:
            return StateRef(name)
        if name in self.ctx.buffers:
            raise self._err(node, f"buffer {name!r} must be indexed or "
                                  "wrapped in len()")
        raise self._err(node, f"unknown field or constant {name!r}")

    def _subscript_load(self, node: ast.Subscript) -> Expr:
        buf, index = self._subscript_parts(node)
        return BufLoad(buf, self.expr(index))

    def _subscript_parts(self, node: ast.Subscript) -> Tuple[str, ast.expr]:
        target = node.value
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr in self.ctx.buffers):
            raise self._err(node, "only self.<buffer>[index] subscripts "
                                  "are supported")
        index = node.slice
        if isinstance(index, ast.Slice):
            raise self._err(node, "slices are not supported")
        return target.attr, index

    def _len_call(self, node: ast.Call) -> Expr:
        """``len(self.buf)`` is the only call allowed in expression position."""
        if (isinstance(node.func, ast.Name) and node.func.id == "len"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Attribute)
                and node.args[0].attr in self.ctx.buffers):
            buf = node.args[0].attr
            for spec in self.ctx.cls.FIELDS:
                if spec.name == buf:
                    return BufLen(buf, spec.type.length)
        raise self._err(node, "calls are only allowed as statements "
                              "(or len(self.<buffer>))")

    # -- statements ----------------------------------------------------------

    def suite(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            self._assign(node)
        elif isinstance(node, ast.AugAssign):
            self._aug_assign(node)
        elif isinstance(node, ast.AnnAssign):
            if node.value is None:
                raise self._err(node, "bare annotations not supported")
            self._do_assign(node.target, node.value, node.lineno)
        elif isinstance(node, ast.Expr):
            self._expr_stmt(node)
        elif isinstance(node, ast.If):
            self._if(node)
        elif isinstance(node, ast.While):
            self._while(node)
        elif isinstance(node, ast.For):
            self._for(node)
        elif isinstance(node, ast.Return):
            value = self.expr(node.value) if node.value else None
            self._terminate(Return(value, lineno=node.lineno))
        elif isinstance(node, ast.Break):
            if not self._loop_stack:
                raise self._err(node, "break outside loop")
            self._terminate(Goto(self._loop_stack[-1][1], lineno=node.lineno))
        elif isinstance(node, ast.Continue):
            if not self._loop_stack:
                raise self._err(node, "continue outside loop")
            self._terminate(Goto(self._loop_stack[-1][0], lineno=node.lineno))
        elif isinstance(node, ast.Pass):
            pass
        else:
            raise self._err(node, f"statement {type(node).__name__} "
                                  "not in the restricted subset")

    def _assign(self, node: ast.Assign) -> None:
        if len(node.targets) != 1:
            raise self._err(node, "multiple assignment targets not supported")
        self._do_assign(node.targets[0], node.value, node.lineno)

    def _do_assign(self, target: ast.expr, value: ast.expr,
                   lineno: int) -> None:
        if isinstance(value, ast.Call) and not self._is_len_call(value):
            if isinstance(target, ast.Name):
                self._call(value, dest_target=target, lineno=lineno)
            else:
                # self.field = self.method(): lower through a temp local.
                temp = f"__call{self._label_counter}"
                temp_name = ast.Name(id=temp, ctx=ast.Store())
                ast.copy_location(temp_name, target)
                self._call(value, dest_target=temp_name, lineno=lineno)
                self._store(target, Local(temp), lineno)
            return
        rhs = self.expr(value)
        self._store(target, rhs, lineno)

    def _store(self, target: ast.expr, rhs: Expr, lineno: int) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.params:
                raise self._err(target, "parameters are read-only; "
                                        "copy into a local first")
            self._emit(Assign(target.id, rhs, lineno=lineno))
        elif isinstance(target, ast.Attribute):
            ref = self._attribute(target)
            if not isinstance(ref, StateRef):
                raise self._err(target, "cannot assign to a constant")
            self._emit(StateStore(ref.field, rhs, lineno=lineno))
        elif isinstance(target, ast.Subscript):
            buf, index = self._subscript_parts(target)
            self._emit(BufStore(buf, self.expr(index), rhs, lineno=lineno))
        else:
            raise self._err(target, "unsupported assignment target")

    def _aug_assign(self, node: ast.AugAssign) -> None:
        op = _BIN_OPS.get(type(node.op))
        if op is None:
            raise self._err(node, "augmented operator not supported")
        load: ast.expr = node.target
        current = self.expr(load)
        rhs = _fold(BinOp(op, current, self.expr(node.value)))
        self._store(node.target, rhs, node.lineno)

    def _is_len_call(self, node: ast.Call) -> bool:
        return (isinstance(node.func, ast.Name) and node.func.id == "len")

    def _expr_stmt(self, node: ast.Expr) -> None:
        if isinstance(node.value, ast.Constant):
            return   # docstring
        if not isinstance(node.value, ast.Call):
            raise self._err(node, "expression statements must be calls")
        self._call(node.value, dest_target=None, lineno=node.lineno)

    # -- calls -----------------------------------------------------------------

    def _call(self, node: ast.Call, dest_target: Optional[ast.expr],
              lineno: int) -> None:
        if node.keywords:
            raise self._err(node, "keyword arguments not supported")
        args = tuple(self.expr(a) for a in node.args)
        dest = self._dest_local(dest_target)

        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name in INTRINSICS:
                if dest is not None:
                    raise self._err(node, "intrinsics return nothing")
                self._emit(Intrinsic(name.replace("sed_", ""), args,
                                     lineno=lineno))
                return
            if name in self.ctx.externs:
                self._emit(ExternCall(name, args, dest=dest, lineno=lineno))
                return
            raise self._err(node, f"unknown function {name!r} (declare it "
                                  "in EXTERNS?)")

        if (isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"):
            name = node.func.attr
            cont = self._new_label("c")
            if name in self.ctx.funcptrs:
                self._terminate(ICall(name, args, dest, cont, lineno=lineno))
            elif name in self.ctx.methods:
                self._terminate(Call(name, args, dest, cont, lineno=lineno))
            else:
                raise self._err(node, f"unknown method {name!r}")
            self._start_block(cont, lineno=lineno)
            return

        raise self._err(node, "unsupported call form")

    def _dest_local(self, target: Optional[ast.expr]) -> Optional[str]:
        """Call results land in locals; field/buffer targets are lowered
        through a temporary by :meth:`_do_assign`."""
        if target is None:
            return None
        if isinstance(target, ast.Name):
            return target.id
        raise self._err(target, "call results must be assigned to a local")

    # -- control flow ------------------------------------------------------------

    def _if(self, node: ast.If) -> None:
        cond = self.expr(node.test)
        if isinstance(cond, Const):
            # Dead-branch elimination: compile-time version gating.
            self.suite(node.body if cond.value else node.orelse)
            return
        if self._try_switch_lowering(node):
            return
        then_label = self._new_label("then")
        else_label = self._new_label("else") if node.orelse else None
        join_label = self._new_label("join")
        self._terminate(Branch(cond, then_label, else_label or join_label,
                               lineno=node.lineno))
        self._start_block(then_label, lineno=node.lineno)
        self.suite(node.body)
        if self._cur is not None:
            self._terminate(Goto(join_label))
        if else_label:
            self._start_block(else_label)
            self.suite(node.orelse)
            if self._cur is not None:
                self._terminate(Goto(join_label))
        self._start_block(join_label)

    def _try_switch_lowering(self, node: ast.If) -> bool:
        """Lower ``if x == C0: ... elif x == C1: ... else: ...`` chains
        (3+ arms, same scrutinee, constant comparands) to a Switch — the
        jump table a C compiler emits for a device's command dispatch.
        Emits one TIP-style indirect transfer instead of a TNT cascade.
        """
        arms: List[Tuple[int, List[ast.stmt]]] = []
        scrutinee: Optional[Expr] = None
        current: ast.stmt = node
        default_body: List[ast.stmt] = []
        while isinstance(current, ast.If):
            test = current.test
            if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                    and isinstance(test.ops[0], ast.Eq)):
                return False
            left = self.expr(test.left)
            right = self.expr(test.comparators[0])
            if not isinstance(right, Const):
                return False
            if scrutinee is None:
                scrutinee = left
            elif left != scrutinee:
                return False
            if right.value in dict(arms):
                return False
            arms.append((right.value, current.body))
            orelse = current.orelse
            if len(orelse) == 1 and isinstance(orelse[0], ast.If):
                current = orelse[0]
            else:
                default_body = orelse
                break
        if scrutinee is None or len(arms) < 3:
            return False

        join_label = self._new_label("sjoin")
        table: Dict[int, str] = {}
        arm_bodies: List[Tuple[str, List[ast.stmt]]] = []
        for value, body in arms:
            label = self._new_label("arm")
            table[value] = label
            arm_bodies.append((label, body))
        default_label = self._new_label("sdef")
        self._terminate(Switch(scrutinee, table, default_label,
                               lineno=node.lineno))
        for label, body in arm_bodies:
            self._start_block(label, lineno=node.lineno)
            self.suite(body)
            if self._cur is not None:
                self._terminate(Goto(join_label))
        self._start_block(default_label)
        self.suite(default_body)
        if self._cur is not None:
            self._terminate(Goto(join_label))
        self._start_block(join_label)
        return True

    def _while(self, node: ast.While) -> None:
        if node.orelse:
            raise self._err(node, "while-else not supported")
        cond_label = self._new_label("loop")
        body_label = self._new_label("body")
        exit_label = self._new_label("exit")
        self._terminate(Goto(cond_label, lineno=node.lineno))
        self._start_block(cond_label, lineno=node.lineno)
        cond = self.expr(node.test)
        self._terminate(Branch(cond, body_label, exit_label,
                               lineno=node.lineno))
        self._start_block(body_label)
        self._loop_stack.append((cond_label, exit_label))
        self.suite(node.body)
        self._loop_stack.pop()
        if self._cur is not None:
            self._terminate(Goto(cond_label))
        self._start_block(exit_label)

    def _for(self, node: ast.For) -> None:
        """``for i in range(...)`` desugars to an explicit counter loop."""
        if node.orelse:
            raise self._err(node, "for-else not supported")
        if not (isinstance(node.iter, ast.Call)
                and isinstance(node.iter.func, ast.Name)
                and node.iter.func.id == "range"):
            raise self._err(node, "only range() iteration is supported")
        if not isinstance(node.target, ast.Name):
            raise self._err(node, "loop variable must be a plain name")
        rng = node.iter.args
        if len(rng) == 1:
            start: Expr = Const(0)
            stop = self.expr(rng[0])
            step = 1
        elif len(rng) in (2, 3):
            start = self.expr(rng[0])
            stop = self.expr(rng[1])
            step = 1
            if len(rng) == 3:
                step_expr = self.expr(rng[2])
                if not isinstance(step_expr, Const) or step_expr.value == 0:
                    raise self._err(node, "range step must be a nonzero "
                                          "constant")
                step = step_expr.value
        else:
            raise self._err(node, "range() takes 1-3 arguments")

        var = node.target.id
        self._emit(Assign(var, start, lineno=node.lineno))
        # The bound is evaluated once, like Python (and like idiomatic C).
        bound = f"__{var}_stop"
        self._emit(Assign(bound, stop, lineno=node.lineno))
        cond_label = self._new_label("forc")
        body_label = self._new_label("forb")
        step_label = self._new_label("fors")
        exit_label = self._new_label("fore")
        self._terminate(Goto(cond_label, lineno=node.lineno))
        self._start_block(cond_label, lineno=node.lineno)
        cmp_op = "<" if step > 0 else ">"
        self._terminate(Branch(BinOp(cmp_op, Local(var), Local(bound)),
                               body_label, exit_label, lineno=node.lineno))
        self._start_block(body_label)
        self._loop_stack.append((step_label, exit_label))
        self.suite(node.body)
        self._loop_stack.pop()
        if self._cur is not None:
            self._terminate(Goto(step_label))
        self._start_block(step_label)
        self._emit(Assign(var, BinOp("+", Local(var), Const(step))))
        self._terminate(Goto(cond_label))
        self._start_block(exit_label)

    # -- finalization ---------------------------------------------------------

    def finish(self) -> Function:
        if self._cur is not None:
            self._terminate(Return(None))
        self._prune_unreachable()
        return self.func

    def _prune_unreachable(self) -> None:
        reachable = set()
        stack = [self.func.entry]
        while stack:
            label = stack.pop()
            if label in reachable:
                continue
            reachable.add(label)
            stack.extend(self.func.blocks[label].terminator.successors())
        for label in list(self.func.blocks):
            if label not in reachable:
                del self.func.blocks[label]

    def _err(self, node: ast.AST, message: str) -> CompileError:
        return CompileError(message, getattr(node, "lineno", 0), self.name)


def _class_ast(cls: Type[DeviceLogic],
               source: Optional[str] = None) -> ast.ClassDef:
    if source is None:
        source = inspect.getsource(cls)
    module = ast.parse(textwrap.dedent(source))
    for node in module.body:
        if isinstance(node, ast.ClassDef) and node.name == cls.__name__:
            return node
    raise CompileError(f"could not locate class {cls.__name__} in source")


def compile_device(cls: Type[DeviceLogic],
                   const_overrides: Optional[Dict[str, int]] = None,
                   source: Optional[str] = None) -> Program:
    """Compile a DeviceLogic subclass into a frozen IR Program.

    *const_overrides* replaces entries of ``cls.CONSTS`` before compilation;
    devices use this to build vulnerable vs patched variants from one source
    (``{"VULN_VENOM": 1}`` etc. — driven by ``qemu_version``).  *source*
    supplies the class source text when ``inspect.getsource`` cannot (e.g.
    dynamically generated classes).
    """
    if not cls.STRUCT:
        raise CompileError(f"{cls.__name__}.STRUCT is not set")
    ctx = _ClassCtx(cls)
    if const_overrides:
        for key, value in const_overrides.items():
            ctx.consts[key] = int(value)

    class_node = _class_ast(cls, source)
    method_nodes = [n for n in class_node.body
                    if isinstance(n, ast.FunctionDef)
                    and not n.name.startswith("_")
                    and n.name not in cls.NOCOMPILE]
    ctx.methods = {n.name for n in method_nodes}

    layout = StateLayout(cls.STRUCT)
    for spec in cls.FIELDS:
        layout.add(spec.name, spec.type, register=spec.register, doc=spec.doc)

    program = Program(cls.STRUCT, layout)
    for node in method_nodes:
        params = tuple(a.arg for a in node.args.args if a.arg != "self")
        fc = _FuncCompiler(ctx, node.name, params)
        fc.suite(node.body)
        program.add_function(fc.finish())

    for key, method in dict(cls.ENTRIES).items():
        if method not in program.functions:
            raise CompileError(
                f"entry {key!r} names unknown method {method!r}")
        program.register_entry(key, method)
    return program.freeze()
