"""Guest VM substrate: the KVM/QEMU dispatch loop analogue.

A :class:`GuestVM` owns guest memory, an IRQ controller, the attached
devices (each at a PMIO base port), and — when SEDSpec is deployed — the
per-device ES-Checker proxies that vet every I/O round *before* the device
executes it.

The cycle accounting implements the performance model: every guest I/O
pays a fixed exit/dispatch cost (the KVM exit, QEMU's I/O demux), then the
device's interpreted work, then SEDSpec's checking work if attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.checker import (
    ALL_STRATEGIES, Action, CheckReport, ESChecker, ExternHarvestSink,
    FieldSyncOracle, Mode, QueueSyncOracle, Strategy,
)
from repro.devices.backends import GuestMemory, IRQLine
from repro.devices.base import Device
from repro.errors import DeviceFault, ReproError, WorkloadError
from repro.spec import ExecutionSpec
from repro.spec.builder import handler_needs_sync

#: Fixed cost of one guest I/O exit (KVM vmexit + QEMU dispatch + re-entry).
VMEXIT_COST = 300


class SEDSpecHalt(ReproError):
    """SEDSpec halted the device/VM (protection semantics)."""

    def __init__(self, report: CheckReport):
        self.report = report
        anomaly = report.first_anomaly()
        super().__init__(f"SEDSpec halted execution: {anomaly}")


@dataclass
class Attachment:
    """One deployed ES-Checker guarding one device.

    Two checking disciplines per I/O key (paper §V-D):

    * *strict* — no sync points reachable: the checker fully simulates the
      round before the device touches the request;
    * *co-execution* — the walk needs extern-call results (DMA payloads,
      media bytes): the device executes with a harvest sink and the
      checker validates immediately after, halting the VM post-hoc if
      violated.  This is the paper's interleaved sync-point scheme.
    """

    checker: ESChecker
    device: Device
    #: io_key -> True when co-execution is required
    sync_keys: Dict[str, bool] = field(default_factory=dict)
    warnings: List[CheckReport] = field(default_factory=list)
    halts: List[CheckReport] = field(default_factory=list)
    checked_rounds: int = 0
    #: credit-batch discipline: defer strict-key rounds and vet up to
    #: this many in one batched checker invocation (0 = per-round)
    batch_rounds: int = 0
    #: credited rounds awaiting the next flush
    pending: List[Tuple[str, Tuple[int, ...]]] = field(default_factory=list)
    #: batched checker invocations performed
    batch_flushes: int = 0


@dataclass
class IOStats:
    """VM-level accounting for the performance benchmarks."""

    io_rounds: int = 0
    vmexit_cycles: int = 0
    device_cycles: int = 0
    checker_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        return self.vmexit_cycles + self.device_cycles + self.checker_cycles

    def snapshot(self) -> "IOStats":
        return IOStats(self.io_rounds, self.vmexit_cycles,
                       self.device_cycles, self.checker_cycles)

    def delta(self, earlier: "IOStats") -> "IOStats":
        return IOStats(self.io_rounds - earlier.io_rounds,
                       self.vmexit_cycles - earlier.vmexit_cycles,
                       self.device_cycles - earlier.device_cycles,
                       self.checker_cycles - earlier.checker_cycles)


class GuestVM:
    """A guest machine with PMIO-attached emulated devices."""

    def __init__(self, memory: Optional[GuestMemory] = None):
        self.memory = memory if memory is not None else GuestMemory()
        self.devices: Dict[str, Device] = {}
        self._port_ranges: List[Tuple[int, int, str]] = []
        self._mmio_ranges: List[Tuple[int, int, str]] = []
        self.attachments: Dict[str, Attachment] = {}
        self.stats = IOStats()

    # -- topology ------------------------------------------------------------

    def attach_device(self, device: Device, base_port: int,
                      span: int = 16) -> Device:
        """Attach a PMIO device at *base_port*."""
        for lo, hi, name in self._port_ranges:
            if base_port < hi and base_port + span > lo:
                raise WorkloadError(
                    f"port range clash with {name} at {lo:#x}")
        self.devices[device.NAME] = device
        self._port_ranges.append((base_port, base_port + span,
                                  device.NAME))
        if hasattr(device, "memory"):
            # DMA-capable devices address *this* guest's physical memory.
            device.memory = self.memory
        return device

    def attach_mmio_device(self, device: Device, base_addr: int,
                           span: int = 0x100) -> Device:
        """Attach a device through a memory-mapped register window."""
        for lo, hi, name in self._mmio_ranges:
            if base_addr < hi and base_addr + span > lo:
                raise WorkloadError(
                    f"MMIO range clash with {name} at {lo:#x}")
        self.devices[device.NAME] = device
        self._mmio_ranges.append((base_addr, base_addr + span,
                                  device.NAME))
        if hasattr(device, "memory"):
            device.memory = self.memory
        return device

    def mmio_device_at(self, addr: int) -> Tuple[Device, int]:
        for lo, hi, name in self._mmio_ranges:
            if lo <= addr < hi:
                return self.devices[name], addr - lo
        raise WorkloadError(f"no device mapped at {addr:#x}")

    def device_at(self, port: int) -> Tuple[Device, int]:
        for lo, hi, name in self._port_ranges:
            if lo <= port < hi:
                return self.devices[name], port - lo
        raise WorkloadError(f"no device at port {port:#x}")

    def attach_sedspec(self, device_name: str, spec: ExecutionSpec,
                       mode: Mode = Mode.ENHANCEMENT,
                       strategies=ALL_STRATEGIES,
                       backend: str = "compiled",
                       recorder=None,
                       batch_rounds: int = 0) -> Attachment:
        """Deploy an execution specification in front of a device.

        *recorder* (a :class:`repro.telemetry.Recorder`) opts the
        checker into telemetry; the default ``None`` keeps the hot path
        observation-free.  ``batch_rounds > 0`` opts the attachment into
        the credit-batch discipline: strict-key rounds execute on credit
        and are vetted in batches of up to *batch_rounds* through
        :meth:`ESChecker.check_batch` (flushed before any sync-key
        round, on a device fault, and at every op boundary)."""
        device = self.devices[device_name]
        checker = ESChecker(spec, mode=mode, strategies=strategies,
                            backend=backend, recorder=recorder)
        checker.boot_sync(device.state)
        sync_keys = {key: handler_needs_sync(spec, key)
                     for key in spec.entry_handlers}
        attachment = Attachment(checker=checker, device=device,
                                sync_keys=sync_keys,
                                batch_rounds=batch_rounds)
        self.attachments[device_name] = attachment
        return attachment

    def detach_sedspec(self, device_name: str) -> None:
        self.attachments.pop(device_name, None)

    # -- the I/O path --------------------------------------------------------------

    def outb(self, port: int, value: int) -> None:
        device, offset = self.device_at(port)
        self._io(device, f"pmio:write:{offset}", (value & 0xFF,))

    def inb(self, port: int) -> int:
        device, offset = self.device_at(port)
        result = self._io(device, f"pmio:read:{offset}", ())
        return (result or 0) & 0xFF

    def outl(self, port: int, value: int) -> None:
        """32-bit port write (DMA address setup and the like)."""
        device, offset = self.device_at(port)
        self._io(device, f"pmio:write:{offset}", (value & 0xFFFFFFFF,))

    def inl(self, port: int) -> int:
        """32-bit port read (wide status/CSR values)."""
        device, offset = self.device_at(port)
        result = self._io(device, f"pmio:read:{offset}", ())
        return (result or 0) & 0xFFFFFFFF

    def mmio_write(self, addr: int, value: int) -> None:
        """Write to a memory-mapped device register."""
        device, offset = self.mmio_device_at(addr)
        self._io(device, f"mmio:write:{offset}", (value & 0xFFFFFFFF,))

    def mmio_read(self, addr: int) -> int:
        """Read a memory-mapped device register."""
        device, offset = self.mmio_device_at(addr)
        result = self._io(device, f"mmio:read:{offset}", ())
        return (result or 0) & 0xFFFFFFFF

    def _io(self, device: Device, key: str,
            args: Tuple[int, ...]) -> Optional[int]:
        self.stats.io_rounds += 1
        self.stats.vmexit_cycles += VMEXIT_COST
        attachment = self.attachments.get(device.NAME)
        if attachment is None:
            return self._run_device(device, key, args)
        if attachment.sync_keys.get(key, False):
            # Co-execution validates against the state the round starts
            # from, so any credited rounds must land first.
            self._flush_batch(attachment, device)
            return self._co_execute(attachment, device, key, args)
        if attachment.batch_rounds > 0:
            return self._credit_io(attachment, device, key, args)
        # Strict discipline: simulate and vet before the device runs.
        oracle = FieldSyncOracle(device.state)
        report = self._vet(attachment, key, args, oracle)
        result = self._run_device(device, key, args)
        self._maybe_resync(attachment, device, report)
        return result

    def _credit_io(self, attachment: Attachment, device: Device,
                   key: str, args: Tuple[int, ...]) -> Optional[int]:
        """Credit-batch discipline: the strict-key round executes on
        credit and joins the pending batch; the batched checker vets the
        whole batch at the next flush point.  Detection moves from
        before-execution to the flush — the fleet's post-hoc quarantine
        semantics, traded for one checker invocation per batch."""
        attachment.pending.append((key, args))
        try:
            result = self._run_device(device, key, args)
        except DeviceFault:
            # Detection takes precedence over the fault outcome: vet
            # the credited rounds (the faulting one included) before
            # the fault propagates; a HALT verdict raises SEDSpecHalt
            # from the flush instead.
            self._flush_batch(attachment, device)
            raise
        if len(attachment.pending) >= attachment.batch_rounds:
            self._flush_batch(attachment, device)
        return result

    def _flush_batch(self, attachment: Attachment,
                     device: Device) -> None:
        pending = attachment.pending
        if not pending:
            return
        rounds = list(pending)
        pending.clear()
        checker = attachment.checker
        before = checker.cycles
        reports = checker.check_batch(
            rounds, oracle=FieldSyncOracle(device.state))
        self.stats.checker_cycles += checker.cycles - before
        attachment.batch_flushes += 1
        resync = False
        halt: Optional[CheckReport] = None
        checked = 0
        for report in reports:
            checked += 1
            if report.action is Action.HALT:
                halt = report
                attachment.halts.append(report)
                break
            if report.action is Action.WARN:
                attachment.warnings.append(report)
                resync = True
            if report.incomplete:
                resync = True
        attachment.checked_rounds += checked
        if resync:
            checker.resync(device.state)
        if halt is not None:
            raise SEDSpecHalt(halt)

    def flush_batches(self) -> None:
        """Flush every attachment's credited rounds (op boundary).  A
        HALT verdict raises :class:`SEDSpecHalt` exactly as a per-round
        vet would — just later, at the flush."""
        for name, attachment in self.attachments.items():
            self._flush_batch(attachment, self.devices[name])

    def _co_execute(self, attachment: Attachment, device: Device,
                    key: str, args: Tuple[int, ...]) -> Optional[int]:
        """Sync-point discipline: the device executes with a harvest sink;
        the checker validates immediately after on the harvested values
        (Section V-D's interleaving).  A device fault mid-round is fed to
        the checker, which classifies it on the harvested prefix — this is
        how the CVE-2016-7909 infinite loop is flagged."""
        harvest = ExternHarvestSink()
        device.machine.add_sink(harvest)
        # Field sync values must reflect the state *the round started
        # from*, exactly as the strict discipline sees them.
        pre_state = device.snapshot()
        fault: Optional[DeviceFault] = None
        result: Optional[int] = None
        try:
            result = self._run_device(device, key, args)
        except DeviceFault as exc:
            fault = exc
        finally:
            device.machine.remove_sink(harvest)
        oracle = QueueSyncOracle(
            harvest.queues, fallback=FieldSyncOracle(pre_state))
        report = self._vet(attachment, key, args, oracle)
        self._maybe_resync(attachment, device, report)
        if fault is not None:
            raise fault
        return result

    def _run_device(self, device: Device, key: str,
                    args: Tuple[int, ...]) -> Optional[int]:
        before = device.machine.cycles
        try:
            return device.handle_io(key, args)
        finally:
            self.stats.device_cycles += device.machine.cycles - before

    def _vet(self, attachment: Attachment, key: str,
             args: Tuple[int, ...], oracle) -> CheckReport:
        checker = attachment.checker
        before = checker.cycles
        report = checker.check_io(key, args, oracle=oracle)
        self.stats.checker_cycles += checker.cycles - before
        attachment.checked_rounds += 1
        if report.action is Action.HALT:
            attachment.halts.append(report)
            raise SEDSpecHalt(report)
        if report.action is Action.WARN:
            attachment.warnings.append(report)
        return report

    @staticmethod
    def _maybe_resync(attachment: Attachment, device: Device,
                      report: CheckReport) -> None:
        """When the checker lost track of a round it could not veto (an
        incomplete walk, or a warn-and-continue in enhancement mode), the
        device executed anyway; re-align the shadow device state from the
        live control structure so one blind spot does not cascade."""
        if report.incomplete or report.action is Action.WARN:
            attachment.checker.resync(device.state)

    # -- reporting --------------------------------------------------------------

    def warning_count(self, device_name: str) -> int:
        attachment = self.attachments.get(device_name)
        return len(attachment.warnings) if attachment else 0

    def halt_count(self, device_name: str) -> int:
        attachment = self.attachments.get(device_name)
        return len(attachment.halts) if attachment else 0
