"""Guest-side virtio drivers: queue setup, descriptor chains, requests.

Shared queue protocol (see :mod:`repro.devices.virtio`): descriptors are 6
bytes ``[addr_lo, addr_mid, len_lo, len_hi, flags, next]``; the avail ring
sits behind the table (2-byte idx + 1-byte heads), the used ring behind
that (1-byte idx + 2-byte entries).  Drain queues (net tx, blk requests)
treat the avail idx as a *wrapped slot cursor* the device chases; credit
queues (net rx, blk events) treat it as a free-running counter.  The
cursor lives in guest memory, so any number of driver instances over one
VM stay in sync.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.devices.virtio import (
    BLK_T_IN, BLK_T_OUT, DESC_SIZE, F_INDIRECT, F_NEXT, F_WRITE, QUEUE_SIZE,
    STATUS_ACK, STATUS_DRIVER, STATUS_DRIVER_OK, queue_avail, queue_used,
)
from repro.errors import GuestError
from repro.vm.machine import GuestVM

REG_STATUS = 0
REG_QSEL = 1
REG_QBASE = 2
REG_QSIZE = 3
REG_NOTIFY = 4
REG_ISR = 5
REG_RXNOTIFY = 6     # net only
REG_RXDATA = 7       # net only
REG_CAPACITY = 6     # blk only (read)

#: A chain element: (guest address, length, device-writes?).
Chunk = Tuple[int, int, bool]


class VirtioQueueDriver:
    """Transport plumbing shared by the NIC and block drivers."""

    def __init__(self, vm: GuestVM, base_port: int):
        self.vm = vm
        self.base = base_port

    # -- registers -----------------------------------------------------------

    def _reg_write(self, reg: int, value: int) -> None:
        self.vm.outl(self.base + reg, value)

    def _reg_read(self, reg: int) -> int:
        return self.vm.inl(self.base + reg)

    def negotiate(self) -> None:
        """The feature handshake a real guest performs at probe time."""
        self._reg_write(REG_STATUS, STATUS_ACK)
        self._reg_write(REG_STATUS, STATUS_ACK | STATUS_DRIVER)
        self._reg_write(REG_STATUS,
                        STATUS_ACK | STATUS_DRIVER | STATUS_DRIVER_OK)
        self._reg_read(REG_STATUS)

    def select_queue(self, q: int, base: int, size: int = QUEUE_SIZE) -> None:
        self._reg_write(REG_QSEL, q)
        self._reg_write(REG_QBASE, base)
        self._reg_write(REG_QSIZE, size)

    def notify(self, q: int) -> None:
        self._reg_write(REG_NOTIFY, q)

    def read_isr(self) -> int:
        return self._reg_read(REG_ISR)

    def ctrl_ack(self) -> None:
        """Kick the control queue (a pure register-path round trip)."""
        self.notify(2)
        self.read_isr()

    # -- descriptor plumbing -------------------------------------------------

    def write_desc(self, table: int, index: int, addr: int, length: int,
                   flags: int = 0, nxt: int = 0) -> None:
        base = table + DESC_SIZE * index
        self.vm.memory.write_block(base, bytes([
            addr & 0xFF, (addr >> 8) & 0xFF,
            length & 0xFF, (length >> 8) & 0xFF,
            flags & 0xFF, nxt & 0xFF,
        ]))

    def build_chain(self, table: int, chunks: Sequence[Chunk],
                    start: int = 0) -> int:
        """Lay *chunks* out as a NEXT-linked chain from *start*; returns
        the head index."""
        if not chunks:
            raise GuestError("empty descriptor chain")
        for i, (addr, length, device_writes) in enumerate(chunks):
            flags = F_WRITE if device_writes else 0
            nxt = 0
            if i + 1 < len(chunks):
                flags |= F_NEXT
                nxt = start + i + 1
            self.write_desc(table, start + i, addr, length, flags, nxt)
        return start

    def build_indirect(self, table: int, head: int, sub_table: int,
                       chunks: Sequence[Chunk]) -> int:
        """Pack *chunks* into a sub-table and point one INDIRECT
        descriptor at it; returns the head index."""
        for i, (addr, length, device_writes) in enumerate(chunks):
            base = sub_table + DESC_SIZE * i
            flags = F_WRITE if device_writes else 0
            self.vm.memory.write_block(base, bytes([
                addr & 0xFF, (addr >> 8) & 0xFF,
                length & 0xFF, (length >> 8) & 0xFF,
                flags, 0,
            ]))
        self.write_desc(table, head, sub_table,
                        DESC_SIZE * len(chunks), F_INDIRECT)
        return head

    def post_head(self, queue_base: int, head: int,
                  size: int = QUEUE_SIZE) -> None:
        """Append *head* to a drain queue's avail ring (wrapped cursor)."""
        avail = queue_avail(queue_base, size)
        aidx = self.vm.memory.read_byte(avail)
        self.vm.memory.write_byte(avail + 2 + aidx, head)
        self.vm.memory.write_byte(avail, (aidx + 1) % size)

    def bump_credit(self, queue_base: int, size: int = QUEUE_SIZE) -> None:
        """Bump a credit queue's avail idx (free-running 16-bit)."""
        avail = queue_avail(queue_base, size)
        lo = self.vm.memory.read_byte(avail)
        hi = self.vm.memory.read_byte(avail + 1)
        idx = ((lo | (hi << 8)) + 1) & 0xFFFF
        self.vm.memory.write_byte(avail, idx & 0xFF)
        self.vm.memory.write_byte(avail + 1, idx >> 8)

    def used_idx(self, queue_base: int, size: int = QUEUE_SIZE) -> int:
        return self.vm.memory.read_byte(queue_used(queue_base, size))


class VirtioNetDriver(VirtioQueueDriver):
    """Speaks the rx/tx/ctrl queue protocol of :class:`VirtioNet`."""

    RX_QUEUE = 0x5000
    TX_QUEUE = 0x5400
    INDIRECT_TABLE = 0x5800
    DATA = 0x6000
    DATA_STRIDE = 0x400

    def __init__(self, vm: GuestVM, base_port: int = 0x700):
        super().__init__(vm, base_port)

    def setup_queues(self) -> None:
        self.select_queue(0, self.RX_QUEUE)
        self.select_queue(1, self.TX_QUEUE)

    def bring_up(self) -> None:
        self.negotiate()
        self.setup_queues()
        self.post_rx_buffers()

    # -- transmit ------------------------------------------------------------

    def _stage_payload(self, payload: bytes,
                       chunks: Optional[List[bytes]]) -> List[Chunk]:
        parts = chunks if chunks is not None else [payload]
        staged: List[Chunk] = []
        for i, part in enumerate(parts):
            if len(part) > self.DATA_STRIDE:
                raise GuestError("descriptor payload too large")
            addr = self.DATA + self.DATA_STRIDE * i
            self.vm.memory.write_block(addr, part)
            staged.append((addr, len(part), False))
        return staged

    def send_frame(self, payload: bytes,
                   chunks: Optional[List[bytes]] = None,
                   indirect: bool = False) -> None:
        """Queue *payload* (optionally pre-split into chained descriptor
        chunks, optionally through an indirect sub-table) and kick tx."""
        staged = self._stage_payload(payload, chunks)
        if len(staged) > QUEUE_SIZE:
            raise GuestError("too many chained descriptors")
        if indirect:
            head = self.build_indirect(self.TX_QUEUE, 0,
                                       self.INDIRECT_TABLE, staged)
        else:
            head = self.build_chain(self.TX_QUEUE, staged)
        self.post_head(self.TX_QUEUE, head)
        self.notify(1)

    # -- receive -------------------------------------------------------------

    def post_rx_buffers(self, count: int = 1) -> None:
        """Grant the device rx credit and sync it (queue-notify 0)."""
        for _ in range(count):
            self.bump_credit(self.RX_QUEUE)
        self.notify(0)

    def deliver_frame(self, payload: bytes) -> None:
        """Host-side: stage a frame and notify the device (what the net
        backend does when a packet arrives for the guest)."""
        device = self.vm.devices["virtio-net"]
        device.stage_rx_frame(payload)
        self.vm.outl(self.base + REG_RXNOTIFY, len(payload))

    def read_frame(self, length: int) -> bytes:
        return bytes(self.vm.inb(self.base + REG_RXDATA)
                     for _ in range(length))


class VirtioBlkDriver(VirtioQueueDriver):
    """Speaks the request-chain protocol of :class:`VirtioBlk`."""

    REQ_QUEUE = 0x7000
    EVENT_QUEUE = 0x7400
    HEADER = 0x7800
    STATUS_BYTE = 0x78F0
    DATA = 0x7900
    READBACK = 0x7A00
    INDIRECT_TABLE = 0x7C00
    DATA_STRIDE = 0x400

    def __init__(self, vm: GuestVM, base_port: int = 0x800):
        super().__init__(vm, base_port)

    def setup_queues(self) -> None:
        self.select_queue(0, self.REQ_QUEUE)
        self.select_queue(1, self.EVENT_QUEUE)

    def bring_up(self) -> None:
        self.negotiate()
        self.setup_queues()
        self.post_event_credit()

    def post_event_credit(self, count: int = 1) -> None:
        for _ in range(count):
            self.bump_credit(self.EVENT_QUEUE)
        self.notify(1)

    def read_capacity(self) -> int:
        """Config space: capacity in sectors (low 16 bits)."""
        self._reg_write(REG_QSEL, 0)
        lo = self._reg_read(REG_CAPACITY)
        self._reg_write(REG_QSEL, 1)
        hi = self._reg_read(REG_CAPACITY)
        self._reg_write(REG_QSEL, 0)
        return lo | (hi << 8)

    # -- requests ------------------------------------------------------------

    def _write_header(self, req_type: int, sector: int) -> None:
        self.vm.memory.write_block(self.HEADER, bytes([
            req_type, 0, sector & 0xFF, (sector >> 8) & 0xFF,
            0, 0, 0, 0,
        ]))

    def _submit(self, data_chunks: Sequence[Chunk],
                indirect: bool = False) -> int:
        """Build header → data → status and kick the request queue."""
        chain: List[Chunk] = [(self.HEADER, 8, False)]
        if indirect:
            # Header stays direct; the data chunks travel via a sub-table,
            # and the indirect descriptor chains on to the status desc.
            self.build_indirect(self.REQ_QUEUE, 1, self.INDIRECT_TABLE,
                                data_chunks)
            self.write_desc(self.REQ_QUEUE, 0, self.HEADER, 8, F_NEXT, 1)
            self.write_desc(
                self.REQ_QUEUE, 1, self.INDIRECT_TABLE,
                DESC_SIZE * len(data_chunks), F_INDIRECT | F_NEXT, 2)
            self.write_desc(self.REQ_QUEUE, 2, self.STATUS_BYTE, 1, F_WRITE)
            head = 0
        else:
            chain.extend(data_chunks)
            chain.append((self.STATUS_BYTE, 1, True))
            head = self.build_chain(self.REQ_QUEUE, chain)
        self.post_head(self.REQ_QUEUE, head)
        self.notify(0)
        return self.vm.memory.read_byte(self.STATUS_BYTE)

    def write_blocks(self, sector: int, payload: bytes,
                     chunks: Optional[List[bytes]] = None,
                     indirect: bool = False) -> int:
        """WRITE request: gather *payload* to disk at *sector*."""
        self._write_header(BLK_T_OUT, sector)
        parts = chunks if chunks is not None else [payload]
        staged: List[Chunk] = []
        for i, part in enumerate(parts):
            if len(part) > self.DATA_STRIDE:
                raise GuestError("descriptor payload too large")
            addr = self.DATA + self.DATA_STRIDE * i
            self.vm.memory.write_block(addr, part)
            staged.append((addr, len(part), False))
        if len(staged) + 2 > QUEUE_SIZE and not indirect:
            raise GuestError("too many chained descriptors")
        return self._submit(staged, indirect=indirect)

    def read_blocks(self, sector: int, length: int) -> bytes:
        """READ request: stream *length* bytes from *sector* into guest
        memory and return them."""
        if length > self.DATA_STRIDE:
            raise GuestError("read larger than the readback window")
        self._write_header(BLK_T_IN, sector)
        self._submit([(self.READBACK, length, True)])
        return self.vm.memory.read_block(self.READBACK, length)
