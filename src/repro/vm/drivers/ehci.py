"""Guest-side EHCI/USB driver: token-level control transfers + block I/O."""

from __future__ import annotations

from typing import Optional

from repro.devices.ehci import (
    REQ_BLOCK_READ, REQ_BLOCK_WRITE, REQ_GET_DESCRIPTOR, REQ_GET_STATUS,
    REQ_SET_ADDRESS, REQ_SET_CONFIGURATION, SECTOR, TOKEN_IN, TOKEN_OUT,
    TOKEN_SETUP,
)
from repro.errors import GuestError
from repro.vm.machine import GuestVM

PORT_USBCMD = 0
PORT_USBSTS = 1
PORT_TOKEN = 2
PORT_DATA = 3


class EHCIDriver:
    """Drives USB control transfers the way the EHCI schedule walker
    would hand them to the device."""

    def __init__(self, vm: GuestVM, base_port: int = 0x400):
        self.vm = vm
        self.base = base_port

    def start_controller(self) -> None:
        self.vm.mmio_write(self.base + PORT_USBCMD, 1)

    def status(self) -> int:
        return self.vm.mmio_read(self.base + PORT_USBSTS)

    # -- token plumbing -----------------------------------------------------------

    def _token(self, pid: int) -> None:
        self.vm.mmio_write(self.base + PORT_TOKEN, pid)

    def _send_setup(self, request_type: int, request: int, value: int,
                    index: int, length: int) -> None:
        self._token(TOKEN_SETUP)
        packet = [request_type & 0xFF, request & 0xFF,
                  value & 0xFF, (value >> 8) & 0xFF,
                  index & 0xFF, (index >> 8) & 0xFF,
                  length & 0xFF, (length >> 8) & 0xFF]
        for byte in packet:
            self.vm.mmio_write(self.base + PORT_DATA, byte)

    def control_out(self, request: int, value: int,
                    data: bytes = b"", request_type: int = 0x00) -> None:
        self._send_setup(request_type, request, value, 0, len(data))
        for byte in data:
            self.vm.mmio_write(self.base + PORT_DATA, byte)
        self._token(TOKEN_IN)      # status stage

    def control_in(self, request: int, value: int, length: int,
                   request_type: int = 0x80) -> bytes:
        self._send_setup(request_type, request, value, 0, length)
        data = bytes(self.vm.mmio_read(self.base + PORT_DATA) & 0xFF
                     for _ in range(length))
        self._token(TOKEN_OUT)     # status stage
        return data

    # -- chapter 9 ---------------------------------------------------------------------

    def get_descriptor(self) -> bytes:
        return self.control_in(REQ_GET_DESCRIPTOR, 0x0100, 18)

    def get_status(self) -> bytes:
        return self.control_in(REQ_GET_STATUS, 0, 2)

    def set_address(self, address: int) -> None:
        self.control_out(REQ_SET_ADDRESS, address)

    def set_configuration(self, config: int = 1) -> None:
        self.control_out(REQ_SET_CONFIGURATION, config)

    # -- storage function -----------------------------------------------------------------

    def write_block(self, lba: int, data: bytes) -> None:
        if len(data) != SECTOR:
            raise GuestError(f"block payload must be {SECTOR} bytes")
        self.control_out(REQ_BLOCK_WRITE, lba, data, request_type=0x40)

    def read_block(self, lba: int) -> bytes:
        return self.control_in(REQ_BLOCK_READ, lba, SECTOR,
                               request_type=0xC0)
