"""Guest-side SDHCI driver: SD command sequencing + data-port streaming."""

from __future__ import annotations

from typing import List

from repro.devices.sdhci import (
    CMD_GO_IDLE, CMD_READ_MULTI, CMD_READ_SINGLE, CMD_SEND_CID,
    CMD_SEND_CSD, CMD_SEND_STATUS, CMD_STOP, CMD_WRITE_MULTI,
    CMD_WRITE_SINGLE,
)
from repro.errors import GuestError
from repro.vm.machine import GuestVM

PORT_BLKSIZE = 0
PORT_BLKCNT = 1
PORT_ARG = 2
PORT_CMD = 3
PORT_DATA = 4
PORT_STATUS = 5

BLOCK = 512


class SDHCIDriver:
    """Single- and multi-block SD card I/O."""

    def __init__(self, vm: GuestVM, base_port: int = 0x500):
        self.vm = vm
        self.base = base_port

    def reset_card(self) -> None:
        self.vm.outb(self.base + PORT_CMD, CMD_GO_IDLE)

    def card_status(self) -> int:
        self.vm.outb(self.base + PORT_CMD, CMD_SEND_STATUS)
        return self.vm.inb(self.base + PORT_STATUS)

    def set_block_size(self, size: int = BLOCK) -> None:
        self.vm.outl(self.base + PORT_BLKSIZE, size)

    def _read_register_block(self, cmd: int) -> bytes:
        self.vm.outb(self.base + PORT_CMD, cmd)
        data = bytes(self.vm.inb(self.base + PORT_DATA)
                     for _ in range(BLOCK))
        return data[:16]

    def read_cid(self) -> bytes:
        """Card identification register (16 bytes)."""
        return self._read_register_block(CMD_SEND_CID)

    def read_csd(self) -> bytes:
        """Card-specific data register (16 bytes)."""
        return self._read_register_block(CMD_SEND_CSD)

    def stop_transmission(self) -> None:
        self.vm.outb(self.base + PORT_CMD, CMD_STOP)

    # -- block I/O -----------------------------------------------------------------

    def write_blocks(self, lba: int, data: bytes) -> None:
        if len(data) % BLOCK:
            raise GuestError("payload must be whole blocks")
        count = len(data) // BLOCK
        self.set_block_size(BLOCK)
        self.vm.outl(self.base + PORT_BLKCNT, count)
        self.vm.outl(self.base + PORT_ARG, lba)
        cmd = CMD_WRITE_SINGLE if count == 1 else CMD_WRITE_MULTI
        self.vm.outb(self.base + PORT_CMD, cmd)
        for byte in data:
            self.vm.outb(self.base + PORT_DATA, byte)

    def read_blocks(self, lba: int, count: int = 1) -> bytes:
        self.set_block_size(BLOCK)
        self.vm.outl(self.base + PORT_BLKCNT, count)
        self.vm.outl(self.base + PORT_ARG, lba)
        cmd = CMD_READ_SINGLE if count == 1 else CMD_READ_MULTI
        self.vm.outb(self.base + PORT_CMD, cmd)
        out: List[int] = []
        for _ in range(count * BLOCK):
            out.append(self.vm.inb(self.base + PORT_DATA))
        return bytes(out)
