"""Guest-side device drivers."""
