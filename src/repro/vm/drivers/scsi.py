"""Guest-side SCSI (ESP) driver: FIFO CDB assembly + data-phase streaming."""

from __future__ import annotations

from typing import List

from repro.devices.scsi import (
    BLOCK, ESP_ICCS, ESP_MSGACC, ESP_RESET, ESP_SEL, ESP_SELDMA,
    OP_INQUIRY, OP_MODE_SENSE, OP_READ_10, OP_READ_6, OP_READ_CAPACITY,
    OP_REQUEST_SENSE, OP_TEST_UNIT_READY, OP_WRITE_10, OP_WRITE_6,
)
from repro.errors import GuestError
from repro.vm.machine import GuestVM

PORT_FIFO = 0
PORT_DATA_R = 0
PORT_DATA_W = 1
PORT_CMD = 3
PORT_STATUS = 3
PORT_TCLO = 5
PORT_TCMID = 6
PORT_DMAADDR = 7


class SCSIDriver:
    """Issues SCSI commands through the ESP front end."""

    def __init__(self, vm: GuestVM, base_port: int = 0x600):
        self.vm = vm
        self.base = base_port

    def reset(self) -> None:
        self.vm.outb(self.base + PORT_CMD, ESP_RESET)

    def _select(self, cdb: List[int]) -> None:
        for byte in cdb:
            self.vm.outb(self.base + PORT_FIFO, byte)
        self.vm.outb(self.base + PORT_CMD, ESP_SEL)

    def _finish(self) -> None:
        self.vm.outb(self.base + PORT_CMD, ESP_ICCS)
        self.vm.outb(self.base + PORT_CMD, ESP_MSGACC)

    # -- informational commands ---------------------------------------------------

    def test_unit_ready(self) -> None:
        self._select([OP_TEST_UNIT_READY, 0, 0, 0, 0, 0])
        self._finish()

    def inquiry(self) -> bytes:
        self._select([OP_INQUIRY, 0, 0, 0, 36, 0])
        data = self._read_data(36)
        self._finish()
        return data

    def read_capacity(self) -> bytes:
        self._select([OP_READ_CAPACITY, 0, 0, 0, 0, 0, 0, 0, 0, 0])
        data = self._read_data(8)
        self._finish()
        return data

    def request_sense(self) -> bytes:
        self._select([OP_REQUEST_SENSE, 0, 0, 0, 8, 0])
        data = self._read_data(8)
        self._finish()
        return data

    def read6(self, lba: int, blocks: int = 1) -> bytes:
        cdb = [OP_READ_6, (lba >> 16) & 0x1F, (lba >> 8) & 0xFF,
               lba & 0xFF, blocks & 0xFF, 0]
        self._select(cdb)
        data = self._read_data(blocks * BLOCK)
        self._finish()
        return data

    def write6(self, lba: int, data: bytes) -> None:
        blocks = len(data) // BLOCK
        cdb = [OP_WRITE_6, (lba >> 16) & 0x1F, (lba >> 8) & 0xFF,
               lba & 0xFF, blocks & 0xFF, 0]
        self._select(cdb)
        for byte in data:
            self.vm.outb(self.base + PORT_DATA_W, byte)
        self._finish()

    def mode_sense(self) -> bytes:
        self._select([OP_MODE_SENSE, 0, 0, 0, 4, 0])
        data = self._read_data(4)
        self._finish()
        return data

    # -- block I/O -------------------------------------------------------------------

    @staticmethod
    def _cdb10(opcode: int, lba: int, blocks: int) -> List[int]:
        return [opcode, 0,
                (lba >> 24) & 0xFF, (lba >> 16) & 0xFF,
                (lba >> 8) & 0xFF, lba & 0xFF,
                0, (blocks >> 8) & 0xFF, blocks & 0xFF, 0]

    def read10(self, lba: int, blocks: int = 1) -> bytes:
        self._select(self._cdb10(OP_READ_10, lba, blocks))
        data = self._read_data(blocks * BLOCK)
        self._finish()
        return data

    def write10(self, lba: int, data: bytes) -> None:
        if len(data) % BLOCK:
            raise GuestError("payload must be whole blocks")
        self._select(self._cdb10(OP_WRITE_10, lba, len(data) // BLOCK))
        for byte in data:
            self.vm.outb(self.base + PORT_DATA_W, byte)
        self._finish()

    def _read_data(self, length: int) -> bytes:
        return bytes(self.vm.inb(self.base + PORT_DATA_R)
                     for _ in range(length))

    # -- DMA select (the CVE-2016-4439 surface; benign code avoids it) --------------------

    def select_dma(self, cdb_addr: int, length: int) -> None:
        self.vm.outl(self.base + PORT_DMAADDR, cdb_addr)
        self.vm.outb(self.base + PORT_TCLO, length & 0xFF)
        self.vm.outb(self.base + PORT_TCMID, (length >> 8) & 0xFF)
        self.vm.outb(self.base + PORT_CMD, ESP_SELDMA)
