"""Guest-side floppy driver: speaks the FDC port protocol over the VM."""

from __future__ import annotations

from typing import List, Tuple

from repro.devices.fdc import SECTOR_LEN
from repro.errors import GuestError
from repro.vm.machine import GuestVM

PORT_DOR = 2
PORT_MSR = 4
PORT_FIFO = 5
PORT_DMA = 8

#: Guest-physical address of the driver's DMA bounce buffer.
DMA_BUFFER = 0x10000


class FDCDriver:
    """Minimal but protocol-faithful guest floppy driver."""

    def __init__(self, vm: GuestVM, base_port: int = 0x3F0):
        self.vm = vm
        self.base = base_port

    # -- low level -----------------------------------------------------------

    def _out(self, offset: int, value: int) -> None:
        self.vm.outb(self.base + offset, value)

    def _in(self, offset: int) -> int:
        return self.vm.inb(self.base + offset)

    def msr(self) -> int:
        return self._in(PORT_MSR)

    def motor_on(self) -> None:
        self._out(PORT_DOR, 0x1C)

    def controller_reset(self) -> None:
        self._out(PORT_DOR, 0x00)
        self._out(PORT_DOR, 0x0C)
        self.sense_interrupt()

    def _command(self, cmd: int, params: List[int]) -> None:
        if not self.msr() & 0x80:
            raise GuestError("FDC not ready for a command")
        self._out(PORT_FIFO, cmd)
        for param in params:
            self._out(PORT_FIFO, param)

    def _results(self, count: int) -> List[int]:
        return [self._in(PORT_FIFO) for _ in range(count)]

    # -- commands ------------------------------------------------------------------

    def sense_interrupt(self) -> Tuple[int, int]:
        self._command(0x08, [])
        st0, track = self._results(2)
        return st0, track

    def recalibrate(self, drive: int = 0) -> None:
        self._command(0x07, [drive])
        self.sense_interrupt()

    def seek(self, track: int, drive: int = 0) -> None:
        self._command(0x0F, [drive, track])
        self.sense_interrupt()

    def specify(self, srt_hut: int = 0xAF, hlt_nd: int = 0x02) -> None:
        self._command(0x03, [srt_hut, hlt_nd])

    def version(self) -> int:
        self._command(0x10, [])
        return self._results(1)[0]

    def dumpreg(self) -> List[int]:
        self._command(0x0E, [])
        return self._results(10)

    def configure(self, a: int = 0, b: int = 0x57, c: int = 0) -> None:
        self._command(0x13, [a, b, c])

    def read_id(self, head: int = 0) -> List[int]:
        self._command(0x4A, [head])
        return self._results(7)

    def format_track(self, track: int, head: int = 0,
                     sectors: int = 18, filler: int = 0xF6) -> List[int]:
        """FORMAT TRACK: lay down *sectors* filled with *filler*."""
        self.seek(track)
        self._command(0x4D, [head, 2, sectors, 0x1B, filler, 0])
        results = self._results(7)
        self.sense_interrupt()
        return results

    # -- sector I/O --------------------------------------------------------------------

    def _chs_params(self, track: int, head: int, sector: int) -> List[int]:
        return [0, track, head, sector, 2, sector, 0x1B, 0xFF]

    def read_sector(self, track: int, head: int, sector: int) -> bytes:
        self.vm.outl(self.base + PORT_DMA, DMA_BUFFER)
        self._command(0x46, self._chs_params(track, head, sector))
        results = self._results(7)
        if results[0] & 0xC0:
            raise GuestError(f"read failed: st0={results[0]:#x}")
        self.sense_interrupt()
        return self.vm.memory.read_block(DMA_BUFFER, SECTOR_LEN)

    def write_sector(self, track: int, head: int, sector: int,
                     data: bytes) -> None:
        if len(data) != SECTOR_LEN:
            raise GuestError(f"sector payload must be {SECTOR_LEN} bytes")
        self.vm.memory.write_block(DMA_BUFFER, data)
        self.vm.outl(self.base + PORT_DMA, DMA_BUFFER)
        self._command(0x45, self._chs_params(track, head, sector))
        results = self._results(7)
        if results[0] & 0xC0:
            raise GuestError(f"write failed: st0={results[0]:#x}")
        self.sense_interrupt()

    # -- convenience for workloads ----------------------------------------------------------

    def write_lba(self, lba: int, data: bytes) -> None:
        track, head, sector = _lba_to_chs(lba)
        self.write_sector(track, head, sector, data)

    def read_lba(self, lba: int) -> bytes:
        track, head, sector = _lba_to_chs(lba)
        return self.read_sector(track, head, sector)


def _lba_to_chs(lba: int) -> Tuple[int, int, int]:
    """1.44MB geometry: 80 tracks, 2 heads, 18 sectors (1-based)."""
    sector = lba % 18 + 1
    head = (lba // 18) % 2
    track = lba // 36
    return track, head, sector
