"""Guest-side PCnet driver: CSR programming, descriptor rings, frames."""

from __future__ import annotations

from typing import List, Optional

from repro.devices.pcnet import (
    CSR_MODE, CSR_RCVRL, CSR_RDRA, CSR_STATUS, CSR_TDRA, CSR_XMTRL, LOOP,
    TDMD,
)
from repro.errors import GuestError
from repro.vm.machine import GuestVM

PORT_RDP = 0
PORT_RAP = 2
PORT_RXNOTIFY = 4
PORT_RXDATA = 6

#: Guest-physical layout of the rings this driver programs.
TX_RING = 0x2000
RX_RING = 0x3000
TX_RING_LEN = 4
RX_RING_LEN = 4
PAYLOAD_STRIDE = 256


class PCNetDriver:
    """Speaks the RAP/RDP + descriptor-ring protocol."""

    def __init__(self, vm: GuestVM, base_port: int = 0x300):
        self.vm = vm
        self.base = base_port

    # -- CSR access ----------------------------------------------------------

    def write_csr(self, csr: int, value: int) -> None:
        self.vm.outb(self.base + PORT_RAP, csr)
        self.vm.outl(self.base + PORT_RDP, value)

    def read_csr(self, csr: int) -> int:
        self.vm.outb(self.base + PORT_RAP, csr)
        return self.vm.inl(self.base + PORT_RDP)

    # -- bring-up ------------------------------------------------------------------

    def init_rings(self, loopback: bool = False) -> None:
        self.write_csr(CSR_TDRA, TX_RING)
        self.write_csr(CSR_RDRA, RX_RING)
        self.write_csr(CSR_XMTRL, TX_RING_LEN)
        self.write_csr(CSR_RCVRL, RX_RING_LEN)
        self.write_csr(CSR_MODE, LOOP if loopback else 0)
        for i in range(RX_RING_LEN):
            self.vm.memory.write_byte(RX_RING + i * 4, 1)   # device-owned

    def init_via_block(self, loopback: bool = False,
                       block_addr: int = 0x4000) -> None:
        """Program rings through an in-memory init block + CSR0.INIT,
        the way the real part is initialized."""
        mode = LOOP if loopback else 0
        payload = bytes([
            mode & 0xFF, (mode >> 8) & 0xFF,
            RX_RING & 0xFF, (RX_RING >> 8) & 0xFF, 0, 0,
            TX_RING & 0xFF, (TX_RING >> 8) & 0xFF, 0, 0,
            RX_RING_LEN & 0xFF, 0,
            TX_RING_LEN & 0xFF, 0,
        ])
        self.vm.memory.write_block(block_addr, payload)
        self.write_csr(1, block_addr & 0xFFFF)
        self.write_csr(2, (block_addr >> 16) & 0xFFFF)
        self.write_csr(0, 0x0001)          # INIT
        for i in range(RX_RING_LEN):
            self.vm.memory.write_byte(RX_RING + i * 4, 1)

    # -- transmit --------------------------------------------------------------------

    def send_frame(self, payload: bytes,
                   chunks: Optional[List[bytes]] = None) -> None:
        """Queue *payload* (optionally pre-split into chained descriptor
        chunks) and ring the transmit-demand doorbell."""
        parts = chunks if chunks is not None else [payload]
        if len(parts) > TX_RING_LEN:
            raise GuestError("too many chained descriptors")
        for i, part in enumerate(parts):
            if len(part) > PAYLOAD_STRIDE:
                raise GuestError("descriptor payload too large")
            base = TX_RING + i * 4
            last = 2 if i == len(parts) - 1 else 0
            self.vm.memory.write_byte(base, 1)            # own
            self.vm.memory.write_byte(base + 1, last)     # flags
            self.vm.memory.write_byte(base + 2, len(part) & 0xFF)
            self.vm.memory.write_byte(base + 3, len(part) >> 8)
            self.vm.memory.write_block(
                TX_RING + 4 * TX_RING_LEN + PAYLOAD_STRIDE * i, part)
        self.write_csr(CSR_STATUS, TDMD)

    # -- receive ----------------------------------------------------------------------

    def deliver_frame(self, payload: bytes) -> None:
        """Host-side: stage a frame and notify the device (what the net
        backend does when a packet arrives for the guest).  Like a real
        guest driver, ownership of consumed descriptors is replenished
        before new traffic arrives."""
        for i in range(RX_RING_LEN):
            self.vm.memory.write_byte(RX_RING + i * 4, 1)
        device = self.vm.devices["pcnet"]
        device.stage_rx_frame(payload)
        self.vm.outl(self.base + PORT_RXNOTIFY, len(payload))

    def read_frame(self, length: int) -> bytes:
        return bytes(self.vm.inb(self.base + PORT_RXDATA)
                     for _ in range(length))
