"""Guest VM substrate: dispatch loop, SEDSpec attachment, drivers."""

from repro.vm.machine import (
    Attachment, GuestVM, IOStats, SEDSpecHalt, VMEXIT_COST,
)

__all__ = [
    "Attachment", "GuestVM", "IOStats", "SEDSpecHalt", "VMEXIT_COST",
]
