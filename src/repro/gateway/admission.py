"""Admission control: per-tenant rate quotas and bounded queues.

Two gates stand between an arrival and a worker lane, both on the
simulated clock:

* a per-tenant **token bucket** (``quota_rate_per_sec`` refill,
  ``quota_burst`` capacity) — a tenant exceeding its quota is rejected
  at the door, before any enforcement work is spent on it;
* a per-tenant **queue bound** (``queue_cap`` pending ops) — a tenant
  whose guarded instance cannot keep up sheds its overflow instead of
  growing an unbounded backlog behind everyone else's batches.

Rejections are accounted per tenant so a noisy neighbour is visible in
the merged stats plane rather than inferred from someone else's tail
latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.workloads.benchtools import CYCLES_PER_SECOND

#: ``try_admit`` outcomes.
ADMIT_OK = "ok"
ADMIT_QUOTA = "quota"
ADMIT_QUEUE = "queue"


@dataclass(frozen=True)
class AdmissionConfig:
    #: token-bucket refill per tenant, ops per simulated second
    quota_rate_per_sec: float = 2_000.0
    #: bucket capacity: how large a burst one tenant may land at once
    quota_burst: int = 16
    #: max ops queued per tenant awaiting dispatch
    queue_cap: int = 64


class TokenBucket:
    """Deterministic token bucket on the simulated clock."""

    __slots__ = ("rate_per_cycle", "capacity", "tokens", "updated")

    def __init__(self, rate_per_sec: float, burst: int):
        self.rate_per_cycle = rate_per_sec / CYCLES_PER_SECOND
        self.capacity = float(burst)
        self.tokens = float(burst)
        self.updated = 0

    def admit(self, now_cycle: int) -> bool:
        if now_cycle > self.updated:
            self.tokens = min(
                self.capacity,
                self.tokens + (now_cycle - self.updated)
                * self.rate_per_cycle)
            self.updated = now_cycle
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Applies both gates and keeps the books."""

    def __init__(self, config: AdmissionConfig):
        self.config = config
        self._buckets: Dict[str, TokenBucket] = {}
        self.offered = 0
        self.admitted = 0
        self.quota_rejected = 0
        self.queue_shed = 0
        self.rejected_by_tenant: Dict[str, int] = {}

    def try_admit(self, tenant: str, now_cycle: int,
                  queue_depth: int) -> str:
        """One arrival through both gates; returns an ``ADMIT_*`` code."""
        self.offered += 1
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.config.quota_rate_per_sec, self.config.quota_burst)
        if not bucket.admit(now_cycle):
            self.quota_rejected += 1
            self.rejected_by_tenant[tenant] = \
                self.rejected_by_tenant.get(tenant, 0) + 1
            return ADMIT_QUOTA
        if queue_depth >= self.config.queue_cap:
            self.queue_shed += 1
            self.rejected_by_tenant[tenant] = \
                self.rejected_by_tenant.get(tenant, 0) + 1
            return ADMIT_QUEUE
        self.admitted += 1
        return ADMIT_OK
