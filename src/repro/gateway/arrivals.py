"""Open-loop tenant traffic: per-tenant arrival streams on the simulated
clock.

``fleet/bench.py`` drives the fleet closed-loop — the next batch waits
for the previous one — which measures capacity but can never show queue
growth, shedding, or tail latency under pressure.  The gateway instead
generates *open-loop* traffic: each tenant gets an independent seeded
arrival process (Poisson / bursty / diurnal, from
``workloads.benchtools``) whose ops arrive whether or not the fleet is
keeping up.  Streams are pure data, derived from ``(seed, tenant)`` via
sha256 — order-independent, replayable, and identical across gateway
configurations, so two runs differing only in shard count serve
byte-identical traffic.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import GatewayError
from repro.fleet.loadgen import OpRequest, TenantPlan, sample_benign_op
from repro.workloads.benchtools import (
    ARRIVAL_PATTERNS, CYCLES_PER_SECOND, bursty_arrivals,
    diurnal_arrivals, poisson_arrivals,
)


@dataclass(frozen=True)
class ArrivalSpec:
    """One arrival process, applied per tenant."""

    pattern: str = "poisson"
    #: mean op rate per tenant (ops per simulated second)
    rate_per_sec: float = 200.0
    #: length of the arrival window (simulated seconds); queues drain
    #: past the horizon, arrivals stop at it
    horizon_s: float = 0.02
    # bursty knobs
    burst_factor: float = 8.0
    on_fraction: float = 0.2
    period_s: float = 0.005
    idle_factor: float = 0.1
    # diurnal knobs
    amplitude: float = 0.8

    @property
    def horizon_cycles(self) -> int:
        return int(self.horizon_s * CYCLES_PER_SECOND)

    def sample(self, rng: random.Random) -> List[int]:
        """Arrival cycles for one tenant."""
        if self.pattern == "poisson":
            return poisson_arrivals(self.rate_per_sec,
                                    self.horizon_cycles, rng)
        if self.pattern == "bursty":
            return bursty_arrivals(self.rate_per_sec,
                                   self.horizon_cycles, rng,
                                   burst_factor=self.burst_factor,
                                   on_fraction=self.on_fraction,
                                   period_s=self.period_s,
                                   idle_factor=self.idle_factor)
        if self.pattern == "diurnal":
            return diurnal_arrivals(self.rate_per_sec,
                                    self.horizon_cycles, rng,
                                    period_s=self.period_s,
                                    amplitude=self.amplitude)
        raise GatewayError(f"unknown arrival pattern {self.pattern!r} "
                           f"(want one of {ARRIVAL_PATTERNS})")


@dataclass(frozen=True)
class TenantStream:
    """One tenant's whole open-loop request stream: sorted
    ``(arrival_cycle, op)`` pairs."""

    plan: TenantPlan
    arrivals: Tuple[Tuple[int, OpRequest], ...]


def tenant_rng(seed: int, tenant: str) -> random.Random:
    """Independent per-tenant RNG: keyed on (seed, tenant) via sha256,
    so streams do not change when other tenants are added or removed."""
    digest = hashlib.sha256(f"{seed}:{tenant}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def build_streams(plans: Sequence[TenantPlan], spec: ArrivalSpec,
                  seed: int = 0) -> List[TenantStream]:
    """Sample every tenant's stream; attacked tenants get their CVE
    proof-of-concept spliced mid-stream (replacing the middle benign op,
    or as a lone mid-horizon arrival if the process drew none)."""
    streams: List[TenantStream] = []
    for plan in plans:
        rng = tenant_rng(seed, plan.tenant)
        times = spec.sample(rng)
        pairs: List[Tuple[int, OpRequest]] = [
            (t, sample_benign_op(plan.device, rng)) for t in times]
        if plan.attacked:
            exploit = OpRequest("exploit", cve=plan.attack_cve)
            if pairs:
                mid = len(pairs) // 2
                pairs[mid] = (pairs[mid][0], exploit)
            else:
                pairs = [(spec.horizon_cycles // 2, exploit)]
        streams.append(TenantStream(plan, tuple(pairs)))
    return streams
