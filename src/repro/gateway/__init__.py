"""repro.gateway: async admission gateway over a sharded fleet.

Turns the fleet from a benchmark harness into a service front end:
open-loop per-tenant arrival streams (Poisson / bursty / diurnal on the
simulated clock), token-bucket admission with bounded per-tenant queues,
consistent-hash tenant→shard placement with deterministic rebalancing,
per-instance request coalescing, and a merged cross-shard stats plane
built on associatively-mergeable telemetry snapshots.
"""

from repro.gateway.admission import (
    ADMIT_OK, ADMIT_QUEUE, ADMIT_QUOTA, AdmissionConfig,
    AdmissionController, TokenBucket,
)
from repro.gateway.arrivals import (
    ArrivalSpec, TenantStream, build_streams, tenant_rng,
)
from repro.gateway.engine import (
    Gateway, GatewayConfig, GatewayResult, GatewayStats,
    PolicyReloadAction, RebalanceAction, merge_fleet_stats,
    merge_tenant_summaries,
)
from repro.gateway.ring import (
    DEFAULT_VNODES, HashRing, moved_tenants,
)

__all__ = [
    "ADMIT_OK", "ADMIT_QUEUE", "ADMIT_QUOTA", "AdmissionConfig",
    "AdmissionController", "TokenBucket",
    "ArrivalSpec", "TenantStream", "build_streams", "tenant_rng",
    "Gateway", "GatewayConfig", "GatewayResult", "GatewayStats",
    "PolicyReloadAction", "RebalanceAction", "merge_fleet_stats",
    "merge_tenant_summaries",
    "DEFAULT_VNODES", "HashRing", "moved_tenants",
]
