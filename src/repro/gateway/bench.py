"""Gateway benchmark: four-digit simulated-tenant scaling + invariants.

Produces the ``gateway`` section of ``BENCH_fleet.json``:

* **scaling** — for each arrival pattern (Poisson / bursty / diurnal),
  the same seeded tenant population served at increasing tenant counts
  across multiple supervisor shards, reporting p50/p95/p99
  arrival→completion latency and SLO-violation counts.  Latency and
  makespan come from the deterministic cycle model, so the curves are
  exact; wall time and one-time spec warmup are recorded separately.
* **admission** — a bursty run under deliberately tight quotas, showing
  the two admission gates (token bucket, queue bound) actually firing.
* **rebalance** — a mid-run shard add: tenants move between shards with
  zero lost/duplicated requests and every seeded CVE still detected.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

from repro.fleet.loadgen import plan_tenants
from repro.fleet.registry import SpecRegistry
from repro.gateway.admission import AdmissionConfig
from repro.gateway.arrivals import ArrivalSpec
from repro.gateway.engine import (
    Gateway, GatewayConfig, GatewayResult, RebalanceAction,
)
from repro.workloads.benchtools import ARRIVAL_PATTERNS

#: Light two-device mix for the scaling sweep: keeps a 4k-tenant,
#: three-pattern matrix inside a couple of minutes of host wall time
#: while still crossing device families (block + net).
DEFAULT_GATEWAY_DEVICES = ("fdc", "pcnet")
DEFAULT_TENANT_COUNTS = (1_000, 2_000, 4_000)


def gateway_point(result: GatewayResult) -> Dict[str, object]:
    """One benchmark row from a finished gateway run."""
    s = result.stats
    failures = result.safety_failures()
    return {
        "tenants": s.tenants,
        "shards": s.shards,
        "workers_per_shard": s.workers_per_shard,
        "offered": s.offered,
        "admitted": s.admitted,
        "quota_rejected": s.quota_rejected,
        "queue_shed": s.queue_shed,
        "dispatches": s.dispatches,
        "coalesce_mean": round(s.coalesce_mean, 3),
        "makespan_ms": round(1e3 * s.makespan_seconds, 3),
        "rounds_per_sec": round(result.fleet.rounds_per_sec, 1),
        "p50_latency_ms": round(s.p50_latency_ms, 4),
        "p95_latency_ms": round(s.p95_latency_ms, 4),
        "p99_latency_ms": round(s.p99_latency_ms, 4),
        "slo_ms": round(1e3 * s.slo_cycles / 1e9, 3),
        "slo_violations": s.slo_violations,
        "slo_violation_rate": round(s.slo_violation_rate, 4),
        "detections": result.fleet.detections,
        "attacked": len(result.attacked_tenants()),
        "quarantined": len(result.quarantined_tenants()),
        "lost": result.fleet.lost,
        "duplicates": result.fleet.duplicate_results,
        "safety_failures": failures,
        "warmup_s": round(s.warmup_seconds, 3),
        "wall_s": round(s.wall_seconds, 3),
        "ok": not failures,
    }


def _spec(pattern: str, rate: float, horizon_s: float) -> ArrivalSpec:
    return ArrivalSpec(pattern=pattern, rate_per_sec=rate,
                       horizon_s=horizon_s)


def run_gateway_bench(
        tenant_counts: Sequence[int] = DEFAULT_TENANT_COUNTS,
        patterns: Sequence[str] = ARRIVAL_PATTERNS,
        shards: int = 2, workers_per_shard: int = 6,
        devices: Sequence[str] = DEFAULT_GATEWAY_DEVICES,
        inject_fraction: float = 0.008,
        rate_per_sec: float = 150.0, horizon_s: float = 0.02,
        slo_ms: float = 2.0, coalesce_max: int = 8,
        backend: str = "compiled",
        cache_dir: Optional[str] = None,
        seed: int = 7, quick: bool = False) -> Dict[str, object]:
    """The whole gateway section; see the module docstring."""
    if quick:
        tenant_counts = (256,)
        workers_per_shard = min(workers_per_shard, 2)
    registry = SpecRegistry(cache_dir=cache_dir)
    warm_start = time.perf_counter()
    probe = plan_tenants(devices, max(tenant_counts),
                         inject_fraction=inject_fraction, seed=seed)
    registry.prime(sorted({(p.device, p.qemu_version) for p in probe}))
    warmup_s = time.perf_counter() - warm_start

    def config(pattern: str, **overrides) -> GatewayConfig:
        base = dict(
            shards=shards, workers_per_shard=workers_per_shard,
            coalesce_max=coalesce_max, slo_ms=slo_ms, seed=seed,
            inline=True, backend=backend, cache_dir=cache_dir,
            arrival=_spec(pattern, rate_per_sec, horizon_s))
        base.update(overrides)
        return GatewayConfig(**base)

    # -- scaling: pattern x tenant-count matrix ---------------------------
    scaling: Dict[str, Dict[str, object]] = {}
    all_ok = True
    for pattern in patterns:
        scaling[pattern] = {}
        for tenants in tenant_counts:
            plans = plan_tenants(devices, tenants,
                                 inject_fraction=inject_fraction,
                                 seed=seed)
            gateway = Gateway(config(pattern), registry=registry)
            point = gateway_point(gateway.run(plans))
            scaling[pattern][str(tenants)] = point
            all_ok = all_ok and point["ok"]

    # -- admission: tight quotas under bursty load ------------------------
    adm_plans = plan_tenants(devices, tenant_counts[0],
                             inject_fraction=inject_fraction, seed=seed)
    adm_gateway = Gateway(
        config("bursty",
               admission=AdmissionConfig(quota_rate_per_sec=200.0,
                                         quota_burst=2, queue_cap=4)),
        registry=registry)
    adm_point = gateway_point(adm_gateway.run(adm_plans))
    admission = dict(adm_point)
    admission["gates_fired"] = (adm_point["quota_rejected"] > 0
                                or adm_point["queue_shed"] > 0)
    all_ok = all_ok and admission["ok"]

    # -- rebalance: shard add mid-horizon, nothing lost -------------------
    reb_plans = plan_tenants(devices, tenant_counts[0],
                             inject_fraction=inject_fraction, seed=seed)
    reb_gateway = Gateway(config(patterns[0]), registry=registry)
    reb_result = reb_gateway.run(
        reb_plans,
        rebalances=[RebalanceAction(
            at_cycle=int(horizon_s * 1e9) // 2, add=(shards,))])
    reb_point = gateway_point(reb_result)
    rebalance = dict(reb_point)
    rebalance["moved_tenants"] = reb_result.stats.moved_tenants
    rebalance["ok"] = (reb_point["ok"]
                       and reb_result.stats.moved_tenants > 0
                       and reb_point["lost"] == 0
                       and reb_point["duplicates"] == 0
                       and reb_point["detections"]
                       >= reb_point["attacked"])
    all_ok = all_ok and rebalance["ok"]

    return {
        "config": {
            "devices": list(devices),
            "tenant_counts": list(tenant_counts),
            "patterns": list(patterns),
            "shards": shards, "workers_per_shard": workers_per_shard,
            "rate_per_sec": rate_per_sec, "horizon_s": horizon_s,
            "slo_ms": slo_ms, "coalesce_max": coalesce_max,
            "inject_fraction": inject_fraction, "backend": backend,
            "seed": seed,
        },
        "warmup_s": round(warmup_s, 3),
        "scaling": scaling,
        "admission": admission,
        "rebalance": rebalance,
        "ok": all_ok,
    }
