"""Consistent-hash tenant→shard placement.

Each shard owns ``vnodes`` points on a 64-bit hash circle; a tenant maps
to the first shard point clockwise of its own hash.  Adding or removing
a shard therefore moves only the tenants whose arcs changed owner —
``O(moved/total) ≈ 1/shards`` of the fleet — and the mapping is a pure
function of (shard ids, vnodes, tenant name): every gateway replica,
and every rerun of a seeded benchmark, computes the identical placement
with no coordination.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

from repro.errors import GatewayError

DEFAULT_VNODES = 64


def _point(key: str) -> int:
    """64-bit position on the hash circle."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Immutable consistent-hash ring over integer shard ids."""

    def __init__(self, shards: Iterable[int],
                 vnodes: int = DEFAULT_VNODES):
        self.shards: Tuple[int, ...] = tuple(sorted(set(shards)))
        if not self.shards:
            raise GatewayError("hash ring needs at least one shard")
        if vnodes < 1:
            raise GatewayError("hash ring needs at least one vnode")
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for shard in self.shards:
            for v in range(vnodes):
                points.append((_point(f"shard:{shard}:vnode:{v}"),
                               shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    def lookup(self, tenant: str) -> int:
        """The shard owning *tenant* (first point clockwise)."""
        h = _point(f"tenant:{tenant}")
        i = bisect.bisect_right(self._hashes, h) % len(self._hashes)
        return self._owners[i]

    def with_shards(self, add: Iterable[int] = (),
                    remove: Iterable[int] = ()) -> "HashRing":
        """A new ring with shards added/removed; everything else fixed."""
        shards = (set(self.shards) | set(add)) - set(remove)
        return HashRing(shards, self.vnodes)


def moved_tenants(old: HashRing, new: HashRing,
                  tenants: Iterable[str]) -> Dict[str, Tuple[int, int]]:
    """``tenant -> (old_shard, new_shard)`` for every tenant whose owner
    changed between the two rings."""
    moved: Dict[str, Tuple[int, int]] = {}
    for tenant in tenants:
        src, dst = old.lookup(tenant), new.lookup(tenant)
        if src != dst:
            moved[tenant] = (src, dst)
    return moved
