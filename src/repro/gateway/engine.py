"""The admission gateway: a deterministic discrete-event simulation in
front of sharded :class:`FleetSupervisor`\\ s.

Event loop on the simulated clock (cycles == nanoseconds at the nominal
1 GHz):

* **arrivals** from the open-loop per-tenant streams pass the admission
  gates (token-bucket quota, bounded queue) or are rejected;
* admitted ops queue per tenant; an idle worker lane **coalesces** up to
  ``coalesce_max`` queued ops for one tenant into a single
  :class:`RequestBatch` — one dispatch overhead, one credit-batch ride —
  and submits it synchronously through the shard's
  :class:`~repro.fleet.supervisor.FleetSession`;
* the result's deterministic cycle cost (plus ``dispatch_overhead_cycles``)
  occupies the lane until the completion event, which records
  arrival→completion latency for every op in the batch, checks it
  against the SLO, and dispatches the lane's next ready tenant;
* **rebalance** events swap the consistent-hash ring; queued tenants are
  re-routed eagerly, in-flight batches finish on their old shard, and
  subsequent dispatches land on the new one — nothing is lost or
  double-served, which ``GatewayResult.safety_failures`` certifies.

Tenant→shard placement is consistent-hash; within a shard, the session's
own first-appearance round-robin pins the tenant to a lane, so quarantine,
circuit-breaker, and hot-reload semantics are exactly the single-
supervisor ones.  Each shard owns a private
:class:`~repro.telemetry.registry.TelemetryRegistry`; the merged stats
plane is ``merge_snapshots`` over per-shard snapshots plus the gateway's
own recorder — associative and order-insensitive, so it does not matter
which shard reports first.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.checker import DegradationConfig, Mode
from repro.errors import GatewayError
from repro.fleet.loadgen import RequestBatch, TenantPlan
from repro.fleet.registry import SpecRegistry
from repro.fleet.supervisor import (
    FleetConfig, FleetResult, FleetStats, FleetSupervisor, TenantSummary,
    percentile,
)
from repro.gateway.admission import (
    ADMIT_OK, ADMIT_QUOTA, AdmissionConfig, AdmissionController,
)
from repro.gateway.arrivals import ArrivalSpec, TenantStream, build_streams
from repro.gateway.ring import DEFAULT_VNODES, HashRing, moved_tenants
from repro.policy.model import PolicySet
from repro.telemetry.metrics import (
    DEFAULT_CYCLE_BUCKETS, TelemetrySnapshot, merge_snapshots,
)
from repro.telemetry.registry import TelemetryRegistry
from repro.workloads.benchtools import CYCLES_PER_SECOND

#: Event-heap tie-break order at one cycle: ring changes first (a
#: dispatch at cycle t must see the post-rebalance ring), then lane
#: completions (freeing lanes), then fresh arrivals.
_EV_REBALANCE, _EV_LANE, _EV_ARRIVAL = 0, 1, 2


@dataclass(frozen=True)
class RebalanceAction:
    """Shard add/remove at one simulated instant."""

    at_cycle: int
    add: Tuple[int, ...] = ()
    remove: Tuple[int, ...] = ()


@dataclass(frozen=True)
class PolicyReloadAction:
    """Fleet-wide tenant-policy hot reload at one simulated instant.

    *policies* is a :class:`PolicySet` or a raw policy-set document;
    validation happens when the gateway is constructed with the action
    (or when ``run`` reaches it), and a malformed document raises
    :class:`~repro.errors.PolicyError` without disturbing any shard.
    Dispatches at or after ``at_cycle`` are stamped with the new
    generation on every shard, current and future.
    """

    at_cycle: int
    policies: object = None


@dataclass
class GatewayConfig:
    shards: int = 2
    workers_per_shard: int = 4
    vnodes: int = DEFAULT_VNODES
    #: max queued ops folded into one worker dispatch per tenant
    coalesce_max: int = 8
    #: arrival→completion latency objective
    slo_ms: float = 2.0
    #: fixed cost a dispatch pays on top of execution (IPC + scheduling
    #: analogue); this is what makes coalescing measurable — k ops in
    #: one batch pay it once, k singleton dispatches pay it k times
    dispatch_overhead_cycles: int = 20_000
    seed: int = 0
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    # fleet plumbing, forwarded to every shard supervisor
    inline: bool = True
    backend: str = "compiled"
    #: credit-batch size per guarded instance: a coalesced lane's ops
    #: ride one credit batch *and* their rounds are vetted in batched
    #: checker invocations (0 keeps per-round vets)
    batch_rounds: int = 0
    mode: Mode = Mode.PROTECTION
    cache_dir: Optional[str] = None
    circuit_threshold: int = 3
    circuit_cooldown: int = 4
    degradation: Optional[DegradationConfig] = None
    fault_plan: Optional[object] = None
    #: declarative per-tenant resilience policies, forwarded to every
    #: shard supervisor; None preserves the legacy knobs above
    policies: Optional[PolicySet] = None


@dataclass
class GatewayStats:
    pattern: str = ""
    tenants: int = 0
    shards: int = 0
    workers_per_shard: int = 0
    offered: int = 0
    admitted: int = 0
    quota_rejected: int = 0
    queue_shed: int = 0
    dispatches: int = 0
    dispatched_ops: int = 0
    makespan_cycles: int = 0
    latency_samples: int = 0
    p50_latency_cycles: float = 0.0
    p95_latency_cycles: float = 0.0
    p99_latency_cycles: float = 0.0
    slo_cycles: int = 0
    slo_violations: int = 0
    rebalances: int = 0
    moved_tenants: int = 0
    #: moved tenants whose live instance state travelled with them
    #: (checkpoint on the old shard, restore on the new one)
    migrations: int = 0
    #: fleet-wide policy hot reloads fired mid-run
    policy_reload_events: int = 0
    warmup_seconds: float = 0.0
    wall_seconds: float = 0.0

    @property
    def coalesce_mean(self) -> float:
        """Mean ops per dispatch (1.0 means coalescing never fired)."""
        return self.dispatched_ops / self.dispatches \
            if self.dispatches else 0.0

    @property
    def makespan_seconds(self) -> float:
        return self.makespan_cycles / CYCLES_PER_SECOND

    @property
    def p50_latency_ms(self) -> float:
        return 1e3 * self.p50_latency_cycles / CYCLES_PER_SECOND

    @property
    def p95_latency_ms(self) -> float:
        return 1e3 * self.p95_latency_cycles / CYCLES_PER_SECOND

    @property
    def p99_latency_ms(self) -> float:
        return 1e3 * self.p99_latency_cycles / CYCLES_PER_SECOND

    @property
    def slo_violation_rate(self) -> float:
        return self.slo_violations / self.latency_samples \
            if self.latency_samples else 0.0

    def describe(self) -> str:
        return (f"gateway[{self.pattern}]: {self.tenants} tenants over "
                f"{self.shards} shards x {self.workers_per_shard} lanes\n"
                f"  admission: offered={self.offered} "
                f"admitted={self.admitted} "
                f"quota_rejected={self.quota_rejected} "
                f"queue_shed={self.queue_shed}\n"
                f"  dispatch: {self.dispatches} batches / "
                f"{self.dispatched_ops} ops "
                f"(coalesce x{self.coalesce_mean:.2f}) "
                f"makespan={self.makespan_seconds * 1e3:.2f}ms "
                f"(simulated)\n"
                f"  latency p50={self.p50_latency_ms:.3f}ms "
                f"p95={self.p95_latency_ms:.3f}ms "
                f"p99={self.p99_latency_ms:.3f}ms; "
                f"SLO {1e3 * self.slo_cycles / CYCLES_PER_SECOND:.1f}ms "
                f"violated {self.slo_violations}x "
                f"({100 * self.slo_violation_rate:.2f}%)\n"
                f"  rebalances={self.rebalances} "
                f"moved_tenants={self.moved_tenants} "
                f"migrations={self.migrations} "
                f"policy_reloads={self.policy_reload_events} "
                f"warmup={self.warmup_seconds:.2f}s "
                f"wall={self.wall_seconds:.2f}s")


@dataclass
class GatewayResult:
    stats: GatewayStats
    #: merged across shards (counts summed, percentiles recomputed from
    #: the exact per-op samples, makespan = busiest shard)
    fleet: FleetStats
    tenants: Dict[str, TenantSummary]
    shard_results: Dict[int, FleetResult]
    #: merged stats plane: every shard registry + the gateway recorder
    telemetry: TelemetrySnapshot
    #: tenant -> (old_shard, new_shard) across all rebalances
    moves: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def quarantined_tenants(self) -> List[str]:
        return sorted(t for t, s in self.tenants.items() if s.quarantined)

    def attacked_tenants(self) -> List[str]:
        return sorted(t for t, s in self.tenants.items() if s.attacked)

    def safety_failures(self) -> List[str]:
        """Violated invariants (empty means the run is certified):

        * conservation — every offered op is exactly one of admitted /
          quota-rejected / queue-shed, and every admitted op was
          dispatched exactly once (rebalances lose and duplicate
          nothing);
        * zero exploit escapes — no seeded CVE op completed undetected;
        * no benign quarantine — only attacked tenants are quarantined.
        """
        failures: List[str] = []
        s = self.stats
        if s.offered != s.admitted + s.quota_rejected + s.queue_shed:
            failures.append(
                f"admission books don't balance: offered={s.offered} != "
                f"admitted={s.admitted} + quota={s.quota_rejected} "
                f"+ shed={s.queue_shed}")
        if s.dispatched_ops != s.admitted:
            failures.append(
                f"dispatch conservation broken: admitted={s.admitted} "
                f"but dispatched={s.dispatched_ops}")
        if self.fleet.requests != s.dispatched_ops:
            failures.append(
                f"fleet saw {self.fleet.requests} requests, gateway "
                f"dispatched {s.dispatched_ops}")
        if self.fleet.duplicate_results:
            failures.append(f"{self.fleet.duplicate_results} duplicate "
                            f"results across shards")
        escapes = sum(t.exploit_escapes for t in self.tenants.values())
        if escapes:
            failures.append(f"{escapes} exploit op(s) escaped detection")
        benign_quarantined = [t for t, v in self.tenants.items()
                              if v.quarantined and not v.attacked]
        if benign_quarantined:
            failures.append("benign tenant(s) quarantined: "
                            + ", ".join(sorted(benign_quarantined)))
        return failures


def merge_tenant_summaries(shard_results: Sequence[FleetResult]
                           ) -> Dict[str, TenantSummary]:
    """Fold per-shard tenant summaries (a moved tenant appears on both
    sides of a rebalance) into one fleet-wide view."""
    merged: Dict[str, TenantSummary] = {}
    for result in shard_results:
        for tenant, summary in result.tenants.items():
            into = merged.get(tenant)
            if into is None:
                merged[tenant] = replace(summary)
                continue
            into.attacked = into.attacked or summary.attacked
            into.submitted += summary.submitted
            into.completed += summary.completed
            into.rejected += summary.rejected
            into.faults += summary.faults
            into.detections += summary.detections
            into.trace_gaps += summary.trace_gaps
            into.infra_failures += summary.infra_failures
            into.shed += summary.shed
            into.exploit_escapes += summary.exploit_escapes
            into.exploit_refusals += summary.exploit_refusals
            if summary.quarantined:
                into.quarantined = True
                into.quarantine_reason = summary.quarantine_reason
            if summary.policy_id:
                into.policy_id = summary.policy_id
            into.fenced = into.fenced or summary.fenced
    return merged


def merge_fleet_stats(shard_stats: Sequence[FleetStats],
                      request_cycles: Sequence[float],
                      queue_waits: Sequence[float]) -> FleetStats:
    """Cross-shard :class:`FleetStats`: counts summed, makespan = the
    busiest shard (shards are parallel), percentiles recomputed from the
    exact per-op samples the gateway collected at dispatch time."""
    merged = FleetStats()
    for s in shard_stats:
        merged.workers += s.workers
        merged.requests += s.requests
        merged.completed += s.completed
        merged.rejected += s.rejected
        merged.faults += s.faults
        merged.lost += s.lost
        merged.detections += s.detections
        merged.quarantined_instances += s.quarantined_instances
        merged.worker_respawns += s.worker_respawns
        merged.instance_respawns += s.instance_respawns
        merged.duplicate_results += s.duplicate_results
        merged.trace_gaps += s.trace_gaps
        merged.infra_failures += s.infra_failures
        merged.shed += s.shed
        merged.circuit_opens += s.circuit_opens
        merged.watchdog_kills += s.watchdog_kills
        merged.spec_reloads += s.spec_reloads
        merged.policy_reloads += s.policy_reloads
        merged.policy_throttles += s.policy_throttles
        merged.policy_restores += s.policy_restores
        merged.policy_fences += s.policy_fences
        merged.fenced_tenants += s.fenced_tenants
        merged.migrations += s.migrations
        merged.retrain_candidates += s.retrain_candidates
        merged.io_rounds += s.io_rounds
        merged.total_cycles += s.total_cycles
        merged.makespan_cycles = max(merged.makespan_cycles,
                                     s.makespan_cycles)
        merged.wall_seconds = max(merged.wall_seconds, s.wall_seconds)
    merged.latency_samples = len(request_cycles)
    merged.p50_request_cycles = percentile(request_cycles, 0.50)
    merged.p95_request_cycles = percentile(request_cycles, 0.95)
    merged.p99_request_cycles = percentile(request_cycles, 0.99)
    merged.queue_wait_samples = len(queue_waits)
    merged.p50_queue_wait_s = percentile(queue_waits, 0.50)
    merged.p95_queue_wait_s = percentile(queue_waits, 0.95)
    merged.p99_queue_wait_s = percentile(queue_waits, 0.99)
    return merged


class _Lane:
    """One worker lane's simulated occupancy + ready tenants."""

    __slots__ = ("free_at", "ready")

    def __init__(self) -> None:
        self.free_at = 0
        self.ready: Deque[str] = deque()


class _Shard:
    """One supervisor shard: session, lanes, private telemetry."""

    def __init__(self, shard_id: int, supervisor: FleetSupervisor,
                 registry: TelemetryRegistry):
        self.shard_id = shard_id
        self.supervisor = supervisor
        self.telemetry = registry
        self.session = supervisor.session()
        self.lanes = [_Lane()
                      for _ in range(supervisor.config.workers)]
        self.routable = True


class Gateway:
    """Admission gateway over a sharded fleet; see the module docstring
    for the event-loop contract."""

    def __init__(self, config: Optional[GatewayConfig] = None,
                 registry: Optional[SpecRegistry] = None):
        self.config = config or GatewayConfig()
        if self.config.shards < 1:
            raise GatewayError("gateway needs at least one shard")
        if self.config.coalesce_max < 1:
            raise GatewayError("coalesce_max must be >= 1")
        self.registry = registry or SpecRegistry(
            cache_dir=self.config.cache_dir)
        self._reloads: List[Tuple[str, str, int, Optional[str]]] = []
        self._policy_reloads: List[PolicySet] = []
        self.telemetry = TelemetryRegistry()
        self._recorder = self.telemetry.recorder("gateway")

    def reload_spec(self, device: str, digest: str, at_seq: int = 0,
                    qemu_version: Optional[str] = None) -> None:
        """Schedule a hot reload on every shard, current and future
        (a shard added by a rebalance inherits the reload schedule)."""
        self.registry.spec_by_digest(digest)    # unknown digest: raise
        self._reloads.append((device, digest, at_seq, qemu_version))

    def _validate_policies(self, policies) -> PolicySet:
        """Validate a policy document eagerly (before any shard sees
        it); a malformed one raises PolicyError here, leaving every
        shard undisturbed."""
        if not isinstance(policies, PolicySet):
            policies = PolicySet.from_obj(policies)
        return policies

    def _new_shard(self, shard_id: int) -> _Shard:
        config = self.config
        telemetry = TelemetryRegistry()
        recorder = telemetry.recorder(f"shard{shard_id}")
        fleet_config = FleetConfig(
            workers=config.workers_per_shard, inline=config.inline,
            mode=config.mode, backend=config.backend,
            batch_rounds=config.batch_rounds,
            cache_dir=config.cache_dir,
            circuit_threshold=config.circuit_threshold,
            circuit_cooldown=config.circuit_cooldown,
            degradation=config.degradation,
            fault_plan=config.fault_plan,
            policies=config.policies)
        supervisor = FleetSupervisor(fleet_config,
                                     registry=self.registry,
                                     recorder=recorder)
        for device, digest, at_seq, qemu_version in self._reloads:
            supervisor.reload_spec(device, digest, at_seq, qemu_version)
        # A shard added mid-run inherits every policy reload already
        # fired, so its tenants run under the current generation.
        for policies in self._policy_reloads:
            supervisor.reload_policy(policies, at_seq=0)
        return _Shard(shard_id, supervisor, telemetry)

    def run(self, plans: Sequence[TenantPlan],
            streams: Optional[Sequence[TenantStream]] = None,
            rebalances: Sequence[RebalanceAction] = (),
            policy_reloads: Sequence[PolicyReloadAction] = ()
            ) -> GatewayResult:
        config = self.config
        wall_start = time.perf_counter()
        # Validate every scheduled policy document before the first
        # shard spins up: malformed input fails here, fleet untouched.
        validated_reloads = [
            (action.at_cycle, self._validate_policies(action.policies))
            for action in policy_reloads]
        if streams is None:
            streams = build_streams(plans, config.arrival, config.seed)
        plan_by_tenant = {p.tenant: p for p in plans}

        # Warmup: train/load every spec up front and report it apart
        # from serving time, so scaling rows compare like with like.
        self.registry.prime(sorted({(p.device, p.qemu_version)
                                    for p in plans}))
        warmup = time.perf_counter() - wall_start

        ring = HashRing(range(config.shards), config.vnodes)
        shards: Dict[int, _Shard] = {s: self._new_shard(s)
                                     for s in ring.shards}
        admission = AdmissionController(config.admission)
        pattern = config.arrival.pattern
        labels = {"pattern": pattern}
        admitted_ctr = self._recorder.counter("gateway.admitted",
                                              **labels)
        quota_ctr = self._recorder.counter("gateway.quota_rejected",
                                           **labels)
        shed_ctr = self._recorder.counter("gateway.queue_shed", **labels)
        dispatch_ctr = self._recorder.counter("gateway.dispatches",
                                              **labels)
        slo_ctr = self._recorder.counter("gateway.slo_violations",
                                         **labels)
        moves_ctr = self._recorder.counter("gateway.tenant_moves",
                                           **labels)
        migrations_ctr = self._recorder.counter("gateway.migrations",
                                                **labels)
        policy_reload_ctr = self._recorder.counter(
            "gateway.policy_reloads", **labels)
        latency_hist = self._recorder.histogram(
            "gateway.latency_cycles", DEFAULT_CYCLE_BUCKETS, **labels)

        pending: Dict[str, Deque[Tuple[int, object]]] = {}
        queued: Set[str] = set()
        busy: Set[str] = set()
        heap: List[tuple] = []
        tick = 0                    # heap insertion tie-break

        def push(cycle: int, order: int, event: tuple) -> None:
            nonlocal tick
            heapq.heappush(heap, (cycle, order, tick, event))
            tick += 1

        for action in rebalances:
            push(action.at_cycle, _EV_REBALANCE, ("rebalance", action))
        for at_cycle, policies in validated_reloads:
            # Same tie-break slot as rebalances: a dispatch at cycle t
            # must already see the new policy generation.
            push(at_cycle, _EV_REBALANCE, ("policy", policies))
        for stream in streams:
            tenant = stream.plan.tenant
            for cycle, op in stream.arrivals:
                push(cycle, _EV_ARRIVAL, ("arrival", tenant, op))

        slo_cycles = int(config.slo_ms * 1e-3 * CYCLES_PER_SECOND)
        latencies: List[float] = []
        request_cycles: List[float] = []
        slo_violations = 0
        dispatches = 0
        dispatched_ops = 0
        rebalance_count = 0
        migration_count = 0
        policy_reload_count = 0
        moves: Dict[str, Tuple[int, int]] = {}
        seq = 0

        def enqueue(tenant: str, cycle: int) -> None:
            """Queue *tenant* on its current shard/lane; kick the lane
            if it is idle."""
            shard = shards[ring.lookup(tenant)]
            lane_idx = shard.session.worker_for(tenant)
            lane = shard.lanes[lane_idx]
            lane.ready.append(tenant)
            queued.add(tenant)
            if lane.free_at <= cycle:
                push(cycle, _EV_LANE,
                     ("lane", shard.shard_id, lane_idx, None))

        def dispatch(shard: _Shard, lane_idx: int, cycle: int) -> None:
            """Serve the lane's next ready tenant, if any."""
            nonlocal seq, dispatches, dispatched_ops, slo_violations
            lane = shard.lanes[lane_idx]
            if lane.free_at > cycle:
                return              # stale wake-up: lane still occupied
            while lane.ready:
                tenant = lane.ready.popleft()
                # Skip entries invalidated by a rebalance (re-routed
                # eagerly) or already drained.
                if (tenant not in queued or not pending.get(tenant)
                        or not shard.routable
                        or ring.lookup(tenant) != shard.shard_id):
                    continue
                queued.discard(tenant)
                queue = pending[tenant]
                take = min(config.coalesce_max, len(queue))
                items = [queue.popleft() for _ in range(take)]
                plan = plan_by_tenant[tenant]
                batch = RequestBatch(
                    tenant, plan.device, plan.qemu_version, seq,
                    tuple(op for _, op in items))
                seq += 1
                result = shard.session.submit(batch)
                dispatches += 1
                dispatch_ctr.inc()
                dispatched_ops += take
                cost = config.dispatch_overhead_cycles
                if result is not None:
                    cost += result.cycles
                    request_cycles.extend(result.op_cycles)
                done_at = cycle + cost
                lane.free_at = done_at
                busy.add(tenant)
                for arrived_at, _ in items:
                    latency = done_at - arrived_at
                    latencies.append(latency)
                    latency_hist.observe(latency)
                    if latency > slo_cycles:
                        slo_violations += 1
                        slo_ctr.inc()
                push(done_at, _EV_LANE,
                     ("lane", shard.shard_id, lane_idx, tenant))
                return
        # All shards ever created, including retired ones whose
        # completion events may still be in flight.
        all_shards: Dict[int, _Shard] = dict(shards)

        while heap:
            cycle, _, _, event = heapq.heappop(heap)
            kind = event[0]
            if kind == "arrival":
                _, tenant, op = event
                depth = len(pending.get(tenant, ()))
                verdict = admission.try_admit(tenant, cycle, depth)
                if verdict != ADMIT_OK:
                    (quota_ctr if verdict == ADMIT_QUOTA
                     else shed_ctr).inc()
                    continue
                admitted_ctr.inc()
                pending.setdefault(tenant, deque()).append((cycle, op))
                if tenant not in busy and tenant not in queued:
                    enqueue(tenant, cycle)
            elif kind == "lane":
                _, shard_id, lane_idx, served = event
                shard = all_shards[shard_id]
                if served is not None:
                    busy.discard(served)
                    if pending.get(served):
                        # Route by the *current* ring: a tenant moved
                        # mid-flight continues on its new shard.
                        enqueue(served, cycle)
                dispatch(shard, lane_idx, cycle)
            elif kind == "rebalance":
                _, action = event
                old_ring = ring
                ring = ring.with_shards(action.add, action.remove)
                rebalance_count += 1
                for shard_id in ring.shards:
                    if shard_id not in all_shards:
                        shard = self._new_shard(shard_id)
                        all_shards[shard_id] = shard
                        shards[shard_id] = shard
                for shard_id in action.remove:
                    removed = shards.pop(shard_id, None)
                    if removed is not None:
                        removed.routable = False
                moved = moved_tenants(old_ring, ring, plan_by_tenant)
                for tenant, (src, dst) in moved.items():
                    moves[tenant] = (moves.get(tenant, (src,))[0], dst)
                    moves_ctr.inc()
                    # Live migration: the tenant's guarded-instance
                    # state (device, shadow checker, quarantine,
                    # circuit-breaker strikes, policy generation)
                    # travels to the new owner as a sealed checkpoint
                    # instead of being rebuilt from scratch.  Sessions
                    # are synchronous, so the source lane is drained at
                    # this instant; a tenant never served yet simply
                    # has no envelope to move.
                    envelope = \
                        all_shards[src].session.checkpoint_tenant(tenant)
                    if envelope is not None:
                        dst_shard = all_shards[dst]
                        dst_shard.session.install_checkpoint(envelope)
                        migration_count += 1
                        migrations_ctr.inc()
                    if tenant in queued:
                        # Eager re-route of queued (not in-flight) work:
                        # drop the stale ready entry, queue on the new
                        # owner.  Pending ops travel untouched.
                        src_shard = all_shards[src]
                        lane = src_shard.lanes[
                            src_shard.session.worker_for(tenant)]
                        try:
                            lane.ready.remove(tenant)
                        except ValueError:
                            pass
                        queued.discard(tenant)
                        enqueue(tenant, cycle)
            elif kind == "policy":
                _, policies = event
                policy_reload_count += 1
                policy_reload_ctr.inc()
                self._policy_reloads.append(policies)
                for shard in shards.values():
                    # at_seq=0: batches are stamped at submit time, so
                    # only dispatches after this instant pick up the
                    # new generation — in-flight work is untouched.
                    shard.supervisor.reload_policy(policies, at_seq=0)
            else:
                raise GatewayError(f"unknown event kind {kind!r}")

        leftover = sum(len(q) for q in pending.values())
        if leftover:
            raise GatewayError(
                f"event loop drained with {leftover} admitted op(s) "
                f"still queued — lane wake-up logic lost a tenant")

        shard_results = {
            shard_id: shard.session.close(plans)
            for shard_id, shard in sorted(all_shards.items())}
        queue_waits: List[float] = []
        for shard in all_shards.values():
            queue_waits.extend(shard.supervisor._queue_waits)

        makespan = max((lane.free_at for shard in all_shards.values()
                        for lane in shard.lanes), default=0)
        stats = GatewayStats(
            pattern=pattern, tenants=len(plans),
            shards=config.shards, workers_per_shard=config.workers_per_shard,
            offered=admission.offered, admitted=admission.admitted,
            quota_rejected=admission.quota_rejected,
            queue_shed=admission.queue_shed,
            dispatches=dispatches, dispatched_ops=dispatched_ops,
            makespan_cycles=makespan,
            latency_samples=len(latencies),
            p50_latency_cycles=percentile(latencies, 0.50),
            p95_latency_cycles=percentile(latencies, 0.95),
            p99_latency_cycles=percentile(latencies, 0.99),
            slo_cycles=slo_cycles, slo_violations=slo_violations,
            rebalances=rebalance_count, moved_tenants=len(moves),
            migrations=migration_count,
            policy_reload_events=policy_reload_count,
            warmup_seconds=warmup,
            wall_seconds=time.perf_counter() - wall_start)
        merged_fleet = merge_fleet_stats(
            [r.stats for r in shard_results.values()],
            request_cycles, queue_waits)
        merged_telemetry = merge_snapshots(
            [self.telemetry.snapshot()]
            + [shard.telemetry.snapshot()
               for _, shard in sorted(all_shards.items())])
        return GatewayResult(
            stats=stats, fleet=merged_fleet,
            tenants=merge_tenant_summaries(list(shard_results.values())),
            shard_results=shard_results, telemetry=merged_telemetry,
            moves=moves)
