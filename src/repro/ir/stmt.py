"""Statement and terminator nodes of the device IR.

A basic block holds a straight-line list of statements followed by exactly
one terminator.  Terminators are where trace packets come from: ``Branch``
emits a TNT bit, ``Switch`` and indirect calls emit TIP packets — mirroring
what Intel PT records for conditional and indirect jumps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.ir.expr import Expr


class Stmt:
    """Base class for straight-line statements."""

    lineno: int = 0

    def exprs(self) -> Tuple[Expr, ...]:
        return ()

    def defined_local(self) -> Optional[str]:
        return None

    def stored_field(self) -> Optional[str]:
        """Control-structure field this statement writes, if any."""
        return None


@dataclass
class Assign(Stmt):
    """``local = expr``"""

    target: str
    value: Expr
    lineno: int = 0

    def exprs(self) -> Tuple[Expr, ...]:
        return (self.value,)

    def defined_local(self) -> Optional[str]:
        return self.target

    def __str__(self) -> str:
        return f"{self.target} = {self.value}"


@dataclass
class StateStore(Stmt):
    """``dev.field = expr`` — wraps to the field width, sets overflow flag."""

    field: str
    value: Expr
    lineno: int = 0

    def exprs(self) -> Tuple[Expr, ...]:
        return (self.value,)

    def stored_field(self) -> Optional[str]:
        return self.field

    def __str__(self) -> str:
        return f"dev.{self.field} = {self.value}"


@dataclass
class BufStore(Stmt):
    """``dev.buf[index] = expr`` — unchecked, like the C it stands in for."""

    buf: str
    index: Expr
    value: Expr
    lineno: int = 0

    def exprs(self) -> Tuple[Expr, ...]:
        return (self.index, self.value)

    def stored_field(self) -> Optional[str]:
        return self.buf

    def __str__(self) -> str:
        return f"dev.{self.buf}[{self.index}] = {self.value}"


@dataclass
class ExternCall(Stmt):
    """Call into the host environment (DMA access, IRQ line, log, …).

    Extern calls are the boundary of the traced/analysed world: the paper's
    IPT address filter drops shared-library control flow, and our CFG
    analyser treats extern results as opaque (candidates for sync points).
    """

    func: str
    args: Tuple[Expr, ...]
    dest: Optional[str] = None
    lineno: int = 0

    def exprs(self) -> Tuple[Expr, ...]:
        return self.args

    def defined_local(self) -> Optional[str]:
        return self.dest

    def __str__(self) -> str:
        call = f"extern {self.func}({', '.join(map(str, self.args))})"
        return f"{self.dest} = {call}" if self.dest else call


@dataclass
class Intrinsic(Stmt):
    """SEDSpec marker pseudo-statement (command decision/end annotations).

    Compiled from ``sed_command_decision(expr)`` / ``sed_command_end()``
    in device source.  Interpreted as a no-op by the interpreter; consumed
    by the CFG analyser as the "auxiliary information" the paper's
    observation points record.
    """

    kind: str                     # "command_decision" | "command_end"
    args: Tuple[Expr, ...] = ()
    lineno: int = 0

    def exprs(self) -> Tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        return f"@{self.kind}({', '.join(map(str, self.args))})"


# --------------------------------------------------------------------------
# Terminators
# --------------------------------------------------------------------------

class Terminator:
    """Base class; every block ends with exactly one."""

    lineno: int = 0

    def successors(self) -> Tuple[str, ...]:
        return ()

    def exprs(self) -> Tuple[Expr, ...]:
        return ()


@dataclass
class Goto(Terminator):
    """Unconditional fall-through; emits no trace packet."""

    target: str
    lineno: int = 0

    def successors(self) -> Tuple[str, ...]:
        return (self.target,)

    def __str__(self) -> str:
        return f"goto {self.target}"


@dataclass
class Branch(Terminator):
    """Conditional jump; emits one TNT bit (taken = condition true)."""

    cond: Expr
    taken: str
    not_taken: str
    lineno: int = 0

    def successors(self) -> Tuple[str, ...]:
        return (self.taken, self.not_taken)

    def exprs(self) -> Tuple[Expr, ...]:
        return (self.cond,)

    def __str__(self) -> str:
        return f"br {self.cond} ? {self.taken} : {self.not_taken}"


@dataclass
class Switch(Terminator):
    """Multi-way dispatch (C switch via jump table); emits a TIP packet.

    The common shape of a QEMU device's command dispatch — and therefore
    the usual carrier of the paper's *command decision block*.
    """

    scrutinee: Expr
    table: Dict[int, str] = field(default_factory=dict)
    default: str = ""
    lineno: int = 0

    def successors(self) -> Tuple[str, ...]:
        succ = list(dict.fromkeys(self.table.values()))
        if self.default and self.default not in succ:
            succ.append(self.default)
        return tuple(succ)

    def exprs(self) -> Tuple[Expr, ...]:
        return (self.scrutinee,)

    def __str__(self) -> str:
        arms = ", ".join(f"{k}->{v}" for k, v in sorted(self.table.items()))
        return f"switch {self.scrutinee} [{arms}] default {self.default}"


@dataclass
class Call(Terminator):
    """Direct call; control resumes at *cont* with *dest* bound (if any)."""

    func: str
    args: Tuple[Expr, ...]
    dest: Optional[str]
    cont: str
    lineno: int = 0

    def successors(self) -> Tuple[str, ...]:
        return (self.cont,)

    def exprs(self) -> Tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        call = f"call {self.func}({', '.join(map(str, self.args))})"
        return f"{self.dest + ' = ' if self.dest else ''}{call} -> {self.cont}"


@dataclass
class ICall(Terminator):
    """Indirect call through a function-pointer field; emits a TIP packet.

    The target is whatever address the (possibly attacker-corrupted) field
    holds — this is the jump the indirect-jump check strategy guards.
    """

    ptr_field: str
    args: Tuple[Expr, ...]
    dest: Optional[str]
    cont: str
    lineno: int = 0

    def successors(self) -> Tuple[str, ...]:
        return (self.cont,)

    def exprs(self) -> Tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        call = f"icall dev.{self.ptr_field}({', '.join(map(str, self.args))})"
        return f"{self.dest + ' = ' if self.dest else ''}{call} -> {self.cont}"


@dataclass
class Return(Terminator):
    """Function return; for entry handlers this ends the I/O round."""

    value: Optional[Expr] = None
    lineno: int = 0

    def exprs(self) -> Tuple[Expr, ...]:
        return (self.value,) if self.value is not None else ()

    def __str__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"


def stmt_state_reads(stmt: Stmt) -> FrozenSet[str]:
    """All control-structure fields read by *stmt*'s expressions."""
    names: set = set()
    for expr in stmt.exprs():
        names |= expr.state_refs()
    return frozenset(names)


def terminator_state_reads(term: Terminator) -> FrozenSet[str]:
    names: set = set()
    for expr in term.exprs():
        names |= expr.state_refs()
    if isinstance(term, ICall):
        names.add(term.ptr_field)
    return frozenset(names)
