"""Typed, basic-block IR for emulated-device logic.

Device I/O handlers (written in a restricted Python subset) are compiled
into this IR by :mod:`repro.compiler`; the interpreter in
:mod:`repro.interp` executes it while the IPT simulator in :mod:`repro.ipt`
records its control flow.
"""

from repro.ir.types import (
    U8, U16, U32, U64, I8, I16, I32, I64, FUNCPTR,
    BufType, FuncPtrType, IntType, WrapResult, type_by_name,
)
from repro.ir.layout import FieldDecl, StateLayout, StateMemory
from repro.ir.expr import (
    BinOp, BufLen, BufLoad, Const, Expr, Local, Param, StateRef, SyncVar,
    UnOp,
)
from repro.ir.stmt import (
    Assign, Branch, BufStore, Call, ExternCall, Goto, ICall, Intrinsic,
    Return, StateStore, Stmt, Switch, Terminator,
    stmt_state_reads, terminator_state_reads,
)
from repro.ir.program import (
    BLOCK_ADDR_STRIDE, CODE_BASE, FUNC_ADDR_STRIDE,
    BasicBlock, Function, Program,
)

__all__ = [
    "U8", "U16", "U32", "U64", "I8", "I16", "I32", "I64", "FUNCPTR",
    "BufType", "FuncPtrType", "IntType", "WrapResult", "type_by_name",
    "FieldDecl", "StateLayout", "StateMemory",
    "BinOp", "BufLen", "BufLoad", "Const", "Expr", "Local", "Param",
    "StateRef", "SyncVar", "UnOp",
    "Assign", "Branch", "BufStore", "Call", "ExternCall", "Goto", "ICall",
    "Intrinsic", "Return", "StateStore", "Stmt", "Switch", "Terminator",
    "stmt_state_reads", "terminator_state_reads",
    "BLOCK_ADDR_STRIDE", "CODE_BASE", "FUNC_ADDR_STRIDE",
    "BasicBlock", "Function", "Program",
]
