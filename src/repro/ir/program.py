"""Functions, basic blocks, and whole-program containers for the device IR.

Every basic block is assigned a synthetic *code address*, so the IPT
simulator can speak the same language real PT does (addresses in TIP
packets, address-range filters), and so function-pointer fields can hold
genuine-looking values that an overflow can corrupt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import IRError
from repro.ir.layout import StateLayout
from repro.ir.stmt import Return, Stmt, Terminator

#: Addresses are spaced so that a corrupted pointer rarely lands on a valid
#: block by accident — like real code addresses under ASLR-less layouts.
BLOCK_ADDR_STRIDE = 0x40
FUNC_ADDR_STRIDE = 0x10000
CODE_BASE = 0x4000_0000


@dataclass
class BasicBlock:
    """A label, a straight-line statement list, and one terminator."""

    label: str
    stmts: List[Stmt] = field(default_factory=list)
    terminator: Terminator = field(default_factory=Return)
    address: int = 0
    lineno: int = 0

    def __str__(self) -> str:
        body = "\n".join(f"    {s}" for s in self.stmts)
        sep = "\n" if body else ""
        return f"  {self.label}: @{self.address:#x}\n{body}{sep}    {self.terminator}"


class Function:
    """A compiled device routine: params + CFG of basic blocks."""

    def __init__(self, name: str, params: Tuple[str, ...],
                 entry: str = "entry"):
        self.name = name
        self.params = params
        self.entry = entry
        self.blocks: Dict[str, BasicBlock] = {}
        self.address = 0        # assigned by Program.freeze()

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.label in self.blocks:
            raise IRError(f"duplicate block {block.label!r} in {self.name}")
        self.blocks[block.label] = block
        return block

    def block(self, label: str) -> BasicBlock:
        try:
            return self.blocks[label]
        except KeyError:
            raise IRError(f"{self.name} has no block {label!r}") from None

    def iter_blocks(self) -> Iterator[BasicBlock]:
        return iter(self.blocks.values())

    def validate(self) -> None:
        """Check CFG well-formedness: entry exists, successors resolve."""
        if self.entry not in self.blocks:
            raise IRError(f"{self.name}: entry block {self.entry!r} missing")
        for block in self.blocks.values():
            for succ in block.terminator.successors():
                if succ not in self.blocks:
                    raise IRError(
                        f"{self.name}:{block.label}: successor {succ!r} "
                        f"does not exist")

    def __str__(self) -> str:
        header = f"func {self.name}({', '.join(self.params)}) @{self.address:#x}"
        return header + "\n" + "\n".join(str(b) for b in self.blocks.values())


class Program:
    """All compiled functions of one device plus its state layout.

    ``freeze()`` assigns addresses and builds the address maps used by the
    tracer, the decoder, and the indirect-jump check.
    """

    def __init__(self, name: str, layout: StateLayout):
        self.name = name
        self.layout = layout
        self.functions: Dict[str, Function] = {}
        self.entry_handlers: Dict[str, str] = {}   # handler key -> func name
        self._frozen = False
        self.addr_to_block: Dict[int, Tuple[str, str]] = {}
        self.func_addr: Dict[str, int] = {}
        self.addr_to_func: Dict[int, str] = {}

    # -- construction ------------------------------------------------------

    def add_function(self, func: Function) -> Function:
        if self._frozen:
            raise IRError("program is frozen")
        if func.name in self.functions:
            raise IRError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        return func

    def register_entry(self, key: str, func_name: str) -> None:
        """Mark *func_name* as the I/O entry handler for interface *key*.

        Keys look like ``"pmio:write:0x3f5"`` or ``"mmio:read:ctrl"`` —
        they are what the execution specification's entry block dispatches
        on (the paper: "parsing the target address/port of the I/O request").
        """
        self.entry_handlers[key] = func_name

    def freeze(self) -> "Program":
        """Validate, then assign code addresses to functions and blocks."""
        base = CODE_BASE
        for i, func in enumerate(self.functions.values()):
            func.validate()
            func.address = base + i * FUNC_ADDR_STRIDE
            self.func_addr[func.name] = func.address
            self.addr_to_func[func.address] = func.name
            for j, block in enumerate(func.iter_blocks()):
                block.address = func.address + j * BLOCK_ADDR_STRIDE
                self.addr_to_block[block.address] = (func.name, block.label)
        self._frozen = True
        return self

    # -- queries -----------------------------------------------------------

    @property
    def frozen(self) -> bool:
        return self._frozen

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function {name!r} in {self.name}") from None

    def block_at(self, address: int) -> Optional[BasicBlock]:
        loc = self.addr_to_block.get(address)
        if loc is None:
            return None
        func_name, label = loc
        return self.functions[func_name].block(label)

    def code_range(self) -> Tuple[int, int]:
        """[lo, hi) address range of the device's code — the IPT filter."""
        if not self._frozen:
            raise IRError("freeze() the program before asking for ranges")
        addrs = list(self.addr_to_block)
        return (min(addrs), max(addrs) + BLOCK_ADDR_STRIDE)

    def entry_for(self, key: str) -> Function:
        try:
            return self.functions[self.entry_handlers[key]]
        except KeyError:
            raise IRError(
                f"{self.name}: no entry handler for {key!r}") from None

    def block_count(self) -> int:
        return sum(len(f.blocks) for f in self.functions.values())

    def stmt_count(self) -> int:
        return sum(len(b.stmts) + 1
                   for f in self.functions.values()
                   for b in f.blocks.values())

    def __str__(self) -> str:
        return f"program {self.name}\n" + "\n\n".join(
            str(f) for f in self.functions.values())
