"""Type system for the device IR.

Device control structures are laid out in flat memory exactly like the C
structs they stand in for, so every field carries a declared width and
signedness.  Arithmetic in the IR is exact (Python ints); values are wrapped
to their declared width at *store* time, and the wrap reports whether an
overflow occurred — this is the information the paper reads from "relevant
bits in the flag register".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IRError


@dataclass(frozen=True)
class IntType:
    """A fixed-width integer type (the C-like scalar of the IR)."""

    bits: int
    signed: bool = False

    def __post_init__(self) -> None:
        if self.bits not in (8, 16, 32, 64):
            raise IRError(f"unsupported integer width: {self.bits}")

    @property
    def size(self) -> int:
        """Byte size of the type."""
        return self.bits // 8

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1

    def contains(self, value: int) -> bool:
        """Whether *value* is representable without wrapping."""
        return self.min_value <= value <= self.max_value

    def wrap(self, value: int) -> "WrapResult":
        """Wrap *value* to this type, reporting overflow.

        Mirrors C's integer conversion: the stored value is ``value`` modulo
        2**bits, re-interpreted with this type's signedness.
        """
        overflowed = not self.contains(value)
        masked = value & ((1 << self.bits) - 1)
        if self.signed and masked >= (1 << (self.bits - 1)):
            masked -= 1 << self.bits
        return WrapResult(masked, overflowed)

    def __str__(self) -> str:
        return f"{'i' if self.signed else 'u'}{self.bits}"


@dataclass(frozen=True)
class WrapResult:
    """Outcome of wrapping a value to a fixed-width type."""

    value: int
    overflowed: bool


@dataclass(frozen=True)
class BufType:
    """A fixed-length inline buffer (C array member of the control struct)."""

    elem: IntType
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise IRError(f"buffer length must be positive, got {self.length}")

    @property
    def size(self) -> int:
        return self.elem.size * self.length

    def __str__(self) -> str:
        return f"{self.elem}[{self.length}]"


@dataclass(frozen=True)
class FuncPtrType:
    """A function pointer stored in the control structure (8 bytes).

    Values are code addresses; the program's address map resolves them back
    to IR functions.  Attackers corrupt these via buffer overflows, which is
    what the indirect-jump check strategy exists to catch.
    """

    @property
    def size(self) -> int:
        return 8

    def __str__(self) -> str:
        return "funcptr"


# Canonical instances, used pervasively by device declarations.
U8 = IntType(8)
U16 = IntType(16)
U32 = IntType(32)
U64 = IntType(64)
I8 = IntType(8, signed=True)
I16 = IntType(16, signed=True)
I32 = IntType(32, signed=True)
I64 = IntType(64, signed=True)
FUNCPTR = FuncPtrType()

_BY_NAME = {
    "u8": U8, "u16": U16, "u32": U32, "u64": U64,
    "i8": I8, "i16": I16, "i32": I32, "i64": I64,
    "funcptr": FUNCPTR,
}


def type_by_name(name: str):
    """Look up a scalar type by its short name (``u8`` … ``i64``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise IRError(f"unknown type name: {name!r}") from None
