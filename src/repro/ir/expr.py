"""Expression nodes of the device IR.

Expressions are side-effect free trees evaluated against (locals, device
state, call parameters).  They appear inside statements and as branch
conditions, and — crucially for SEDSpec — they are *re-evaluable by the
ES-Checker* over its shadow device state, which is how DSOD/NBTD execution
works in the specification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, Tuple

BINOPS = {
    "+", "-", "*", "//", "%", "&", "|", "^", "<<", ">>",
    "==", "!=", "<", "<=", ">", ">=", "and", "or",
}
UNOPS = {"-", "not", "~"}


class Expr:
    """Base class; subclasses are frozen dataclasses."""

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def state_refs(self) -> FrozenSet[str]:
        """Names of control-structure fields this expression reads."""
        names = set()
        for node in self.walk():
            if isinstance(node, StateRef):
                names.add(node.field)
            elif isinstance(node, BufLoad):
                names.add(node.buf)
        return frozenset(names)

    def local_refs(self) -> FrozenSet[str]:
        """Names of local variables this expression reads."""
        return frozenset(n.name for n in self.walk() if isinstance(n, Local))

    def param_refs(self) -> FrozenSet[str]:
        """Names of function parameters this expression reads."""
        return frozenset(n.name for n in self.walk() if isinstance(n, Param))

    def sync_refs(self) -> FrozenSet[str]:
        """Names of sync variables (data-dependency-recovery escape hatch)."""
        return frozenset(n.name for n in self.walk() if isinstance(n, SyncVar))


@dataclass(frozen=True)
class Const(Expr):
    """Integer literal."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Local(Expr):
    """Read of a function-local variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Param(Expr):
    """Read of a function parameter (I/O request data for entry handlers)."""

    name: str

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class StateRef(Expr):
    """Read of a scalar field of the device control structure."""

    field: str

    def __str__(self) -> str:
        return f"dev.{self.field}"


@dataclass(frozen=True)
class BufLoad(Expr):
    """Load from an inline buffer of the control structure (unchecked)."""

    buf: str
    index: "Expr"

    def children(self) -> Tuple[Expr, ...]:
        return (self.index,)

    def __str__(self) -> str:
        return f"dev.{self.buf}[{self.index}]"


@dataclass(frozen=True)
class BufLen(Expr):
    """Declared length of a buffer — compile-time constant (``len(dev.x)``)."""

    buf: str
    length: int

    def __str__(self) -> str:
        return f"len(dev.{self.buf})"


@dataclass(frozen=True)
class SyncVar(Expr):
    """A value not derivable from device state: resolved by a sync point.

    Inserted by data-dependency recovery when an NBTD condition depends on a
    local the checker cannot compute; at runtime the sync oracle supplies
    the value (Section V-D of the paper).
    """

    name: str

    def __str__(self) -> str:
        return f"sync({self.name})"


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operation; arithmetic is exact, wrapping happens at stores."""

    op: str
    left: "Expr"
    right: "Expr"

    def __post_init__(self) -> None:
        if self.op not in BINOPS:
            from repro.errors import IRError
            raise IRError(f"unknown binary operator {self.op!r}")

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnOp(Expr):
    """Unary operation."""

    op: str
    operand: "Expr"

    def __post_init__(self) -> None:
        if self.op not in UNOPS:
            from repro.errors import IRError
            raise IRError(f"unknown unary operator {self.op!r}")

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"
