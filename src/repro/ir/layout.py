"""Flat-memory layout of a device control structure.

QEMU device bugs are memory-safety bugs: an index running past a ``fifo``
array corrupts whatever the C compiler placed after it.  To reproduce the
paper's case studies faithfully (CVE-2015-7504 overwrites the ``irq``
function pointer adjacent to a buffer; CVE-2020-14364 writes at a *negative*
index), the control structure is backed by a real bytearray with explicit
field offsets, declared in the order the device author lists the fields —
just like a C struct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import IRError
from repro.ir.types import BufType, FuncPtrType, IntType

ScalarOrBuf = Union[IntType, BufType, FuncPtrType]


@dataclass(frozen=True)
class FieldDecl:
    """One member of the device control structure."""

    name: str
    type: ScalarOrBuf
    offset: int
    register: bool = False      # Rule 1: mirrors a physical device register
    doc: str = ""

    @property
    def size(self) -> int:
        return self.type.size

    @property
    def is_buffer(self) -> bool:
        return isinstance(self.type, BufType)

    @property
    def is_funcptr(self) -> bool:
        return isinstance(self.type, FuncPtrType)

    @property
    def end(self) -> int:
        return self.offset + self.size


class StateLayout:
    """Ordered field declarations plus their computed offsets.

    Fields are packed back to back with no padding: deterministic layout
    makes overflow behaviour (which neighbour gets clobbered) reproducible
    across runs, which the exploit case studies rely on.
    """

    def __init__(self, struct_name: str):
        self.struct_name = struct_name
        self._fields: Dict[str, FieldDecl] = {}
        self._order: List[str] = []
        self._size = 0

    def add(self, name: str, typ: ScalarOrBuf, register: bool = False,
            doc: str = "") -> FieldDecl:
        """Append a field; offset is the current end of the struct."""
        if name in self._fields:
            raise IRError(f"duplicate field {name!r} in {self.struct_name}")
        decl = FieldDecl(name, typ, self._size, register=register, doc=doc)
        self._fields[name] = decl
        self._order.append(name)
        self._size += decl.size
        return decl

    @property
    def size(self) -> int:
        return self._size

    @property
    def fields(self) -> List[FieldDecl]:
        return [self._fields[n] for n in self._order]

    def field(self, name: str) -> FieldDecl:
        try:
            return self._fields[name]
        except KeyError:
            raise IRError(
                f"{self.struct_name} has no field {name!r}") from None

    def has_field(self, name: str) -> bool:
        return name in self._fields

    def field_at(self, offset: int) -> Optional[FieldDecl]:
        """Field whose storage covers *offset*, if any."""
        for decl in self.fields:
            if decl.offset <= offset < decl.end:
                return decl
        return None

    def neighbours(self, name: str) -> Tuple[Optional[FieldDecl],
                                             Optional[FieldDecl]]:
        """Fields immediately before and after *name* (for diagnostics)."""
        idx = self._order.index(name)
        before = self._fields[self._order[idx - 1]] if idx > 0 else None
        after = (self._fields[self._order[idx + 1]]
                 if idx + 1 < len(self._order) else None)
        return before, after

    def describe(self) -> str:
        """Human-readable struct dump, used in docs and debug output."""
        lines = [f"struct {self.struct_name} {{  /* {self.size} bytes */"]
        for decl in self.fields:
            reg = "  /* register */" if decl.register else ""
            lines.append(f"  [{decl.offset:#06x}] {decl.type} {decl.name};{reg}")
        lines.append("}")
        return "\n".join(lines)


@dataclass
class StateMemory:
    """The live backing store of one device's control structure."""

    layout: StateLayout
    data: bytearray = field(default_factory=bytearray)

    def __post_init__(self) -> None:
        if not self.data:
            self.data = bytearray(self.layout.size)
        elif len(self.data) != self.layout.size:
            raise IRError("backing store size does not match layout")

    # -- scalar access ----------------------------------------------------

    def read_field(self, name: str) -> int:
        decl = self.layout.field(name)
        if decl.is_buffer:
            raise IRError(f"{name} is a buffer; use read_buf")
        raw = int.from_bytes(
            self.data[decl.offset:decl.end], "little")
        if isinstance(decl.type, IntType) and decl.type.signed:
            return decl.type.wrap(raw).value
        return raw

    def write_field(self, name: str, value: int) -> bool:
        """Store *value* wrapped to the field's width; returns overflow flag."""
        decl = self.layout.field(name)
        if decl.is_buffer:
            raise IRError(f"{name} is a buffer; use write_buf")
        if decl.is_funcptr:
            wrapped, overflowed = value & ((1 << 64) - 1), False
        else:
            result = decl.type.wrap(value)
            wrapped, overflowed = result.value, result.overflowed
        unsigned = wrapped & ((1 << (decl.size * 8)) - 1)
        self.data[decl.offset:decl.end] = unsigned.to_bytes(decl.size, "little")
        return overflowed

    # -- buffer access (deliberately unchecked, like C) --------------------

    def buf_offset(self, name: str, index: int) -> int:
        decl = self.layout.field(name)
        if not decl.is_buffer:
            raise IRError(f"{name} is not a buffer")
        assert isinstance(decl.type, BufType)
        return decl.offset + index * decl.type.elem.size

    def read_buf(self, name: str, index: int) -> int:
        """Unchecked buffer load: an OOB index reads a neighbouring field."""
        off = self.buf_offset(name, index)
        decl = self.layout.field(name)
        assert isinstance(decl.type, BufType)
        size = decl.type.elem.size
        self._bounds_or_fault(name, off, size)
        raw = int.from_bytes(self.data[off:off + size], "little")
        if decl.type.elem.signed:
            return decl.type.elem.wrap(raw).value
        return raw

    def write_buf(self, name: str, index: int, value: int) -> None:
        """Unchecked buffer store: an OOB index corrupts neighbours."""
        off = self.buf_offset(name, index)
        decl = self.layout.field(name)
        assert isinstance(decl.type, BufType)
        size = decl.type.elem.size
        self._bounds_or_fault(name, off, size)
        masked = value & ((1 << (size * 8)) - 1)
        self.data[off:off + size] = masked.to_bytes(size, "little")

    def _bounds_or_fault(self, name: str, off: int, size: int) -> None:
        """Accesses may roam the whole struct (heap-neighbour corruption),
        but leaving the struct entirely is the analogue of a segfault."""
        if off < 0 or off + size > self.layout.size:
            from repro.errors import DeviceFault
            raise DeviceFault(
                f"access via buffer {name!r} at struct offset {off:#x} "
                f"leaves {self.layout.struct_name} ({self.layout.size} bytes)",
                device=self.layout.struct_name, kind="oob-segfault")

    # -- whole-struct helpers ----------------------------------------------

    def snapshot(self) -> "StateMemory":
        """Deep copy; used by the checker's sync-point oracle.

        Checker hot path (one snapshot per I/O round via
        ``DeviceState.clone``): skip dataclass init — the layout is
        shared immutably and the copied store matches it by
        construction, so the ``__post_init__`` re-validation is pure
        overhead here.
        """
        twin = StateMemory.__new__(StateMemory)
        twin.layout = self.layout
        twin.data = bytearray(self.data)
        return twin

    def restore(self, snap: "StateMemory") -> None:
        self.data[:] = snap.data

    def dump_fields(self) -> Dict[str, int]:
        """Scalar fields as a dict (buffers omitted); handy in tests/logs."""
        out: Dict[str, int] = {}
        for decl in self.layout.fields:
            if not decl.is_buffer:
                out[decl.name] = self.read_field(decl.name)
        return out
