"""Observation points and the device state change log (Section IV-B).

After the CFG analyzer picks the device state parameters and the
observation points, the device is "recompiled with instrumentation" — here,
a trace sink records, for every training round: the control flow (block
sequence, branch outcomes, indirect targets), the device-state parameter
changes, and the block-type auxiliary information (command markers).  The
collected :class:`DeviceStateChangeLog` is the primary input to ES-CFG
construction, and serializes to JSON to model the paper's log files.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.interp.sinks import TraceSink


@dataclass
class LogEvent:
    """One observation inside a round; ``kind`` selects the payload.

    kinds: ``block`` (entered block at address), ``branch`` (outcome),
    ``tip`` (indirect target + icall/switch), ``store`` (param field,
    new value, overflow flag), ``bufstore`` (param buffer, index),
    ``cmd_decision`` (command value), ``cmd_end``.
    """

    kind: str
    block: int
    data: Dict[str, Any] = field(default_factory=dict)


@dataclass
class RoundLog:
    """All observations of one I/O interaction round."""

    io_key: str
    io_args: Tuple[int, ...]
    events: List[LogEvent] = field(default_factory=list)
    initial_state: Dict[str, int] = field(default_factory=dict)
    final_state: Dict[str, int] = field(default_factory=dict)
    faulted: bool = False

    def block_sequence(self) -> List[int]:
        return [e.block for e in self.events if e.kind == "block"]

    def command_values(self) -> List[int]:
        return [e.data["value"] for e in self.events
                if e.kind == "cmd_decision"]


@dataclass
class DeviceStateChangeLog:
    """The full training log of one device."""

    device: str
    param_fields: List[str]
    param_buffers: List[str]
    rounds: List[RoundLog] = field(default_factory=list)

    # -- (de)serialization ---------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "device": self.device,
            "param_fields": self.param_fields,
            "param_buffers": self.param_buffers,
            "rounds": [asdict(r) for r in self.rounds],
        })

    @classmethod
    def from_json(cls, text: str) -> "DeviceStateChangeLog":
        raw = json.loads(text)
        log = cls(raw["device"], raw["param_fields"], raw["param_buffers"])
        for r in raw["rounds"]:
            round_ = RoundLog(r["io_key"], tuple(r["io_args"]),
                              initial_state=r["initial_state"],
                              final_state=r["final_state"],
                              faulted=r["faulted"])
            round_.events = [LogEvent(e["kind"], e["block"], e["data"])
                             for e in r["events"]]
            log.rounds.append(round_)
        return log


class ObservationLogger(TraceSink):
    """The instrumented observation points, as a trace sink.

    *param_fields*/*param_buffers* are the selected device state
    parameters; only their changes are recorded (the paper: tracking every
    change in the control structure is impractical).
    """

    def __init__(self, device: str, param_fields: Set[str],
                 param_buffers: Set[str],
                 decision_blocks: Set[int] = frozenset(),
                 end_blocks: Set[int] = frozenset()):
        self.log = DeviceStateChangeLog(
            device, sorted(param_fields), sorted(param_buffers))
        self._param_fields = set(param_fields)
        self._param_buffers = set(param_buffers)
        self._decision_blocks = set(decision_blocks)
        self._end_blocks = set(end_blocks)
        self._machine = None
        self._round: Optional[RoundLog] = None
        self._block_addr = 0

    def attach(self, machine) -> None:
        self._machine = machine

    # -- sink events -----------------------------------------------------------

    def on_io_enter(self, key, args) -> None:
        self._round = RoundLog(key, tuple(args))
        self._round.initial_state = self._param_snapshot()

    def on_io_exit(self, key, result) -> None:
        if self._round is not None:
            self._round.final_state = self._param_snapshot()
            self.log.rounds.append(self._round)
        self._round = None

    def abort_round(self) -> None:
        """Record a faulted round (device crashed mid-I/O)."""
        if self._round is not None:
            self._round.faulted = True
            self._round.final_state = self._param_snapshot()
            self.log.rounds.append(self._round)
        self._round = None

    def on_block(self, func, block) -> None:
        self._block_addr = block.address
        self._event("block", {})
        if block.address in self._end_blocks:
            # Auto-detected command-end block (e.g. the entry handler's
            # return): the "block type" auxiliary information.
            self._event("cmd_end", {})

    def on_switch(self, block, value, target_addr) -> None:
        if block.address in self._decision_blocks:
            # Auto-detected command decision: the scrutinee value names
            # the current device command.
            self._event("cmd_decision", {"value": value})

    def on_branch(self, block, taken) -> None:
        self._event("branch", {"taken": bool(taken)})

    def on_tip(self, block, target_addr, kind) -> None:
        self._event("tip", {"target": target_addr, "how": kind})

    def on_state_store(self, field_name, value, overflowed) -> None:
        if field_name in self._param_fields:
            self._event("store", {"field": field_name, "value": value,
                                  "overflow": bool(overflowed)})

    def on_buf_store(self, buf, index, value) -> None:
        if buf in self._param_buffers:
            self._event("bufstore", {"buf": buf, "index": index})

    def on_intrinsic(self, kind, values) -> None:
        if kind == "command_decision":
            self._event("cmd_decision",
                        {"value": values[0] if values else 0})
        elif kind == "command_end":
            self._event("cmd_end", {})

    # -- internals ----------------------------------------------------------------

    def _event(self, kind: str, data: Dict[str, Any]) -> None:
        if self._round is not None:
            self._round.events.append(
                LogEvent(kind, self._block_addr, data))

    def _param_snapshot(self) -> Dict[str, int]:
        if self._machine is None:
            return {}
        state = self._machine.state
        return {name: state.read_field(name)
                for name in self._param_fields
                if not state.layout.field(name).is_buffer}
