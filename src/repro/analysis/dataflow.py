"""Data-flow analysis: reaching definitions, def-use, and backward slicing.

This is the reproduction's stand-in for the paper's use of *angr*
(Section V-D, data dependency recovery).  The execution specification only
re-executes statements that matter to device state; everything else is
sliced away.  A local whose (transitive) definition bottoms out in an
extern-call result cannot be computed by the checker and is flagged as a
*sync local* — the ES-CFG constructor will turn its uses into sync points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.ir import (
    Assign, BufStore, Call, ExternCall, Function, ICall, Intrinsic,
    StateStore, Stmt,
)

#: Identifies a statement: (block label, index within the block).
StmtId = Tuple[str, int]


@dataclass
class SliceResult:
    """What the specification keeps from one function."""

    #: statements to keep, per block label (indices into block.stmts)
    kept: Dict[str, Set[int]] = field(default_factory=dict)
    #: locals whose defining value the checker cannot compute
    sync_locals: Set[str] = field(default_factory=set)
    #: how many statements existed vs were kept (reduction metric)
    total_stmts: int = 0
    kept_stmts: int = 0

    def keeps(self, label: str, index: int) -> bool:
        return index in self.kept.get(label, set())

    @property
    def reduction_ratio(self) -> float:
        if self.total_stmts == 0:
            return 0.0
        return 1.0 - self.kept_stmts / self.total_stmts


def _stmt_uses(stmt: Stmt) -> FrozenSet[str]:
    uses: Set[str] = set()
    for expr in stmt.exprs():
        uses |= expr.local_refs()
    return frozenset(uses)


def _terminator_uses(func: Function, label: str) -> FrozenSet[str]:
    uses: Set[str] = set()
    for expr in func.block(label).terminator.exprs():
        uses |= expr.local_refs()
    return frozenset(uses)


def slice_function(func: Function, param_fields: Set[str],
                   param_buffers: Set[str]) -> SliceResult:
    """Backward slice keeping only what device-state simulation needs.

    Roots of the slice:

    * stores to device-state parameter fields / buffers (DSOD material),
    * every terminator's operands (NBTD conditions, call arguments,
      switch scrutinees) — the checker must navigate exactly like the
      device,
    * intrinsics (block-type auxiliary information).

    The slice then walks def-use chains backwards; ``ExternCall`` results
    that end up needed become sync locals instead of kept computations.
    """
    result = SliceResult()
    needed_locals: Set[str] = set()

    # Pass 0: collect root statements and the locals terminators use.
    roots: Set[StmtId] = set()
    for block in func.iter_blocks():
        result.total_stmts += len(block.stmts)
        needed_locals |= _terminator_uses(func, block.label)
        for idx, stmt in enumerate(block.stmts):
            if isinstance(stmt, StateStore) and stmt.field in param_fields:
                roots.add((block.label, idx))
            elif isinstance(stmt, BufStore) and stmt.buf in param_buffers:
                roots.add((block.label, idx))
            elif isinstance(stmt, Intrinsic):
                roots.add((block.label, idx))

    kept: Set[StmtId] = set(roots)
    for sid in roots:
        block = func.block(sid[0])
        needed_locals |= _stmt_uses(block.stmts[sid[1]])

    # Fixed point: keep definitions of needed locals; their uses become
    # needed in turn.  Extern-call definitions become sync locals.
    changed = True
    while changed:
        changed = False
        for block in func.iter_blocks():
            for idx, stmt in enumerate(block.stmts):
                target = stmt.defined_local()
                if target is None or target not in needed_locals:
                    continue
                sid = (block.label, idx)
                if isinstance(stmt, ExternCall):
                    if target not in result.sync_locals:
                        result.sync_locals.add(target)
                        changed = True
                    continue
                if sid not in kept:
                    kept.add(sid)
                    before = len(needed_locals)
                    needed_locals |= _stmt_uses(stmt)
                    if len(needed_locals) != before:
                        changed = True

    # Call/ICall results land in locals via terminators; if such a local is
    # needed, the call itself is a terminator and always "kept" — nothing
    # to do.  But its value may still be uncomputable if the callee's
    # return value depends on externs; that is resolved at spec-build time.

    for label, idx in kept:
        result.kept.setdefault(label, set()).add(idx)
    result.kept_stmts = len(kept)
    return result


@dataclass
class ReachingDefs:
    """Classic reaching-definitions over one function (per-local).

    Exposed for tests and for the spec constructor's NBTD-substitution
    path: a condition local with a *unique* reaching definition whose RHS
    reads only state/params/consts can be inlined into the NBTD.
    """

    func: Function
    #: (block label) -> local -> set of defining StmtIds reaching entry
    in_: Dict[str, Dict[str, Set[StmtId]]] = field(default_factory=dict)

    @classmethod
    def compute(cls, func: Function) -> "ReachingDefs":
        rd = cls(func)
        gen: Dict[str, Dict[str, StmtId]] = {}
        for block in func.iter_blocks():
            defs: Dict[str, StmtId] = {}
            for idx, stmt in enumerate(block.stmts):
                target = stmt.defined_local()
                if target:
                    defs[target] = (block.label, idx)
            term = block.terminator
            if isinstance(term, (Call, ICall)) and term.dest:
                defs[term.dest] = (block.label, len(block.stmts))
            gen[block.label] = defs

        preds: Dict[str, List[str]] = {b.label: [] for b in func.iter_blocks()}
        for block in func.iter_blocks():
            for succ in block.terminator.successors():
                preds[succ].append(block.label)

        rd.in_ = {b.label: {} for b in func.iter_blocks()}
        out: Dict[str, Dict[str, Set[StmtId]]] = {
            b.label: {} for b in func.iter_blocks()}
        changed = True
        while changed:
            changed = False
            for block in func.iter_blocks():
                label = block.label
                new_in: Dict[str, Set[StmtId]] = {}
                for pred in preds[label]:
                    for local, ids in out[pred].items():
                        new_in.setdefault(local, set()).update(ids)
                rd.in_[label] = new_in
                new_out = {k: set(v) for k, v in new_in.items()}
                for local, sid in gen[label].items():
                    new_out[local] = {sid}
                if new_out != out[label]:
                    out[label] = new_out
                    changed = True
        return rd

    def unique_def(self, label: str, local: str) -> Optional[StmtId]:
        """The single definition of *local* reaching *label*, if unique."""
        ids = self.in_[label].get(local, set())
        if len(ids) == 1:
            return next(iter(ids))
        return None
