"""Device-state parameter selection (Section IV-B, Table I).

From the variables that influence control-flow transitions in the ITC-CFG,
two rules pick the final device state:

* **Rule 1** — variables mirroring physical device registers (declared
  ``register=True`` by the device, as derived from its physical
  counterpart's programming model);
* **Rule 2** — variables associated with the dominant vulnerability
  classes: fixed-length buffers, the counters/indices addressing them, and
  function-pointer fields (control-flow hijack targets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cfg.itc import ITCCFG
from repro.ir import (
    Branch, BufLen, BufLoad, BufStore, ICall, Program, StateRef, Switch,
)

CATEGORY_REGISTER = "Physical register related variables"
CATEGORY_BUFFER = "Fixed-length buffer variables"
CATEGORY_COUNTER = "Variables for counting and indexing buffer positions"
CATEGORY_FUNCPTR = "Function pointer variables"


@dataclass
class ParamSelection:
    """The selected device state parameters, categorised as in Table I."""

    device: str
    registers: Set[str] = field(default_factory=set)
    buffers: Set[str] = field(default_factory=set)
    counters: Set[str] = field(default_factory=set)
    funcptrs: Set[str] = field(default_factory=set)
    #: every field observed to influence control flow (pre-filter)
    influencing: Set[str] = field(default_factory=set)

    @property
    def selected(self) -> Set[str]:
        return (self.registers | self.buffers | self.counters
                | self.funcptrs)

    @property
    def scalar_params(self) -> Set[str]:
        return self.registers | self.counters

    def table_rows(self) -> List[Tuple[str, str]]:
        """(category, comma-joined examples) rows, Table I shaped."""
        rows = []
        for category, names in (
                (CATEGORY_REGISTER, self.registers),
                (CATEGORY_BUFFER, self.buffers),
                (CATEGORY_COUNTER, self.counters),
                (CATEGORY_FUNCPTR, self.funcptrs)):
            rows.append((category, ", ".join(sorted(names)) or "-"))
        return rows


def select_parameters(program: Program,
                      itc: Optional[ITCCFG] = None) -> ParamSelection:
    """Apply the two selection rules over the program (and ITC-CFG).

    When *itc* is given, only blocks present in it contribute (the paper
    extracts variables from the ITC-CFG); without it the full static
    program is used — equivalent here, since our static CFG is complete.
    """
    selection = ParamSelection(device=program.name)
    layout = program.layout
    allowed = set(itc.nodes) if itc is not None else None

    index_fields: Set[str] = set()
    #: (state fields in comparison incl. via locals, saw buffer length,
    #:  saw an index local)
    compared_pairs: List[Tuple[Set[str], bool, bool]] = []

    for func in program.functions.values():
        # One-level local resolution: counters often reach conditions via
        # a local copy (e.g. a range() bound local holding self.count).
        local_state_refs: Dict[str, Set[str]] = {}
        for block in func.iter_blocks():
            for stmt in block.stmts:
                target = stmt.defined_local()
                if target is not None:
                    refs: Set[str] = set()
                    for expr in stmt.exprs():
                        refs |= expr.state_refs()
                    local_state_refs.setdefault(target, set()).update(refs)
        # Small fixed-point for chains of locals (depth is tiny in practice).
        for _ in range(3):
            for block in func.iter_blocks():
                for stmt in block.stmts:
                    target = stmt.defined_local()
                    if target is None:
                        continue
                    for expr in stmt.exprs():
                        for local in expr.local_refs():
                            local_state_refs.setdefault(target, set()) \
                                .update(local_state_refs.get(local, set()))

        def resolve(expr) -> Set[str]:
            refs = set(expr.state_refs())
            for local in expr.local_refs():
                refs |= local_state_refs.get(local, set())
            return refs

        index_locals: Set[str] = set()
        for block in func.iter_blocks():
            if allowed is not None and block.address not in allowed:
                continue
            # Buffer accesses anywhere: buffers + their index expressions.
            for stmt in block.stmts:
                for expr in stmt.exprs():
                    for node in expr.walk():
                        if isinstance(node, BufLoad):
                            selection.buffers.add(node.buf)
                            index_fields |= resolve(node.index)
                            index_locals |= node.index.local_refs()
                if isinstance(stmt, BufStore):
                    selection.buffers.add(stmt.buf)
                    index_fields |= resolve(stmt.index)
                    index_locals |= stmt.index.local_refs()

        for block in func.iter_blocks():
            if allowed is not None and block.address not in allowed:
                continue
            term = block.terminator
            # Fields steering conditional / multi-way control flow.
            if isinstance(term, (Branch, Switch)):
                for expr in term.exprs():
                    refs = resolve(expr)
                    selection.influencing |= refs
                    has_len = any(isinstance(n, BufLen)
                                  for n in expr.walk())
                    has_index_local = bool(
                        expr.local_refs() & index_locals)
                    if refs:
                        compared_pairs.append(
                            (refs, has_len, has_index_local))
            if isinstance(term, ICall):
                selection.influencing.add(term.ptr_field)
                selection.funcptrs.add(term.ptr_field)

    # Rule 1: declared register fields that influence control flow — and
    # registers written by I/O even if not branched on (the paper keeps
    # all physical-register mirrors in the device state).
    for decl in layout.fields:
        if decl.register:
            selection.registers.add(decl.name)

    # Rule 2a: index fields are counters.
    for name in index_fields:
        if layout.has_field(name) and not layout.field(name).register:
            selection.counters.add(name)

    # Rule 2b: fields compared against an index field, an index local, or
    # a buffer length are length/count fields.
    for refs, has_len, has_index_local in compared_pairs:
        if has_len or has_index_local or (refs & index_fields):
            for name in refs:
                if (layout.has_field(name)
                        and not layout.field(name).register
                        and not layout.field(name).is_buffer
                        and not layout.field(name).is_funcptr):
                    selection.counters.add(name)

    # Registers double-counted as counters stay registers only.
    selection.counters -= selection.registers
    return selection


def observation_points(program: Program,
                       itc: Optional[ITCCFG] = None) -> Set[int]:
    """Block addresses where observation instrumentation goes.

    Per the paper: at locations that impact control-flow direction —
    conditional and indirect jumps (plus command markers, which live in
    those blocks' statement lists and are recorded by the logger anyway).
    """
    points: Set[int] = set()
    allowed = set(itc.nodes) if itc is not None else None
    for func in program.functions.values():
        for block in func.iter_blocks():
            if allowed is not None and block.address not in allowed:
                continue
            if isinstance(block.terminator, (Branch, Switch, ICall)):
                points.add(block.address)
    return points
