"""Interprocedural taint analysis over device IR.

I/O request data (the parameters of entry handlers) is the attacker's
input.  The analysis computes which control-structure fields are written
from that input — *command sources* — and uses them to auto-detect the
paper's command decision blocks: a multi-way dispatch whose scrutinee is a
field the guest wrote directly is, in QEMU-device idiom, the command
dispatch.  Explicit ``sed_command_decision``/``sed_command_end`` intrinsics
override/augment detection where the idiom is atypical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.ir import (
    Assign, Branch, BufStore, Call, ExternCall, ICall, Intrinsic, Param,
    Program, Return, StateStore, Switch,
)


@dataclass
class TaintResult:
    """Outcome of the whole-program taint pass."""

    tainted_fields: Set[str] = field(default_factory=set)
    tainted_params: Dict[str, Set[str]] = field(default_factory=dict)
    #: block addresses auto- or explicitly-identified as command decisions
    command_decision_blocks: Set[int] = field(default_factory=set)
    #: block addresses identified as command ends
    command_end_blocks: Set[int] = field(default_factory=set)
    #: the field(s) whose value names the current command, when detectable
    command_fields: Set[str] = field(default_factory=set)


def _expr_tainted(expr, tainted_locals: Set[str], tainted_params: Set[str],
                  tainted_fields: Set[str]) -> bool:
    if expr.local_refs() & tainted_locals:
        return True
    if expr.param_refs() & tainted_params:
        return True
    if expr.state_refs() & tainted_fields:
        return True
    return False


def analyze_taint(program: Program) -> TaintResult:
    """Fixed-point taint propagation from entry-handler parameters."""
    result = TaintResult()
    entry_funcs = set(program.entry_handlers.values())
    # Seed: every parameter of every entry handler is guest-controlled.
    for name in program.functions:
        params = set(program.function(name).params) if name in entry_funcs \
            else set()
        result.tainted_params[name] = params

    changed = True
    while changed:
        changed = False
        for func in program.functions.values():
            tainted_params = result.tainted_params[func.name]
            tainted_locals: Set[str] = set()
            # Iterate blocks to a local fixed point (loops carry taint).
            for _ in range(2):
                for block in func.iter_blocks():
                    for stmt in block.stmts:
                        if isinstance(stmt, Assign):
                            if _expr_tainted(stmt.value, tainted_locals,
                                             tainted_params,
                                             result.tainted_fields):
                                tainted_locals.add(stmt.target)
                        elif isinstance(stmt, StateStore):
                            if _expr_tainted(stmt.value, tainted_locals,
                                             tainted_params,
                                             result.tainted_fields):
                                if stmt.field not in result.tainted_fields:
                                    result.tainted_fields.add(stmt.field)
                                    changed = True
                        elif isinstance(stmt, BufStore):
                            # Guest data stored into a buffer taints the
                            # buffer (reads of it come back tainted).
                            if _expr_tainted(stmt.value, tainted_locals,
                                             tainted_params,
                                             result.tainted_fields):
                                if stmt.buf not in result.tainted_fields:
                                    result.tainted_fields.add(stmt.buf)
                                    changed = True
                        elif isinstance(stmt, (ExternCall,)):
                            if stmt.dest:
                                # Host helpers may reflect guest data back
                                # (DMA reads): treat results as tainted.
                                tainted_locals.add(stmt.dest)
                    term = block.terminator
                    if isinstance(term, (Call, ICall)):
                        callee_name = term.func if isinstance(term, Call) \
                            else None
                        if callee_name and callee_name in program.functions:
                            callee = program.function(callee_name)
                            callee_tp = result.tainted_params[callee_name]
                            for pname, arg in zip(callee.params, term.args):
                                if (_expr_tainted(arg, tainted_locals,
                                                  tainted_params,
                                                  result.tainted_fields)
                                        and pname not in callee_tp):
                                    callee_tp.add(pname)
                                    changed = True
    _detect_command_blocks(program, result)
    return result


def _detect_command_blocks(program: Program, result: TaintResult) -> None:
    """Auto-detection + explicit intrinsics for decision/end blocks."""
    entry_funcs = set(program.entry_handlers.values())
    for func in program.functions.values():
        tainted_params = result.tainted_params[func.name]
        for block in func.iter_blocks():
            for stmt in block.stmts:
                if isinstance(stmt, Intrinsic):
                    if stmt.kind == "command_decision":
                        result.command_decision_blocks.add(block.address)
                        for arg in stmt.args:
                            result.command_fields |= arg.state_refs()
                    elif stmt.kind == "command_end":
                        result.command_end_blocks.add(block.address)
            term = block.terminator
            if isinstance(term, Switch):
                if _expr_tainted(term.scrutinee, set(), tainted_params,
                                 result.tainted_fields):
                    result.command_decision_blocks.add(block.address)
                    result.command_fields |= term.scrutinee.state_refs()
            if (isinstance(term, Return) and func.name in entry_funcs):
                result.command_end_blocks.add(block.address)
